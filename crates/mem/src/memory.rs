//! A node's physical memory: paged frames carrying real data bytes,
//! per-block access tags, and per-page protocol metadata.
//!
//! Unlike a pure timing simulator, this reproduction moves *real bytes*
//! through the protocols: coherence messages carry 32-byte block payloads
//! and the workloads verify that every load observes the value a
//! sequentially consistent execution would produce. `NodeMemory` is the
//! backing store for one node.
//!
//! Each frame also holds the metadata a Typhoon RTLB entry exposes to
//! block-access-fault handlers (Section 5.4): the mapped virtual page, a
//! 4-bit *page mode* used to select fault handlers, and uninterpreted
//! user state (the paper provides 48 bits, "typically a 16-bit home node
//! ID and a 32-bit pointer to an arbitrary user data structure"; we
//! generalize to two 64-bit words so protocol state needn't be packed).

use tt_base::addr::{PAddr, Ppn, Vpn, BLOCK_BYTES, PAGE_BYTES, WORD_BYTES};
use tt_base::Cycles;

use crate::tags::{PackedTags, Tag};

/// Per-page metadata visible to protocol handlers via the RTLB.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageMeta {
    /// The virtual page this frame is mapped at, if any.
    pub vpn: Option<Vpn>,
    /// The 4-bit page mode used (with the access type and tag) to select
    /// the block-access-fault handler.
    pub mode: u8,
    /// Uninterpreted protocol state (paper: home node id + user pointer).
    pub user: [u64; 2],
}

/// One 4 KB physical page frame: data, tags, and metadata.
///
/// Block tags are stored packed (2 bits per block plus a uniform-tag
/// summary, see [`crate::tags::PackedTags`]) so `set_all_tags` is O(1)
/// and "is this whole page tagged T?" is one comparison.
#[derive(Clone, Debug)]
pub struct PageFrame {
    data: Box<[u8; PAGE_BYTES]>,
    tags: PackedTags,
    /// Protocol-visible metadata.
    pub meta: PageMeta,
}

impl Default for PageFrame {
    fn default() -> Self {
        PageFrame {
            data: Box::new([0; PAGE_BYTES]),
            tags: PackedTags::default(),
            meta: PageMeta::default(),
        }
    }
}

impl PageFrame {
    /// The tag of block `idx` (0..[`tt_base::addr::BLOCKS_PER_PAGE`]).
    pub fn tag(&self, idx: usize) -> Tag {
        self.tags.get(idx)
    }

    /// Sets the tag of block `idx`.
    pub fn set_tag(&mut self, idx: usize, tag: Tag) {
        self.tags.set(idx, tag);
    }

    /// Sets every block tag on the page (O(1) on the packed store).
    pub fn set_all_tags(&mut self, tag: Tag) {
        self.tags.set_all(tag);
    }

    /// The tag every block on the page carries, or `None` if mixed.
    pub fn uniform_tag(&self) -> Option<Tag> {
        self.tags.uniform()
    }

    /// Iterates over `(block_index, tag)` pairs.
    pub fn tags(&self) -> impl Iterator<Item = (usize, Tag)> + '_ {
        self.tags.iter()
    }
}

/// Statistics for a node's memory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Frames currently allocated.
    pub allocated: usize,
    /// High-water mark of allocated frames.
    pub peak_allocated: usize,
}

/// A node's physical memory.
///
/// # Example
///
/// ```
/// use tt_mem::{NodeMemory, Tag};
///
/// let mut mem = NodeMemory::new();
/// let frame = mem.alloc();
/// let addr = frame.base().offset(16);
/// mem.write_word(addr, 0xFEED);
/// assert_eq!(mem.read_word(addr), 0xFEED);
/// assert_eq!(mem.tag(addr), Tag::Invalid, "fresh frames fault on access");
/// ```
#[derive(Clone, Debug, Default)]
pub struct NodeMemory {
    frames: Vec<Option<PageFrame>>,
    free: Vec<Ppn>,
    stats: MemoryStats,
}

impl NodeMemory {
    /// An empty memory; frames are allocated on demand.
    pub fn new() -> Self {
        NodeMemory::default()
    }

    /// Allocates a zeroed frame (tags all `Invalid`) and returns its
    /// physical page number.
    pub fn alloc(&mut self) -> Ppn {
        let ppn = match self.free.pop() {
            Some(ppn) => {
                self.frames[ppn.0 as usize] = Some(PageFrame::default());
                ppn
            }
            None => {
                self.frames.push(Some(PageFrame::default()));
                Ppn(self.frames.len() as u64 - 1)
            }
        };
        self.stats.allocated += 1;
        self.stats.peak_allocated = self.stats.peak_allocated.max(self.stats.allocated);
        ppn
    }

    /// Frees a frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not allocated.
    pub fn free(&mut self, ppn: Ppn) {
        let slot = self
            .frames
            .get_mut(ppn.0 as usize)
            .expect("free of out-of-range frame");
        assert!(slot.is_some(), "double free of {ppn:?}");
        *slot = None;
        self.free.push(ppn);
        self.stats.allocated -= 1;
    }

    /// The frame at `ppn`.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not allocated.
    pub fn frame(&self, ppn: Ppn) -> &PageFrame {
        self.frames
            .get(ppn.0 as usize)
            .and_then(Option::as_ref)
            .expect("access to unallocated frame")
    }

    /// Mutable access to the frame at `ppn`.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not allocated.
    pub fn frame_mut(&mut self, ppn: Ppn) -> &mut PageFrame {
        self.frames
            .get_mut(ppn.0 as usize)
            .and_then(Option::as_mut)
            .expect("access to unallocated frame")
    }

    /// Whether `ppn` is currently allocated.
    pub fn is_allocated(&self, ppn: Ppn) -> bool {
        self.frames
            .get(ppn.0 as usize)
            .map(Option::is_some)
            .unwrap_or(false)
    }

    /// Reads the 64-bit word at a word-aligned physical address.
    pub fn read_word(&self, addr: PAddr) -> u64 {
        let frame = self.frame(addr.page());
        let off = addr.page_offset() as usize;
        debug_assert_eq!(off % WORD_BYTES, 0, "unaligned word read at {addr}");
        u64::from_le_bytes(frame.data[off..off + WORD_BYTES].try_into().unwrap())
    }

    /// Writes the 64-bit word at a word-aligned physical address.
    pub fn write_word(&mut self, addr: PAddr, value: u64) {
        let frame = self.frame_mut(addr.page());
        let off = addr.page_offset() as usize;
        debug_assert_eq!(off % WORD_BYTES, 0, "unaligned word write at {addr}");
        frame.data[off..off + WORD_BYTES].copy_from_slice(&value.to_le_bytes());
    }

    /// Copies out the 32-byte block containing `addr`.
    pub fn read_block(&self, addr: PAddr) -> [u8; BLOCK_BYTES] {
        let frame = self.frame(addr.page());
        let off = addr.block_base().page_offset() as usize;
        frame.data[off..off + BLOCK_BYTES].try_into().unwrap()
    }

    /// Overwrites the 32-byte block containing `addr`.
    pub fn write_block(&mut self, addr: PAddr, block: &[u8; BLOCK_BYTES]) {
        let frame = self.frame_mut(addr.page());
        let off = addr.block_base().page_offset() as usize;
        frame.data[off..off + BLOCK_BYTES].copy_from_slice(block);
    }

    /// The tag of the block containing `addr`.
    pub fn tag(&self, addr: PAddr) -> Tag {
        self.frame(addr.page()).tag(addr.block_in_page())
    }

    /// Sets the tag of the block containing `addr`.
    pub fn set_tag(&mut self, addr: PAddr, tag: Tag) {
        self.frame_mut(addr.page()).set_tag(addr.block_in_page(), tag);
    }

    /// Current allocation statistics.
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }

    /// Bytes currently allocated (frames × page size).
    pub fn allocated_bytes(&self) -> usize {
        self.stats.allocated * PAGE_BYTES
    }
}

/// Charges for a memory access path; a convenience used by machines when
/// composing Table 2 latencies.
pub fn miss_cost(tlb_hit: bool, tlb_miss: Cycles, local_miss: Cycles) -> Cycles {
    if tlb_hit {
        local_miss
    } else {
        tlb_miss + local_miss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_reuses_frames() {
        let mut m = NodeMemory::new();
        let a = m.alloc();
        let b = m.alloc();
        assert_ne!(a, b);
        m.free(a);
        let c = m.alloc();
        assert_eq!(a, c, "freed frame is reused");
        assert_eq!(m.stats().allocated, 2);
        assert_eq!(m.stats().peak_allocated, 2);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut m = NodeMemory::new();
        let a = m.alloc();
        m.free(a);
        m.free(a);
    }

    #[test]
    fn words_round_trip() {
        let mut m = NodeMemory::new();
        let p = m.alloc();
        let addr = p.base().offset(16);
        m.write_word(addr, 0xDEAD_BEEF_0BAD_F00D);
        assert_eq!(m.read_word(addr), 0xDEAD_BEEF_0BAD_F00D);
        // Neighboring word untouched.
        assert_eq!(m.read_word(p.base().offset(8)), 0);
    }

    #[test]
    fn blocks_round_trip_and_carry_words() {
        let mut m = NodeMemory::new();
        let p = m.alloc();
        let addr = p.base().offset(64); // block 2
        m.write_word(addr.offset(8), 42);
        let block = m.read_block(addr);
        let mut m2 = NodeMemory::new();
        let q = m2.alloc();
        m2.write_block(q.base().offset(64), &block);
        assert_eq!(m2.read_word(q.base().offset(72)), 42);
    }

    #[test]
    fn tags_default_invalid_and_update() {
        let mut m = NodeMemory::new();
        let p = m.alloc();
        let addr = p.base().offset(96);
        assert_eq!(m.tag(addr), Tag::Invalid);
        m.set_tag(addr, Tag::ReadOnly);
        assert_eq!(m.tag(addr), Tag::ReadOnly);
        // Other blocks unaffected.
        assert_eq!(m.tag(p.base()), Tag::Invalid);
    }

    #[test]
    fn set_all_tags() {
        let mut f = PageFrame::default();
        f.set_all_tags(Tag::ReadWrite);
        assert!(f.tags().all(|(_, t)| t == Tag::ReadWrite));
    }

    #[test]
    fn freed_frame_contents_are_reset() {
        let mut m = NodeMemory::new();
        let p = m.alloc();
        m.write_word(p.base(), 7);
        m.set_tag(p.base(), Tag::ReadWrite);
        m.free(p);
        let q = m.alloc();
        assert_eq!(q, p);
        assert_eq!(m.read_word(q.base()), 0);
        assert_eq!(m.tag(q.base()), Tag::Invalid);
    }

    #[test]
    fn meta_is_mutable() {
        let mut m = NodeMemory::new();
        let p = m.alloc();
        m.frame_mut(p).meta = PageMeta {
            vpn: Some(Vpn(5)),
            mode: 3,
            user: [11, 22],
        };
        assert_eq!(m.frame(p).meta.vpn, Some(Vpn(5)));
        assert_eq!(m.frame(p).meta.user[1], 22);
    }

    #[test]
    fn miss_cost_composition() {
        assert_eq!(
            miss_cost(false, Cycles::new(25), Cycles::new(29)),
            Cycles::new(54)
        );
        assert_eq!(
            miss_cost(true, Cycles::new(25), Cycles::new(29)),
            Cycles::new(29)
        );
    }
}
