//! Fine-grain access-control tags (paper Section 2.4).
//!
//! Every aligned 32-byte memory block carries an access tag. Loads and
//! stores are checked against the tag; a disallowed access is a *block
//! access fault* that suspends the computation thread and invokes a
//! user-level handler. These tags are the mechanism that makes user-level
//! transparent shared memory (Stache) possible.

use std::fmt;

/// The access tag of one memory block.
///
/// `ReadWrite`, `ReadOnly` and `Invalid` are the Tempest-visible values
/// (Table 1). `Busy` is Typhoon's fourth RTLB encoding (Section 5.4): it
/// faults exactly like `Invalid`, but lets protocol software distinguish
/// blocks that need special handling, e.g. blocks with a request already
/// outstanding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Tag {
    /// Reads and writes complete normally.
    ReadWrite,
    /// Reads complete; writes fault.
    ReadOnly,
    /// All accesses fault.
    #[default]
    Invalid,
    /// Same access semantics as [`Tag::Invalid`]; distinguishable by
    /// protocol software (e.g. "request outstanding").
    Busy,
}

impl Tag {
    /// Whether an access of the given kind completes without a fault.
    #[inline]
    pub fn permits(self, kind: AccessKind) -> bool {
        matches!(
            (self, kind),
            (Tag::ReadWrite, _) | (Tag::ReadOnly, AccessKind::Load)
        )
    }

    /// Whether this tag faults like `Invalid` (i.e. is `Invalid` or `Busy`).
    #[inline]
    pub fn is_invalid_like(self) -> bool {
        matches!(self, Tag::Invalid | Tag::Busy)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tag::ReadWrite => "RW",
            Tag::ReadOnly => "RO",
            Tag::Invalid => "INV",
            Tag::Busy => "BUSY",
        };
        f.write_str(s)
    }
}

/// The kind of a tag-checked memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A processor load (Tempest `read`).
    Load,
    /// A processor store (Tempest `write`).
    Store,
}

impl AccessKind {
    /// Whether the access is a store.
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permission_matrix_matches_section_2_4() {
        use AccessKind::*;
        assert!(Tag::ReadWrite.permits(Load));
        assert!(Tag::ReadWrite.permits(Store));
        assert!(Tag::ReadOnly.permits(Load));
        assert!(!Tag::ReadOnly.permits(Store));
        assert!(!Tag::Invalid.permits(Load));
        assert!(!Tag::Invalid.permits(Store));
        assert!(!Tag::Busy.permits(Load));
        assert!(!Tag::Busy.permits(Store));
    }

    #[test]
    fn busy_faults_like_invalid_but_is_distinguishable() {
        assert!(Tag::Busy.is_invalid_like());
        assert!(Tag::Invalid.is_invalid_like());
        assert!(!Tag::ReadOnly.is_invalid_like());
        assert_ne!(Tag::Busy, Tag::Invalid);
    }

    #[test]
    fn default_is_invalid() {
        assert_eq!(Tag::default(), Tag::Invalid);
    }

    #[test]
    fn display_is_short() {
        assert_eq!(Tag::ReadWrite.to_string(), "RW");
        assert_eq!(Tag::Busy.to_string(), "BUSY");
    }
}
