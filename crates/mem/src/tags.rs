//! Fine-grain access-control tags (paper Section 2.4).
//!
//! Every aligned 32-byte memory block carries an access tag. Loads and
//! stores are checked against the tag; a disallowed access is a *block
//! access fault* that suspends the computation thread and invokes a
//! user-level handler. These tags are the mechanism that makes user-level
//! transparent shared memory (Stache) possible.

use std::fmt;

/// The access tag of one memory block.
///
/// `ReadWrite`, `ReadOnly` and `Invalid` are the Tempest-visible values
/// (Table 1). `Busy` is Typhoon's fourth RTLB encoding (Section 5.4): it
/// faults exactly like `Invalid`, but lets protocol software distinguish
/// blocks that need special handling, e.g. blocks with a request already
/// outstanding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Tag {
    /// Reads and writes complete normally.
    ReadWrite,
    /// Reads complete; writes fault.
    ReadOnly,
    /// All accesses fault.
    #[default]
    Invalid,
    /// Same access semantics as [`Tag::Invalid`]; distinguishable by
    /// protocol software (e.g. "request outstanding").
    Busy,
}

impl Tag {
    /// The 2-bit RTLB encoding of this tag. `Invalid` is zero so a
    /// freshly zeroed tag word means "everything faults", matching the
    /// hardware's power-on state and [`PackedTags::default`].
    #[inline]
    pub const fn code(self) -> u64 {
        match self {
            Tag::Invalid => 0,
            Tag::ReadOnly => 1,
            Tag::ReadWrite => 2,
            Tag::Busy => 3,
        }
    }

    /// Decodes a 2-bit RTLB encoding (inverse of [`Tag::code`]).
    #[inline]
    pub const fn from_code(code: u64) -> Tag {
        match code & 0b11 {
            0 => Tag::Invalid,
            1 => Tag::ReadOnly,
            2 => Tag::ReadWrite,
            _ => Tag::Busy,
        }
    }

    /// Whether an access of the given kind completes without a fault.
    #[inline]
    pub fn permits(self, kind: AccessKind) -> bool {
        matches!(
            (self, kind),
            (Tag::ReadWrite, _) | (Tag::ReadOnly, AccessKind::Load)
        )
    }

    /// Whether this tag faults like `Invalid` (i.e. is `Invalid` or `Busy`).
    #[inline]
    pub fn is_invalid_like(self) -> bool {
        matches!(self, Tag::Invalid | Tag::Busy)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tag::ReadWrite => "RW",
            Tag::ReadOnly => "RO",
            Tag::Invalid => "INV",
            Tag::Busy => "BUSY",
        };
        f.write_str(s)
    }
}

/// Number of `u64` words holding one page's worth of 2-bit block tags.
pub const TAG_WORDS: usize = tt_base::addr::BLOCKS_PER_PAGE / BLOCKS_PER_WORD;

/// Blocks whose tags fit in one `u64` (2 bits each).
const BLOCKS_PER_WORD: usize = 32;

/// Replicates a 2-bit tag code across all 32 lanes of a word.
#[inline]
const fn splat(tag: Tag) -> u64 {
    tag.code() * 0x5555_5555_5555_5555
}

/// One page's block tags, packed 2 bits per block — the RTLB's tag-array
/// layout (Section 5.4) rather than one byte-sized enum per block.
///
/// Beyond the 4× space saving, packing buys two O(1) page-granule
/// operations the direct-execution run loop leans on:
///
/// - [`PackedTags::set_all`] stores [`TAG_WORDS`] splatted words instead
///   of looping over 128 blocks, and
/// - [`PackedTags::uniform`] answers "does every block on this page carry
///   tag T?" with one comparison, maintained exactly across single-block
///   updates by re-checking the words against the splat pattern.
///
/// # Example
///
/// ```
/// use tt_mem::tags::{PackedTags, Tag};
///
/// let mut tags = PackedTags::default();
/// assert_eq!(tags.uniform(), Some(Tag::Invalid));
/// tags.set(5, Tag::ReadWrite);
/// assert_eq!(tags.get(5), Tag::ReadWrite);
/// assert_eq!(tags.uniform(), None);
/// tags.set_all(Tag::ReadOnly);
/// assert_eq!(tags.uniform(), Some(Tag::ReadOnly));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PackedTags {
    words: [u64; TAG_WORDS],
    /// `Some(t)` iff every block currently carries tag `t`.
    uniform: Option<Tag>,
}

impl Default for PackedTags {
    /// All blocks `Invalid` (the all-zero bit pattern).
    fn default() -> Self {
        PackedTags {
            words: [0; TAG_WORDS],
            uniform: Some(Tag::Invalid),
        }
    }
}

impl PackedTags {
    /// The tag of block `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn get(&self, idx: usize) -> Tag {
        let word = self.words[idx / BLOCKS_PER_WORD];
        Tag::from_code(word >> (2 * (idx % BLOCKS_PER_WORD)))
    }

    /// Sets the tag of block `idx`, maintaining the uniform summary.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn set(&mut self, idx: usize, tag: Tag) {
        let shift = 2 * (idx % BLOCKS_PER_WORD);
        let word = &mut self.words[idx / BLOCKS_PER_WORD];
        *word = (*word & !(0b11 << shift)) | (tag.code() << shift);
        self.uniform = if self.words == [splat(tag); TAG_WORDS] {
            Some(tag)
        } else {
            None
        };
    }

    /// Sets every block's tag in O(1) word stores.
    #[inline]
    pub fn set_all(&mut self, tag: Tag) {
        self.words = [splat(tag); TAG_WORDS];
        self.uniform = Some(tag);
    }

    /// The tag carried by *every* block, or `None` if the page is mixed.
    #[inline]
    pub fn uniform(&self) -> Option<Tag> {
        self.uniform
    }

    /// Iterates over `(block_index, tag)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Tag)> + '_ {
        (0..TAG_WORDS * BLOCKS_PER_WORD).map(|i| (i, self.get(i)))
    }
}

/// The kind of a tag-checked memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A processor load (Tempest `read`).
    Load,
    /// A processor store (Tempest `write`).
    Store,
}

impl AccessKind {
    /// Whether the access is a store.
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permission_matrix_matches_section_2_4() {
        use AccessKind::*;
        assert!(Tag::ReadWrite.permits(Load));
        assert!(Tag::ReadWrite.permits(Store));
        assert!(Tag::ReadOnly.permits(Load));
        assert!(!Tag::ReadOnly.permits(Store));
        assert!(!Tag::Invalid.permits(Load));
        assert!(!Tag::Invalid.permits(Store));
        assert!(!Tag::Busy.permits(Load));
        assert!(!Tag::Busy.permits(Store));
    }

    #[test]
    fn busy_faults_like_invalid_but_is_distinguishable() {
        assert!(Tag::Busy.is_invalid_like());
        assert!(Tag::Invalid.is_invalid_like());
        assert!(!Tag::ReadOnly.is_invalid_like());
        assert_ne!(Tag::Busy, Tag::Invalid);
    }

    #[test]
    fn default_is_invalid() {
        assert_eq!(Tag::default(), Tag::Invalid);
    }

    #[test]
    fn display_is_short() {
        assert_eq!(Tag::ReadWrite.to_string(), "RW");
        assert_eq!(Tag::Busy.to_string(), "BUSY");
    }

    #[test]
    fn codes_round_trip() {
        for t in [Tag::ReadWrite, Tag::ReadOnly, Tag::Invalid, Tag::Busy] {
            assert_eq!(Tag::from_code(t.code()), t);
        }
        assert_eq!(Tag::Invalid.code(), 0, "zeroed tag words mean Invalid");
    }

    #[test]
    fn packed_tags_match_a_byte_array_model() {
        let mut packed = PackedTags::default();
        let mut model = [Tag::Invalid; tt_base::addr::BLOCKS_PER_PAGE];
        // Deterministic pseudo-random update sequence.
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..4096 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let idx = (x as usize >> 8) % model.len();
            let tag = Tag::from_code(x);
            packed.set(idx, tag);
            model[idx] = tag;
            assert_eq!(packed.get(idx), tag);
        }
        for (i, t) in packed.iter() {
            assert_eq!(t, model[i], "block {i}");
        }
    }

    #[test]
    fn uniform_summary_is_exact() {
        let mut p = PackedTags::default();
        assert_eq!(p.uniform(), Some(Tag::Invalid));
        p.set(0, Tag::ReadWrite);
        assert_eq!(p.uniform(), None);
        // Returning the block to Invalid restores uniformity.
        p.set(0, Tag::Invalid);
        assert_eq!(p.uniform(), Some(Tag::Invalid));
        p.set_all(Tag::ReadWrite);
        assert_eq!(p.uniform(), Some(Tag::ReadWrite));
        // Making every block Busy one at a time ends uniform.
        for i in 0..tt_base::addr::BLOCKS_PER_PAGE {
            p.set(i, Tag::Busy);
        }
        assert_eq!(p.uniform(), Some(Tag::Busy));
    }

    #[test]
    fn last_block_in_frame_is_addressable() {
        let last = tt_base::addr::BLOCKS_PER_PAGE - 1;
        let mut p = PackedTags::default();
        p.set(last, Tag::ReadWrite);
        assert_eq!(p.get(last), Tag::ReadWrite);
        // The top word's high lanes hold it; its neighbors are untouched.
        assert_eq!(p.get(last - 1), Tag::Invalid);
        assert_eq!(p.uniform(), None);
        assert_eq!(p.iter().filter(|&(_, t)| t == Tag::ReadWrite).count(), 1);
        p.set(last, Tag::Invalid);
        assert_eq!(p.uniform(), Some(Tag::Invalid));
    }

    #[test]
    fn single_block_downgrade_after_set_all_clears_uniform_summary() {
        for victim in [0, 31, 32, 63, 64, tt_base::addr::BLOCKS_PER_PAGE - 1] {
            let mut p = PackedTags::default();
            p.set_all(Tag::ReadWrite);
            assert_eq!(p.uniform(), Some(Tag::ReadWrite));
            p.set(victim, Tag::ReadOnly);
            assert_eq!(p.uniform(), None, "victim {victim}");
            assert_eq!(p.get(victim), Tag::ReadOnly);
            // Every other block still reads back ReadWrite.
            for (i, t) in p.iter() {
                if i != victim {
                    assert_eq!(t, Tag::ReadWrite, "block {i} after downgrading {victim}");
                }
            }
            // Restoring the victim restores the summary.
            p.set(victim, Tag::ReadWrite);
            assert_eq!(p.uniform(), Some(Tag::ReadWrite), "victim {victim}");
        }
    }

    #[test]
    fn every_tag_round_trips_at_every_block_index() {
        for tag in [Tag::ReadWrite, Tag::ReadOnly, Tag::Invalid, Tag::Busy] {
            for idx in 0..tt_base::addr::BLOCKS_PER_PAGE {
                let mut p = PackedTags::default();
                p.set(idx, tag);
                assert_eq!(p.get(idx), tag, "tag {tag} at block {idx}");
                // Word-boundary neighbors must be unaffected.
                if idx > 0 {
                    assert_eq!(p.get(idx - 1), Tag::Invalid);
                }
                if idx + 1 < tt_base::addr::BLOCKS_PER_PAGE {
                    assert_eq!(p.get(idx + 1), Tag::Invalid);
                }
            }
        }
    }
}
