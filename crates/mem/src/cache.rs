//! A set-associative cache timing model with random replacement.
//!
//! Used for the primary CPU's data cache (Table 2: 4-way associative,
//! random replacement, 32-byte blocks, 4 KB – 256 KB) and for the NP's
//! data cache (16 KB, 2-way). The model is timing-only: it tracks which
//! block addresses are resident and whether each line is held *owned*
//! (exclusive/dirty — writes hit silently) or *shared* (writes require a
//! bus transaction the NP or directory can observe). Data bytes live in
//! [`crate::memory::NodeMemory`].

use tt_base::stats::Counter;
use tt_base::DetRng;

/// Result of probing the cache for a block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Probe {
    /// The block is resident and the line is held owned (writable).
    HitOwned,
    /// The block is resident but shared: reads hit, writes need a bus
    /// upgrade transaction.
    HitShared,
    /// The block is not resident.
    Miss,
}

impl Probe {
    /// Whether the probe found the block at all.
    #[inline]
    pub fn is_hit(self) -> bool {
        !matches!(self, Probe::Miss)
    }
}

/// A line evicted to make room for a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// Block address (in block-granule units) of the victim.
    pub block: u64,
    /// Whether the victim was held owned (i.e. needs a writeback).
    pub owned: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Line {
    block: u64,
    owned: bool,
}

/// Cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes that hit.
    pub hits: Counter,
    /// Probes that missed.
    pub misses: Counter,
    /// Fills that evicted a valid line.
    pub evictions: Counter,
    /// Evictions of owned (dirty) lines.
    pub writebacks: Counter,
}

/// A set-associative, random-replacement cache keyed by block address.
///
/// Block addresses are `u64` block numbers (byte address / block size);
/// the caller chooses the address space (physical for the CPU cache,
/// synthetic directory-structure addresses for the NP cache).
///
/// # Example
///
/// ```
/// use tt_mem::cache::{CacheModel, Probe};
/// use tt_base::DetRng;
///
/// let mut cache = CacheModel::new(4096, 4, 32, DetRng::new(1));
/// assert_eq!(cache.probe(42), Probe::Miss);
/// cache.fill(42, /* owned */ false);
/// assert_eq!(cache.probe(42), Probe::HitShared);
/// ```
#[derive(Clone, Debug)]
pub struct CacheModel {
    sets: Vec<Vec<Line>>,
    assoc: usize,
    set_mask: u64,
    rng: DetRng,
    stats: CacheStats,
}

impl CacheModel {
    /// Creates a cache of `capacity_bytes` with the given associativity and
    /// block size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes) or the number of
    /// sets is not a power of two.
    pub fn new(capacity_bytes: usize, assoc: usize, block_bytes: usize, rng: DetRng) -> Self {
        assert!(capacity_bytes > 0 && assoc > 0 && block_bytes > 0);
        let lines = capacity_bytes / block_bytes;
        assert!(lines >= assoc, "cache smaller than one set");
        let nsets = lines / assoc;
        assert!(nsets.is_power_of_two(), "set count {nsets} not a power of two");
        CacheModel {
            sets: vec![Vec::with_capacity(assoc); nsets],
            assoc,
            set_mask: (nsets - 1) as u64,
            rng,
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn set_of(&self, block: u64) -> usize {
        (block & self.set_mask) as usize
    }

    /// Looks up a block, updating hit/miss statistics.
    pub fn probe(&mut self, block: u64) -> Probe {
        let set = self.set_of(block);
        for line in &self.sets[set] {
            if line.block == block {
                self.stats.hits.inc();
                return if line.owned {
                    Probe::HitOwned
                } else {
                    Probe::HitShared
                };
            }
        }
        self.stats.misses.inc();
        Probe::Miss
    }

    /// Looks up a block without touching statistics (for assertions).
    pub fn peek(&self, block: u64) -> Probe {
        let set = self.set_of(block);
        for line in &self.sets[set] {
            if line.block == block {
                return if line.owned {
                    Probe::HitOwned
                } else {
                    Probe::HitShared
                };
            }
        }
        Probe::Miss
    }

    /// Installs a block after a miss, choosing a random victim if the set
    /// is full. Returns the evicted line, if any.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the block is already resident (fills must
    /// follow misses).
    pub fn fill(&mut self, block: u64, owned: bool) -> Option<Evicted> {
        debug_assert_eq!(self.peek(block), Probe::Miss, "fill of resident block");
        let assoc = self.assoc;
        let set_idx = self.set_of(block);
        let evicted = if self.sets[set_idx].len() >= assoc {
            let victim = self.rng.below_usize(assoc);
            let set = &mut self.sets[set_idx];
            let old = set.swap_remove(victim);
            self.stats.evictions.inc();
            if old.owned {
                self.stats.writebacks.inc();
            }
            Some(Evicted {
                block: old.block,
                owned: old.owned,
            })
        } else {
            None
        };
        self.sets[set_idx].push(Line { block, owned });
        evicted
    }

    /// Changes the ownership state of a resident line (upgrade/downgrade).
    /// Returns `false` if the block is not resident.
    pub fn set_owned(&mut self, block: u64, owned: bool) -> bool {
        let set = self.set_of(block);
        for line in &mut self.sets[set] {
            if line.block == block {
                line.owned = owned;
                return true;
            }
        }
        false
    }

    /// Removes a block. Returns `true` if it was resident.
    pub fn invalidate(&mut self, block: u64) -> bool {
        let set_idx = self.set_of(block);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|l| l.block == block) {
            set.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Removes every block of the given 4 KB page (used when a stache page
    /// is re-purposed). `page_blocks` is the block-number range of the page.
    pub fn invalidate_range(&mut self, blocks: std::ops::Range<u64>) -> usize {
        let mut n = 0;
        for b in blocks {
            if self.invalidate(b) {
                n += 1;
            }
        }
        n
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of resident lines (for tests).
    pub fn resident(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(cap: usize, assoc: usize) -> CacheModel {
        CacheModel::new(cap, assoc, 32, DetRng::new(1))
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = cache(4096, 4);
        assert_eq!(c.probe(100), Probe::Miss);
        assert_eq!(c.fill(100, false), None);
        assert_eq!(c.probe(100), Probe::HitShared);
        c.set_owned(100, true);
        assert_eq!(c.probe(100), Probe::HitOwned);
        assert_eq!(c.stats().hits.get(), 2);
        assert_eq!(c.stats().misses.get(), 1);
    }

    #[test]
    fn full_set_evicts_exactly_one() {
        let mut c = cache(4096, 4); // 32 sets
        let set_stride = 32; // blocks mapping to the same set differ by nsets
        for i in 0..4 {
            assert!(c.fill(i * set_stride, false).is_none());
        }
        let ev = c.fill(4 * set_stride, true).expect("set full, must evict");
        assert_eq!(ev.block % set_stride, 0);
        assert!(!ev.owned);
        assert_eq!(c.resident(), 4);
        assert_eq!(c.stats().evictions.get(), 1);
        assert_eq!(c.stats().writebacks.get(), 0);
    }

    #[test]
    fn owned_eviction_counts_writeback() {
        let mut c = cache(128, 4); // single set of 4
        for i in 0..4 {
            c.fill(i, true);
        }
        c.fill(9, false);
        assert_eq!(c.stats().writebacks.get(), 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = cache(4096, 4);
        c.fill(7, true);
        assert!(c.invalidate(7));
        assert!(!c.invalidate(7));
        assert_eq!(c.probe(7), Probe::Miss);
    }

    #[test]
    fn invalidate_range_clears_page() {
        let mut c = cache(64 * 1024, 4);
        for b in 0..128u64 {
            c.fill(b, false);
        }
        assert_eq!(c.invalidate_range(0..128), 128);
        assert_eq!(c.resident(), 0);
    }

    #[test]
    fn set_owned_on_absent_block_is_false() {
        let mut c = cache(4096, 4);
        assert!(!c.set_owned(3, true));
    }

    #[test]
    fn peek_does_not_count() {
        let mut c = cache(4096, 4);
        c.peek(5);
        assert_eq!(c.stats().misses.get(), 0);
        assert_eq!(c.probe(5), Probe::Miss);
        assert_eq!(c.stats().misses.get(), 1);
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = cache(256, 4); // 2 sets
        // Blocks 0,2,4,6 -> set 0; 1,3,5,7 -> set 1.
        for b in [0u64, 2, 4, 6, 1, 3, 5, 7] {
            assert!(c.fill(b, false).is_none());
        }
        assert_eq!(c.resident(), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        CacheModel::new(96, 1, 32, DetRng::new(0));
    }
}
