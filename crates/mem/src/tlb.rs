//! A fully-associative FIFO TLB timing model.
//!
//! Table 2 gives all three translation structures — the CPU TLB, the NP
//! TLB, and the reverse TLB (RTLB) — the same organization: 64 entries,
//! fully associative, FIFO replacement, 25-cycle miss. [`FifoTlb`] models
//! any of them; it is generic over the key (virtual page number for the
//! forward TLBs, physical page number for the RTLB).
//!
//! Like the cache model, this is timing-only: translations and RTLB entry
//! contents are always read from the functional state in
//! [`crate::ptable::PageTable`] / [`crate::memory::NodeMemory`]; the TLB
//! decides only whether the 25-cycle miss penalty applies.

use std::collections::VecDeque;
use std::hash::Hash;

use tt_base::stats::Counter;
use tt_base::FxHashSet;

/// TLB statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Accesses that hit.
    pub hits: Counter,
    /// Accesses that missed (and loaded the entry).
    pub misses: Counter,
}

/// A fully-associative, FIFO-replacement TLB over keys of type `K`.
///
/// # Example
///
/// ```
/// use tt_mem::FifoTlb;
/// use tt_base::addr::Vpn;
///
/// let mut tlb = FifoTlb::new(64);
/// assert!(!tlb.access(Vpn(7)), "first touch misses");
/// assert!(tlb.access(Vpn(7)), "now resident");
/// ```
#[derive(Clone, Debug)]
pub struct FifoTlb<K> {
    /// Entries in fill order; the front is the next FIFO victim.
    entries: VecDeque<K>,
    /// Residency index so the per-access membership test is O(1) instead
    /// of a scan over all 64 entries. Always mirrors `entries`.
    resident: FxHashSet<K>,
    /// The key of the most recent hit or fill — consecutive accesses to
    /// the same page skip even the hash probe. `None` or stale-free:
    /// cleared whenever its entry could have left the TLB.
    last: Option<K>,
    capacity: usize,
    stats: TlbStats,
}

impl<K: Eq + Hash + Copy> FifoTlb<K> {
    /// Creates a TLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        FifoTlb {
            entries: VecDeque::with_capacity(capacity),
            resident: FxHashSet::default(),
            last: None,
            capacity,
            stats: TlbStats::default(),
        }
    }

    /// Accesses `key`: returns `true` on a hit. On a miss the entry is
    /// loaded, evicting the oldest entry if the TLB is full (FIFO), and
    /// `false` is returned so the caller can charge the miss penalty.
    pub fn access(&mut self, key: K) -> bool {
        if self.last == Some(key) {
            self.stats.hits.inc();
            return true;
        }
        if self.resident.contains(&key) {
            self.stats.hits.inc();
            self.last = Some(key);
            true
        } else {
            self.stats.misses.inc();
            if self.entries.len() == self.capacity {
                let victim = self.entries.pop_front().expect("TLB is full");
                self.resident.remove(&victim);
            }
            self.entries.push_back(key);
            self.resident.insert(key);
            self.last = Some(key);
            false
        }
    }

    /// Whether `key` is currently resident (no statistics, no fill).
    pub fn contains(&self, key: K) -> bool {
        self.resident.contains(&key)
    }

    /// Removes `key` (e.g. on unmap/remap). Returns `true` if present.
    pub fn flush(&mut self, key: K) -> bool {
        if self.last == Some(key) {
            self.last = None;
        }
        if self.resident.remove(&key) {
            let pos = self
                .entries
                .iter()
                .position(|e| *e == key)
                .expect("residency index mirrors entries");
            self.entries.remove(pos);
            true
        } else {
            false
        }
    }

    /// Removes every entry.
    pub fn flush_all(&mut self) {
        self.entries.clear();
        self.resident.clear();
        self.last = None;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Current number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_base::addr::Vpn;

    #[test]
    fn hit_after_fill() {
        let mut t = FifoTlb::new(4);
        assert!(!t.access(Vpn(1)));
        assert!(t.access(Vpn(1)));
        assert_eq!(t.stats().hits.get(), 1);
        assert_eq!(t.stats().misses.get(), 1);
    }

    #[test]
    fn fifo_evicts_oldest() {
        let mut t = FifoTlb::new(3);
        t.access(Vpn(1));
        t.access(Vpn(2));
        t.access(Vpn(3));
        // Re-touching 1 must NOT refresh its FIFO position.
        assert!(t.access(Vpn(1)));
        t.access(Vpn(4)); // evicts 1 (oldest by insertion)
        assert!(!t.contains(Vpn(1)));
        assert!(t.contains(Vpn(2)));
        assert!(t.contains(Vpn(3)));
        assert!(t.contains(Vpn(4)));
    }

    #[test]
    fn flush_removes_entry() {
        let mut t = FifoTlb::new(2);
        t.access(Vpn(9));
        assert!(t.flush(Vpn(9)));
        assert!(!t.flush(Vpn(9)));
        assert!(!t.contains(Vpn(9)));
    }

    #[test]
    fn flush_all_empties() {
        let mut t = FifoTlb::new(2);
        t.access(Vpn(1));
        t.access(Vpn(2));
        t.flush_all();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn capacity_is_respected() {
        let mut t = FifoTlb::new(64);
        for i in 0..100u64 {
            t.access(Vpn(i));
        }
        assert_eq!(t.len(), 64);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        FifoTlb::<Vpn>::new(0);
    }
}
