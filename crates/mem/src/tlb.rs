//! A fully-associative FIFO TLB timing model.
//!
//! Table 2 gives all three translation structures — the CPU TLB, the NP
//! TLB, and the reverse TLB (RTLB) — the same organization: 64 entries,
//! fully associative, FIFO replacement, 25-cycle miss. [`FifoTlb`] models
//! any of them; it is generic over the key (virtual page number for the
//! forward TLBs, physical page number for the RTLB).
//!
//! Like the cache model, this is timing-only: translations and RTLB entry
//! contents are always read from the functional state in
//! [`crate::ptable::PageTable`] / [`crate::memory::NodeMemory`]; the TLB
//! decides only whether the 25-cycle miss penalty applies.

use std::collections::VecDeque;
use std::hash::Hash;

use tt_base::stats::Counter;

/// TLB statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Accesses that hit.
    pub hits: Counter,
    /// Accesses that missed (and loaded the entry).
    pub misses: Counter,
}

/// A fully-associative, FIFO-replacement TLB over keys of type `K`.
///
/// # Example
///
/// ```
/// use tt_mem::FifoTlb;
/// use tt_base::addr::Vpn;
///
/// let mut tlb = FifoTlb::new(64);
/// assert!(!tlb.access(Vpn(7)), "first touch misses");
/// assert!(tlb.access(Vpn(7)), "now resident");
/// ```
#[derive(Clone, Debug)]
pub struct FifoTlb<K> {
    entries: VecDeque<K>,
    capacity: usize,
    stats: TlbStats,
}

impl<K: Eq + Hash + Copy> FifoTlb<K> {
    /// Creates a TLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        FifoTlb {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            stats: TlbStats::default(),
        }
    }

    /// Accesses `key`: returns `true` on a hit. On a miss the entry is
    /// loaded, evicting the oldest entry if the TLB is full (FIFO), and
    /// `false` is returned so the caller can charge the miss penalty.
    pub fn access(&mut self, key: K) -> bool {
        if self.entries.contains(&key) {
            self.stats.hits.inc();
            true
        } else {
            self.stats.misses.inc();
            if self.entries.len() == self.capacity {
                self.entries.pop_front();
            }
            self.entries.push_back(key);
            false
        }
    }

    /// Whether `key` is currently resident (no statistics, no fill).
    pub fn contains(&self, key: K) -> bool {
        self.entries.contains(&key)
    }

    /// Removes `key` (e.g. on unmap/remap). Returns `true` if present.
    pub fn flush(&mut self, key: K) -> bool {
        if let Some(pos) = self.entries.iter().position(|e| *e == key) {
            self.entries.remove(pos);
            true
        } else {
            false
        }
    }

    /// Removes every entry.
    pub fn flush_all(&mut self) {
        self.entries.clear();
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Current number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_base::addr::Vpn;

    #[test]
    fn hit_after_fill() {
        let mut t = FifoTlb::new(4);
        assert!(!t.access(Vpn(1)));
        assert!(t.access(Vpn(1)));
        assert_eq!(t.stats().hits.get(), 1);
        assert_eq!(t.stats().misses.get(), 1);
    }

    #[test]
    fn fifo_evicts_oldest() {
        let mut t = FifoTlb::new(3);
        t.access(Vpn(1));
        t.access(Vpn(2));
        t.access(Vpn(3));
        // Re-touching 1 must NOT refresh its FIFO position.
        assert!(t.access(Vpn(1)));
        t.access(Vpn(4)); // evicts 1 (oldest by insertion)
        assert!(!t.contains(Vpn(1)));
        assert!(t.contains(Vpn(2)));
        assert!(t.contains(Vpn(3)));
        assert!(t.contains(Vpn(4)));
    }

    #[test]
    fn flush_removes_entry() {
        let mut t = FifoTlb::new(2);
        t.access(Vpn(9));
        assert!(t.flush(Vpn(9)));
        assert!(!t.flush(Vpn(9)));
        assert!(!t.contains(Vpn(9)));
    }

    #[test]
    fn flush_all_empties() {
        let mut t = FifoTlb::new(2);
        t.access(Vpn(1));
        t.access(Vpn(2));
        t.flush_all();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn capacity_is_respected() {
        let mut t = FifoTlb::new(64);
        for i in 0..100u64 {
            t.access(Vpn(i));
        }
        assert_eq!(t.len(), 64);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        FifoTlb::<Vpn>::new(0);
    }
}
