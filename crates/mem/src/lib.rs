//! Memory-system models for the Tempest/Typhoon reproduction.
//!
//! Functional state (page contents, access tags, page tables) is held in
//! [`memory::NodeMemory`] and [`ptable::PageTable`]; the cache and TLB
//! models ([`cache::CacheModel`], [`tlb::FifoTlb`]) are *timing* models
//! that decide which accesses hit, which miss, and which generate bus
//! transactions visible to Typhoon's network interface processor.
//!
//! - [`tags`] — the fine-grain access-control tags of Section 2.4
//!   (ReadWrite / ReadOnly / Invalid, plus Typhoon's Busy state);
//! - [`cache`] — a set-associative cache with random replacement and
//!   per-line ownership state (Table 2: 4-way CPU cache, 2-way NP cache);
//! - [`tlb`] — a fully-associative FIFO TLB, reused for the CPU TLB, the
//!   NP TLB, and the reverse TLB (all 64-entry in Table 2);
//! - [`memory`] — a node's paged physical memory carrying real data bytes,
//!   per-block tags, and the per-page metadata Typhoon's RTLB exposes to
//!   handlers (page mode + 48 bits of uninterpreted state);
//! - [`ptable`] — a per-node virtual-to-physical page table.

pub mod cache;
pub mod memory;
pub mod ptable;
pub mod tags;
pub mod tlb;

pub use cache::{CacheModel, Evicted, Probe};
pub use memory::{NodeMemory, PageFrame, PageMeta};
pub use ptable::PageTable;
pub use tags::{AccessKind, Tag};
pub use tlb::FifoTlb;
