//! A per-node virtual-to-physical page table.
//!
//! Tempest's virtual memory management (Section 2.3) lets user-level code
//! explicitly allocate physical pages at chosen virtual addresses in the
//! shared segment, then remap, unmap, or free them. The page table is the
//! functional side of that mechanism; the TLB models in [`crate::tlb`]
//! supply the timing.

use tt_base::addr::{PAddr, Ppn, VAddr, Vpn};
use tt_base::FxHashMap;

/// Error returned when a mapping operation is invalid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapError {
    /// The virtual page is already mapped.
    AlreadyMapped(Vpn),
    /// The virtual page is not mapped.
    NotMapped(Vpn),
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::AlreadyMapped(v) => write!(f, "virtual page {v:?} is already mapped"),
            MapError::NotMapped(v) => write!(f, "virtual page {v:?} is not mapped"),
        }
    }
}

impl std::error::Error for MapError {}

/// A node's page table: `Vpn -> Ppn`.
///
/// # Example
///
/// ```
/// use tt_mem::PageTable;
/// use tt_base::addr::{Ppn, VAddr, Vpn};
///
/// let mut pt = PageTable::new();
/// pt.map(Vpn(5), Ppn(2))?;
/// assert_eq!(pt.translate_addr(VAddr::new(5 * 4096 + 8)),
///            Some(Ppn(2).base().offset(8)));
/// # Ok::<(), tt_mem::ptable::MapError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct PageTable {
    map: FxHashMap<Vpn, Ppn>,
    /// Memoized result of the most recent successful translation —
    /// consecutive accesses to the same page skip the hash lookup.
    /// Invalidated on [`PageTable::unmap`]; `map` never overwrites an
    /// existing entry, so a cached mapping cannot go stale any other way.
    last: std::cell::Cell<Option<(Vpn, Ppn)>>,
}

impl PageTable {
    /// An empty page table.
    pub fn new() -> Self {
        PageTable::default()
    }

    /// Maps `vpn` to `ppn`.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::AlreadyMapped`] if `vpn` already has a mapping;
    /// remapping requires an explicit [`PageTable::unmap`] first, mirroring
    /// the paper's explicit remap operation.
    pub fn map(&mut self, vpn: Vpn, ppn: Ppn) -> Result<(), MapError> {
        match self.map.entry(vpn) {
            std::collections::hash_map::Entry::Occupied(_) => {
                Err(MapError::AlreadyMapped(vpn))
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(ppn);
                Ok(())
            }
        }
    }

    /// Removes the mapping for `vpn`, returning the frame it mapped.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::NotMapped`] if `vpn` has no mapping.
    pub fn unmap(&mut self, vpn: Vpn) -> Result<Ppn, MapError> {
        if matches!(self.last.get(), Some((v, _)) if v == vpn) {
            self.last.set(None);
        }
        self.map.remove(&vpn).ok_or(MapError::NotMapped(vpn))
    }

    /// The frame `vpn` maps to, if any.
    pub fn translate(&self, vpn: Vpn) -> Option<Ppn> {
        if let Some((v, p)) = self.last.get() {
            if v == vpn {
                return Some(p);
            }
        }
        let ppn = self.map.get(&vpn).copied();
        if let Some(p) = ppn {
            self.last.set(Some((vpn, p)));
        }
        ppn
    }

    /// Translates a full virtual address to a physical address.
    pub fn translate_addr(&self, addr: VAddr) -> Option<PAddr> {
        self.translate(addr.page())
            .map(|ppn| ppn.base().offset(addr.page_offset()))
    }

    /// Number of live mappings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(vpn, ppn)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, Ppn)> + '_ {
        self.map.iter().map(|(&v, &p)| (v, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_unmap() {
        let mut pt = PageTable::new();
        pt.map(Vpn(10), Ppn(3)).unwrap();
        assert_eq!(pt.translate(Vpn(10)), Some(Ppn(3)));
        assert_eq!(pt.unmap(Vpn(10)), Ok(Ppn(3)));
        assert_eq!(pt.translate(Vpn(10)), None);
    }

    #[test]
    fn double_map_is_error() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), Ppn(1)).unwrap();
        assert_eq!(pt.map(Vpn(1), Ppn(2)), Err(MapError::AlreadyMapped(Vpn(1))));
    }

    #[test]
    fn unmap_missing_is_error() {
        let mut pt = PageTable::new();
        assert_eq!(pt.unmap(Vpn(9)), Err(MapError::NotMapped(Vpn(9))));
    }

    #[test]
    fn translate_addr_preserves_offset() {
        let mut pt = PageTable::new();
        pt.map(Vpn(2), Ppn(7)).unwrap();
        let va = VAddr::new(2 * 4096 + 1234);
        let pa = pt.translate_addr(va).unwrap();
        assert_eq!(pa.raw(), 7 * 4096 + 1234);
        assert!(pt.translate_addr(VAddr::new(99 * 4096)).is_none());
    }

    #[test]
    fn remap_via_unmap_then_map() {
        let mut pt = PageTable::new();
        pt.map(Vpn(4), Ppn(1)).unwrap();
        let old = pt.unmap(Vpn(4)).unwrap();
        pt.map(Vpn(4), Ppn(2)).unwrap();
        assert_eq!(old, Ppn(1));
        assert_eq!(pt.translate(Vpn(4)), Some(Ppn(2)));
        assert_eq!(pt.len(), 1);
    }
}
