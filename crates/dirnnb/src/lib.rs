//! **DirNNB** — the all-hardware directory-protocol baseline
//! (paper Section 6).
//!
//! The paper compares Typhoon/Stache against "a conventional,
//! all-hardware, directory-based Dir_N NB cache-coherence protocol":
//! a full-map directory (one presence bit per node — `Dir_N`) with no
//! broadcast (`NB`), modeled in the Wisconsin Wind Tunnel with the cost
//! formulas of Table 2:
//!
//! - remote cache miss: `23 + (5|16 if replacement) + network/directory
//!   cost + 34`;
//! - remote cache invalidate: `8 + (5|16 if replacement)`;
//! - directory operation: `16 + 11 if block received + 5 per message
//!   sent + 11 if block sent`.
//!
//! This crate reproduces that model: the same CPU cache/TLB substrate and
//! workload op streams as Typhoon, but coherence handled by a
//! cost-modeled hardware directory at each page's home node rather than
//! by user-level software. Dirty ownership migrates through the home
//! (recall, then grant); invalidations fan out from the home and are
//! acknowledged; shared victims are dropped silently (no-broadcast
//! directories tolerate stale presence bits by acknowledging
//! invalidations for blocks no longer cached).
//!
//! Since DirNNB provides hardware-coherent shared memory, the functional
//! data image is a single global store: loads always observe the current
//! word, and the directory machinery contributes timing (and the cache
//! models decide hit/miss).

pub mod dir;
pub mod machine;

pub use machine::{DirnnbMachine, RunResult};
