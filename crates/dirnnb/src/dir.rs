//! Compact directory state for the hardware DirNNB protocol.
//!
//! The directory used to be a `FxHashMap<u64, DirEntry>` with a 64-bit
//! sharer bitmap, a busy tag, and a deferral queue in every entry — about
//! a hundred heap bytes per touched block, and a hard 64-node ceiling.
//! Big-machine mode (DESIGN.md §11) replaces it with an arena-backed form
//! sized for 1024-node sweeps over millions of blocks:
//!
//! - **Pages.** Entries live in boxed arrays of [`ENTRIES_PER_PAGE`]
//!   eight-byte [`Entry`] slots, keyed by directory page. A directory
//!   page covers exactly one 4 KiB virtual page (128 blocks of 32 bytes),
//!   so pages are naturally disjoint across home nodes — the parallel
//!   simulator's shard directories merge back with a plain map union.
//! - **Inline sharers.** An entry inlines up to [`INLINE_SHARERS`]
//!   sharers as sorted `u16` node ids. Wider sets overflow to a
//!   LimitLESS-style bit-vector in a side map — rare in practice, so the
//!   common-case footprint stays at 8 bytes per block.
//! - **Side busy state.** Busy tags and deferred-request queues are
//!   transient (bounded by outstanding misses), so they live in side maps
//!   keyed by block address instead of fattening every entry.
//!
//! Sharer enumeration is in ascending node order in every representation,
//! matching the old bitmap's bit-scan order exactly — invalidations fan
//! out in the same order, so reported cycles are unchanged.

use std::collections::VecDeque;

use tt_base::addr::{BLOCK_BYTES, PAGE_BYTES};
use tt_base::{FxHashMap, NodeId};

/// What a requester asked the directory for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirReq {
    /// Read (shared) copy.
    Read,
    /// Write (exclusive) copy, data needed.
    Write,
    /// Write permission for a block the requester already holds shared.
    Upgrade,
}

impl DirReq {
    /// Whether the grant must carry the data block.
    pub fn needs_data(self) -> bool {
        !matches!(self, DirReq::Upgrade)
    }
}

/// Why a directory entry is busy (a request is in flight on its behalf).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirBusy {
    /// Invalidations are out; the entry unblocks when all are acked.
    Invalidating {
        /// Acks still outstanding.
        acks_left: usize,
        /// The requester to grant once acks drain.
        to: NodeId,
        /// The request being satisfied.
        req: DirReq,
    },
    /// A recall (flush/downgrade) is out to the exclusive owner.
    Recalling {
        /// The current exclusive owner.
        owner: NodeId,
        /// The requester to grant once the data returns.
        to: NodeId,
        /// The request being satisfied.
        req: DirReq,
    },
}

/// The sharing state of one block, as the protocol engine sees it. The
/// sharer set itself is queried through [`Directory::sharers_except`] /
/// [`Directory::has_other_sharers`] rather than carried in the view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirView {
    /// No cached copies.
    Uncached,
    /// One or more read-only copies.
    Shared,
    /// A single exclusive (writable) copy at the named node.
    Exclusive(NodeId),
}

/// Directory entries per arena page: one entry per block of a 4 KiB
/// virtual page, so the page key *is* the VPN.
pub const ENTRIES_PER_PAGE: usize = PAGE_BYTES / BLOCK_BYTES;

/// Sharers an entry holds inline before overflowing to the bit-vector.
pub const INLINE_SHARERS: usize = 3;

const KIND_UNCACHED: u8 = 0;
const KIND_EXCLUSIVE: u8 = 1;
const KIND_INLINE: u8 = 2;
const KIND_WIDE: u8 = 3;

/// One block's directory state: a kind tag, the inline sharer count, and
/// three inline slots (the exclusive owner reuses slot 0). Eight bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Entry {
    kind: u8,
    n: u8,
    s: [u16; INLINE_SHARERS],
}

/// The compact block directory of one DirNNB home (or one simulator
/// shard's set of homes). Addresses passed in are block-aligned.
#[derive(Debug, Default)]
pub struct Directory {
    /// Arena pages, keyed by VPN (`block address >> 12`).
    pages: FxHashMap<u64, Box<[Entry; ENTRIES_PER_PAGE]>>,
    /// Overflowed sharer sets: ascending bit-vectors, one bit per node.
    wide: FxHashMap<u64, Box<[u64]>>,
    /// Busy tags for blocks with a request in flight.
    busy: FxHashMap<u64, DirBusy>,
    /// Requests deferred behind a busy entry, FIFO per block.
    deferred: FxHashMap<u64, VecDeque<(NodeId, DirReq)>>,
    /// Machine size, for bit-vector width.
    nodes: usize,
}

fn split(addr: u64) -> (u64, usize) {
    let block = addr / BLOCK_BYTES as u64;
    (
        block / ENTRIES_PER_PAGE as u64,
        (block % ENTRIES_PER_PAGE as u64) as usize,
    )
}

impl Directory {
    /// An empty directory for a `nodes`-node machine.
    pub fn new(nodes: usize) -> Self {
        Directory {
            nodes,
            ..Directory::default()
        }
    }

    fn entry(&self, addr: u64) -> Entry {
        let (page, slot) = split(addr);
        self.pages.get(&page).map_or(Entry::default(), |p| p[slot])
    }

    fn entry_mut(&mut self, addr: u64) -> &mut Entry {
        let (page, slot) = split(addr);
        &mut self
            .pages
            .entry(page)
            .or_insert_with(|| Box::new([Entry::default(); ENTRIES_PER_PAGE]))[slot]
    }

    /// The block's sharing state.
    pub fn view(&self, addr: u64) -> DirView {
        let e = self.entry(addr);
        match e.kind {
            KIND_UNCACHED => DirView::Uncached,
            KIND_EXCLUSIVE => DirView::Exclusive(NodeId::new(e.s[0])),
            _ => DirView::Shared,
        }
    }

    /// Makes `node` the sole exclusive owner.
    pub fn set_exclusive(&mut self, addr: u64, node: NodeId) {
        self.wide.remove(&addr);
        let e = self.entry_mut(addr);
        *e = Entry {
            kind: KIND_EXCLUSIVE,
            n: 0,
            s: [node.raw(), 0, 0],
        };
    }

    /// Drops all cached copies from the record.
    pub fn set_uncached(&mut self, addr: u64) {
        self.wide.remove(&addr);
        let (page, slot) = split(addr);
        if let Some(p) = self.pages.get_mut(&page) {
            p[slot] = Entry::default();
        }
    }

    /// Sets the sharer set to exactly `{a, b}` (the recall-for-read
    /// downgrade: old owner plus new reader, which may coincide).
    pub fn set_shared_pair(&mut self, addr: u64, a: NodeId, b: NodeId) {
        self.wide.remove(&addr);
        let (lo, hi) = (a.raw().min(b.raw()), a.raw().max(b.raw()));
        let e = self.entry_mut(addr);
        *e = if lo == hi {
            Entry { kind: KIND_INLINE, n: 1, s: [lo, 0, 0] }
        } else {
            Entry { kind: KIND_INLINE, n: 2, s: [lo, hi, 0] }
        };
    }

    /// Adds a read-only sharer; a set wider than [`INLINE_SHARERS`]
    /// overflows to the bit-vector form.
    ///
    /// # Panics
    ///
    /// Panics if the entry is exclusive — the protocol must recall first.
    pub fn add_sharer(&mut self, addr: u64, node: NodeId) {
        let nodes = self.nodes;
        let e = self.entry_mut(addr);
        match e.kind {
            KIND_UNCACHED => {
                *e = Entry { kind: KIND_INLINE, n: 1, s: [node.raw(), 0, 0] };
            }
            KIND_INLINE => {
                let n = e.n as usize;
                let id = node.raw();
                if e.s[..n].contains(&id) {
                    return;
                }
                if n < INLINE_SHARERS {
                    // Insert keeping the inline slots sorted ascending.
                    let pos = e.s[..n].partition_point(|&x| x < id);
                    e.s.copy_within(pos..n, pos + 1);
                    e.s[pos] = id;
                    e.n += 1;
                    return;
                }
                // Overflow: promote the inline set to a bit-vector.
                let mut bits = vec![0u64; nodes.div_ceil(64)].into_boxed_slice();
                for &s in &e.s {
                    bits[s as usize / 64] |= 1 << (s % 64);
                }
                bits[id as usize / 64] |= 1 << (id % 64);
                *e = Entry { kind: KIND_WIDE, n: 0, s: [0; INLINE_SHARERS] };
                self.wide.insert(addr, bits);
            }
            KIND_WIDE => {
                let bits = self.wide.get_mut(&addr).expect("wide entry has a bit-vector");
                bits[node.index() / 64] |= 1 << (node.index() % 64);
            }
            _ => panic!("add_sharer on an exclusive entry"),
        }
    }

    /// Removes a sharer (silently ignores an absent one). A bit-vector
    /// set that shrinks back to [`INLINE_SHARERS`] members returns to the
    /// inline form, reclaiming its side allocation.
    pub fn remove_sharer(&mut self, addr: u64, node: NodeId) {
        let e = self.entry_mut(addr);
        match e.kind {
            KIND_INLINE => {
                let n = e.n as usize;
                let id = node.raw();
                if let Some(pos) = e.s[..n].iter().position(|&x| x == id) {
                    e.s.copy_within(pos + 1..n, pos);
                    e.n -= 1;
                    e.s[e.n as usize] = 0;
                    if e.n == 0 {
                        e.kind = KIND_UNCACHED;
                    }
                }
            }
            KIND_WIDE => {
                let bits = self.wide.get_mut(&addr).expect("wide entry has a bit-vector");
                bits[node.index() / 64] &= !(1 << (node.index() % 64));
                let count: u32 = bits.iter().map(|w| w.count_ones()).sum();
                if count as usize <= INLINE_SHARERS {
                    let members: Vec<u16> = iter_bits(bits).map(|m| m.raw()).collect();
                    self.wide.remove(&addr);
                    let e = self.entry_mut(addr);
                    *e = Entry::default();
                    if !members.is_empty() {
                        e.kind = KIND_INLINE;
                        e.n = members.len() as u8;
                        e.s[..members.len()].copy_from_slice(&members);
                    }
                }
            }
            _ => {}
        }
    }

    /// The sharers other than `except`, in ascending node order (the
    /// order the old bitmap's bit scan produced — invalidation fan-out
    /// order, so cycle-identical by construction).
    pub fn sharers_except(&self, addr: u64, except: NodeId) -> Vec<NodeId> {
        let e = self.entry(addr);
        match e.kind {
            KIND_INLINE => e.s[..e.n as usize]
                .iter()
                .filter(|&&s| s != except.raw())
                .map(|&s| NodeId::new(s))
                .collect(),
            KIND_WIDE => {
                let bits = self.wide.get(&addr).expect("wide entry has a bit-vector");
                iter_bits(bits).filter(|&m| m != except).collect()
            }
            _ => Vec::new(),
        }
    }

    /// Whether any node other than `except` shares the block — the
    /// allocation-free form of `!sharers_except(..).is_empty()` used on
    /// the local-miss fast path.
    pub fn has_other_sharers(&self, addr: u64, except: NodeId) -> bool {
        let e = self.entry(addr);
        match e.kind {
            KIND_INLINE => e.s[..e.n as usize].iter().any(|&s| s != except.raw()),
            KIND_WIDE => {
                let bits = self.wide.get(&addr).expect("wide entry has a bit-vector");
                bits.iter().enumerate().any(|(w, &word)| {
                    let mask = if except.index() / 64 == w {
                        !(1u64 << (except.index() % 64))
                    } else {
                        !0
                    };
                    word & mask != 0
                })
            }
            _ => false,
        }
    }

    /// Number of sharers (diagnostics and tests).
    pub fn sharer_count(&self, addr: u64) -> usize {
        let e = self.entry(addr);
        match e.kind {
            KIND_INLINE => e.n as usize,
            KIND_WIDE => {
                let bits = self.wide.get(&addr).expect("wide entry has a bit-vector");
                bits.iter().map(|w| w.count_ones() as usize).sum()
            }
            _ => 0,
        }
    }

    /// Whether the sharer set is in the overflowed bit-vector form.
    pub fn is_overflowed(&self, addr: u64) -> bool {
        self.entry(addr).kind == KIND_WIDE
    }

    /// Whether a request is in flight for the block.
    pub fn is_busy(&self, addr: u64) -> bool {
        self.busy.contains_key(&addr)
    }

    /// The block's busy tag, if any.
    pub fn busy(&self, addr: u64) -> Option<DirBusy> {
        self.busy.get(&addr).copied()
    }

    /// Tags the block busy.
    pub fn set_busy(&mut self, addr: u64, busy: DirBusy) {
        self.busy.insert(addr, busy);
    }

    /// Clears the block's busy tag.
    pub fn clear_busy(&mut self, addr: u64) {
        self.busy.remove(&addr);
    }

    /// Queues a request behind a busy entry.
    pub fn push_deferred(&mut self, addr: u64, from: NodeId, req: DirReq) {
        self.deferred.entry(addr).or_default().push_back((from, req));
    }

    /// Pops the oldest deferred request for the block.
    pub fn pop_deferred(&mut self, addr: u64) -> Option<(NodeId, DirReq)> {
        let q = self.deferred.get_mut(&addr)?;
        let head = q.pop_front();
        if q.is_empty() {
            self.deferred.remove(&addr);
        }
        head
    }

    /// Merges another (page-disjoint) directory into this one — how the
    /// parallel simulator folds shard directories back for diagnostics.
    pub fn absorb(&mut self, other: Directory) {
        debug_assert_eq!(self.nodes, other.nodes);
        for (page, entries) in other.pages {
            let prev = self.pages.insert(page, entries);
            debug_assert!(prev.is_none(), "shard directories overlap on page {page:#x}");
        }
        self.wide.extend(other.wide);
        self.busy.extend(other.busy);
        self.deferred.extend(other.deferred);
    }

    /// Blocks still busy or with queued requesters — the deadlock
    /// diagnostic, sorted by address for a stable panic message.
    pub fn stuck(&self) -> Vec<(u64, DirView, Option<DirBusy>, usize)> {
        let mut addrs: Vec<u64> =
            self.busy.keys().chain(self.deferred.keys()).copied().collect();
        addrs.sort_unstable();
        addrs.dedup();
        addrs
            .into_iter()
            .map(|a| {
                let queued = self.deferred.get(&a).map_or(0, VecDeque::len);
                (a, self.view(a), self.busy(a), queued)
            })
            .collect()
    }
}

/// Ascending iteration over a sharer bit-vector.
fn iter_bits(bits: &[u64]) -> impl Iterator<Item = NodeId> + '_ {
    bits.iter().enumerate().flat_map(|(w, &word)| {
        let mut word = word;
        std::iter::from_fn(move || {
            if word == 0 {
                return None;
            }
            let bit = word.trailing_zeros();
            word &= word - 1;
            Some(NodeId::new((w * 64) as u16 + bit as u16))
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn inline_sharers_stay_inline_and_sorted() {
        let mut d = Directory::new(16);
        let a = 0x40u64;
        d.add_sharer(a, n(9));
        d.add_sharer(a, n(2));
        d.add_sharer(a, n(5));
        d.add_sharer(a, n(5)); // duplicate is idempotent
        assert_eq!(d.view(a), DirView::Shared);
        assert!(!d.is_overflowed(a));
        assert_eq!(d.sharer_count(a), 3);
        let all = d.sharers_except(a, n(15));
        assert_eq!(all, vec![n(2), n(5), n(9)], "ascending node order");
    }

    #[test]
    fn fourth_sharer_overflows_to_bits_and_keeps_order() {
        let mut d = Directory::new(128);
        let a = 0x80u64;
        for i in [70u16, 3, 120, 64] {
            d.add_sharer(a, n(i));
        }
        assert!(d.is_overflowed(a));
        assert_eq!(d.sharer_count(a), 4);
        assert_eq!(
            d.sharers_except(a, n(70)),
            vec![n(3), n(64), n(120)],
            "bit-vector enumeration is ascending"
        );
        assert!(d.has_other_sharers(a, n(3)));
    }

    #[test]
    fn removal_shrinks_bits_back_to_inline() {
        let mut d = Directory::new(256);
        let a = 0u64;
        for i in 0..5u16 {
            d.add_sharer(a, n(i));
        }
        assert!(d.is_overflowed(a));
        d.remove_sharer(a, n(1));
        d.remove_sharer(a, n(3));
        assert!(!d.is_overflowed(a), "3 members fit inline again");
        assert_eq!(d.sharers_except(a, n(99)), vec![n(0), n(2), n(4)]);
        d.remove_sharer(a, n(0));
        d.remove_sharer(a, n(2));
        d.remove_sharer(a, n(4));
        assert_eq!(d.view(a), DirView::Uncached);
    }

    #[test]
    fn removing_absent_sharer_is_silent() {
        let mut d = Directory::new(16);
        let a = 0x20u64;
        d.add_sharer(a, n(1));
        d.remove_sharer(a, n(7));
        assert_eq!(d.sharer_count(a), 1);
    }

    #[test]
    fn sharers_except_at_the_inline_boundary() {
        let mut d = Directory::new(32);
        let a = 0x60u64;
        d.add_sharer(a, n(4));
        d.add_sharer(a, n(8));
        d.add_sharer(a, n(12));
        // Exactly full inline set: filtering a member yields the others.
        assert_eq!(d.sharers_except(a, n(8)), vec![n(4), n(12)]);
        assert!(!d.has_other_sharers(0x1000, n(0)), "absent block has no sharers");
    }

    #[test]
    fn thousand_node_all_sharers() {
        let nodes = 1024usize;
        let mut d = Directory::new(nodes);
        let a = 0x2000u64;
        for i in 0..nodes as u16 {
            d.add_sharer(a, n(i));
        }
        assert!(d.is_overflowed(a));
        assert_eq!(d.sharer_count(a), nodes);
        let except = n(513);
        let rest = d.sharers_except(a, except);
        assert_eq!(rest.len(), nodes - 1);
        assert!(rest.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        assert!(!rest.contains(&except));
        assert!(d.has_other_sharers(a, except));
    }

    #[test]
    fn exclusive_and_pair_transitions() {
        let mut d = Directory::new(64);
        let a = 0xA0u64;
        d.set_exclusive(a, n(7));
        assert_eq!(d.view(a), DirView::Exclusive(n(7)));
        d.set_shared_pair(a, n(9), n(4));
        assert_eq!(d.sharers_except(a, n(63)), vec![n(4), n(9)]);
        d.set_shared_pair(a, n(5), n(5));
        assert_eq!(d.sharer_count(a), 1, "coinciding pair dedupes");
        d.set_uncached(a);
        assert_eq!(d.view(a), DirView::Uncached);
    }

    #[test]
    #[should_panic(expected = "exclusive")]
    fn add_sharer_on_exclusive_panics() {
        let mut d = Directory::new(8);
        d.set_exclusive(0, n(1));
        d.add_sharer(0, n(2));
    }

    #[test]
    fn busy_and_deferred_lifecycle() {
        let mut d = Directory::new(8);
        let a = 0xC0u64;
        assert!(!d.is_busy(a));
        d.set_busy(a, DirBusy::Recalling { owner: n(1), to: n(2), req: DirReq::Write });
        assert!(d.is_busy(a));
        d.push_deferred(a, n(3), DirReq::Read);
        d.push_deferred(a, n(4), DirReq::Upgrade);
        assert_eq!(d.stuck().len(), 1);
        d.clear_busy(a);
        assert_eq!(d.pop_deferred(a), Some((n(3), DirReq::Read)));
        assert_eq!(d.pop_deferred(a), Some((n(4), DirReq::Upgrade)));
        assert_eq!(d.pop_deferred(a), None);
        assert!(d.stuck().is_empty());
    }

    #[test]
    fn absorb_merges_disjoint_pages() {
        let mut a = Directory::new(16);
        let mut b = Directory::new(16);
        a.add_sharer(0x0, n(1));
        b.set_exclusive(0x1000, n(2)); // different VPN -> different page
        for i in 0..8u16 {
            b.add_sharer(0x1020, n(i));
        }
        a.absorb(b);
        assert_eq!(a.sharers_except(0x0, n(9)), vec![n(1)]);
        assert_eq!(a.view(0x1000), DirView::Exclusive(n(2)));
        assert_eq!(a.sharer_count(0x1020), 8);
    }

    #[test]
    fn upgrade_needs_no_data() {
        assert!(DirReq::Read.needs_data());
        assert!(DirReq::Write.needs_data());
        assert!(!DirReq::Upgrade.needs_data());
    }
}
