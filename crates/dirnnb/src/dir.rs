//! The full-map (`Dir_N`) hardware directory state.

use std::collections::VecDeque;

use tt_base::NodeId;

/// What a requester asked the directory for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirReq {
    /// Read (shared) copy.
    Read,
    /// Write (exclusive) copy, data needed.
    Write,
    /// Write permission for a block the requester already holds shared.
    Upgrade,
}

impl DirReq {
    /// Whether the grant must carry the data block.
    pub fn needs_data(self) -> bool {
        !matches!(self, DirReq::Upgrade)
    }
}

/// Stable state of one home block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DirState {
    /// No cached copies anywhere.
    #[default]
    Uncached,
    /// Presence bit vector of nodes holding shared copies.
    Shared(u64),
    /// One node holds the dirty/exclusive copy.
    Exclusive(NodeId),
}

/// An in-flight home transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirBusy {
    /// Waiting for invalidation acknowledgments before granting `to`.
    Invalidating {
        /// Acks still outstanding.
        acks_left: usize,
        /// Requester to grant once acknowledged.
        to: NodeId,
        /// The original request kind.
        req: DirReq,
    },
    /// Waiting for the exclusive owner to return the block.
    Recalling {
        /// Current owner.
        owner: NodeId,
        /// Requester to grant.
        to: NodeId,
        /// The original request kind.
        req: DirReq,
    },
}

/// Directory entry for one home block.
#[derive(Clone, Debug, Default)]
pub struct DirEntry {
    /// Stable state.
    pub state: DirState,
    /// In-flight transaction.
    pub busy: Option<DirBusy>,
    /// Requests deferred while busy.
    pub queue: VecDeque<(NodeId, DirReq)>,
}

impl DirEntry {
    /// Whether a transaction is in flight.
    pub fn is_busy(&self) -> bool {
        self.busy.is_some()
    }

    /// Adds `node` to the sharer vector.
    pub fn add_sharer(&mut self, node: NodeId) {
        let bit = 1u64 << node.index();
        self.state = match self.state {
            DirState::Uncached => DirState::Shared(bit),
            DirState::Shared(mask) => DirState::Shared(mask | bit),
            DirState::Exclusive(_) => panic!("add_sharer on an exclusive block"),
        };
    }

    /// Removes `node` from the sharer vector (silent eviction tolerance:
    /// removing an absent node is a no-op).
    pub fn remove_sharer(&mut self, node: NodeId) {
        if let DirState::Shared(mask) = self.state {
            let mask = mask & !(1u64 << node.index());
            self.state = if mask == 0 {
                DirState::Uncached
            } else {
                DirState::Shared(mask)
            };
        }
    }

    /// The sharers other than `except`.
    pub fn sharers_except(&self, except: NodeId) -> Vec<NodeId> {
        match self.state {
            DirState::Shared(mask) => (0..64u16)
                .filter(|i| mask & (1u64 << i) != 0 && *i != except.raw())
                .map(NodeId::new)
                .collect(),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn sharer_bitmap_add_remove() {
        let mut e = DirEntry::default();
        e.add_sharer(n(3));
        e.add_sharer(n(5));
        assert_eq!(e.state, DirState::Shared(0b101000));
        e.remove_sharer(n(3));
        assert_eq!(e.state, DirState::Shared(0b100000));
        e.remove_sharer(n(5));
        assert_eq!(e.state, DirState::Uncached);
    }

    #[test]
    fn removing_absent_sharer_is_silent() {
        let mut e = DirEntry::default();
        e.add_sharer(n(1));
        e.remove_sharer(n(9));
        assert_eq!(e.state, DirState::Shared(0b10));
    }

    #[test]
    fn sharers_except_filters_requester() {
        let mut e = DirEntry::default();
        for i in [0u16, 2, 7] {
            e.add_sharer(n(i));
        }
        assert_eq!(e.sharers_except(n(2)), vec![n(0), n(7)]);
        assert_eq!(e.sharers_except(n(9)).len(), 3);
    }

    #[test]
    fn upgrade_needs_no_data() {
        assert!(DirReq::Read.needs_data());
        assert!(DirReq::Write.needs_data());
        assert!(!DirReq::Upgrade.needs_data());
    }
}
