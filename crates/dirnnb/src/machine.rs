//! The DirNNB machine: CPUs + hardware directory, driven by the same
//! event engine and workload op streams as Typhoon.

use tt_base::addr::{VAddr, Vpn, BLOCK_BYTES, PAGE_BYTES, WORD_BYTES};
use tt_base::config::SystemConfig;
use tt_base::stats::{Counter, Report};
use tt_base::workload::{Op, Workload};
use tt_base::{Cycles, DetRng, FxHashMap, NodeId};
use tt_mem::cache::Probe;
use tt_mem::{AccessKind, CacheModel, FifoTlb};
use tt_net::{Network, VirtualNet, ARG_WORD_BYTES, HANDLER_WORD_BYTES};
use tt_sim::{EventHandler, EventQueue, RunLimit};

use crate::dir::{DirBusy, DirEntry, DirReq, DirState};


/// Execution status of a CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CpuStatus {
    Ready,
    BlockedMiss,
    AtBarrier,
    Done,
}

/// Per-CPU statistics.
#[derive(Clone, Debug, Default)]
struct CpuStats {
    ops: Counter,
    reads: Counter,
    writes: Counter,
    compute_cycles: Counter,
    local_misses: Counter,
    remote_misses: Counter,
    upgrades: Counter,
    miss_stall_cycles: Counter,
    barrier_wait_cycles: Counter,
}

struct Cpu {
    cache: CacheModel,
    tlb: FifoTlb<Vpn>,
    chunk: Vec<Op>,
    pc: usize,
    clock: Cycles,
    status: CpuStatus,
    step_pending: bool,
    suspended_at: Cycles,
    /// Block address of the outstanding miss, if any. Used to defer a
    /// recall that overtakes this CPU's grant (the protocol's
    /// "relinquish and retry" for a busy owner).
    pending_block: Option<u64>,
    stats: CpuStats,
}

/// Machine-wide directory statistics.
#[derive(Clone, Debug, Default)]
struct DirStats {
    dir_ops: Counter,
    invalidations: Counter,
    recalls: Counter,
    writebacks: Counter,
    deferred: Counter,
}

/// Simulation events.
#[derive(Clone, Debug)]
#[doc(hidden)]
pub enum Event {
    CpuStep(usize),
    HomeRequest { addr: u64, from: u16, req: DirReq },
    HomeAck { addr: u64 },
    HomeData { addr: u64, from: u16 },
    Invalidate { addr: u64, node: u16 },
    Recall { addr: u64, node: u16, invalidate: bool },
    Grant { addr: u64, node: u16, req: DirReq },
    Writeback { addr: u64, from: u16 },
    BarrierRelease { generation: u64 },
}

#[derive(Debug, Default)]
struct BarrierState {
    arrived: usize,
    max_arrival: Cycles,
    generation: u64,
    releases: u64,
}

/// The result of a completed simulation.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Total execution time (when the last processor finished).
    pub cycles: Cycles,
    /// Aggregated statistics.
    pub report: Report,
}

/// The all-hardware DirNNB machine (see crate docs).
pub struct DirnnbMachine {
    cfg: SystemConfig,
    quantum: Cycles,
    cpus: Vec<Cpu>,
    dirs: FxHashMap<u64, DirEntry>,
    home_map: FxHashMap<Vpn, NodeId>,
    store: FxHashMap<Vpn, Box<[u64; PAGE_BYTES / WORD_BYTES]>>,
    network: Network,
    barrier: BarrierState,
    workload: Box<dyn Workload>,
    done: Vec<Option<Cycles>>,
    dir_stats: DirStats,
    verify_values: bool,
    /// Seed for same-cycle tie-shuffling, applied to the event queue at
    /// `run` time (a `tt-check` legal-nondeterminism knob).
    tie_shuffle: Option<u64>,
}

impl DirnnbMachine {
    /// Builds the machine for a workload.
    pub fn new(cfg: SystemConfig, workload: Box<dyn Workload>) -> Self {
        let layout = workload.layout();
        let mut home_map = FxHashMap::default();
        for (vpn, owner, _mode) in layout.pages(cfg.nodes) {
            let home = match cfg.dirnnb.placement {
                tt_base::config::DirPlacement::RoundRobin => {
                    NodeId::new((vpn.0 % cfg.nodes as u64) as u16)
                }
                tt_base::config::DirPlacement::Owner => owner,
            };
            home_map.insert(vpn, home);
        }
        let mut rng = DetRng::new(cfg.seed);
        let cpus = (0..cfg.nodes)
            .map(|i| Cpu {
                cache: CacheModel::new(
                    cfg.cpu.cache_bytes,
                    cfg.cpu.cache_assoc,
                    BLOCK_BYTES,
                    rng.fork(i as u64),
                ),
                tlb: FifoTlb::new(cfg.cpu.tlb_entries),
                chunk: Vec::new(),
                pc: 0,
                clock: Cycles::ZERO,
                status: CpuStatus::Ready,
                step_pending: false,
                suspended_at: Cycles::ZERO,
                pending_block: None,
                stats: CpuStats::default(),
            })
            .collect();
        let mut network = Network::new(cfg.nodes, cfg.timing.network_latency);
        network.set_occupancy(cfg.timing.network_occupancy);
        let quantum = cfg.timing.network_latency;
        let done = vec![None; cfg.nodes];
        let verify_values = cfg.verify_values;
        DirnnbMachine {
            cfg,
            quantum,
            cpus,
            dirs: FxHashMap::default(),
            home_map,
            store: FxHashMap::default(),
            network,
            barrier: BarrierState::default(),
            workload,
            done,
            dir_stats: DirStats::default(),
            verify_values,
            tie_shuffle: None,
        }
    }

    /// Delivers same-cycle events in a seed-dependent permutation instead
    /// of FIFO order (see `EventQueue::enable_tie_shuffle`). Call before
    /// [`DirnnbMachine::run`].
    pub fn set_tie_shuffle(&mut self, seed: u64) {
        self.tie_shuffle = Some(seed);
    }

    /// The word at `addr` in the machine's global memory image, for the
    /// `tt-check` differential checker. DirNNB keeps one coherent value
    /// image (hardware coherence is exact by construction), so this *is*
    /// the final memory state once the machine has drained.
    pub fn shared_word(&mut self, addr: VAddr) -> u64 {
        self.read_store(addr)
    }

    /// Runs the simulation to completion.
    ///
    /// # Panics
    ///
    /// Panics on deadlock or on a value-verification failure, like
    /// `TyphoonMachine::run`.
    pub fn run(&mut self) -> RunResult {
        let mut queue = EventQueue::new();
        if let Some(seed) = self.tie_shuffle {
            queue.enable_tie_shuffle(seed);
        }
        for n in 0..self.cfg.nodes {
            self.cpus[n].step_pending = true;
            queue.schedule_at_for(Cycles::ZERO, Some(n), Event::CpuStep(n));
        }
        tt_sim::run(self, &mut queue, RunLimit::none());
        let stuck: Vec<_> = self
            .cpus
            .iter()
            .enumerate()
            .filter(|(_, c)| c.status != CpuStatus::Done)
            .map(|(i, c)| (i, c.status))
            .collect();
        if !stuck.is_empty() {
            let busy: Vec<_> = self
                .dirs
                .iter()
                .filter(|(_, e)| e.is_busy() || !e.queue.is_empty())
                .map(|(a, e)| (*a, e.state, e.busy, e.queue.len()))
                .collect();
            panic!("DirNNB machine deadlocked: {stuck:?}; stuck directory entries: {busy:?}");
        }
        let cycles = self
            .done
            .iter()
            .map(|d| d.expect("all done"))
            .max()
            .unwrap_or(Cycles::ZERO);
        RunResult {
            cycles,
            report: self.build_report(cycles),
        }
    }

    fn home_of(&self, addr: u64) -> NodeId {
        let vpn = VAddr::new(addr).page();
        *self.home_map.get(&vpn).unwrap_or_else(|| {
            panic!("access to {addr:#x} outside the shared segment layout")
        })
    }

    fn read_store(&mut self, addr: VAddr) -> u64 {
        let page = self.store.entry(addr.page()).or_insert_with(|| {
            Box::new([0u64; PAGE_BYTES / WORD_BYTES])
        });
        page[(addr.page_offset() as usize) / WORD_BYTES]
    }

    fn write_store(&mut self, addr: VAddr, value: u64) {
        let page = self.store.entry(addr.page()).or_insert_with(|| {
            Box::new([0u64; PAGE_BYTES / WORD_BYTES])
        });
        page[(addr.page_offset() as usize) / WORD_BYTES] = value;
    }

    /// Network hop latency between two nodes (zero if the same node).
    fn hop(&self, a: NodeId, b: NodeId) -> Cycles {
        if a == b {
            Cycles::ZERO
        } else {
            self.cfg.timing.network_latency
        }
    }

    /// Records a protocol message for traffic statistics (the cost model
    /// charges latencies separately). Wire size matches the one-argument
    /// packet `send` would have been handed: handler word + one argument
    /// word, plus a coherence block when `data` is set.
    fn count_packet(&mut self, _now: Cycles, src: NodeId, dst: NodeId, data: bool) {
        let wire = HANDLER_WORD_BYTES + ARG_WORD_BYTES + if data { BLOCK_BYTES } else { 0 };
        self.network.count(src, dst, VirtualNet::Request, wire);
    }

    // --- CPU execution ----------------------------------------------------

    /// The per-op inner loop. Ops that touch only this CPU (compute,
    /// calls, barriers, chunk refills) run under one split borrow of
    /// `self` — no re-indexing of `self.cpus[n]` per op, mirroring
    /// `TyphoonMachine::cpu_step`. Memory ops break out to [`Self::access`],
    /// which needs the directory and network.
    fn cpu_step(&mut self, n: usize, now: Cycles, queue: &mut EventQueue<Event>) {
        {
            let cpu = &mut self.cpus[n];
            cpu.step_pending = false;
            if cpu.status != CpuStatus::Ready {
                return;
            }
            if cpu.clock < now {
                cpu.clock = now;
            }
        }
        let mut deadline = now + self.quantum;
        loop {
            let (addr, kind, value, expect) = {
                let DirnnbMachine {
                    cfg,
                    quantum,
                    cpus,
                    barrier,
                    workload,
                    done,
                    ..
                } = self;
                let cpu = &mut cpus[n];
                loop {
                    // Refill the op chunk if exhausted, reusing its allocation.
                    if cpu.pc >= cpu.chunk.len() {
                        let mut chunk = std::mem::take(&mut cpu.chunk);
                        if workload.next_chunk_into(NodeId::new(n as u16), &mut chunk) {
                            cpu.chunk = chunk;
                            cpu.pc = 0;
                            if cpu.chunk.is_empty() {
                                continue;
                            }
                        } else {
                            cpu.status = CpuStatus::Done;
                            done[n] = Some(cpu.clock);
                            return;
                        }
                    }
                    let op = cpu.chunk[cpu.pc];
                    match op {
                        Op::Compute(k) => {
                            cpu.clock += Cycles::new(k as u64);
                            cpu.stats.compute_cycles.add(k as u64);
                            cpu.stats.ops.inc();
                            cpu.pc += 1;
                        }
                        Op::UserCall { .. } => {
                            // A hardware shared-memory machine has no user-level
                            // protocol; calls complete immediately.
                            cpu.clock += Cycles::new(1);
                            cpu.stats.ops.inc();
                            cpu.pc += 1;
                        }
                        Op::Barrier => {
                            cpu.pc += 1;
                            cpu.stats.ops.inc();
                            cpu.status = CpuStatus::AtBarrier;
                            cpu.suspended_at = cpu.clock;
                            let arrival = cpu.clock;
                            barrier.arrived += 1;
                            if arrival > barrier.max_arrival {
                                barrier.max_arrival = arrival;
                            }
                            if barrier.arrived == cfg.nodes {
                                queue.schedule_at_for(
                                    barrier.max_arrival + cfg.timing.barrier_latency,
                                    None,
                                    Event::BarrierRelease {
                                        generation: barrier.generation,
                                    },
                                );
                            }
                            return;
                        }
                        Op::Read { addr, expect } => break (addr, AccessKind::Load, 0, expect),
                        Op::Write { addr, value } => break (addr, AccessKind::Store, value, None),
                    }
                    if cpu.clock >= deadline {
                        let at = cpu.clock;
                        // Direct execution (WWT-style): if every pending
                        // event lies strictly beyond this CPU's clock, the
                        // wakeup we are about to schedule would be the very
                        // next event popped — skip the queue round trip and
                        // keep executing inline. Only the self-wakeup is
                        // elided, so reported cycles stay byte-identical.
                        if cfg.direct_execution
                            && queue.peek_time().is_none_or(|t| t > at)
                        {
                            deadline = at + *quantum;
                            continue;
                        }
                        cpu.step_pending = true;
                        queue.schedule_at_for(at, Some(n), Event::CpuStep(n));
                        return;
                    }
                }
            };
            if !self.access(n, queue, addr, kind, value, expect) {
                return;
            }
            if self.cpus[n].clock >= deadline {
                let at = self.cpus[n].clock;
                // Same direct-execution bypass as the inner loop; see there.
                if self.cfg.direct_execution && queue.peek_time().is_none_or(|t| t > at) {
                    deadline = at + self.quantum;
                    continue;
                }
                let cpu = &mut self.cpus[n];
                cpu.step_pending = true;
                queue.schedule_at_for(at, Some(n), Event::CpuStep(n));
                return;
            }
        }
    }

    /// Executes one access; returns `false` if the CPU blocked on a miss.
    fn access(
        &mut self,
        n: usize,
        queue: &mut EventQueue<Event>,
        addr: VAddr,
        kind: AccessKind,
        value: u64,
        expect: Option<u64>,
    ) -> bool {
        let me = NodeId::new(n as u16);
        let block = addr.block_base().raw();
        let key = block / BLOCK_BYTES as u64;
        let mut cost = Cycles::new(1);
        self.cpus[n].stats.ops.inc();
        if !self.cpus[n].tlb.access(addr.page()) {
            cost += self.cfg.timing.tlb_miss;
        }
        let probe = self.cpus[n].cache.probe(key);
        let req = match (probe, kind) {
            (Probe::HitOwned, _) | (Probe::HitShared, AccessKind::Load) => None,
            (Probe::HitShared, AccessKind::Store) => Some(DirReq::Upgrade),
            (Probe::Miss, AccessKind::Load) => Some(DirReq::Read),
            (Probe::Miss, AccessKind::Store) => Some(DirReq::Write),
        };
        let Some(req) = req else {
            // Cache hit: no directory involvement, so the home lookup is
            // not needed — this is the per-op fast path.
            self.complete_access(n, addr, kind, value, expect);
            self.cpus[n].clock += cost;
            self.cpus[n].pc += 1;
            return true;
        };
        let home = self.home_of(addr.raw());

        // Fast local path: home is this node and the directory can grant
        // immediately — a plain 29-cycle local miss.
        if home == me {
            let entry = self.dirs.entry(block).or_default();
            if !entry.is_busy() {
                let fast = match (entry.state, req) {
                    (DirState::Uncached | DirState::Shared(_), DirReq::Read) => {
                        entry.add_sharer(me);
                        Some(false)
                    }
                    (DirState::Uncached, DirReq::Write) => {
                        entry.state = DirState::Exclusive(me);
                        Some(true)
                    }
                    (DirState::Shared(_), DirReq::Upgrade | DirReq::Write)
                        if entry.sharers_except(me).is_empty() =>
                    {
                        entry.state = DirState::Exclusive(me);
                        Some(true)
                    }
                    _ => None,
                };
                if let Some(owned) = fast {
                    cost += self.cfg.timing.local_miss;
                    self.cpus[n].stats.local_misses.inc();
                    if req == DirReq::Upgrade {
                        // The line is already resident shared.
                        self.cpus[n].cache.set_owned(key, true);
                    } else {
                        self.fill(n, key, owned, &mut cost, queue);
                    }
                    self.complete_access(n, addr, kind, value, expect);
                    self.cpus[n].clock += cost;
                    self.cpus[n].pc += 1;
                    return true;
                }
            }
        }

        // Slow path: block and send the request to the home directory.
        if home == me {
            self.cpus[n].stats.local_misses.inc();
        } else {
            self.cpus[n].stats.remote_misses.inc();
            cost += self.cfg.dirnnb.remote_miss_request;
            self.count_packet(self.cpus[n].clock, me, home, false);
        }
        if req == DirReq::Upgrade {
            self.cpus[n].stats.upgrades.inc();
        }
        let cpu = &mut self.cpus[n];
        cpu.clock += cost;
        cpu.status = CpuStatus::BlockedMiss;
        cpu.suspended_at = cpu.clock;
        cpu.pending_block = Some(block);
        let at = cpu.clock + self.hop(me, home);
        queue.schedule_at_for(
            at,
            Some(home.index()),
            Event::HomeRequest {
                addr: block,
                from: me.raw(),
                req,
            },
        );
        false
    }

    /// Functional completion: reads check the global store, writes update
    /// it (hardware-coherent shared memory has a single value image).
    fn complete_access(
        &mut self,
        n: usize,
        addr: VAddr,
        kind: AccessKind,
        value: u64,
        expect: Option<u64>,
    ) {
        match kind {
            AccessKind::Load => {
                self.cpus[n].stats.reads.inc();
                let got = self.read_store(addr);
                if self.verify_values {
                    if let Some(expect) = expect {
                        assert_eq!(
                            got, expect,
                            "DirNNB coherence image mismatch: node {n} read {addr}"
                        );
                    }
                }
            }
            AccessKind::Store => {
                self.cpus[n].stats.writes.inc();
                self.write_store(addr, value);
            }
        }
    }

    /// Installs a block in a CPU cache; a displaced dirty victim notifies
    /// its home asynchronously and adds the Table 2 replacement charge.
    fn fill(
        &mut self,
        n: usize,
        key: u64,
        owned: bool,
        cost: &mut Cycles,
        queue: &mut EventQueue<Event>,
    ) {
        if let Some(victim) = self.cpus[n].cache.fill(key, owned) {
            *cost += if victim.owned {
                self.cfg.dirnnb.replace_exclusive
            } else {
                self.cfg.dirnnb.replace_shared
            };
            if victim.owned {
                let victim_addr = victim.block * BLOCK_BYTES as u64;
                let home = self.home_of(victim_addr);
                let me = NodeId::new(n as u16);
                self.count_packet(self.cpus[n].clock, me, home, true);
                let at = self.cpus[n].clock.max(queue.now()) + self.hop(me, home);
                queue.schedule_at_for(
                    at,
                    Some(home.index()),
                    Event::Writeback {
                        addr: victim_addr,
                        from: n as u16,
                    },
                );
            }
        }
    }

    // --- Directory engine --------------------------------------------------

    fn home_request(
        &mut self,
        addr: u64,
        from: NodeId,
        req: DirReq,
        now: Cycles,
        queue: &mut EventQueue<Event>,
    ) {
        let entry = self.dirs.entry(addr).or_default();
        if entry.is_busy() {
            self.dir_stats.deferred.inc();
            entry.queue.push_back((from, req));
            return;
        }
        self.dir_stats.dir_ops.inc();
        let home = self.home_of(addr);
        let base = self.cfg.dirnnb.dir_op_base;
        match (self.dirs.get(&addr).unwrap().state, req) {
            (DirState::Uncached | DirState::Shared(_), DirReq::Read) => {
                self.dirs.get_mut(&addr).unwrap().add_sharer(from);
                self.grant(addr, from, req, now + base, queue);
            }
            (DirState::Uncached, DirReq::Write | DirReq::Upgrade) => {
                self.dirs.get_mut(&addr).unwrap().state = DirState::Exclusive(from);
                self.grant(addr, from, req, now + base, queue);
            }
            (DirState::Shared(_), DirReq::Write | DirReq::Upgrade) => {
                let targets = self.dirs.get(&addr).unwrap().sharers_except(from);
                if targets.is_empty() {
                    self.dirs.get_mut(&addr).unwrap().state = DirState::Exclusive(from);
                    self.grant(addr, from, req, now + base, queue);
                    return;
                }
                let cost = base
                    + Cycles::new(
                        self.cfg.dirnnb.dir_op_per_msg.raw() * targets.len() as u64,
                    );
                self.dir_stats.invalidations.add(targets.len() as u64);
                for t in &targets {
                    self.count_packet(now, home, *t, false);
                    queue.schedule_at_for(
                        now + cost + self.hop(home, *t),
                        Some(t.index()),
                        Event::Invalidate {
                            addr,
                            node: t.raw(),
                        },
                    );
                }
                self.dirs.get_mut(&addr).unwrap().busy = Some(DirBusy::Invalidating {
                    acks_left: targets.len(),
                    to: from,
                    req,
                });
            }
            (DirState::Exclusive(owner), _) => {
                self.dir_stats.recalls.inc();
                let cost = base + self.cfg.dirnnb.dir_op_per_msg;
                self.count_packet(now, home, owner, false);
                queue.schedule_at_for(
                    now + cost + self.hop(home, owner),
                    Some(owner.index()),
                    Event::Recall {
                        addr,
                        node: owner.raw(),
                        invalidate: !matches!(req, DirReq::Read),
                    },
                );
                self.dirs.get_mut(&addr).unwrap().busy = Some(DirBusy::Recalling {
                    owner,
                    to: from,
                    req,
                });
            }
        }
    }

    /// Sends a grant back to the requester.
    fn grant(
        &mut self,
        addr: u64,
        to: NodeId,
        req: DirReq,
        at: Cycles,
        queue: &mut EventQueue<Event>,
    ) {
        let home = self.home_of(addr);
        let mut cost = self.cfg.dirnnb.dir_op_per_msg;
        if req.needs_data() {
            cost += self.cfg.dirnnb.dir_op_block_send;
        }
        self.count_packet(at, home, to, req.needs_data());
        queue.schedule_at_for(
            at + cost + self.hop(home, to),
            Some(to.index()),
            Event::Grant {
                addr,
                node: to.raw(),
                req,
            },
        );
    }

    fn home_ack(&mut self, addr: u64, now: Cycles, queue: &mut EventQueue<Event>) {
        let entry = self.dirs.get_mut(&addr).expect("directory entry");
        let Some(DirBusy::Invalidating { acks_left, to, req }) = entry.busy else {
            panic!("ack for a block that is not invalidating");
        };
        if acks_left > 1 {
            entry.busy = Some(DirBusy::Invalidating {
                acks_left: acks_left - 1,
                to,
                req,
            });
            return;
        }
        entry.busy = None;
        entry.state = DirState::Exclusive(to);
        self.dir_stats.dir_ops.inc();
        self.grant(addr, to, req, now + self.cfg.dirnnb.dir_op_base, queue);
        self.drain_queue(addr, now, queue);
    }

    fn home_data(
        &mut self,
        addr: u64,
        from: NodeId,
        now: Cycles,
        queue: &mut EventQueue<Event>,
    ) {
        let entry = self.dirs.get_mut(&addr).expect("directory entry");
        let Some(DirBusy::Recalling { owner, to, req }) = entry.busy else {
            panic!("recall data for a block that is not recalling");
        };
        debug_assert_eq!(owner, from);
        entry.busy = None;
        match req {
            DirReq::Read => {
                entry.state = DirState::Shared(
                    (1u64 << owner.index()) | (1u64 << to.index()),
                );
            }
            DirReq::Write | DirReq::Upgrade => {
                entry.state = DirState::Exclusive(to);
            }
        }
        self.dir_stats.dir_ops.inc();
        let cost = self.cfg.dirnnb.dir_op_base + self.cfg.dirnnb.dir_op_block_recv;
        self.grant(addr, to, req, now + cost, queue);
        self.drain_queue(addr, now, queue);
    }

    fn drain_queue(&mut self, addr: u64, now: Cycles, queue: &mut EventQueue<Event>) {
        loop {
            let entry = self.dirs.get_mut(&addr).expect("directory entry");
            if entry.is_busy() {
                return;
            }
            let Some((from, req)) = entry.queue.pop_front() else {
                return;
            };
            self.home_request(addr, from, req, now, queue);
        }
    }

    fn invalidate_at(
        &mut self,
        addr: u64,
        node: usize,
        now: Cycles,
        queue: &mut EventQueue<Event>,
    ) {
        // The remote cache controller invalidates without involving its
        // CPU: 8 cycles plus the shared-replacement charge (Table 2).
        let key = addr / BLOCK_BYTES as u64;
        self.cpus[node].cache.invalidate(key);
        let cost = self.cfg.dirnnb.remote_invalidate + self.cfg.dirnnb.replace_shared;
        let home = self.home_of(addr);
        let me = NodeId::new(node as u16);
        self.count_packet(now, me, home, false);
        queue.schedule_at_for(
            now + cost + self.hop(me, home),
            Some(home.index()),
            Event::HomeAck { addr },
        );
    }

    fn recall_at(
        &mut self,
        addr: u64,
        node: usize,
        invalidate: bool,
        now: Cycles,
        queue: &mut EventQueue<Event>,
    ) {
        let key = addr / BLOCK_BYTES as u64;
        let present = if invalidate {
            self.cpus[node].cache.invalidate(key)
        } else {
            self.cpus[node].cache.set_owned(key, false)
        };
        if !present {
            if self.cpus[node].pending_block == Some(addr) {
                // The recall overtook this node's own grant for the same
                // block (grants and recalls travel on different virtual
                // networks). Nack-and-retry, as a busy hardware owner
                // would: try again after the grant has landed.
                queue.schedule_at_for(
                    now + self.cfg.timing.network_latency,
                    Some(node),
                    Event::Recall {
                        addr,
                        node: node as u16,
                        invalidate,
                    },
                );
                return;
            }
            // Otherwise the line was evicted while the recall was in
            // flight; the home completes from the writeback.
            return;
        }
        let cost = self.cfg.dirnnb.remote_invalidate + self.cfg.dirnnb.replace_exclusive;
        let home = self.home_of(addr);
        let me = NodeId::new(node as u16);
        self.count_packet(now, me, home, true);
        queue.schedule_at_for(
            now + cost + self.hop(me, home),
            Some(home.index()),
            Event::HomeData {
                addr,
                from: me.raw(),
            },
        );
    }

    fn writeback(&mut self, addr: u64, from: NodeId, now: Cycles, queue: &mut EventQueue<Event>) {
        self.dir_stats.writebacks.inc();
        let entry = self.dirs.entry(addr).or_default();
        match entry.busy {
            Some(DirBusy::Recalling { owner, .. }) if owner == from => {
                // The owner's eviction raced our recall; its writeback
                // carries the block.
                self.home_data(addr, from, now, queue);
            }
            Some(other) => panic!("writeback raced {other:?}"),
            None => {
                debug_assert_eq!(entry.state, DirState::Exclusive(from));
                entry.state = DirState::Uncached;
            }
        }
    }

    fn grant_arrived(
        &mut self,
        addr: u64,
        node: usize,
        req: DirReq,
        now: Cycles,
        queue: &mut EventQueue<Event>,
    ) {
        let key = addr / BLOCK_BYTES as u64;
        let me = NodeId::new(node as u16);
        let home = self.home_of(addr);
        let mut cost = if home == me {
            self.cfg.timing.local_miss
        } else {
            self.cfg.dirnnb.remote_miss_finish
        };
        match req {
            DirReq::Upgrade => {
                // The line is still resident unless an intervening
                // invalidation removed it; then treat as a full fill.
                if !self.cpus[node].cache.set_owned(key, true) {
                    self.fill(node, key, true, &mut cost, queue);
                }
            }
            DirReq::Read => self.fill(node, key, false, &mut cost, queue),
            DirReq::Write => self.fill(node, key, true, &mut cost, queue),
        }
        // Complete the blocked op *now*, before releasing the CPU: the
        // grant delivers the data to the stalled load/store, so a recall
        // racing in behind it can never steal an incomplete access (that
        // would livelock two writers hammering one block).
        {
            let cpu = &mut self.cpus[node];
            debug_assert_eq!(cpu.status, CpuStatus::BlockedMiss);
            cpu.status = CpuStatus::Ready;
            cpu.pending_block = None;
        }
        let op = self.cpus[node].chunk[self.cpus[node].pc];
        match op {
            Op::Read { addr, expect } => {
                self.complete_access(node, addr, AccessKind::Load, 0, expect)
            }
            Op::Write { addr, value } => {
                self.complete_access(node, addr, AccessKind::Store, value, None)
            }
            other => unreachable!("blocked on a non-memory op {other:?}"),
        }
        let cpu = &mut self.cpus[node];
        cpu.pc += 1;
        cpu.clock = now + cost;
        cpu.stats
            .miss_stall_cycles
            .add((cpu.clock - cpu.suspended_at).raw());
        if !cpu.step_pending {
            cpu.step_pending = true;
            let at = cpu.clock;
            queue.schedule_at_for(at, Some(node), Event::CpuStep(node));
        }
    }

    fn barrier_release(&mut self, generation: u64, now: Cycles, queue: &mut EventQueue<Event>) {
        assert_eq!(generation, self.barrier.generation, "stale barrier release");
        self.barrier.generation += 1;
        self.barrier.arrived = 0;
        self.barrier.max_arrival = Cycles::ZERO;
        self.barrier.releases += 1;
        for n in 0..self.cfg.nodes {
            let cpu = &mut self.cpus[n];
            assert_eq!(cpu.status, CpuStatus::AtBarrier, "node {n} missed the barrier");
            cpu.stats
                .barrier_wait_cycles
                .add((now - cpu.suspended_at).raw());
            cpu.status = CpuStatus::Ready;
            cpu.clock = now;
            if !cpu.step_pending {
                cpu.step_pending = true;
                queue.schedule_at_for(now, Some(n), Event::CpuStep(n));
            }
        }
    }

    fn build_report(&self, cycles: Cycles) -> Report {
        let mut r = Report::new();
        r.push_count("machine.cycles", cycles.raw());
        r.push_count("machine.nodes", self.cfg.nodes as u64);
        r.push_count("machine.barriers", self.barrier.releases);
        let mut ops = 0u64;
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut compute = 0u64;
        let mut local = 0u64;
        let mut remote = 0u64;
        let mut upgrades = 0u64;
        let mut stall = 0u64;
        let mut barrier_wait = 0u64;
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        let mut tlb_misses = 0u64;
        for cpu in &self.cpus {
            ops += cpu.stats.ops.get();
            reads += cpu.stats.reads.get();
            writes += cpu.stats.writes.get();
            compute += cpu.stats.compute_cycles.get();
            local += cpu.stats.local_misses.get();
            remote += cpu.stats.remote_misses.get();
            upgrades += cpu.stats.upgrades.get();
            stall += cpu.stats.miss_stall_cycles.get();
            barrier_wait += cpu.stats.barrier_wait_cycles.get();
            cache_hits += cpu.cache.stats().hits.get();
            cache_misses += cpu.cache.stats().misses.get();
            tlb_misses += cpu.tlb.stats().misses.get();
        }
        r.push_count("cpu.ops", ops);
        r.push_count("cpu.reads", reads);
        r.push_count("cpu.writes", writes);
        r.push_count("cpu.compute_cycles", compute);
        r.push_count("cpu.local_misses", local);
        r.push_count("cpu.remote_misses", remote);
        r.push_count("cpu.upgrades", upgrades);
        r.push_count("cpu.miss_stall_cycles", stall);
        r.push_count("cpu.barrier_wait_cycles", barrier_wait);
        r.push_count("cpu.cache_hits", cache_hits);
        r.push_count("cpu.cache_misses", cache_misses);
        r.push_count("cpu.tlb_misses", tlb_misses);
        r.push_count("dir.ops", self.dir_stats.dir_ops.get());
        r.push_count("dir.invalidations", self.dir_stats.invalidations.get());
        r.push_count("dir.recalls", self.dir_stats.recalls.get());
        r.push_count("dir.writebacks", self.dir_stats.writebacks.get());
        r.push_count("dir.deferred", self.dir_stats.deferred.get());
        let net = self.network.stats();
        r.push_count("net.packets", net.total_packets());
        r.push_count("net.bytes", net.total_bytes());
        r
    }
}

impl EventHandler for DirnnbMachine {
    type Event = Event;

    fn handle(&mut self, now: Cycles, event: Event, queue: &mut EventQueue<Event>) {
        match event {
            Event::CpuStep(n) => self.cpu_step(n, now, queue),
            Event::HomeRequest { addr, from, req } => {
                self.home_request(addr, NodeId::new(from), req, now, queue)
            }
            Event::HomeAck { addr } => self.home_ack(addr, now, queue),
            Event::HomeData { addr, from } => {
                self.home_data(addr, NodeId::new(from), now, queue)
            }
            Event::Invalidate { addr, node } => {
                self.invalidate_at(addr, node as usize, now, queue)
            }
            Event::Recall {
                addr,
                node,
                invalidate,
            } => self.recall_at(addr, node as usize, invalidate, now, queue),
            Event::Grant { addr, node, req } => {
                self.grant_arrived(addr, node as usize, req, now, queue)
            }
            Event::Writeback { addr, from } => {
                self.writeback(addr, NodeId::new(from), now, queue)
            }
            Event::BarrierRelease { generation } => self.barrier_release(generation, now, queue),
        }
    }
}
