//! The DirNNB machine: CPUs + hardware directory, driven by the same
//! event engine and workload op streams as Typhoon.
//!
//! # Parallel simulation
//!
//! Like `TyphoonMachine`, the machine honors `SystemConfig::sim_threads`
//! by splitting its nodes into contiguous shards under the conservative
//! window scheme of [`tt_sim::pdes`]. Directory entries are touched only
//! by events targeted at the block's home node, so each shard owns a
//! private directory map covering its homes (merged back after the run
//! for diagnostics). The one genuinely global structure is the coherent
//! value image: accesses to it go through a mutex, which is sound for
//! determinism because the protocol orders all same-word accesses by
//! coherence — causally unordered accesses (the only ones that can race
//! in wall-clock time inside a window) always touch different words.

use std::sync::Mutex;

use tt_base::addr::{VAddr, Vpn, BLOCK_BYTES, PAGE_BYTES, WORD_BYTES};
use tt_base::config::SystemConfig;
use tt_base::stats::{Counter, PdesTelemetry, Report};
use tt_base::workload::{Op, Workload};
use tt_base::{Cycles, DetRng, FxHashMap, NodeId};
use tt_mem::cache::Probe;
use tt_mem::{AccessKind, CacheModel, FifoTlb};
use tt_net::{Network, VirtualNet, ARG_WORD_BYTES, HANDLER_WORD_BYTES};
use tt_sim::{ShardQueue, Windowing};

use crate::dir::{DirBusy, DirReq, DirView, Directory};

/// Execution status of a CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CpuStatus {
    Ready,
    BlockedMiss,
    AtBarrier,
    Done,
}

/// Per-CPU statistics.
#[derive(Clone, Debug, Default)]
struct CpuStats {
    ops: Counter,
    reads: Counter,
    writes: Counter,
    compute_cycles: Counter,
    local_misses: Counter,
    remote_misses: Counter,
    upgrades: Counter,
    miss_stall_cycles: Counter,
    barrier_wait_cycles: Counter,
    /// Cycles skipped by `Op::WaitUntil` (open-loop arrival idling).
    idle_cycles: Counter,
}

struct Cpu {
    cache: CacheModel,
    tlb: FifoTlb<Vpn>,
    chunk: Vec<Op>,
    pc: usize,
    clock: Cycles,
    status: CpuStatus,
    step_pending: bool,
    suspended_at: Cycles,
    /// Block address of the outstanding miss, if any. Used to defer a
    /// recall that overtakes this CPU's grant (the protocol's
    /// "relinquish and retry" for a busy owner).
    pending_block: Option<u64>,
    /// Values observed by `Op::ReadRecord` loads, in program order.
    recorded: Vec<u64>,
    stats: CpuStats,
}

/// Directory statistics (per shard; summed into the report).
#[derive(Clone, Debug, Default)]
struct DirStats {
    dir_ops: Counter,
    invalidations: Counter,
    recalls: Counter,
    writebacks: Counter,
    deferred: Counter,
}

impl DirStats {
    fn absorb(&mut self, other: &DirStats) {
        self.dir_ops.add(other.dir_ops.get());
        self.invalidations.add(other.invalidations.get());
        self.recalls.add(other.recalls.get());
        self.writebacks.add(other.writebacks.get());
        self.deferred.add(other.deferred.get());
    }
}

/// Simulation events.
#[derive(Clone, Debug)]
#[doc(hidden)]
pub enum Event {
    CpuStep(usize),
    HomeRequest { addr: u64, from: u16, req: DirReq },
    HomeAck { addr: u64 },
    HomeData { addr: u64, from: u16 },
    Invalidate { addr: u64, node: u16 },
    Recall { addr: u64, node: u16, invalidate: bool },
    Grant { addr: u64, node: u16, req: DirReq },
    Writeback { addr: u64, from: u16 },
    BarrierRelease { generation: u64 },
}

/// Barrier bookkeeping a shard carries (see the Typhoon equivalent):
/// arrival aggregation lives in the queue/driver, this only tracks the
/// generation and release count, which every shard observes identically.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct BarrierTally {
    generation: u64,
    releases: u64,
}

/// One coherent page of the machine's single value image.
type StorePage = Box<[u64; PAGE_BYTES / WORD_BYTES]>;

/// The result of a completed simulation.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Total execution time (when the last processor finished).
    pub cycles: Cycles,
    /// Aggregated statistics.
    pub report: Report,
    /// Host-side window-driver telemetry; `None` on the sequential path.
    /// Kept out of `report` so sequential and parallel reports compare
    /// equal.
    pub pdes: Option<PdesTelemetry>,
}

/// The all-hardware DirNNB machine (see crate docs).
pub struct DirnnbMachine {
    cfg: SystemConfig,
    quantum: Cycles,
    cpus: Vec<Cpu>,
    dirs: Directory,
    home_map: FxHashMap<Vpn, NodeId>,
    /// Owner→home page-count weights (`owner * nodes + home`), used to
    /// pick shard cut points that keep directory traffic shard-local.
    /// `None` when the node count makes the matrix not worth it.
    home_affinity: Option<Vec<u64>>,
    store: Mutex<FxHashMap<Vpn, StorePage>>,
    network: Network,
    barrier: BarrierTally,
    workload: Mutex<Box<dyn Workload>>,
    done: Vec<Option<Cycles>>,
    dir_stats: DirStats,
    verify_values: bool,
    /// Seed for same-cycle tie-shuffling, applied to the event queue at
    /// `run` time (a `tt-check` legal-nondeterminism knob).
    tie_shuffle: Option<u64>,
}

/// The node an event's handling mutates (`None` = machine-global).
/// Home-directed events (requests, acks, data, writebacks) are handled
/// at the block's home, which takes the layout's home map to compute.
fn target_in(home_map: &FxHashMap<Vpn, NodeId>, event: &Event) -> Option<usize> {
    match *event {
        Event::CpuStep(n) => Some(n),
        Event::Invalidate { node, .. }
        | Event::Recall { node, .. }
        | Event::Grant { node, .. } => Some(node as usize),
        Event::HomeRequest { addr, .. }
        | Event::HomeAck { addr }
        | Event::HomeData { addr, .. }
        | Event::Writeback { addr, .. } => Some(home_of_in(home_map, addr).index()),
        Event::BarrierRelease { .. } => None,
    }
}

fn home_of_in(home_map: &FxHashMap<Vpn, NodeId>, addr: u64) -> NodeId {
    let vpn = VAddr::new(addr).page();
    *home_map
        .get(&vpn)
        .unwrap_or_else(|| panic!("access to {addr:#x} outside the shared segment layout"))
}

/// A shard's view of the machine: the contiguous CPU range it owns, the
/// directory entries of its home blocks, and the shared pieces.
struct Shard<'m> {
    cfg: &'m SystemConfig,
    quantum: Cycles,
    /// First global node index this shard owns.
    first: usize,
    cpus: &'m mut [Cpu],
    done: &'m mut [Option<Cycles>],
    /// Directory state homed at this shard's nodes. Disjoint across
    /// shards because home-directed events are routed by home (and
    /// directory pages align with the page-granular home map).
    dirs: &'m mut Directory,
    home_map: &'m FxHashMap<Vpn, NodeId>,
    store: &'m Mutex<FxHashMap<Vpn, StorePage>>,
    /// This shard's network instance (statistics only; folded back after
    /// the run).
    network: &'m mut Network,
    workload: &'m Mutex<Box<dyn Workload>>,
    barrier: &'m mut BarrierTally,
    dir_stats: &'m mut DirStats,
    verify_values: bool,
}

impl DirnnbMachine {
    /// Builds the machine for a workload.
    pub fn new(cfg: SystemConfig, workload: Box<dyn Workload>) -> Self {
        let layout = workload.layout();
        let mut home_map = FxHashMap::default();
        // Owner→home page weights for the topology-aware shard map
        // (skipped past 256 nodes, where the equal split is used).
        let n = cfg.nodes;
        let mut home_affinity = (2..=256).contains(&n).then(|| vec![0u64; n * n]);
        for (vpn, owner, _mode) in layout.pages(cfg.nodes) {
            let home = match cfg.dirnnb.placement {
                tt_base::config::DirPlacement::RoundRobin => {
                    NodeId::new((vpn.0 % cfg.nodes as u64) as u16)
                }
                tt_base::config::DirPlacement::Owner => owner,
            };
            if let Some(w) = home_affinity.as_mut() {
                w[owner.index() * n + home.index()] += 1;
            }
            home_map.insert(vpn, home);
        }
        let mut rng = DetRng::new(cfg.seed);
        let cpus = (0..cfg.nodes)
            .map(|i| Cpu {
                cache: CacheModel::new(
                    cfg.cpu.cache_bytes,
                    cfg.cpu.cache_assoc,
                    BLOCK_BYTES,
                    rng.fork(i as u64),
                ),
                tlb: FifoTlb::new(cfg.cpu.tlb_entries),
                chunk: Vec::new(),
                pc: 0,
                clock: Cycles::ZERO,
                status: CpuStatus::Ready,
                step_pending: false,
                suspended_at: Cycles::ZERO,
                pending_block: None,
                recorded: Vec::new(),
                stats: CpuStats::default(),
            })
            .collect();
        let mut network = Network::new(cfg.nodes, cfg.timing.network_latency);
        network.set_occupancy(cfg.timing.network_occupancy);
        network.set_topology(cfg.topology);
        let quantum = cfg.timing.network_latency;
        let done = vec![None; cfg.nodes];
        let verify_values = cfg.verify_values;
        DirnnbMachine {
            dirs: Directory::new(cfg.nodes),
            cfg,
            quantum,
            cpus,
            home_map,
            home_affinity,
            store: Mutex::new(FxHashMap::default()),
            network,
            barrier: BarrierTally::default(),
            workload: Mutex::new(workload),
            done,
            dir_stats: DirStats::default(),
            verify_values,
            tie_shuffle: None,
        }
    }

    /// Delivers same-cycle events in a seed-dependent permutation instead
    /// of FIFO order (see `EventQueue::enable_tie_shuffle`). Call before
    /// [`DirnnbMachine::run`].
    pub fn set_tie_shuffle(&mut self, seed: u64) {
        self.tie_shuffle = Some(seed);
    }

    /// The word at `addr` in the machine's global memory image, for the
    /// `tt-check` differential checker. DirNNB keeps one coherent value
    /// image (hardware coherence is exact by construction), so this *is*
    /// the final memory state once the machine has drained.
    pub fn shared_word(&mut self, addr: VAddr) -> u64 {
        let mut store = self.store.lock().expect("store poisoned");
        read_store(&mut store, addr)
    }

    /// Values `node`'s CPU observed via `Op::ReadRecord` loads, in
    /// program order (litmus harnesses read these back after a run).
    pub fn recorded_reads(&self, node: usize) -> &[u64] {
        &self.cpus[node].recorded
    }

    /// Runs the simulation to completion. `SystemConfig::sim_threads`
    /// selects the sequential event loop or the windowed parallel one;
    /// results are bit-identical either way.
    ///
    /// # Panics
    ///
    /// Panics on deadlock or on a value-verification failure, like
    /// `TyphoonMachine::run`.
    pub fn run(&mut self) -> RunResult {
        let (shard_count, threads) = self.cfg.pdes_shape();
        if shard_count == 1 {
            self.run_sequential()
        } else {
            self.run_parallel(shard_count, threads)
        }
    }

    /// Topology-aware shard map: contiguous `(first, len)` ranges whose
    /// cut points maximize the owner→home page weight kept inside a
    /// shard (equivalently, minimize cross-shard directory traffic),
    /// subject to every shard size staying within one node of the equal
    /// split — shard maps tune only wall-clock, never cycles, so load
    /// balance must not be traded away wholesale. Deterministic: size
    /// candidates are tried equal-split-first and only strict
    /// improvements move a cut, so uniform weights (e.g. round-robin
    /// placement) reproduce [`split_ranges`] exactly.
    fn affinity_ranges(&self, parts: usize) -> Vec<(usize, usize)> {
        let n = self.cfg.nodes;
        let equal = split_ranges(n, parts);
        let Some(w) = self.home_affinity.as_ref().filter(|_| (2..=n).contains(&parts)) else {
            return equal;
        };
        // 2D prefix sums: pre[i][j] = Σ w[a][b] for a < i, b < j.
        let m = n + 1;
        let mut pre = vec![0u64; m * m];
        for i in 0..n {
            for j in 0..n {
                pre[(i + 1) * m + j + 1] =
                    w[i * n + j] + pre[i * m + j + 1] + pre[(i + 1) * m + j] - pre[i * m + j];
            }
        }
        let intra = |a: usize, b: usize| -> u64 {
            pre[b * m + b] + pre[a * m + a] - pre[a * m + b] - pre[b * m + a]
        };
        let lo = (n / parts).max(1);
        let hi = n / parts + usize::from(!n.is_multiple_of(parts));
        // best[s][c]: max intra weight over splits of nodes [0, c) into
        // s shards; from[s][c] the cut that achieved it.
        let mut best = vec![vec![None::<u64>; m]; parts + 1];
        let mut from = vec![vec![0usize; m]; parts + 1];
        best[0][0] = Some(0);
        for s in 1..=parts {
            let eq_len = equal[s - 1].1;
            let mut sizes: Vec<usize> = (lo..=hi).collect();
            sizes.sort_by_key(|&l| (l != eq_len, l));
            for c in 1..=n {
                for &len in &sizes {
                    if len > c {
                        continue;
                    }
                    let p = c - len;
                    let Some(b) = best[s - 1][p] else { continue };
                    let cand = b + intra(p, c);
                    if best[s][c].is_none_or(|cur| cand > cur) {
                        best[s][c] = Some(cand);
                        from[s][c] = p;
                    }
                }
            }
        }
        if best[parts][n].is_none() {
            return equal;
        }
        let mut cuts = vec![n];
        let mut c = n;
        for s in (1..=parts).rev() {
            c = from[s][c];
            cuts.push(c);
        }
        cuts.reverse();
        debug_assert_eq!(cuts[0], 0, "reconstruction must reach node 0");
        (0..parts)
            .map(|i| (cuts[i], cuts[i + 1] - cuts[i]))
            .collect()
    }

    fn run_sequential(&mut self) -> RunResult {
        let mut queue = ShardQueue::new(0, self.cfg.nodes);
        if let Some(seed) = self.tie_shuffle {
            queue.enable_tie_shuffle(seed);
        }
        queue.enable_inline_barrier(self.cfg.nodes, self.cfg.timing.barrier_latency);
        {
            let mut shard = Shard {
                cfg: &self.cfg,
                quantum: self.quantum,
                first: 0,
                cpus: &mut self.cpus,
                done: &mut self.done,
                dirs: &mut self.dirs,
                home_map: &self.home_map,
                store: &self.store,
                network: &mut self.network,
                workload: &self.workload,
                barrier: &mut self.barrier,
                dir_stats: &mut self.dir_stats,
                verify_values: self.verify_values,
            };
            shard.init_nodes(&mut queue);
            let home_map = shard.home_map;
            while let Some((now, event)) = queue.pop(|e: &Event| target_in(home_map, e)) {
                shard.handle(now, event, &mut queue);
            }
        }
        self.finish()
    }

    fn run_parallel(&mut self, shard_count: usize, threads: usize) -> RunResult {
        let nodes_total = self.cfg.nodes;
        let lookahead = self.network.lookahead();
        let release_delay = self.cfg.timing.barrier_latency;
        let policy = self.cfg.window_policy;
        let ranges = self.affinity_ranges(shard_count);
        let telemetry;

        let mut queues: Vec<ShardQueue<Event>> = ranges
            .iter()
            .map(|&(first, len)| {
                let mut q = ShardQueue::new(first, len);
                if let Some(seed) = self.tie_shuffle {
                    q.enable_tie_shuffle(seed);
                }
                q
            })
            .collect();
        let mut nets: Vec<Network> = (0..shard_count).map(|_| self.network.clone()).collect();
        let mut tallies = vec![BarrierTally::default(); shard_count];
        let mut shard_dirs: Vec<Directory> =
            (0..shard_count).map(|_| Directory::new(nodes_total)).collect();
        let mut shard_stats = vec![DirStats::default(); shard_count];

        {
            let DirnnbMachine {
                cfg,
                quantum,
                cpus,
                home_map,
                store,
                workload,
                done,
                verify_values,
                ..
            } = self;
            let mut shards: Vec<Shard<'_>> = Vec::with_capacity(shard_count);
            let mut cpus_rest = &mut cpus[..];
            let mut done_rest = &mut done[..];
            let mut nets_iter = nets.iter_mut();
            let mut tally_iter = tallies.iter_mut();
            let mut dirs_iter = shard_dirs.iter_mut();
            let mut stats_iter = shard_stats.iter_mut();
            for &(first, len) in &ranges {
                let (shard_cpus, rest) = cpus_rest.split_at_mut(len);
                cpus_rest = rest;
                let (done_slice, rest) = done_rest.split_at_mut(len);
                done_rest = rest;
                shards.push(Shard {
                    cfg,
                    quantum: *quantum,
                    first,
                    cpus: shard_cpus,
                    done: done_slice,
                    dirs: dirs_iter.next().expect("one dir map per shard"),
                    home_map,
                    store,
                    network: nets_iter.next().expect("one net per shard"),
                    workload,
                    barrier: tally_iter.next().expect("one tally per shard"),
                    dir_stats: stats_iter.next().expect("one stats block per shard"),
                    verify_values: *verify_values,
                });
            }
            for (shard, queue) in shards.iter_mut().zip(queues.iter_mut()) {
                shard.init_nodes(queue);
            }
            let home_map: &FxHashMap<Vpn, NodeId> = home_map;
            telemetry = tt_sim::run_windows(
                &mut shards,
                &mut queues,
                Windowing {
                    lookahead,
                    release_delay,
                    barrier_expected: nodes_total,
                    policy,
                    threads,
                },
                |shard: &mut Shard<'_>, now, event, queue| shard.handle(now, event, queue),
                |_shard, queue, at, generation| {
                    queue.deliver_release(at, generation, Event::BarrierRelease { generation })
                },
                |e: &Event| target_in(home_map, e),
            )
            .1;
        }

        for net in &nets {
            self.network.absorb_stats(net);
        }
        for stats in &shard_stats {
            self.dir_stats.absorb(stats);
        }
        // Fold shard directories back for post-run diagnostics; they are
        // disjoint by construction (keyed by home).
        for dirs in shard_dirs {
            self.dirs.absorb(dirs);
        }
        assert!(
            tallies.windows(2).all(|w| w[0] == w[1]),
            "shards disagree on barrier history: {tallies:?}"
        );
        self.barrier = tallies[0].clone();
        let mut result = self.finish();
        result.pdes = Some(telemetry);
        result
    }

    /// Asserts the machine drained cleanly and builds the result.
    fn finish(&mut self) -> RunResult {
        let stuck: Vec<_> = self
            .cpus
            .iter()
            .enumerate()
            .filter(|(_, c)| c.status != CpuStatus::Done)
            .map(|(i, c)| (i, c.status))
            .collect();
        if !stuck.is_empty() {
            let busy = self.dirs.stuck();
            panic!("DirNNB machine deadlocked: {stuck:?}; stuck directory entries: {busy:?}");
        }
        let cycles = self
            .done
            .iter()
            .map(|d| d.expect("all done"))
            .max()
            .unwrap_or(Cycles::ZERO);
        RunResult {
            cycles,
            report: self.build_report(cycles),
            pdes: None,
        }
    }

    fn build_report(&self, cycles: Cycles) -> Report {
        let mut r = Report::new();
        r.push_count("machine.cycles", cycles.raw());
        r.push_count("machine.nodes", self.cfg.nodes as u64);
        r.push_count("machine.barriers", self.barrier.releases);
        let mut ops = 0u64;
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut compute = 0u64;
        let mut local = 0u64;
        let mut remote = 0u64;
        let mut upgrades = 0u64;
        let mut stall = 0u64;
        let mut barrier_wait = 0u64;
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        let mut tlb_misses = 0u64;
        let mut idle = 0u64;
        for cpu in &self.cpus {
            ops += cpu.stats.ops.get();
            idle += cpu.stats.idle_cycles.get();
            reads += cpu.stats.reads.get();
            writes += cpu.stats.writes.get();
            compute += cpu.stats.compute_cycles.get();
            local += cpu.stats.local_misses.get();
            remote += cpu.stats.remote_misses.get();
            upgrades += cpu.stats.upgrades.get();
            stall += cpu.stats.miss_stall_cycles.get();
            barrier_wait += cpu.stats.barrier_wait_cycles.get();
            cache_hits += cpu.cache.stats().hits.get();
            cache_misses += cpu.cache.stats().misses.get();
            tlb_misses += cpu.tlb.stats().misses.get();
        }
        r.push_count("cpu.ops", ops);
        r.push_count("cpu.reads", reads);
        r.push_count("cpu.writes", writes);
        r.push_count("cpu.compute_cycles", compute);
        r.push_count("cpu.local_misses", local);
        r.push_count("cpu.remote_misses", remote);
        r.push_count("cpu.upgrades", upgrades);
        r.push_count("cpu.miss_stall_cycles", stall);
        r.push_count("cpu.barrier_wait_cycles", barrier_wait);
        r.push_count("cpu.cache_hits", cache_hits);
        r.push_count("cpu.cache_misses", cache_misses);
        r.push_count("cpu.tlb_misses", tlb_misses);
        r.push_count("cpu.idle_cycles", idle);
        r.push_count("dir.ops", self.dir_stats.dir_ops.get());
        r.push_count("dir.invalidations", self.dir_stats.invalidations.get());
        r.push_count("dir.recalls", self.dir_stats.recalls.get());
        r.push_count("dir.writebacks", self.dir_stats.writebacks.get());
        r.push_count("dir.deferred", self.dir_stats.deferred.get());
        let net = self.network.stats();
        r.push_count("net.packets", net.total_packets());
        r.push_count("net.bytes", net.total_bytes());
        r
    }
}

/// Contiguous `(first, len)` node ranges splitting `total` nodes into
/// `parts` shards of near-equal size.
fn split_ranges(total: usize, parts: usize) -> Vec<(usize, usize)> {
    (0..parts)
        .map(|i| {
            let first = i * total / parts;
            let end = (i + 1) * total / parts;
            (first, end - first)
        })
        .collect()
}

fn read_store(store: &mut FxHashMap<Vpn, StorePage>, addr: VAddr) -> u64 {
    let page = store
        .entry(addr.page())
        .or_insert_with(|| Box::new([0u64; PAGE_BYTES / WORD_BYTES]));
    page[(addr.page_offset() as usize) / WORD_BYTES]
}

fn write_store(store: &mut FxHashMap<Vpn, StorePage>, addr: VAddr, value: u64) {
    let page = store
        .entry(addr.page())
        .or_insert_with(|| Box::new([0u64; PAGE_BYTES / WORD_BYTES]));
    page[(addr.page_offset() as usize) / WORD_BYTES] = value;
}

impl<'m> Shard<'m> {
    /// Dispatches one event, declaring the handling node as the origin
    /// of everything the handler schedules.
    fn handle(&mut self, now: Cycles, event: Event, queue: &mut ShardQueue<Event>) {
        match target_in(self.home_map, &event) {
            Some(t) => queue.set_origin(t),
            None => queue.set_origin_global(),
        }
        match event {
            Event::CpuStep(n) => self.cpu_step(n, now, queue),
            Event::HomeRequest { addr, from, req } => {
                self.home_request(addr, NodeId::new(from), req, now, queue)
            }
            Event::HomeAck { addr } => self.home_ack(addr, now, queue),
            Event::HomeData { addr, from } => self.home_data(addr, NodeId::new(from), now, queue),
            Event::Invalidate { addr, node } => self.invalidate_at(addr, node as usize, now, queue),
            Event::Recall {
                addr,
                node,
                invalidate,
            } => self.recall_at(addr, node as usize, invalidate, now, queue),
            Event::Grant { addr, node, req } => {
                self.grant_arrived(addr, node as usize, req, now, queue)
            }
            Event::Writeback { addr, from } => self.writeback(addr, NodeId::new(from), now, queue),
            Event::BarrierRelease { generation } => self.release_local(now, generation, queue),
        }
    }

    /// Seeds the queue with each owned node's first CPU step.
    fn init_nodes(&mut self, queue: &mut ShardQueue<Event>) {
        for l in 0..self.cpus.len() {
            let n = self.first + l;
            queue.set_origin(n);
            self.cpus[l].step_pending = true;
            queue.schedule_for(Cycles::ZERO, n, Event::CpuStep(n));
        }
    }

    fn home_of(&self, addr: u64) -> NodeId {
        home_of_in(self.home_map, addr)
    }

    /// Injects a protocol message at `inject` and returns its arrival
    /// time at `dst`: the traffic accounting plus the network's latency
    /// model — a self-send arrives at `inject` (local hand-off is in the
    /// Table 2 costs), `Topology::Ideal` charges the constant latency,
    /// and routed topologies charge hop counts plus per-link queuing.
    /// Wire size matches the one-argument packet `send` would have been
    /// handed: handler word + one argument word, plus a coherence block
    /// when `data` is set.
    fn deliver(&mut self, inject: Cycles, src: NodeId, dst: NodeId, data: bool) -> Cycles {
        let wire = HANDLER_WORD_BYTES + ARG_WORD_BYTES + if data { BLOCK_BYTES } else { 0 };
        self.network.deliver_at(inject, src, dst, VirtualNet::Request, wire)
    }

    // --- CPU execution ----------------------------------------------------

    /// The per-op inner loop. Ops that touch only this CPU (compute,
    /// calls, barriers, chunk refills) run under one split borrow of
    /// `self` — no re-indexing per op, mirroring `TyphoonMachine`.
    /// Memory ops break out to [`Self::access`], which needs the
    /// directory and network.
    fn cpu_step(&mut self, n: usize, now: Cycles, queue: &mut ShardQueue<Event>) {
        let l = n - self.first;
        {
            let cpu = &mut self.cpus[l];
            cpu.step_pending = false;
            if cpu.status != CpuStatus::Ready {
                return;
            }
            if cpu.clock < now {
                cpu.clock = now;
            }
        }
        let mut deadline = now + self.quantum;
        loop {
            let (addr, kind, value, expect, record) = {
                let Shard {
                    cfg,
                    quantum,
                    cpus,
                    barrier,
                    workload,
                    done,
                    ..
                } = self;
                let cpu = &mut cpus[l];
                loop {
                    // Refill the op chunk if exhausted, reusing its allocation.
                    if cpu.pc >= cpu.chunk.len() {
                        let mut chunk = std::mem::take(&mut cpu.chunk);
                        let refilled = workload
                            .lock()
                            .expect("workload poisoned")
                            .next_chunk_into(NodeId::new(n as u16), &mut chunk);
                        if refilled {
                            cpu.chunk = chunk;
                            cpu.pc = 0;
                            if cpu.chunk.is_empty() {
                                continue;
                            }
                        } else {
                            cpu.status = CpuStatus::Done;
                            done[l] = Some(cpu.clock);
                            return;
                        }
                    }
                    let op = cpu.chunk[cpu.pc];
                    match op {
                        Op::Compute(k) => {
                            cpu.clock += Cycles::new(k as u64);
                            cpu.stats.compute_cycles.add(k as u64);
                            cpu.stats.ops.inc();
                            cpu.pc += 1;
                        }
                        Op::UserCall { .. } => {
                            // A hardware shared-memory machine has no user-level
                            // protocol; calls complete immediately.
                            cpu.clock += Cycles::new(1);
                            cpu.stats.ops.inc();
                            cpu.pc += 1;
                        }
                        Op::Barrier => {
                            cpu.pc += 1;
                            cpu.stats.ops.inc();
                            cpu.status = CpuStatus::AtBarrier;
                            cpu.suspended_at = cpu.clock;
                            let arrival = cpu.clock;
                            // Inline (single-shard) mode completes the
                            // barrier here; windowed mode aggregates
                            // arrivals at the window driver.
                            if let Some(release_at) = queue.note_barrier_arrival(arrival) {
                                queue.schedule_global(
                                    release_at,
                                    Event::BarrierRelease {
                                        generation: barrier.generation,
                                    },
                                );
                            }
                            return;
                        }
                        Op::Read { addr, expect } => {
                            break (addr, AccessKind::Load, 0, expect, false)
                        }
                        Op::ReadRecord { addr } => {
                            break (addr, AccessKind::Load, 0, None, true)
                        }
                        Op::Write { addr, value } => {
                            break (addr, AccessKind::Store, value, None, false)
                        }
                        Op::WaitUntil { until } => {
                            cpu.stats.ops.inc();
                            cpu.pc += 1;
                            let target = Cycles::new(until);
                            if target > cpu.clock {
                                cpu.stats.idle_cycles.add((target - cpu.clock).raw());
                                cpu.clock = target;
                            }
                        }
                    }
                    if cpu.clock >= deadline {
                        let at = cpu.clock;
                        // Direct execution (WWT-style): if every pending
                        // event lies strictly beyond this CPU's clock, the
                        // wakeup we are about to schedule would be the very
                        // next event popped — skip the queue round trip and
                        // keep executing inline. Under the window scheme
                        // the run must also stay below the window end. Only
                        // the self-wakeup (a reserved key) is elided, so
                        // reported cycles stay byte-identical.
                        if cfg.direct_execution
                            && queue.peek_time().is_none_or(|t| t > at)
                            && queue.window_end().is_none_or(|end| at < end)
                        {
                            deadline = at + *quantum;
                            continue;
                        }
                        cpu.step_pending = true;
                        queue.schedule_wakeup(at, n, Event::CpuStep(n));
                        return;
                    }
                }
            };
            if !self.access(n, queue, addr, kind, value, expect, record) {
                return;
            }
            if self.cpus[l].clock >= deadline {
                let at = self.cpus[l].clock;
                // Same direct-execution bypass as the inner loop; see there.
                if self.cfg.direct_execution
                    && queue.peek_time().is_none_or(|t| t > at)
                    && queue.window_end().is_none_or(|end| at < end)
                {
                    deadline = at + self.quantum;
                    continue;
                }
                let cpu = &mut self.cpus[l];
                cpu.step_pending = true;
                queue.schedule_wakeup(at, n, Event::CpuStep(n));
                return;
            }
        }
    }

    /// Executes one access; returns `false` if the CPU blocked on a miss.
    #[allow(clippy::too_many_arguments)]
    fn access(
        &mut self,
        n: usize,
        queue: &mut ShardQueue<Event>,
        addr: VAddr,
        kind: AccessKind,
        value: u64,
        expect: Option<u64>,
        record: bool,
    ) -> bool {
        let l = n - self.first;
        let me = NodeId::new(n as u16);
        let block = addr.block_base().raw();
        let key = block / BLOCK_BYTES as u64;
        let mut cost = Cycles::new(1);
        self.cpus[l].stats.ops.inc();
        if !self.cpus[l].tlb.access(addr.page()) {
            cost += self.cfg.timing.tlb_miss;
        }
        let probe = self.cpus[l].cache.probe(key);
        let req = match (probe, kind) {
            (Probe::HitOwned, _) | (Probe::HitShared, AccessKind::Load) => None,
            (Probe::HitShared, AccessKind::Store) => Some(DirReq::Upgrade),
            (Probe::Miss, AccessKind::Load) => Some(DirReq::Read),
            (Probe::Miss, AccessKind::Store) => Some(DirReq::Write),
        };
        let Some(req) = req else {
            // Cache hit: no directory involvement, so the home lookup is
            // not needed — this is the per-op fast path.
            self.complete_access(n, addr, kind, value, expect, record);
            self.cpus[l].clock += cost;
            self.cpus[l].pc += 1;
            return true;
        };
        let home = self.home_of(addr.raw());

        // Fast local path: home is this node and the directory can grant
        // immediately — a plain 29-cycle local miss.
        if home == me && !self.dirs.is_busy(block) {
            let fast = match (self.dirs.view(block), req) {
                (DirView::Uncached | DirView::Shared, DirReq::Read) => {
                    self.dirs.add_sharer(block, me);
                    Some(false)
                }
                (DirView::Uncached, DirReq::Write) => {
                    self.dirs.set_exclusive(block, me);
                    Some(true)
                }
                (DirView::Shared, DirReq::Upgrade | DirReq::Write)
                    if !self.dirs.has_other_sharers(block, me) =>
                {
                    self.dirs.set_exclusive(block, me);
                    Some(true)
                }
                _ => None,
            };
            if let Some(owned) = fast {
                cost += self.cfg.timing.local_miss;
                self.cpus[l].stats.local_misses.inc();
                if req == DirReq::Upgrade {
                    // The line is already resident shared.
                    self.cpus[l].cache.set_owned(key, true);
                } else {
                    self.fill(n, key, owned, &mut cost, queue);
                }
                self.complete_access(n, addr, kind, value, expect, record);
                self.cpus[l].clock += cost;
                self.cpus[l].pc += 1;
                return true;
            }
        }

        // Slow path: block and send the request to the home directory.
        if home == me {
            self.cpus[l].stats.local_misses.inc();
        } else {
            self.cpus[l].stats.remote_misses.inc();
            cost += self.cfg.dirnnb.remote_miss_request;
        }
        if req == DirReq::Upgrade {
            self.cpus[l].stats.upgrades.inc();
        }
        let inject = {
            let cpu = &mut self.cpus[l];
            cpu.clock += cost;
            cpu.status = CpuStatus::BlockedMiss;
            cpu.suspended_at = cpu.clock;
            cpu.pending_block = Some(block);
            cpu.clock
        };
        let at = self.deliver(inject, me, home, false);
        queue.schedule_for(
            at,
            home.index(),
            Event::HomeRequest {
                addr: block,
                from: me.raw(),
                req,
            },
        );
        false
    }

    /// Functional completion: reads check the global store, writes update
    /// it (hardware-coherent shared memory has a single value image).
    fn complete_access(
        &mut self,
        n: usize,
        addr: VAddr,
        kind: AccessKind,
        value: u64,
        expect: Option<u64>,
        record: bool,
    ) {
        let l = n - self.first;
        match kind {
            AccessKind::Load => {
                self.cpus[l].stats.reads.inc();
                let got = {
                    let mut store = self.store.lock().expect("store poisoned");
                    read_store(&mut store, addr)
                };
                if record {
                    self.cpus[l].recorded.push(got);
                }
                if self.verify_values {
                    if let Some(expect) = expect {
                        assert_eq!(
                            got, expect,
                            "DirNNB coherence image mismatch: node {n} read {addr}"
                        );
                    }
                }
            }
            AccessKind::Store => {
                self.cpus[l].stats.writes.inc();
                let mut store = self.store.lock().expect("store poisoned");
                write_store(&mut store, addr, value);
            }
        }
    }

    /// Installs a block in a CPU cache; a displaced dirty victim notifies
    /// its home asynchronously and adds the Table 2 replacement charge.
    fn fill(
        &mut self,
        n: usize,
        key: u64,
        owned: bool,
        cost: &mut Cycles,
        queue: &mut ShardQueue<Event>,
    ) {
        let l = n - self.first;
        if let Some(victim) = self.cpus[l].cache.fill(key, owned) {
            *cost += if victim.owned {
                self.cfg.dirnnb.replace_exclusive
            } else {
                self.cfg.dirnnb.replace_shared
            };
            if victim.owned {
                let victim_addr = victim.block * BLOCK_BYTES as u64;
                let home = self.home_of(victim_addr);
                let me = NodeId::new(n as u16);
                let clock = self.cpus[l].clock;
                let at = self.deliver(clock.max(queue.now()), me, home, true);
                queue.schedule_for(
                    at,
                    home.index(),
                    Event::Writeback {
                        addr: victim_addr,
                        from: n as u16,
                    },
                );
            }
        }
    }

    // --- Directory engine --------------------------------------------------

    fn home_request(
        &mut self,
        addr: u64,
        from: NodeId,
        req: DirReq,
        now: Cycles,
        queue: &mut ShardQueue<Event>,
    ) {
        if self.dirs.is_busy(addr) {
            self.dir_stats.deferred.inc();
            self.dirs.push_deferred(addr, from, req);
            return;
        }
        self.dir_stats.dir_ops.inc();
        let home = self.home_of(addr);
        let base = self.cfg.dirnnb.dir_op_base;
        match (self.dirs.view(addr), req) {
            (DirView::Uncached | DirView::Shared, DirReq::Read) => {
                self.dirs.add_sharer(addr, from);
                self.grant(addr, from, req, now + base, queue);
            }
            (DirView::Uncached, DirReq::Write | DirReq::Upgrade) => {
                self.dirs.set_exclusive(addr, from);
                self.grant(addr, from, req, now + base, queue);
            }
            (DirView::Shared, DirReq::Write | DirReq::Upgrade) => {
                let targets = self.dirs.sharers_except(addr, from);
                if targets.is_empty() {
                    self.dirs.set_exclusive(addr, from);
                    self.grant(addr, from, req, now + base, queue);
                    return;
                }
                let cost = base
                    + Cycles::new(self.cfg.dirnnb.dir_op_per_msg.raw() * targets.len() as u64);
                self.dir_stats.invalidations.add(targets.len() as u64);
                for t in &targets {
                    let at = self.deliver(now + cost, home, *t, false);
                    queue.schedule_for(
                        at,
                        t.index(),
                        Event::Invalidate {
                            addr,
                            node: t.raw(),
                        },
                    );
                }
                self.dirs.set_busy(
                    addr,
                    DirBusy::Invalidating {
                        acks_left: targets.len(),
                        to: from,
                        req,
                    },
                );
            }
            (DirView::Exclusive(owner), _) => {
                self.dir_stats.recalls.inc();
                let cost = base + self.cfg.dirnnb.dir_op_per_msg;
                let at = self.deliver(now + cost, home, owner, false);
                queue.schedule_for(
                    at,
                    owner.index(),
                    Event::Recall {
                        addr,
                        node: owner.raw(),
                        invalidate: !matches!(req, DirReq::Read),
                    },
                );
                self.dirs
                    .set_busy(addr, DirBusy::Recalling { owner, to: from, req });
            }
        }
    }

    /// Sends a grant back to the requester.
    fn grant(
        &mut self,
        addr: u64,
        to: NodeId,
        req: DirReq,
        at: Cycles,
        queue: &mut ShardQueue<Event>,
    ) {
        let home = self.home_of(addr);
        let mut cost = self.cfg.dirnnb.dir_op_per_msg;
        if req.needs_data() {
            cost += self.cfg.dirnnb.dir_op_block_send;
        }
        let deliver = self.deliver(at + cost, home, to, req.needs_data());
        queue.schedule_for(
            deliver,
            to.index(),
            Event::Grant {
                addr,
                node: to.raw(),
                req,
            },
        );
    }

    fn home_ack(&mut self, addr: u64, now: Cycles, queue: &mut ShardQueue<Event>) {
        let Some(DirBusy::Invalidating { acks_left, to, req }) = self.dirs.busy(addr) else {
            panic!("ack for a block that is not invalidating");
        };
        if acks_left > 1 {
            self.dirs.set_busy(
                addr,
                DirBusy::Invalidating {
                    acks_left: acks_left - 1,
                    to,
                    req,
                },
            );
            return;
        }
        self.dirs.clear_busy(addr);
        self.dirs.set_exclusive(addr, to);
        self.dir_stats.dir_ops.inc();
        self.grant(addr, to, req, now + self.cfg.dirnnb.dir_op_base, queue);
        self.drain_queue(addr, now, queue);
    }

    fn home_data(&mut self, addr: u64, from: NodeId, now: Cycles, queue: &mut ShardQueue<Event>) {
        let Some(DirBusy::Recalling { owner, to, req }) = self.dirs.busy(addr) else {
            panic!("recall data for a block that is not recalling");
        };
        debug_assert_eq!(owner, from);
        self.dirs.clear_busy(addr);
        match req {
            DirReq::Read => self.dirs.set_shared_pair(addr, owner, to),
            DirReq::Write | DirReq::Upgrade => self.dirs.set_exclusive(addr, to),
        }
        self.dir_stats.dir_ops.inc();
        let cost = self.cfg.dirnnb.dir_op_base + self.cfg.dirnnb.dir_op_block_recv;
        self.grant(addr, to, req, now + cost, queue);
        self.drain_queue(addr, now, queue);
    }

    fn drain_queue(&mut self, addr: u64, now: Cycles, queue: &mut ShardQueue<Event>) {
        loop {
            if self.dirs.is_busy(addr) {
                return;
            }
            let Some((from, req)) = self.dirs.pop_deferred(addr) else {
                return;
            };
            self.home_request(addr, from, req, now, queue);
        }
    }

    fn invalidate_at(&mut self, addr: u64, node: usize, now: Cycles, queue: &mut ShardQueue<Event>) {
        // The remote cache controller invalidates without involving its
        // CPU: 8 cycles plus the shared-replacement charge (Table 2).
        let key = addr / BLOCK_BYTES as u64;
        self.cpus[node - self.first].cache.invalidate(key);
        let cost = self.cfg.dirnnb.remote_invalidate + self.cfg.dirnnb.replace_shared;
        let home = self.home_of(addr);
        let me = NodeId::new(node as u16);
        let at = self.deliver(now + cost, me, home, false);
        queue.schedule_for(at, home.index(), Event::HomeAck { addr });
    }

    fn recall_at(
        &mut self,
        addr: u64,
        node: usize,
        invalidate: bool,
        now: Cycles,
        queue: &mut ShardQueue<Event>,
    ) {
        let l = node - self.first;
        let key = addr / BLOCK_BYTES as u64;
        let present = if invalidate {
            self.cpus[l].cache.invalidate(key)
        } else {
            self.cpus[l].cache.set_owned(key, false)
        };
        if !present {
            if self.cpus[l].pending_block == Some(addr) {
                // The recall overtook this node's own grant for the same
                // block (grants and recalls travel on different virtual
                // networks). Nack-and-retry, as a busy hardware owner
                // would: try again after the grant has landed.
                queue.schedule_for(
                    now + self.cfg.timing.network_latency,
                    node,
                    Event::Recall {
                        addr,
                        node: node as u16,
                        invalidate,
                    },
                );
                return;
            }
            // Otherwise the line was evicted while the recall was in
            // flight; the home completes from the writeback.
            return;
        }
        let cost = self.cfg.dirnnb.remote_invalidate + self.cfg.dirnnb.replace_exclusive;
        let home = self.home_of(addr);
        let me = NodeId::new(node as u16);
        let at = self.deliver(now + cost, me, home, true);
        queue.schedule_for(
            at,
            home.index(),
            Event::HomeData {
                addr,
                from: me.raw(),
            },
        );
    }

    fn writeback(&mut self, addr: u64, from: NodeId, now: Cycles, queue: &mut ShardQueue<Event>) {
        self.dir_stats.writebacks.inc();
        match self.dirs.busy(addr) {
            Some(DirBusy::Recalling { owner, .. }) if owner == from => {
                // The owner's eviction raced our recall; its writeback
                // carries the block.
                self.home_data(addr, from, now, queue);
            }
            Some(other) => panic!("writeback raced {other:?}"),
            None => {
                debug_assert_eq!(self.dirs.view(addr), DirView::Exclusive(from));
                self.dirs.set_uncached(addr);
            }
        }
    }

    fn grant_arrived(
        &mut self,
        addr: u64,
        node: usize,
        req: DirReq,
        now: Cycles,
        queue: &mut ShardQueue<Event>,
    ) {
        let l = node - self.first;
        let key = addr / BLOCK_BYTES as u64;
        let me = NodeId::new(node as u16);
        let home = self.home_of(addr);
        let mut cost = if home == me {
            self.cfg.timing.local_miss
        } else {
            self.cfg.dirnnb.remote_miss_finish
        };
        match req {
            DirReq::Upgrade => {
                // The line is still resident unless an intervening
                // invalidation removed it; then treat as a full fill.
                if !self.cpus[l].cache.set_owned(key, true) {
                    self.fill(node, key, true, &mut cost, queue);
                }
            }
            DirReq::Read => self.fill(node, key, false, &mut cost, queue),
            DirReq::Write => self.fill(node, key, true, &mut cost, queue),
        }
        // Complete the blocked op *now*, before releasing the CPU: the
        // grant delivers the data to the stalled load/store, so a recall
        // racing in behind it can never steal an incomplete access (that
        // would livelock two writers hammering one block).
        {
            let cpu = &mut self.cpus[l];
            debug_assert_eq!(cpu.status, CpuStatus::BlockedMiss);
            cpu.status = CpuStatus::Ready;
            cpu.pending_block = None;
        }
        let op = self.cpus[l].chunk[self.cpus[l].pc];
        match op {
            Op::Read { addr, expect } => {
                self.complete_access(node, addr, AccessKind::Load, 0, expect, false)
            }
            Op::ReadRecord { addr } => {
                self.complete_access(node, addr, AccessKind::Load, 0, None, true)
            }
            Op::Write { addr, value } => {
                self.complete_access(node, addr, AccessKind::Store, value, None, false)
            }
            other => unreachable!("blocked on a non-memory op {other:?}"),
        }
        let cpu = &mut self.cpus[l];
        cpu.pc += 1;
        cpu.clock = now + cost;
        cpu.stats
            .miss_stall_cycles
            .add((cpu.clock - cpu.suspended_at).raw());
        if !cpu.step_pending {
            cpu.step_pending = true;
            let at = cpu.clock;
            queue.schedule_for(at, node, Event::CpuStep(node));
        }
    }

    /// Releases this shard's own nodes from the barrier at `at` (see the
    /// Typhoon equivalent for the two-mode story).
    fn release_local(&mut self, at: Cycles, generation: u64, queue: &mut ShardQueue<Event>) {
        assert_eq!(generation, self.barrier.generation, "stale barrier release");
        self.barrier.generation += 1;
        self.barrier.releases += 1;
        for l in 0..self.cpus.len() {
            let n = self.first + l;
            let cpu = &mut self.cpus[l];
            assert_eq!(cpu.status, CpuStatus::AtBarrier, "node {n} missed the barrier");
            cpu.stats
                .barrier_wait_cycles
                .add((at - cpu.suspended_at).raw());
            cpu.status = CpuStatus::Ready;
            cpu.clock = at;
            if !cpu.step_pending {
                cpu.step_pending = true;
                queue.set_origin(n);
                queue.schedule_for(at, n, Event::CpuStep(n));
            }
        }
    }
}
