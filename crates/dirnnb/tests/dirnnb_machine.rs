//! End-to-end tests of the DirNNB baseline machine: Table 2 cost
//! composition, invalidation rounds, ownership recall, and determinism.

use tt_base::addr::{PAGE_BYTES, VAddr};
use tt_base::workload::{Layout, Op, Placement, Region, ScriptWorkload, SHARED_SEGMENT_BASE};
use tt_base::{Cycles, NodeId, SystemConfig};
use tt_dirnnb::DirnnbMachine;

fn layout_pages(pages: usize, placement: Placement) -> Layout {
    let mut l = Layout::new();
    l.add(Region {
        base: VAddr::new(SHARED_SEGMENT_BASE),
        bytes: pages * PAGE_BYTES,
        placement,
        mode: 0,
    });
    l
}

fn va(off: u64) -> VAddr {
    VAddr::new(SHARED_SEGMENT_BASE + off)
}

fn run(w: ScriptWorkload, nodes: usize) -> tt_dirnnb::RunResult {
    // These tests assert specific home-node behavior, so pin the machine
    // to the layout's owner placement.
    let mut cfg = SystemConfig::test_config(nodes);
    cfg.dirnnb.placement = tt_base::config::DirPlacement::Owner;
    DirnnbMachine::new(cfg, Box::new(w)).run()
}

#[test]
fn local_miss_costs_table_2() {
    // A single local read on the home node: 1 (op) + 25 (TLB) + 29 (local
    // miss) = 55 cycles.
    let layout = layout_pages(1, Placement::PerPage(vec![NodeId::new(0)]));
    let mut w = ScriptWorkload::new(1).with_layout(layout);
    w.set(0, vec![Op::Read { addr: va(0), expect: Some(0) }]);
    let r = run(w, 1);
    assert_eq!(r.cycles, Cycles::new(55));
    assert_eq!(r.report.get("cpu.local_misses"), Some(1.0));
}

#[test]
fn remote_clean_read_costs_compose() {
    // Remote read of an uncached block:
    //   1 + 25 (TLB) + 23 (request) + 11 (net) + 16 (dir) + 5 (msg)
    //   + 11 (block send) + 11 (net) + 34 (finish) = 137
    //   (the access completes when the grant arrives; there is no retry).
    let layout = layout_pages(1, Placement::PerPage(vec![NodeId::new(0)]));
    let mut w = ScriptWorkload::new(2).with_layout(layout);
    w.set(0, vec![]);
    w.set(1, vec![Op::Read { addr: va(0), expect: Some(0) }]);
    let r = run(w, 2);
    assert_eq!(r.report.get("cpu.remote_misses"), Some(1.0));
    // Node 1's finish time is exactly the composition above.
    assert_eq!(r.cycles, Cycles::new(137));
}

#[test]
fn producer_consumer_values_flow() {
    let layout = layout_pages(1, Placement::PerPage(vec![NodeId::new(0)]));
    let mut w = ScriptWorkload::new(2).with_layout(layout);
    w.set(
        0,
        vec![
            Op::Write { addr: va(0), value: 42 },
            Op::Barrier,
        ],
    );
    w.set(
        1,
        vec![
            Op::Barrier,
            Op::Read { addr: va(0), expect: Some(42) },
            Op::Read { addr: va(0), expect: Some(42) }, // hit
        ],
    );
    let r = run(w, 2);
    // The home held the block exclusive; the remote read recalled it.
    assert_eq!(r.report.get("dir.recalls"), Some(1.0));
}

#[test]
fn write_invalidates_sharers_and_collects_acks() {
    let nodes = 5;
    let layout = layout_pages(1, Placement::PerPage(vec![NodeId::new(0)]));
    let mut w = ScriptWorkload::new(nodes).with_layout(layout);
    w.set(
        0,
        vec![
            Op::Barrier,
            Op::Write { addr: va(0), value: 9 },
            Op::Barrier,
        ],
    );
    for n in 1..nodes {
        w.set(
            n,
            vec![
                Op::Read { addr: va(0), expect: Some(0) },
                Op::Barrier,
                Op::Barrier,
                Op::Read { addr: va(0), expect: Some(9) },
            ],
        );
    }
    let r = run(w, nodes);
    assert_eq!(r.report.get("dir.invalidations"), Some(4.0));
    // After invalidation, all four readers re-miss.
    assert!(r.report.get("cpu.remote_misses").unwrap() >= 8.0);
}

#[test]
fn ownership_migrates_with_recalls() {
    let layout = layout_pages(1, Placement::PerPage(vec![NodeId::new(0)]));
    let mut w = ScriptWorkload::new(3).with_layout(layout);
    w.set(0, vec![Op::Barrier; 2]);
    w.set(
        1,
        vec![
            Op::Write { addr: va(0), value: 1 },
            Op::Barrier,
            Op::Barrier,
            Op::Read { addr: va(0), expect: Some(2) },
        ],
    );
    w.set(
        2,
        vec![
            Op::Barrier,
            Op::Read { addr: va(0), expect: Some(1) },
            Op::Write { addr: va(0), value: 2 },
            Op::Barrier,
        ],
    );
    let r = run(w, 3);
    assert!(r.report.get("dir.recalls").unwrap() >= 2.0);
}

#[test]
fn upgrade_from_shared_is_distinct_from_write_miss() {
    // Node 1 reads (shared copy), then writes: that second access is an
    // upgrade, not a full miss.
    let layout = layout_pages(1, Placement::PerPage(vec![NodeId::new(0)]));
    let mut w = ScriptWorkload::new(2).with_layout(layout);
    w.set(0, vec![Op::Barrier]);
    w.set(
        1,
        vec![
            Op::Read { addr: va(0), expect: Some(0) },
            Op::Write { addr: va(0), value: 3 },
            Op::Barrier,
        ],
    );
    let r = run(w, 2);
    assert_eq!(r.report.get("cpu.upgrades"), Some(1.0));
}

#[test]
fn dirty_eviction_notifies_home() {
    // Node 1 writes enough distinct blocks mapping to one cache set to
    // force dirty evictions; the home directory must return to Uncached
    // so a later read by node 0 is not a recall.
    let layout = layout_pages(32, Placement::PerPage(vec![NodeId::new(0); 32]));
    let mut w = ScriptWorkload::new(2).with_layout(layout);
    // 4 KB cache, 4-way, 32 sets: blocks with stride 32*32 bytes = 1024
    // share a set. Write 8 of them.
    let mut ops = Vec::new();
    for i in 0..8u64 {
        ops.push(Op::Write { addr: va(i * 32 * 32), value: i });
    }
    ops.push(Op::Barrier);
    w.set(1, ops);
    let mut ops0 = vec![Op::Barrier];
    for i in 0..8u64 {
        ops0.push(Op::Read { addr: va(i * 32 * 32), expect: Some(i) });
    }
    w.set(0, ops0);
    let r = run(w, 2);
    assert!(r.report.get("dir.writebacks").unwrap() >= 4.0);
}

#[test]
fn racing_writers_serialize_through_the_directory() {
    // All nodes hammer the same block with no barriers: the directory's
    // busy/queue machinery must serialize them without deadlock.
    let nodes = 4;
    let layout = layout_pages(1, Placement::PerPage(vec![NodeId::new(0)]));
    let mut w = ScriptWorkload::new(nodes).with_layout(layout);
    for n in 0..nodes {
        let mut ops = Vec::new();
        for i in 0..20u64 {
            ops.push(Op::Write { addr: va(0), value: (n as u64) << 32 | i });
            ops.push(Op::Read { addr: va(0), expect: None });
        }
        w.set(n, ops);
    }
    let mut cfg = SystemConfig::test_config(nodes);
    cfg.dirnnb.placement = tt_base::config::DirPlacement::Owner;
    cfg.verify_values = false; // racy by construction
    let r = DirnnbMachine::new(cfg, Box::new(w)).run();
    assert!(r.report.get("dir.deferred").unwrap() > 0.0);
    assert!(r.report.get("dir.recalls").unwrap() >= 3.0);
    // Every write completed: 4 nodes x 20 writes.
    assert_eq!(r.report.get("cpu.writes"), Some(80.0));
}

/// Parallel-simulation acceptance at DirNNB level: a sharing-heavy
/// workload (cyclic page placement, so homes land on every node, with
/// recalls, invalidation rounds, and barriers crossing shard boundaries)
/// must produce byte-identical cycles and statistics at every
/// `sim_threads` value.
#[test]
fn parallel_simulation_is_bit_identical_to_sequential() {
    let run_threads = |sim_threads: usize, tie_shuffle: Option<u64>| {
        let nodes = 5;
        let layout = layout_pages(4, Placement::Cyclic);
        let mut w = ScriptWorkload::new(nodes).with_layout(layout);
        for n in 0..nodes as u64 {
            let mut ops = Vec::new();
            for i in 0..48 {
                let page = (n + i) % 4;
                ops.push(Op::Write {
                    addr: va(page * PAGE_BYTES as u64 + ((n * 48 + i) % 64) * 8),
                    value: n * 1000 + i,
                });
                ops.push(Op::Read {
                    addr: va(page * PAGE_BYTES as u64 + ((n * 48 + i) % 64) * 8),
                    expect: None,
                });
                ops.push(Op::Compute(1 + (n as u32) * 2));
                if i % 16 == 15 {
                    ops.push(Op::Barrier);
                }
            }
            ops.push(Op::Barrier);
            w.set(n as usize, ops);
        }
        let mut cfg = SystemConfig::test_config(nodes);
        cfg.dirnnb.placement = tt_base::config::DirPlacement::Owner;
        cfg.verify_values = false; // nodes race on shared words by design
        cfg.sim_threads = sim_threads;
        let mut m = DirnnbMachine::new(cfg, Box::new(w));
        if let Some(seed) = tie_shuffle {
            m.set_tie_shuffle(seed);
        }
        let r = m.run();
        let rows: Vec<(String, f64)> = r
            .report
            .iter()
            .map(|row| (row.name.clone(), row.value))
            .collect();
        (r.cycles, rows)
    };
    for tie_shuffle in [None, Some(0xFEED_F00D)] {
        let sequential = run_threads(1, tie_shuffle);
        for threads in [2, 3, 5, 8] {
            assert_eq!(
                sequential,
                run_threads(threads, tie_shuffle),
                "sim_threads={threads} diverged (tie_shuffle={tie_shuffle:?})"
            );
        }
    }
}

#[test]
fn dirnnb_is_deterministic() {
    let build = || {
        let layout = layout_pages(2, Placement::Cyclic);
        let mut w = ScriptWorkload::new(2).with_layout(layout);
        for n in 0..2u64 {
            let mut ops = Vec::new();
            for i in 0..64 {
                ops.push(Op::Write { addr: va(n * PAGE_BYTES as u64 + i * 8), value: i });
            }
            ops.push(Op::Barrier);
            for i in 0..64 {
                ops.push(Op::Read {
                    addr: va((1 - n) * PAGE_BYTES as u64 + i * 8),
                    expect: Some(i),
                });
            }
            w.set(n as usize, ops);
        }
        run(w, 2).cycles
    };
    assert_eq!(build(), build());
}
