//! Compute-coalescing equivalence: merging consecutive `Compute` ops at
//! phase emission must preserve, for every processor, (a) the sequence
//! of non-compute ops — so barriers and accesses stay aligned — and
//! (b) the total compute cycles between consecutive non-compute ops.
//! Simulated clock trajectories are built from exactly those two
//! quantities, so this pins the invariant coalescing relies on.

use tt_apps::barnes::{Barnes, BarnesParams};
use tt_apps::em3d::{Em3d, Em3dParams};
use tt_apps::ocean::{Ocean, OceanParams};
use tt_apps::{DataSet, PhasedApp, PhasedWorkload};
use tt_base::workload::{Op, Workload};
use tt_base::NodeId;

const PROCS: usize = 4;

/// Pulls every chunk for `cpu` and concatenates the ops.
fn drain<A: PhasedApp>(w: &mut PhasedWorkload<A>, cpu: usize) -> Vec<Op> {
    let mut ops = Vec::new();
    while let Some(chunk) = w.next_chunk(NodeId::new(cpu as u16)) {
        ops.extend(chunk);
    }
    ops
}

/// Collapses an op stream into its timing skeleton: the non-compute ops
/// in order, with the summed compute cycles preceding each one (and a
/// trailing sum).
fn skeleton(ops: &[Op]) -> (Vec<Op>, Vec<u64>) {
    let mut syncs = Vec::new();
    let mut sums = vec![0u64];
    for op in ops {
        match op {
            Op::Compute(c) => *sums.last_mut().unwrap() += *c as u64,
            other => {
                syncs.push(*other);
                sums.push(0);
            }
        }
    }
    (syncs, sums)
}

fn assert_equivalent<A: PhasedApp, F: Fn() -> A>(mk: F) {
    let mut plain = PhasedWorkload::new(mk());
    let mut merged = PhasedWorkload::new(mk()).with_coalescing(true);
    for cpu in 0..PROCS {
        let p = drain(&mut plain, cpu);
        let m = drain(&mut merged, cpu);
        assert!(
            m.len() <= p.len(),
            "cpu {cpu}: coalescing must never grow the op stream"
        );
        let (p_syncs, p_sums) = skeleton(&p);
        let (m_syncs, m_sums) = skeleton(&m);
        assert_eq!(
            p_syncs, m_syncs,
            "cpu {cpu}: non-compute op sequence changed (barrier misalignment)"
        );
        assert_eq!(
            p_sums, m_sums,
            "cpu {cpu}: compute cycles between sync ops changed"
        );
    }
}

fn em3d() -> Em3d {
    let mut p = Em3dParams::table3(DataSet::Small, PROCS);
    p.graph_nodes = tt_apps::datasets::scaled(p.graph_nodes, 64, 4 * PROCS);
    Em3d::new(p)
}

fn ocean() -> Ocean {
    let mut p = OceanParams::table3(DataSet::Small, PROCS);
    p.n = 16;
    Ocean::new(p)
}

fn barnes() -> Barnes {
    let mut p = BarnesParams::table3(DataSet::Small, PROCS);
    p.bodies = tt_apps::datasets::scaled(p.bodies, 64, 4 * PROCS);
    Barnes::new(p)
}

#[test]
fn coalescing_preserves_em3d_timing_skeleton() {
    assert_equivalent(em3d);
}

#[test]
fn coalescing_preserves_ocean_timing_skeleton() {
    assert_equivalent(ocean);
}

#[test]
fn coalescing_preserves_barnes_timing_skeleton() {
    assert_equivalent(barnes);
}

#[test]
fn coalescing_shrinks_compute_runs() {
    // The optimization must actually do something: barnes emits runs of
    // per-body Compute ops, so the merged stream must be strictly
    // shorter while the timing skeleton (checked above) is unchanged.
    let plain: usize = (0..PROCS)
        .map(|c| drain(&mut PhasedWorkload::new(barnes()), c).len())
        .sum();
    let merged: usize = (0..PROCS)
        .map(|c| drain(&mut PhasedWorkload::new(barnes()).with_coalescing(true), c).len())
        .sum();
    assert!(
        merged < plain,
        "expected coalescing to drop ops ({merged} vs {plain})"
    );
}
