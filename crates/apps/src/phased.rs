//! Adapter from barrier-phase applications to the machine's chunked
//! [`Workload`] interface.
//!
//! All five benchmarks are SPMD programs whose processors march through
//! global phases separated by barriers (or, for the custom EM3D
//! protocol, by flush calls). [`PhasedApp::next_phase`] generates the ops
//! of one phase *for every processor at once*, advancing the native
//! computation as it goes; [`PhasedWorkload`] buffers those per-processor
//! chunks and hands them out as the machines pull them.
//!
//! Because every generated chunk ends with a synchronization op, a
//! processor can never pull phase `p + 1` before all processors finished
//! phase `p`, so generating a whole phase at a time is safe — and keeps
//! memory bounded to a single phase of ops.

use std::collections::VecDeque;

use tt_base::workload::{coalesce_computes, Layout, Op, Workload};
use tt_base::NodeId;

/// A barrier-phase SPMD application.
pub trait PhasedApp: Send {
    /// Short name ("em3d", "ocean", ...).
    fn name(&self) -> &'static str;

    /// The shared-segment layout.
    fn layout(&self) -> Layout;

    /// Number of processors the app was built for.
    fn procs(&self) -> usize;

    /// Generates the next phase: one op vector per processor (each ending
    /// with a synchronization op, except possibly the final phase).
    /// Returns `None` when the program is complete.
    fn next_phase(&mut self) -> Option<Vec<Vec<Op>>>;
}

/// Wraps a [`PhasedApp`] as a machine [`Workload`].
pub struct PhasedWorkload<A> {
    app: A,
    buffered: Vec<VecDeque<Vec<Op>>>,
    done: bool,
    coalesce: bool,
}

impl<A: PhasedApp> PhasedWorkload<A> {
    /// Wraps `app`. Compute coalescing is off by default so that reported
    /// cycle counts are bit-identical to a run of the unmerged op stream.
    pub fn new(app: A) -> Self {
        let procs = app.procs();
        PhasedWorkload {
            app,
            buffered: vec![VecDeque::new(); procs],
            done: false,
            coalesce: false,
        }
    }

    /// Enables or disables merging of consecutive `Compute` ops at phase
    /// emission. Coalescing never changes a processor's clock trajectory
    /// between synchronization ops, but it does change *where* a quantum
    /// boundary falls inside a compute span, which shifts the wall order
    /// in which same-cycle yield events are scheduled — and with it the
    /// event queue's FIFO tie-breaking. That can perturb reported cycle
    /// counts by a fraction of a percent (observed ~0.2% on barnes), so
    /// it is opt-in for throughput-oriented runs rather than the default.
    pub fn with_coalescing(mut self, on: bool) -> Self {
        self.coalesce = on;
        self
    }

    /// The wrapped application.
    pub fn app(&self) -> &A {
        &self.app
    }

    fn pull(&mut self, cpu: NodeId) -> Option<Vec<Op>> {
        let q = &mut self.buffered[cpu.index()];
        if let Some(chunk) = q.pop_front() {
            return Some(chunk);
        }
        if self.done {
            return None;
        }
        match self.app.next_phase() {
            Some(chunks) => {
                assert_eq!(chunks.len(), self.buffered.len(), "one chunk per processor");
                for (i, mut c) in chunks.into_iter().enumerate() {
                    if self.coalesce {
                        coalesce_computes(&mut c);
                    }
                    self.buffered[i].push_back(c);
                }
                self.buffered[cpu.index()].pop_front()
            }
            None => {
                self.done = true;
                None
            }
        }
    }
}

impl<A: PhasedApp> Workload for PhasedWorkload<A> {
    fn name(&self) -> &'static str {
        self.app.name()
    }

    fn layout(&self) -> Layout {
        self.app.layout()
    }

    fn next_chunk(&mut self, cpu: NodeId) -> Option<Vec<Op>> {
        self.pull(cpu)
    }

    fn next_chunk_into(&mut self, cpu: NodeId, buf: &mut Vec<Op>) -> bool {
        match self.pull(cpu) {
            Some(chunk) => {
                *buf = chunk;
                true
            }
            None => {
                buf.clear();
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three phases, two cpus, phase index encoded in compute cycles.
    struct Toy {
        phase: u32,
    }

    impl PhasedApp for Toy {
        fn name(&self) -> &'static str {
            "toy"
        }
        fn layout(&self) -> Layout {
            Layout::new()
        }
        fn procs(&self) -> usize {
            2
        }
        fn next_phase(&mut self) -> Option<Vec<Vec<Op>>> {
            if self.phase == 3 {
                return None;
            }
            self.phase += 1;
            Some(vec![
                vec![Op::Compute(self.phase), Op::Barrier],
                vec![Op::Compute(self.phase * 10), Op::Barrier],
            ])
        }
    }

    #[test]
    fn chunks_are_handed_out_per_cpu_in_phase_order() {
        let mut w = PhasedWorkload::new(Toy { phase: 0 });
        let c0 = w.next_chunk(NodeId::new(0)).unwrap();
        assert_eq!(c0[0], Op::Compute(1));
        // Cpu 1's phase-1 chunk was buffered by cpu 0's pull.
        let c1 = w.next_chunk(NodeId::new(1)).unwrap();
        assert_eq!(c1[0], Op::Compute(10));
        // Next pulls get phase 2.
        assert_eq!(w.next_chunk(NodeId::new(1)).unwrap()[0], Op::Compute(20));
        assert_eq!(w.next_chunk(NodeId::new(0)).unwrap()[0], Op::Compute(2));
    }

    /// One phase with a run of small computes per cpu.
    struct Chatty {
        emitted: bool,
    }

    impl PhasedApp for Chatty {
        fn name(&self) -> &'static str {
            "chatty"
        }
        fn layout(&self) -> Layout {
            Layout::new()
        }
        fn procs(&self) -> usize {
            1
        }
        fn next_phase(&mut self) -> Option<Vec<Vec<Op>>> {
            if self.emitted {
                return None;
            }
            self.emitted = true;
            Some(vec![vec![
                Op::Compute(1),
                Op::Compute(2),
                Op::Compute(3),
                Op::Barrier,
            ]])
        }
    }

    #[test]
    fn coalescing_merges_compute_runs_when_enabled() {
        let mut w = PhasedWorkload::new(Chatty { emitted: false }).with_coalescing(true);
        let c = w.next_chunk(NodeId::new(0)).unwrap();
        assert_eq!(c, vec![Op::Compute(6), Op::Barrier]);
    }

    #[test]
    fn coalescing_is_off_by_default() {
        let mut w = PhasedWorkload::new(Chatty { emitted: false });
        let c = w.next_chunk(NodeId::new(0)).unwrap();
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn exhaustion_returns_none_for_everyone() {
        let mut w = PhasedWorkload::new(Toy { phase: 0 });
        for _ in 0..3 {
            w.next_chunk(NodeId::new(0)).unwrap();
        }
        assert!(w.next_chunk(NodeId::new(0)).is_none());
        // Cpu 1 still drains its buffered phases first.
        for _ in 0..3 {
            assert!(w.next_chunk(NodeId::new(1)).is_some());
        }
        assert!(w.next_chunk(NodeId::new(1)).is_none());
    }
}
