//! The five benchmark workloads of the paper's evaluation (Section 6,
//! Table 3), re-implemented as op-stream generators:
//!
//! | App    | Domain                          | Small set          | Large set            |
//! |--------|---------------------------------|--------------------|----------------------|
//! | Appbt  | CFD, block-tridiagonal NAS kernel | 12×12×12         | 24×24×24             |
//! | Barnes | gravitational N-body (Barnes-Hut) | 2,048 bodies     | 8,192 bodies         |
//! | MP3D   | rarefied fluid flow (wind tunnel) | 10,000 molecules | 50,000 molecules     |
//! | Ocean  | hydrodynamic 2-D basin simulation | 98×98 grid       | 386×386 grid         |
//! | EM3D   | electromagnetic wave propagation  | 64,000 nodes, °10 | 192,000 nodes, °15  |
//!
//! Each kernel *natively* computes its values in Rust while emitting the
//! shared-memory reference stream (reads/writes/compute/barriers) that a
//! 32-way SPMD execution of the original program would issue. The native
//! values ride along in the ops, so simulated machines can verify every
//! load against a sequentially consistent execution — the workloads
//! double as coherence-protocol oracles.
//!
//! All five follow the owners-compute rule and a barrier-phase structure;
//! [`phased::PhasedWorkload`] turns a phase generator into the chunked
//! [`Workload`](tt_base::workload::Workload) interface the machines
//! consume, keeping at most one phase of ops in memory.
//!
//! Simplifications relative to the originals are documented per module
//! (e.g. private data — stacks, edge weights — is modeled as compute
//! cycles, exactly as the paper's simulator ignored stack references).

// Stencil and vector kernels index several parallel arrays with one
// loop variable; iterator zips would obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod alloc;
pub mod appbt;
pub mod barnes;
pub mod datasets;
pub mod em3d;
pub mod kv_update;
pub mod mp3d;
pub mod ocean;
pub mod phased;

pub use datasets::{AppId, DataSet};
pub use kv_update::{run_kv_update, KvUpdateProtocol};
pub use phased::{PhasedApp, PhasedWorkload};
