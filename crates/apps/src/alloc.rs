//! Shared-segment allocation helpers for the workloads.
//!
//! The paper's run-time library lets programs allocate shared pages on
//! chosen home nodes (owners-compute allocation) or round-robin. These
//! helpers compute the address arithmetic: an [`ArenaPlanner`] hands out
//! page-aligned regions of the shared segment, an [`OwnedArray`] places
//! each owner's elements on pages homed at that owner, and a
//! [`CyclicArray`] spreads pages round-robin (the default for data with
//! no natural owner, e.g. MP3D's space cells).

use tt_base::addr::{VAddr, PAGE_BYTES, WORD_BYTES};
use tt_base::workload::{Placement, Region, SHARED_SEGMENT_BASE};
use tt_base::NodeId;

/// Hands out page-aligned shared-segment ranges.
#[derive(Clone, Debug)]
pub struct ArenaPlanner {
    cursor: u64,
}

impl ArenaPlanner {
    /// A planner starting at the shared segment base.
    pub fn new() -> Self {
        ArenaPlanner {
            cursor: SHARED_SEGMENT_BASE,
        }
    }

    /// Reserves `bytes` (rounded up to whole pages) and returns the base.
    pub fn reserve(&mut self, bytes: usize) -> VAddr {
        let base = self.cursor;
        let pages = bytes.div_ceil(PAGE_BYTES) as u64;
        self.cursor += pages * PAGE_BYTES as u64;
        VAddr::new(base)
    }
}

impl Default for ArenaPlanner {
    fn default() -> Self {
        Self::new()
    }
}

/// A distributed array where each owner's elements live on pages homed at
/// that owner (owners-compute placement).
///
/// Each owner's span starts on a fresh page, so pages never straddle
/// owners and the [`Region`] can name a home per page.
#[derive(Clone, Debug)]
pub struct OwnedArray {
    base: VAddr,
    /// Per-owner element counts.
    counts: Vec<usize>,
    /// Per-owner starting page offset (in pages from `base`).
    owner_page: Vec<usize>,
    /// Per-owner page span.
    owner_pages: Vec<usize>,
    words_per_elem: usize,
    mode: u8,
}

impl OwnedArray {
    /// Plans an array of `counts[o]` elements per owner, each
    /// `words_per_elem` 64-bit words, homed per the owners-compute rule,
    /// with protocol page mode `mode`.
    pub fn plan(
        planner: &mut ArenaPlanner,
        counts: &[usize],
        words_per_elem: usize,
        mode: u8,
    ) -> Self {
        assert!(words_per_elem > 0);
        let mut owner_page = Vec::with_capacity(counts.len());
        let mut owner_pages = Vec::with_capacity(counts.len());
        let mut page = 0usize;
        for &c in counts {
            owner_page.push(page);
            let bytes = c.max(1) * words_per_elem * WORD_BYTES;
            let pages = bytes.div_ceil(PAGE_BYTES);
            owner_pages.push(pages);
            page += pages;
        }
        let base = planner.reserve(page * PAGE_BYTES);
        OwnedArray {
            base,
            counts: counts.to_vec(),
            owner_page,
            owner_pages,
            words_per_elem,
            mode,
        }
    }

    /// The layout region declaring every page's home.
    pub fn region(&self) -> Region {
        let mut homes = Vec::new();
        for (owner, &pages) in self.owner_pages.iter().enumerate() {
            homes.extend(std::iter::repeat_n(NodeId::new(owner as u16), pages));
        }
        Region {
            base: self.base,
            bytes: homes.len() * PAGE_BYTES,
            placement: Placement::PerPage(homes),
            mode: self.mode,
        }
    }

    /// Address of word `word` of element `idx` of `owner`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn addr(&self, owner: usize, idx: usize, word: usize) -> VAddr {
        assert!(idx < self.counts[owner], "element index out of range");
        assert!(word < self.words_per_elem);
        let off = self.owner_page[owner] * PAGE_BYTES
            + (idx * self.words_per_elem + word) * WORD_BYTES;
        self.base.offset(off as u64)
    }

    /// Number of elements owned by `owner`.
    pub fn count(&self, owner: usize) -> usize {
        self.counts[owner]
    }

    /// Total bytes of backing pages (the array's memory footprint).
    pub fn footprint_bytes(&self) -> usize {
        self.owner_pages.iter().sum::<usize>() * PAGE_BYTES
    }
}

/// A flat shared array whose pages are homed round-robin across nodes.
#[derive(Clone, Debug)]
pub struct CyclicArray {
    base: VAddr,
    elems: usize,
    words_per_elem: usize,
    mode: u8,
}

impl CyclicArray {
    /// Plans a flat array of `elems` elements of `words_per_elem` words.
    pub fn plan(
        planner: &mut ArenaPlanner,
        elems: usize,
        words_per_elem: usize,
        mode: u8,
    ) -> Self {
        let base = planner.reserve(elems.max(1) * words_per_elem * WORD_BYTES);
        CyclicArray {
            base,
            elems,
            words_per_elem,
            mode,
        }
    }

    /// The layout region (cyclic placement).
    pub fn region(&self) -> Region {
        Region {
            base: self.base,
            bytes: self.elems.max(1) * self.words_per_elem * WORD_BYTES,
            placement: Placement::Cyclic,
            mode: self.mode,
        }
    }

    /// Address of word `word` of element `idx`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn addr(&self, idx: usize, word: usize) -> VAddr {
        assert!(idx < self.elems, "element index out of range");
        assert!(word < self.words_per_elem);
        self.base
            .offset(((idx * self.words_per_elem + word) * WORD_BYTES) as u64)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elems
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.elems == 0
    }
}

/// Splits `total` elements evenly over `procs` owners (owners-compute).
pub fn even_split(total: usize, procs: usize) -> Vec<usize> {
    let base = total / procs;
    let extra = total % procs;
    (0..procs)
        .map(|p| base + usize::from(p < extra))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planner_hands_out_disjoint_page_aligned_ranges() {
        let mut p = ArenaPlanner::new();
        let a = p.reserve(100);
        let b = p.reserve(5000);
        let c = p.reserve(4096);
        assert_eq!(a.raw() % PAGE_BYTES as u64, 0);
        assert_eq!(b.raw(), a.raw() + PAGE_BYTES as u64);
        assert_eq!(c.raw(), b.raw() + 2 * PAGE_BYTES as u64);
    }

    #[test]
    fn owned_array_pages_do_not_straddle_owners() {
        let mut p = ArenaPlanner::new();
        // 3 owners with 600 one-word elements each: 4800 B -> 2 pages each.
        let a = OwnedArray::plan(&mut p, &[600, 600, 600], 1, 0);
        let r = a.region();
        match &r.placement {
            Placement::PerPage(homes) => {
                assert_eq!(homes.len(), 6);
                assert_eq!(homes[0], NodeId::new(0));
                assert_eq!(homes[1], NodeId::new(0));
                assert_eq!(homes[2], NodeId::new(1));
                assert_eq!(homes[5], NodeId::new(2));
            }
            other => panic!("unexpected placement {other:?}"),
        }
        // First element of owner 1 starts exactly at its first page.
        assert_eq!(a.addr(1, 0, 0).raw() % PAGE_BYTES as u64, 0);
        assert_eq!(a.footprint_bytes(), 6 * PAGE_BYTES);
    }

    #[test]
    fn owned_array_addressing_is_dense_within_owner() {
        let mut p = ArenaPlanner::new();
        let a = OwnedArray::plan(&mut p, &[10, 10], 3, 0);
        assert_eq!(
            a.addr(0, 1, 0).raw() - a.addr(0, 0, 0).raw(),
            3 * WORD_BYTES as u64
        );
        assert_eq!(a.addr(0, 0, 2).raw() - a.addr(0, 0, 0).raw(), 16);
        assert_eq!(a.count(1), 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owned_array_bounds_checked() {
        let mut p = ArenaPlanner::new();
        let a = OwnedArray::plan(&mut p, &[4], 1, 0);
        a.addr(0, 4, 0);
    }

    #[test]
    fn cyclic_array_is_dense() {
        let mut p = ArenaPlanner::new();
        let a = CyclicArray::plan(&mut p, 100, 2, 0);
        assert_eq!(a.addr(1, 0).raw() - a.addr(0, 0).raw(), 16);
        assert_eq!(a.len(), 100);
        assert!(!a.is_empty());
        assert!(matches!(a.region().placement, Placement::Cyclic));
    }

    #[test]
    fn even_split_distributes_remainder() {
        assert_eq!(even_split(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(even_split(8, 4), vec![2, 2, 2, 2]);
        assert_eq!(even_split(3, 4), vec![1, 1, 1, 0]);
    }
}
