//! Barnes: gravitational N-body simulation with the Barnes-Hut
//! hierarchical O(N log N) algorithm (SPLASH; Table 3 data sets 2,048 and
//! 8,192 bodies).
//!
//! Each iteration rebuilds an octree over the bodies, computes a
//! center-of-mass for every internal cell, then computes forces by
//! walking the tree per body — distant cells are approximated by their
//! center of mass (opening criterion θ), near bodies interact directly.
//!
//! Shared-memory structure (as in SPLASH):
//!
//! - **bodies** are owner-placed (positions written by their owner every
//!   iteration, read by everyone during force computation);
//! - **tree cells** are round-robin placed and rebuilt every iteration —
//!   the dynamic, pointer-based structure the paper calls out as needing
//!   transparent replication at run time. Cell writers are assigned
//!   round-robin, approximating SPLASH's parallel tree build.
//!
//! The octree itself (geometry, child pointers) is computed natively and
//! charged as compute; the shared traffic is the cells' center-of-mass
//! data and the bodies' positions, which is what the coherence protocols
//! see. Reads are verified against the native physics.

use tt_base::workload::{Layout, Op};
use tt_base::DetRng;

use crate::alloc::{even_split, ArenaPlanner, CyclicArray, OwnedArray};
use crate::phased::PhasedApp;

/// Barnes parameters.
#[derive(Clone, Debug)]
pub struct BarnesParams {
    /// Number of bodies.
    pub bodies: usize,
    /// Iterations (tree build + force + update per iteration).
    pub iterations: usize,
    /// Opening criterion θ: larger = more approximation, shorter
    /// interaction lists.
    pub theta: f64,
    /// Time step.
    pub dt: f64,
    /// Processors.
    pub procs: usize,
    /// Initial-condition seed.
    pub seed: u64,
}

impl BarnesParams {
    /// The Table 3 data set.
    pub fn table3(set: crate::DataSet, procs: usize) -> Self {
        let bodies = match set {
            crate::DataSet::Small => 2_048,
            crate::DataSet::Large => 8_192,
        };
        BarnesParams {
            bodies,
            iterations: 3,
            theta: 0.8,
            dt: 0.05,
            procs,
            seed: 0xBA51,
        }
    }
}

/// Cycles per cell (center-of-mass) interaction.
const CELL_COMPUTE: u32 = 20;
/// Cycles per direct body-body interaction.
const BODY_COMPUTE: u32 = 20;
/// Cycles of traversal overhead per tree node visited.
const VISIT_COMPUTE: u32 = 3;
/// Cycles to fold one cell's center of mass during the build.
const BUILD_COMPUTE: u32 = 15;
/// Gravitational softening.
const SOFTENING: f64 = 1e-3;

/// A node of the native octree.
#[derive(Clone, Debug)]
enum BhNode {
    /// An internal cell: geometric box + aggregated mass.
    Cell {
        center: [f64; 3],
        half: f64,
        children: [i32; 8],
        com: [f64; 3],
        mass: f64,
    },
    /// A single body (global index).
    Leaf(u32),
}

/// The native octree, rebuilt each iteration.
struct BhTree {
    nodes: Vec<BhNode>,
}

impl BhTree {
    fn build(pos: &[[f64; 3]], mass: &[f64]) -> BhTree {
        // Bounding cube.
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for p in pos {
            for d in 0..3 {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        let mut half = 0.0f64;
        let mut center = [0.0; 3];
        for d in 0..3 {
            center[d] = 0.5 * (lo[d] + hi[d]);
            half = half.max(0.5 * (hi[d] - lo[d]) + 1e-9);
        }
        let mut tree = BhTree {
            nodes: vec![BhNode::Cell {
                center,
                half,
                children: [-1; 8],
                com: [0.0; 3],
                mass: 0.0,
            }],
        };
        for (i, _) in pos.iter().enumerate() {
            tree.insert(0, i as u32, pos);
        }
        tree.fold_mass(0, pos, mass);
        tree
    }

    fn octant(center: &[f64; 3], p: &[f64; 3]) -> usize {
        (usize::from(p[0] >= center[0]) << 2)
            | (usize::from(p[1] >= center[1]) << 1)
            | usize::from(p[2] >= center[2])
    }

    fn child_box(center: &[f64; 3], half: f64, oct: usize) -> ([f64; 3], f64) {
        let h = half * 0.5;
        let c = [
            center[0] + if oct & 4 != 0 { h } else { -h },
            center[1] + if oct & 2 != 0 { h } else { -h },
            center[2] + if oct & 1 != 0 { h } else { -h },
        ];
        (c, h)
    }

    fn insert(&mut self, node: usize, body: u32, pos: &[[f64; 3]]) {
        let (center, half, oct) = match &self.nodes[node] {
            BhNode::Cell { center, half, .. } => {
                (*center, *half, Self::octant(center, &pos[body as usize]))
            }
            BhNode::Leaf(_) => unreachable!("insert into a leaf"),
        };
        let child = match &self.nodes[node] {
            BhNode::Cell { children, .. } => children[oct],
            _ => unreachable!(),
        };
        match child {
            -1 => {
                let leaf = self.nodes.len() as i32;
                self.nodes.push(BhNode::Leaf(body));
                if let BhNode::Cell { children, .. } = &mut self.nodes[node] {
                    children[oct] = leaf;
                }
            }
            c => {
                let c = c as usize;
                match self.nodes[c].clone() {
                    BhNode::Cell { .. } => self.insert(c, body, pos),
                    BhNode::Leaf(other) => {
                        // Split: replace the leaf with a cell holding both
                        // bodies (coincident bodies would recurse forever;
                        // the perturbed initial conditions avoid that).
                        let (cc, ch) = Self::child_box(&center, half, oct);
                        let cell = BhNode::Cell {
                            center: cc,
                            half: ch,
                            children: [-1; 8],
                            com: [0.0; 3],
                            mass: 0.0,
                        };
                        self.nodes[c] = cell;
                        self.insert(c, other, pos);
                        self.insert(c, body, pos);
                    }
                }
            }
        }
    }

    /// Bottom-up center-of-mass computation; returns `(com*mass, mass)`.
    fn fold_mass(&mut self, node: usize, pos: &[[f64; 3]], mass: &[f64]) -> ([f64; 3], f64) {
        match self.nodes[node].clone() {
            BhNode::Leaf(b) => {
                let m = mass[b as usize];
                let p = pos[b as usize];
                ([p[0] * m, p[1] * m, p[2] * m], m)
            }
            BhNode::Cell { children, .. } => {
                let mut acc = [0.0; 3];
                let mut total = 0.0;
                for c in children.iter().filter(|c| **c >= 0) {
                    let (a, m) = self.fold_mass(*c as usize, pos, mass);
                    for d in 0..3 {
                        acc[d] += a[d];
                    }
                    total += m;
                }
                if let BhNode::Cell { com, mass: m, .. } = &mut self.nodes[node] {
                    *m = total;
                    for d in 0..3 {
                        com[d] = if total > 0.0 { acc[d] / total } else { 0.0 };
                    }
                }
                (acc, total)
            }
        }
    }

    /// Indices of internal cells in node order (their shared-array slots).
    fn cell_slots(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n, BhNode::Cell { .. }))
            .map(|(i, _)| i)
            .collect()
    }
}

/// The Barnes workload (see module docs).
pub struct Barnes {
    params: BarnesParams,
    /// Body positions: 3 words each, owner-placed.
    body_arr: OwnedArray,
    /// Tree cells: 4 words each (com x, y, z, mass), round-robin pages.
    cell_arr: CyclicArray,
    /// Native state (global body index).
    pos: Vec<[f64; 3]>,
    vel: Vec<[f64; 3]>,
    mass: Vec<f64>,
    /// Body index ranges per owner.
    first_body: Vec<usize>,
    counts: Vec<usize>,
    /// Tree of the current iteration (built in phase A).
    tree: Option<BhTree>,
    /// node index -> shared cell slot for the current tree.
    slot_of_node: Vec<i32>,
    phase: usize,
    /// Accelerations computed by the force phase, consumed by the update
    /// phase.
    pending_accels: Option<Vec<[f64; 3]>>,
    /// Interactions accumulated (for reporting).
    interactions: u64,
}

impl Barnes {
    /// Builds the initial body distribution.
    pub fn new(params: BarnesParams) -> Self {
        let counts = even_split(params.bodies, params.procs);
        let mut first_body = Vec::with_capacity(params.procs);
        let mut acc = 0;
        for &c in &counts {
            first_body.push(acc);
            acc += c;
        }
        let mut planner = ArenaPlanner::new();
        let body_arr = OwnedArray::plan(&mut planner, &counts, 3, 0);
        // Internal cells are bounded by ~2N for non-degenerate inputs;
        // reserve 4N slots.
        let cell_arr = CyclicArray::plan(&mut planner, params.bodies * 4, 4, 0);
        let mut rng = DetRng::new(params.seed);
        let pos: Vec<[f64; 3]> = (0..params.bodies)
            .map(|_| [rng.unit_f64(), rng.unit_f64(), rng.unit_f64()])
            .collect();
        let vel = (0..params.bodies)
            .map(|_| {
                [
                    0.01 * (rng.unit_f64() - 0.5),
                    0.01 * (rng.unit_f64() - 0.5),
                    0.01 * (rng.unit_f64() - 0.5),
                ]
            })
            .collect();
        let mass = vec![1.0 / params.bodies as f64; params.bodies];
        Barnes {
            params,
            body_arr,
            cell_arr,
            pos,
            vel,
            mass,
            first_body,
            counts,
            tree: None,
            slot_of_node: Vec::new(),
            phase: 0,
            pending_accels: None,
            interactions: 0,
        }
    }

    /// The parameters this instance was built with.
    pub fn params(&self) -> &BarnesParams {
        &self.params
    }

    /// Total tree interactions emitted so far.
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    fn owner_of(&self, body: usize) -> usize {
        match self.first_body.binary_search(&body) {
            Ok(o) => o,
            Err(o) => o - 1,
        }
    }

    fn body_addr(&self, body: usize, word: usize) -> tt_base::VAddr {
        let o = self.owner_of(body);
        self.body_arr.addr(o, body - self.first_body[o], word)
    }

    /// Init phase: owners publish initial positions.
    fn init_phase(&self) -> Vec<Vec<Op>> {
        (0..self.params.procs)
            .map(|p| {
                let mut ops = Vec::new();
                for i in 0..self.counts[p] {
                    let b = self.first_body[p] + i;
                    for w in 0..3 {
                        ops.push(Op::Write {
                            addr: self.body_arr.addr(p, i, w),
                            value: self.pos[b][w].to_bits(),
                        });
                    }
                }
                ops.push(Op::Barrier);
                ops
            })
            .collect()
    }

    /// Phase A: rebuild the tree natively; cell writers (round-robin over
    /// internal cells) publish each cell's center of mass and mass.
    fn build_phase(&mut self) -> Vec<Vec<Op>> {
        let tree = BhTree::build(&self.pos, &self.mass);
        let slots = tree.cell_slots();
        assert!(
            slots.len() <= self.cell_arr.len(),
            "tree cell count exceeded the reserved shared array"
        );
        let mut slot_of_node = vec![-1i32; tree.nodes.len()];
        for (slot, node) in slots.iter().enumerate() {
            slot_of_node[*node] = slot as i32;
        }
        let procs = self.params.procs;
        let mut chunks: Vec<Vec<Op>> = (0..procs).map(|_| Vec::new()).collect();
        for (slot, node) in slots.iter().enumerate() {
            let writer = slot % procs;
            if let BhNode::Cell { com, mass, .. } = &tree.nodes[*node] {
                let ops = &mut chunks[writer];
                ops.push(Op::Compute(BUILD_COMPUTE));
                for (w, v) in [com[0], com[1], com[2], *mass].into_iter().enumerate() {
                    ops.push(Op::Write {
                        addr: self.cell_arr.addr(slot, w),
                        value: v.to_bits(),
                    });
                }
            }
        }
        for ops in &mut chunks {
            ops.push(Op::Barrier);
        }
        self.tree = Some(tree);
        self.slot_of_node = slot_of_node;
        chunks
    }

    /// Phase B: per-body force computation via tree traversal.
    /// Returns the ops and natively accumulates accelerations.
    fn force_phase(&mut self) -> (Vec<Vec<Op>>, Vec<[f64; 3]>) {
        let tree = self.tree.as_ref().expect("build phase ran");
        let procs = self.params.procs;
        let theta2 = self.params.theta * self.params.theta;
        let mut accels = vec![[0.0f64; 3]; self.pos.len()];
        let mut chunks: Vec<Vec<Op>> = (0..procs).map(|_| Vec::new()).collect();
        let mut interactions = 0u64;
        for p in 0..procs {
            let ops = &mut chunks[p];
            for i in 0..self.counts[p] {
                let b = self.first_body[p] + i;
                let bp = self.pos[b];
                let mut acc = [0.0f64; 3];
                // Iterative traversal.
                let mut stack = vec![0usize];
                while let Some(node) = stack.pop() {
                    ops.push(Op::Compute(VISIT_COMPUTE));
                    match &tree.nodes[node] {
                        BhNode::Leaf(ob) => {
                            let ob = *ob as usize;
                            if ob == b {
                                continue;
                            }
                            interactions += 1;
                            // Direct interaction: read the other body's
                            // first position word (rest of the record is
                            // charged as compute).
                            if self.owner_of(ob) != p {
                                ops.push(Op::Read {
                                    addr: self.body_addr(ob, 0),
                                    expect: Some(self.pos[ob][0].to_bits()),
                                });
                            }
                            ops.push(Op::Compute(BODY_COMPUTE));
                            add_gravity(&mut acc, &bp, &self.pos[ob], self.mass[ob]);
                        }
                        BhNode::Cell {
                            half,
                            children,
                            com,
                            mass,
                            ..
                        } => {
                            if *mass <= 0.0 {
                                continue;
                            }
                            let d2 = dist2(&bp, com).max(1e-12);
                            let size = 2.0 * half;
                            if size * size < theta2 * d2 {
                                interactions += 1;
                                // Accept the cell: read its center of
                                // mass x and mass words from the shared
                                // cell array.
                                let slot = self.slot_of_node[node] as usize;
                                ops.push(Op::Read {
                                    addr: self.cell_arr.addr(slot, 0),
                                    expect: Some(com[0].to_bits()),
                                });
                                ops.push(Op::Read {
                                    addr: self.cell_arr.addr(slot, 3),
                                    expect: Some(mass.to_bits()),
                                });
                                ops.push(Op::Compute(CELL_COMPUTE));
                                add_gravity(&mut acc, &bp, com, *mass);
                            } else {
                                for c in children.iter().filter(|c| **c >= 0) {
                                    stack.push(*c as usize);
                                }
                            }
                        }
                    }
                }
                accels[b] = acc;
            }
            ops.push(Op::Barrier);
        }
        self.interactions += interactions;
        (chunks, accels)
    }

    /// Phase C: leapfrog update; owners publish new positions.
    fn update_phase(&mut self, accels: &[[f64; 3]]) -> Vec<Vec<Op>> {
        let dt = self.params.dt;
        let procs = self.params.procs;
        let mut chunks = Vec::with_capacity(procs);
        for p in 0..procs {
            let mut ops = Vec::new();
            for i in 0..self.counts[p] {
                let b = self.first_body[p] + i;
                for d in 0..3 {
                    self.vel[b][d] += accels[b][d] * dt;
                    self.pos[b][d] += self.vel[b][d] * dt;
                }
                ops.push(Op::Compute(12));
                for w in 0..3 {
                    ops.push(Op::Write {
                        addr: self.body_arr.addr(p, i, w),
                        value: self.pos[b][w].to_bits(),
                    });
                }
            }
            ops.push(Op::Barrier);
            chunks.push(ops);
        }
        chunks
    }
}

fn dist2(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    let mut s = 0.0;
    for d in 0..3 {
        let x = a[d] - b[d];
        s += x * x;
    }
    s
}

fn add_gravity(acc: &mut [f64; 3], at: &[f64; 3], from: &[f64; 3], mass: f64) {
    let d2 = dist2(at, from) + SOFTENING;
    let inv = mass / (d2 * d2.sqrt());
    for d in 0..3 {
        acc[d] += (from[d] - at[d]) * inv;
    }
}

impl PhasedApp for Barnes {
    fn name(&self) -> &'static str {
        "barnes"
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.add(self.body_arr.region());
        l.add(self.cell_arr.region());
        l
    }

    fn procs(&self) -> usize {
        self.params.procs
    }

    fn next_phase(&mut self) -> Option<Vec<Vec<Op>>> {
        let phase = self.phase;
        self.phase += 1;
        if phase == 0 {
            return Some(self.init_phase());
        }
        let step = phase - 1;
        let iteration = step / 3;
        if iteration >= self.params.iterations {
            return None;
        }
        match step % 3 {
            0 => Some(self.build_phase()),
            1 => {
                let (chunks, accels) = self.force_phase();
                // Stash accelerations for the update phase by applying
                // them now; phase C publishes the results.
                self.pending_accels = Some(accels);
                Some(chunks)
            }
            _ => {
                let accels = self.pending_accels.take().expect("force phase ran");
                Some(self.update_phase(&accels))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BarnesParams {
        BarnesParams {
            bodies: 64,
            iterations: 2,
            theta: 0.8,
            dt: 0.05,
            procs: 4,
            seed: 5,
        }
    }

    #[test]
    fn tree_holds_every_body_once() {
        let b = Barnes::new(small());
        let tree = BhTree::build(&b.pos, &b.mass);
        let mut seen = [false; 64];
        for n in &tree.nodes {
            if let BhNode::Leaf(i) = n {
                assert!(!seen[*i as usize], "body {i} appears twice");
                seen[*i as usize] = true;
            }
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn root_mass_is_total_mass() {
        let b = Barnes::new(small());
        let tree = BhTree::build(&b.pos, &b.mass);
        if let BhNode::Cell { mass, .. } = &tree.nodes[0] {
            assert!((mass - 1.0).abs() < 1e-9);
        } else {
            panic!("root is not a cell");
        }
    }

    #[test]
    fn phases_cycle_build_force_update() {
        let mut b = Barnes::new(small());
        let mut n = 0;
        while b.next_phase().is_some() {
            n += 1;
        }
        assert_eq!(n, 1 + 3 * 2);
        assert!(b.interactions() > 0);
    }

    #[test]
    fn owner_lookup() {
        let b = Barnes::new(small());
        assert_eq!(b.owner_of(0), 0);
        assert_eq!(b.owner_of(15), 0);
        assert_eq!(b.owner_of(16), 1);
        assert_eq!(b.owner_of(63), 3);
    }

    #[test]
    fn force_phase_reads_cells_written_in_build_phase() {
        let mut b = Barnes::new(small());
        let _ = b.next_phase(); // init
        let build = b.next_phase().unwrap(); // build
        let force = b.next_phase().unwrap(); // force
        let written: std::collections::HashMap<u64, u64> = build
            .iter()
            .flatten()
            .filter_map(|op| match op {
                Op::Write { addr, value } => Some((addr.raw(), *value)),
                _ => None,
            })
            .collect();
        let cell_base = b.cell_arr.addr(0, 0).raw();
        for op in force.iter().flatten() {
            if let Op::Read { addr, expect } = op {
                if addr.raw() >= cell_base {
                    let expect = expect.expect("cell reads are verified");
                    assert_eq!(written.get(&addr.raw()), Some(&expect));
                }
            }
        }
    }

    #[test]
    fn bodies_move_between_iterations() {
        let mut b = Barnes::new(small());
        let p0 = b.pos.clone();
        for _ in 0..4 {
            b.next_phase();
        }
        assert_ne!(b.pos, p0);
    }
}
