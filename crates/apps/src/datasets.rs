//! The application data sets of Table 3, plus a scale knob.
//!
//! The paper simulates each application on a small set "scaled for a
//! 4 Kbyte cache" and a significantly larger set. The bench harness can
//! additionally scale a set down by an integer factor to trade fidelity
//! for wall-clock time; the Figure 3/4 shapes are robust to moderate
//! scaling because they are driven by working-set-to-cache ratios and
//! communication-to-computation ratios, which the scaler preserves where
//! it can (it shrinks element counts, never the machine size).

use std::fmt;

/// Which benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AppId {
    /// NAS Appbt: computational fluid dynamics (block-tridiagonal).
    Appbt,
    /// SPLASH Barnes: gravitational N-body (Barnes-Hut).
    Barnes,
    /// SPLASH MP3D: rarefied fluid flow.
    Mp3d,
    /// SPLASH Ocean: hydrodynamic basin simulation.
    Ocean,
    /// Split-C EM3D: electromagnetic wave propagation.
    Em3d,
}

impl AppId {
    /// All five, in the paper's Figure 3 order.
    pub const ALL: [AppId; 5] = [
        AppId::Appbt,
        AppId::Barnes,
        AppId::Mp3d,
        AppId::Ocean,
        AppId::Em3d,
    ];

    /// Lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            AppId::Appbt => "appbt",
            AppId::Barnes => "barnes",
            AppId::Mp3d => "mp3d",
            AppId::Ocean => "ocean",
            AppId::Em3d => "em3d",
        }
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which Table 3 data set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataSet {
    /// The small set (scaled for a 4 KB cache).
    Small,
    /// The large set.
    Large,
}

impl DataSet {
    /// The Table 3 description string for an application.
    pub fn describe(self, app: AppId) -> String {
        match (app, self) {
            (AppId::Appbt, DataSet::Small) => "12x12x12".into(),
            (AppId::Appbt, DataSet::Large) => "24x24x24".into(),
            (AppId::Barnes, DataSet::Small) => "2048 bodies".into(),
            (AppId::Barnes, DataSet::Large) => "8192 bodies".into(),
            (AppId::Mp3d, DataSet::Small) => "10,000 mols".into(),
            (AppId::Mp3d, DataSet::Large) => "50,000 mols".into(),
            (AppId::Ocean, DataSet::Small) => "98x98 grid".into(),
            (AppId::Ocean, DataSet::Large) => "386x386 grid".into(),
            (AppId::Em3d, DataSet::Small) => "64,000 nodes, degree 10".into(),
            (AppId::Em3d, DataSet::Large) => "192,000 nodes, degree 15".into(),
        }
    }
}

impl fmt::Display for DataSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DataSet::Small => "small",
            DataSet::Large => "large",
        })
    }
}

/// Divides an element count by `scale`, keeping at least `min`.
pub fn scaled(count: usize, scale: usize, min: usize) -> usize {
    (count / scale.max(1)).max(min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_3_descriptions() {
        assert_eq!(DataSet::Small.describe(AppId::Ocean), "98x98 grid");
        assert_eq!(
            DataSet::Large.describe(AppId::Em3d),
            "192,000 nodes, degree 15"
        );
        assert_eq!(AppId::ALL.len(), 5);
    }

    #[test]
    fn scaling_clamps() {
        assert_eq!(scaled(1000, 4, 10), 250);
        assert_eq!(scaled(1000, 1000, 64), 64);
        assert_eq!(scaled(1000, 0, 1), 1000);
    }
}
