//! The hot-key write-update protocol for the KV server (`tt-serve`).
//!
//! Under an invalidation protocol (Stache), every put to a hot key pays
//! the full price of popularity: the home recalls or invalidates every
//! reader's copy, and each of those readers then misses and re-fetches.
//! For a Zipfian serving mix the same few keys are read by *everyone*,
//! so a write-heavy load on hot keys turns into an invalidation storm —
//! and tail latency explodes.
//!
//! This protocol flips the policy for KV slot pages (region mode
//! [`KV_MODE`]): the home keeps slot blocks **ReadWrite for itself** and
//! *pushes the new value* to every registered copy instead of
//! invalidating it. A put becomes:
//!
//! 1. the client stages the new value in its node's local staging page
//!    (ordinary local stores — never a fault), then calls
//!    [`KV_PUT_OP`] with the key;
//! 2. the protocol ships each slot block to the key's home
//!    ([`KV_WRITE`]);
//! 3. the home applies it and broadcasts [`KV_UPD`] to every node on
//!    the block's copy list — including the writer, if it holds a copy;
//! 4. sharers apply the update in place and acknowledge ([`KV_UACK`]);
//! 5. when the last ack is in, the home releases the writer
//!    ([`KV_WACK`]) and the put completes.
//!
//! Writes to the *same block* are serialized at the home: while a
//! broadcast is in flight the block's requests — reads ([`KV_GET`]) and
//! colliding writes alike — park in a FIFO and drain when the last ack
//! lands. That makes each block's value sequence a single total order
//! chosen at the home, and because the network preserves FIFO per
//! (src, dst) pair, two updates pushed to the same sharer can never
//! reorder — no version arbitration is needed at the edges.
//!
//! Gets are unchanged from Stache in *shape* — miss, fetch, cache
//! ReadOnly — but use the protocol's own [`KV_GET`]/[`KV_PUT_MSG`] pair
//! because the home's directory never downgrades its own tag. Non-KV
//! pages (the staging pages, anything else) fall through to the
//! embedded [`StacheProtocol`].
//!
//! `tt-check`'s KV litmus family proves this protocol observationally
//! equivalent to the stache baseline: same values at every checked read
//! and the same final slot image, under schedule fuzzing.

use std::collections::VecDeque;

use tt_base::addr::{VAddr, BLOCK_BYTES};
use tt_base::config::SystemConfig;
use tt_base::stats::{Counter, Report};
use tt_base::workload::Layout;
use tt_base::{FxHashMap, NodeId};
use tt_mem::{AccessKind, Tag};
use tt_net::{Payload, VirtualNet};
use tt_serve::{KvLayout, LatSink, SharedKvLatency, KV_MODE, KV_PUT_OP, KV_STAMP_OP};
use tt_stache::StacheProtocol;
use tt_tempest::{
    BlockFault, HandlerId, Message, PageFault, Protocol, TempestCtx, ThreadId, UserCall,
};

/// Request a copy of a KV slot block. Args: `[block_addr]`.
pub const KV_GET: HandlerId = HandlerId(0x40);
/// Grant a copy of a KV slot block. Args: `[block_addr]` + data.
pub const KV_PUT_MSG: HandlerId = HandlerId(0x41);
/// Ship one written slot block to its home. Args: `[block_addr]` + data.
pub const KV_WRITE: HandlerId = HandlerId(0x42);
/// Push an updated slot block to a sharer. Args: `[block_addr]` + data.
pub const KV_UPD: HandlerId = HandlerId(0x43);
/// Sharer's acknowledgment of an update. Args: `[block_addr]`.
pub const KV_UACK: HandlerId = HandlerId(0x44);
/// Home's release of the writer once a block's broadcast is acked.
/// Args: `[block_addr]`.
pub const KV_WACK: HandlerId = HandlerId(0x45);

/// Sharer-side cost of a slot miss (tag flip + send).
const GET_FAULT_INSTR: u64 = 14;
/// Home-side cost of serving a slot read (copy-list upkeep + reply).
const GET_SERVE_INSTR: u64 = 18;
/// Sharer-side cost of installing a granted copy.
const PUT_INSTALL_INSTR: u64 = 16;
/// Writer-side cost per block of launching a put.
const PUT_LAUNCH_INSTR: u64 = 12;
/// Home-side cost of applying one shipped block.
const WRITE_APPLY_INSTR: u64 = 20;
/// Home-side cost per update message sent.
const UPD_SEND_INSTR: u64 = 6;
/// Sharer-side cost of applying one pushed update.
const UPD_RECV_INSTR: u64 = 8;
/// Home-side cost of consuming one ack.
const UACK_INSTR: u64 = 4;
/// Writer-side cost of consuming a release.
const WACK_INSTR: u64 = 4;
/// Cost of the latency stamp.
const STAMP_INSTR: u64 = 4;

/// Statistics on top of the embedded Stache's.
#[derive(Clone, Debug, Default)]
pub struct KvUpdateStats {
    /// Slot reads served at homes.
    pub gets_served: Counter,
    /// Slot copies installed at sharers.
    pub copies_installed: Counter,
    /// Shipped blocks applied at homes.
    pub writes_applied: Counter,
    /// Update messages broadcast.
    pub updates_sent: Counter,
    /// Updates applied at sharers.
    pub updates_applied: Counter,
    /// Updates that arrived after the sharer dropped the page.
    pub stale_updates: Counter,
    /// Reads parked behind an in-flight broadcast.
    pub deferred_gets: Counter,
    /// Writes parked behind an in-flight broadcast.
    pub deferred_writes: Counter,
}

/// A home-side broadcast in flight for one block.
struct WriteTxn {
    acks_left: usize,
    writer: NodeId,
}

/// A request parked behind an in-flight broadcast.
enum Deferred {
    Get(NodeId),
    Write(NodeId, [u8; BLOCK_BYTES]),
}

/// A writer blocked in a put until every block's broadcast is released.
struct PutWait {
    thread: ThreadId,
    wacks_left: usize,
}

/// The write-update KV protocol for one node (see module docs).
pub struct KvUpdateProtocol {
    node: NodeId,
    /// Default protocol for non-KV pages (staging, everything else).
    stache: StacheProtocol,
    kv: KvLayout,
    /// Home side: per slot block, the nodes holding copies.
    copies: FxHashMap<u64, Vec<NodeId>>,
    /// Home side: broadcasts in flight, one per block at most.
    inflight: FxHashMap<u64, WriteTxn>,
    /// Home side: requests parked behind an in-flight broadcast.
    deferred: FxHashMap<u64, VecDeque<Deferred>>,
    /// Sharer side: the CPU's outstanding slot-read fault.
    pending_get: Option<ThreadId>,
    /// Writer side: the CPU's outstanding put.
    put_wait: Option<PutWait>,
    sink: LatSink,
    stats: KvUpdateStats,
}

impl KvUpdateProtocol {
    /// Builds one node's protocol; request latencies fold into `shared`.
    pub fn new(
        node: NodeId,
        layout: &Layout,
        cfg: &SystemConfig,
        kv: KvLayout,
        shared: SharedKvLatency,
    ) -> Self {
        KvUpdateProtocol {
            node,
            stache: StacheProtocol::new(node, layout, cfg),
            kv,
            copies: FxHashMap::default(),
            inflight: FxHashMap::default(),
            deferred: FxHashMap::default(),
            pending_get: None,
            put_wait: None,
            sink: LatSink::new(shared),
            stats: KvUpdateStats::default(),
        }
    }

    /// Read-only view of the custom statistics.
    pub fn stats(&self) -> &KvUpdateStats {
        &self.stats
    }

    /// Home side: reply to a slot read with the current block and
    /// register the reader on the copy list.
    fn serve_get(&mut self, ctx: &mut dyn TempestCtx, addr: VAddr, who: NodeId) {
        self.stats.gets_served.inc();
        ctx.charge(GET_SERVE_INSTR);
        ctx.protocol_data_access(addr.raw() / BLOCK_BYTES as u64);
        let entry = self.copies.entry(addr.raw()).or_default();
        if !entry.contains(&who) {
            entry.push(who);
        }
        let data = ctx.force_read_block(addr);
        ctx.send(
            who,
            VirtualNet::Response,
            KV_PUT_MSG,
            Payload::with_block(&[addr.raw()], data),
        );
    }

    /// Home side: apply one shipped block and broadcast it. Starts a
    /// transaction if any copies are outstanding; releases the writer
    /// immediately otherwise.
    fn apply_write(
        &mut self,
        ctx: &mut dyn TempestCtx,
        addr: VAddr,
        data: &[u8; BLOCK_BYTES],
        writer: NodeId,
    ) {
        debug_assert!(!self.inflight.contains_key(&addr.raw()));
        self.stats.writes_applied.inc();
        ctx.charge(WRITE_APPLY_INSTR);
        ctx.protocol_data_access(addr.raw() / BLOCK_BYTES as u64);
        ctx.force_write_block(addr, data);
        let sharers = self.copies.get(&addr.raw()).cloned().unwrap_or_default();
        if sharers.is_empty() {
            self.release_writer(ctx, addr, writer);
            return;
        }
        for dst in &sharers {
            self.stats.updates_sent.inc();
            ctx.charge(UPD_SEND_INSTR);
            ctx.send(
                *dst,
                VirtualNet::Request,
                KV_UPD,
                Payload::with_block(&[addr.raw()], *data),
            );
        }
        self.inflight.insert(addr.raw(), WriteTxn { acks_left: sharers.len(), writer });
    }

    /// Home side: a block's broadcast is fully acked — tell the writer.
    fn release_writer(&mut self, ctx: &mut dyn TempestCtx, addr: VAddr, writer: NodeId) {
        if writer == self.node {
            self.complete_put_block(ctx);
        } else {
            ctx.send(writer, VirtualNet::Response, KV_WACK, Payload::args(&[addr.raw()]));
        }
    }

    /// Writer side: one block of the outstanding put is done.
    fn complete_put_block(&mut self, ctx: &mut dyn TempestCtx) {
        let wait = self.put_wait.as_mut().expect("put release with no outstanding put");
        wait.wacks_left -= 1;
        if wait.wacks_left == 0 {
            let thread = self.put_wait.take().expect("checked above").thread;
            ctx.resume(thread);
        }
    }

    /// Home side: either start a write now or park it behind the
    /// block's in-flight broadcast.
    fn home_write(
        &mut self,
        ctx: &mut dyn TempestCtx,
        addr: VAddr,
        data: &[u8; BLOCK_BYTES],
        writer: NodeId,
    ) {
        if self.inflight.contains_key(&addr.raw()) {
            self.stats.deferred_writes.inc();
            self.deferred.entry(addr.raw()).or_default().push_back(Deferred::Write(writer, *data));
        } else {
            self.apply_write(ctx, addr, data, writer);
        }
    }

    fn on_kv_get(&mut self, ctx: &mut dyn TempestCtx, msg: &Message) {
        let addr = VAddr::new(msg.arg(0));
        if self.inflight.contains_key(&addr.raw()) {
            self.stats.deferred_gets.inc();
            self.deferred.entry(addr.raw()).or_default().push_back(Deferred::Get(msg.src));
        } else {
            self.serve_get(ctx, addr, msg.src);
        }
    }

    fn on_kv_put_msg(&mut self, ctx: &mut dyn TempestCtx, msg: &Message) {
        let addr = VAddr::new(msg.arg(0));
        self.stats.copies_installed.inc();
        ctx.charge(PUT_INSTALL_INSTR);
        let data = msg.payload.block();
        ctx.force_write_block(addr, &data);
        ctx.set_tag(addr, Tag::ReadOnly);
        let thread = self.pending_get.take().expect("slot copy granted with no pending fault");
        ctx.resume(thread);
    }

    fn on_kv_write(&mut self, ctx: &mut dyn TempestCtx, msg: &Message) {
        let addr = VAddr::new(msg.arg(0));
        let data = msg.payload.block();
        self.home_write(ctx, addr, &data, msg.src);
    }

    fn on_kv_upd(&mut self, ctx: &mut dyn TempestCtx, msg: &Message) {
        let addr = VAddr::new(msg.arg(0));
        ctx.charge(UPD_RECV_INSTR);
        // Apply in place if we still hold the page; a page evicted by
        // stache replacement leaves a stale copy-list entry behind, and
        // the ack alone is the right answer — a re-fault re-fetches.
        if ctx.translate(addr.page()).is_some() {
            let data = msg.payload.block();
            ctx.force_write_block(addr, &data);
            ctx.set_tag(addr, Tag::ReadOnly);
            self.stats.updates_applied.inc();
        } else {
            self.stats.stale_updates.inc();
        }
        ctx.send(msg.src, VirtualNet::Response, KV_UACK, Payload::args(&[addr.raw()]));
    }

    fn on_kv_uack(&mut self, ctx: &mut dyn TempestCtx, msg: &Message) {
        let addr = VAddr::new(msg.arg(0));
        ctx.charge(UACK_INSTR);
        let txn = self.inflight.get_mut(&addr.raw()).expect("ack with no broadcast in flight");
        txn.acks_left -= 1;
        if txn.acks_left > 0 {
            return;
        }
        let writer = txn.writer;
        self.inflight.remove(&addr.raw());
        self.release_writer(ctx, addr, writer);
        // Drain parked requests in arrival order. A parked write starts
        // a fresh broadcast, which re-parks everything behind it.
        while let Some(req) = self.deferred.get_mut(&addr.raw()).and_then(VecDeque::pop_front) {
            match req {
                Deferred::Get(who) => self.serve_get(ctx, addr, who),
                Deferred::Write(who, data) => {
                    self.apply_write(ctx, addr, &data, who);
                    if self.inflight.contains_key(&addr.raw()) {
                        return;
                    }
                }
            }
        }
    }

    fn on_kv_wack(&mut self, ctx: &mut dyn TempestCtx) {
        ctx.charge(WACK_INSTR);
        self.complete_put_block(ctx);
    }

    /// Writer side: publish the staged value of `key`.
    fn on_put_call(&mut self, ctx: &mut dyn TempestCtx, thread: ThreadId, key: u64) {
        assert!(self.put_wait.is_none(), "one put at a time per node");
        let blocks = self.kv.slot_blocks();
        self.put_wait = Some(PutWait { thread, wacks_left: blocks });
        let slot = self.kv.slot_addr(key);
        let staging = self.kv.staging_addr(self.node);
        let home = self.kv.home_of_key(key);
        for b in 0..blocks {
            ctx.charge(PUT_LAUNCH_INSTR);
            let off = (b * BLOCK_BYTES) as u64;
            let data = ctx.force_read_block(staging.offset(off));
            let addr = slot.offset(off);
            if home == self.node {
                self.home_write(ctx, addr, &data, self.node);
            } else {
                ctx.send(
                    home,
                    VirtualNet::Request,
                    KV_WRITE,
                    Payload::with_block(&[addr.raw()], data),
                );
            }
        }
    }
}

impl Protocol for KvUpdateProtocol {
    fn init(&mut self, ctx: &mut dyn TempestCtx) {
        // Stache's init maps every home page ReadWrite — exactly the
        // home-keeps-writing policy this protocol wants for slots too.
        self.stache.init(ctx);
    }

    fn on_page_fault(&mut self, ctx: &mut dyn TempestCtx, fault: PageFault) {
        // Stache's handler allocates the frame, records the region mode
        // and home in the page metadata, and enforces the frame budget;
        // KV slot pages need nothing more.
        self.stache.on_page_fault(ctx, fault);
    }

    fn on_block_fault(&mut self, ctx: &mut dyn TempestCtx, fault: BlockFault) {
        if fault.meta.mode != KV_MODE {
            self.stache.on_block_fault(ctx, fault);
            return;
        }
        assert_eq!(
            fault.kind,
            AccessKind::Load,
            "update-variant puts go through the staging page, never raw slot stores"
        );
        let home = NodeId::new(fault.meta.user[0] as u16);
        assert_ne!(home, self.node, "slot homes keep ReadWrite tags");
        let addr = fault.addr.block_base();
        ctx.charge(GET_FAULT_INSTR);
        ctx.set_tag(addr, Tag::Busy);
        assert!(self.pending_get.is_none(), "one slot fault at a time per CPU");
        self.pending_get = Some(fault.thread);
        ctx.send(home, VirtualNet::Request, KV_GET, Payload::args(&[addr.raw()]));
    }

    fn on_message(&mut self, ctx: &mut dyn TempestCtx, msg: Message) {
        match msg.handler {
            KV_GET => self.on_kv_get(ctx, &msg),
            KV_PUT_MSG => self.on_kv_put_msg(ctx, &msg),
            KV_WRITE => self.on_kv_write(ctx, &msg),
            KV_UPD => self.on_kv_upd(ctx, &msg),
            KV_UACK => self.on_kv_uack(ctx, &msg),
            KV_WACK => self.on_kv_wack(ctx),
            _ => self.stache.on_message(ctx, msg),
        }
    }

    fn on_user_call(&mut self, ctx: &mut dyn TempestCtx, thread: ThreadId, call: UserCall) {
        match call.op {
            KV_PUT_OP => self.on_put_call(ctx, thread, call.arg),
            KV_STAMP_OP => {
                ctx.charge(STAMP_INSTR);
                self.sink.record(ctx.now(), call.arg);
                ctx.resume(thread);
            }
            _ => ctx.resume(thread),
        }
    }

    fn name(&self) -> &'static str {
        "kv-update"
    }

    fn report(&self, report: &mut Report) {
        self.stache.report(report);
        report.push_count("kv.gets", self.sink.local.get.total());
        report.push_count("kv.puts", self.sink.local.put.total());
        let s = &self.stats;
        report.push_count("kvu.gets_served", s.gets_served.get());
        report.push_count("kvu.copies_installed", s.copies_installed.get());
        report.push_count("kvu.writes_applied", s.writes_applied.get());
        report.push_count("kvu.updates_sent", s.updates_sent.get());
        report.push_count("kvu.updates_applied", s.updates_applied.get());
        report.push_count("kvu.stale_updates", s.stale_updates.get());
        report.push_count("kvu.deferred_gets", s.deferred_gets.get());
        report.push_count("kvu.deferred_writes", s.deferred_writes.get());
    }
}

/// [`tt_serve::run_kv`] with this protocol: the update-variant runner.
pub fn run_kv_update(
    cfg: &SystemConfig,
    params: &tt_serve::KvParams,
) -> tt_serve::KvOutcome {
    tt_serve::run_kv(cfg, params, &|node, layout, cfg, kv, shared| {
        Box::new(KvUpdateProtocol::new(node, layout, cfg, kv.clone(), shared))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_serve::{run_kv_stache, KvParams, KvVariant};

    #[test]
    fn update_serving_runs_and_counts_every_request() {
        let mut params = KvParams::small(KvVariant::Update);
        params.write_pct = 50;
        let cfg = SystemConfig::test_config(params.nodes);
        let out = run_kv_update(&cfg, &params);
        assert_eq!(out.lat.requests(), params.requests_per_node * params.nodes as u64);
        assert!(out.report.get("kvu.writes_applied").unwrap() > 0.0);
        assert!(out.report.get("kvu.updates_sent").unwrap() > 0.0);
    }

    #[test]
    fn update_serving_is_sim_thread_invariant() {
        let mut params = KvParams::small(KvVariant::Update);
        params.write_pct = 50;
        let seq = run_kv_update(&SystemConfig::test_config(params.nodes), &params);
        let mut cfg = SystemConfig::test_config(params.nodes);
        cfg.sim_threads = 2;
        let par = run_kv_update(&cfg, &params);
        assert_eq!(seq.cycles, par.cycles);
        assert_eq!(seq.report, par.report);
        assert_eq!(seq.lat, par.lat);
    }

    #[test]
    fn variants_agree_on_request_counts() {
        // Same seed, same mix: the two variants serve the identical
        // request stream (the litmus family proves value agreement; this
        // is the cheap smoke that the runs are comparable at all).
        let mut sp = KvParams::small(KvVariant::Stache);
        sp.write_pct = 50;
        let mut up = sp.clone();
        up.variant = KvVariant::Update;
        let cfg = SystemConfig::test_config(sp.nodes);
        let s = run_kv_stache(&cfg, &sp);
        let u = run_kv_update(&cfg, &up);
        assert_eq!(s.lat.get.total(), u.lat.get.total());
        assert_eq!(s.lat.put.total(), u.lat.put.total());
    }
}
