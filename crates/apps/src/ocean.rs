//! Ocean: hydrodynamic simulation of a 2-D cuboidal ocean basin
//! (SPLASH; Table 3 data sets 98×98 and 386×386).
//!
//! The SPLASH code relaxes a set of n×n grids with 5-point stencils
//! inside a multigrid solver. This reproduction keeps the part that
//! drives the memory system: row-block-partitioned Jacobi sweeps over a
//! pair of grids (read one, write the other, swap), whose only remote
//! traffic is the boundary rows between adjacent partitions, plus a
//! per-sweep global error reduction (each processor publishes a partial
//! sum; processor 0 combines them) that adds the original's
//! serialization point.
//!
//! Sharing pattern: large per-processor working sets (the Figure 3
//! capacity story — a 386×386 double grid is ~1.2 MB, far over every CPU
//! cache), nearest-neighbor boundary exchange, and producer-consumer
//! reduction.
//!
//! # Boundary-push mode
//!
//! [`OceanSync::Push`] demonstrates that the paper's delayed-update idea
//! (Section 4) is not EM3D-specific: each band's *boundary rows* are
//! allocated on custom-mode pages, and a per-sweep flush pushes the
//! freshly written boundary values to the neighbors holding copies —
//! one update message per boundary block per sweep instead of the
//! invalidate/ack/request/response round trips of transparent shared
//! memory. Run it with `tt_stache::DelayedUpdateProtocol`.

use tt_base::workload::{Layout, Op};

use crate::alloc::{ArenaPlanner, OwnedArray};
use crate::phased::PhasedApp;

/// Mode of grid 0's boundary pages (= the delayed-update protocol's
/// first custom mode).
pub const BOUNDARY_MODE_G0: u8 = crate::em3d::E_MODE;
/// Mode of grid 1's boundary pages.
pub const BOUNDARY_MODE_G1: u8 = crate::em3d::H_MODE;

/// How sweeps synchronize boundary data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OceanSync {
    /// Plain barriers; boundary rows are ordinary shared pages
    /// (transparent shared memory / hardware coherence).
    Barrier,
    /// Boundary rows live on custom update pages; each sweep ends with a
    /// protocol flush that pushes the new boundary values (run under
    /// `tt_stache::DelayedUpdateProtocol`).
    Push,
}

/// Ocean parameters.
#[derive(Clone, Debug)]
pub struct OceanParams {
    /// Grid edge (points per side).
    pub n: usize,
    /// Jacobi sweeps to run.
    pub iterations: usize,
    /// Processors.
    pub procs: usize,
    /// Boundary synchronization mode.
    pub sync: OceanSync,
}

impl OceanParams {
    /// The Table 3 data set.
    pub fn table3(set: crate::DataSet, procs: usize) -> Self {
        let n = match set {
            crate::DataSet::Small => 98,
            crate::DataSet::Large => 386,
        };
        OceanParams {
            n,
            iterations: 4,
            procs,
            sync: OceanSync::Barrier,
        }
    }
}

/// Cycles of floating-point work per stencil point.
const POINT_COMPUTE: u32 = 8;
/// Cycles for a processor's part of the reduction bookkeeping.
const REDUCE_COMPUTE: u32 = 20;

/// Where a grid row lives.
#[derive(Clone, Copy, Debug)]
struct RowSlot {
    owner: usize,
    /// Index into the owner's interior (false) or boundary (true) array.
    boundary: bool,
    local_row: usize,
}

/// The Ocean workload (see module docs).
pub struct Ocean {
    params: OceanParams,
    /// Interior rows of the two grids, owner-placed, mode 0.
    grids: [OwnedArray; 2],
    /// Boundary rows of the two grids. In `Push` mode these carry the
    /// delayed-update page modes; in `Barrier` mode they are ordinary
    /// pages (mode 0) and behave exactly like the interior.
    bounds: [OwnedArray; 2],
    /// Partial-sum slots, one per processor, owner-placed.
    partials: OwnedArray,
    /// Native grid values, `native[g][row * n + col]`.
    native: [Vec<f64>; 2],
    /// Row placement map.
    rows: Vec<RowSlot>,
    layout: Layout,
    phase: usize,
}

impl Ocean {
    /// Builds the grids and partition.
    pub fn new(params: OceanParams) -> Self {
        let n = params.n;
        assert!(n >= 4, "grid too small");
        let band = crate::alloc::even_split(n, params.procs);
        // Row map: the first and last row of each band are boundary rows
        // (read by the neighboring bands).
        let mut rows = Vec::with_capacity(n);
        let mut interior_counts = vec![0usize; params.procs];
        let mut boundary_counts = vec![0usize; params.procs];
        {
            let mut row = 0;
            for (owner, &r) in band.iter().enumerate() {
                for k in 0..r {
                    let boundary = k == 0 || k == r - 1;
                    let counts = if boundary {
                        &mut boundary_counts
                    } else {
                        &mut interior_counts
                    };
                    rows.push(RowSlot {
                        owner,
                        boundary,
                        local_row: counts[owner],
                    });
                    counts[owner] += 1;
                    row += 1;
                }
            }
            assert_eq!(row, n);
        }
        let interior_elems: Vec<usize> = interior_counts.iter().map(|&r| r * n).collect();
        let boundary_elems: Vec<usize> = boundary_counts.iter().map(|&r| r * n).collect();
        let (mode0, mode1) = match params.sync {
            OceanSync::Barrier => (0, 0),
            OceanSync::Push => (BOUNDARY_MODE_G0, BOUNDARY_MODE_G1),
        };
        let mut planner = ArenaPlanner::new();
        let grids = [
            OwnedArray::plan(&mut planner, &interior_elems, 1, 0),
            OwnedArray::plan(&mut planner, &interior_elems, 1, 0),
        ];
        let bounds = [
            OwnedArray::plan(&mut planner, &boundary_elems, 1, mode0),
            OwnedArray::plan(&mut planner, &boundary_elems, 1, mode1),
        ];
        let partials = OwnedArray::plan(&mut planner, &vec![1; params.procs], 1, 0);
        // Deterministic initial field: a smooth-ish function of position.
        let init: Vec<f64> = (0..n * n)
            .map(|i| {
                let (r, c) = (i / n, i % n);
                ((r as f64) * 0.37).sin() + ((c as f64) * 0.21).cos()
            })
            .collect();
        let native = [init.clone(), init];
        let mut layout = Layout::new();
        layout.add(grids[0].region());
        layout.add(grids[1].region());
        layout.add(bounds[0].region());
        layout.add(bounds[1].region());
        layout.add(partials.region());
        Ocean {
            params,
            grids,
            bounds,
            partials,
            native,
            rows,
            layout,
            phase: 0,
        }
    }

    /// The parameters this instance was built with.
    pub fn params(&self) -> &OceanParams {
        &self.params
    }

    /// Total interior grid points relaxed per sweep.
    pub fn points_per_sweep(&self) -> usize {
        (self.params.n - 2) * (self.params.n - 2)
    }

    /// The processor that owns grid row `row`.
    pub fn owner_of_row(&self, row: usize) -> usize {
        self.rows[row].owner
    }

    fn addr(&self, g: usize, row: usize, col: usize) -> tt_base::VAddr {
        let slot = self.rows[row];
        let arr = if slot.boundary {
            &self.bounds[g]
        } else {
            &self.grids[g]
        };
        arr.addr(slot.owner, slot.local_row * self.params.n + col, 0)
    }

    /// Init phase: owners write their rows of both grids.
    fn init_phase(&self) -> Vec<Vec<Op>> {
        let n = self.params.n;
        (0..self.params.procs)
            .map(|p| {
                let mut ops = Vec::new();
                for g in 0..2 {
                    for row in 0..n {
                        if self.rows[row].owner != p {
                            continue;
                        }
                        for col in 0..n {
                            ops.push(Op::Write {
                                addr: self.addr(g, row, col),
                                value: self.native[g][row * n + col].to_bits(),
                            });
                        }
                    }
                }
                ops.push(Op::Write {
                    addr: self.partials.addr(p, 0, 0),
                    value: 0,
                });
                ops.push(Op::Barrier);
                ops
            })
            .collect()
    }

    /// One Jacobi sweep reading grid `src` and writing grid `dst`,
    /// followed by the partial-sum publication; a trailing reduction lets
    /// processor 0 combine the partials.
    fn sweep_phase(&mut self, src: usize, dst: usize) -> Vec<Vec<Op>> {
        let n = self.params.n;
        let mut chunks = Vec::with_capacity(self.params.procs);
        let mut new_grid = self.native[dst].clone();
        let mut partial_bits = Vec::with_capacity(self.params.procs);
        for p in 0..self.params.procs {
            let mut ops = Vec::new();
            let mut partial = 0.0f64;
            for row in 1..n - 1 {
                if self.rows[row].owner != p {
                    continue;
                }
                for col in 1..n - 1 {
                    let a = &self.native[src];
                    let center = a[row * n + col];
                    let north = a[(row - 1) * n + col];
                    let south = a[(row + 1) * n + col];
                    let west = a[row * n + col - 1];
                    let east = a[row * n + col + 1];
                    for (ar, ac, v) in [
                        (row, col, center),
                        (row - 1, col, north),
                        (row + 1, col, south),
                        (row, col - 1, west),
                        (row, col + 1, east),
                    ] {
                        ops.push(Op::Read {
                            addr: self.addr(src, ar, ac),
                            expect: Some(v.to_bits()),
                        });
                    }
                    let newv = 0.2 * (center + north + south + west + east);
                    partial += (newv - center).abs();
                    ops.push(Op::Compute(POINT_COMPUTE));
                    ops.push(Op::Write {
                        addr: self.addr(dst, row, col),
                        value: newv.to_bits(),
                    });
                    new_grid[row * n + col] = newv;
                }
            }
            ops.push(Op::Compute(REDUCE_COMPUTE));
            ops.push(Op::Write {
                addr: self.partials.addr(p, 0, 0),
                value: partial.to_bits(),
            });
            if self.params.sync == OceanSync::Push {
                // Push the dst grid's freshly written boundary rows to
                // whoever holds copies, and wait for the updates of the
                // boundary blocks we hold.
                let mode = if dst == 0 {
                    BOUNDARY_MODE_G0
                } else {
                    BOUNDARY_MODE_G1
                };
                ops.push(Op::UserCall {
                    op: crate::em3d::FLUSH_OP,
                    arg: mode as u64,
                });
            }
            ops.push(Op::Barrier);
            chunks.push(ops);
            partial_bits.push(partial.to_bits());
        }
        self.native[dst] = new_grid;
        // Reduction: processor 0 reads every partial after the barrier.
        for (p, chunk) in chunks.iter_mut().enumerate() {
            if p == 0 {
                for (q, &bits) in partial_bits.iter().enumerate() {
                    chunk.push(Op::Read {
                        addr: self.partials.addr(q, 0, 0),
                        expect: Some(bits),
                    });
                }
                chunk.push(Op::Compute(REDUCE_COMPUTE * self.params.procs as u32));
            }
            chunk.push(Op::Barrier);
        }
        chunks
    }
}

impl PhasedApp for Ocean {
    fn name(&self) -> &'static str {
        "ocean"
    }

    fn layout(&self) -> Layout {
        self.layout.clone()
    }

    fn procs(&self) -> usize {
        self.params.procs
    }

    fn next_phase(&mut self) -> Option<Vec<Vec<Op>>> {
        let phase = self.phase;
        self.phase += 1;
        if phase == 0 {
            return Some(self.init_phase());
        }
        let sweep = phase - 1;
        if sweep >= self.params.iterations {
            return None;
        }
        let (src, dst) = if sweep.is_multiple_of(2) { (0, 1) } else { (1, 0) };
        Some(self.sweep_phase(src, dst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> OceanParams {
        OceanParams {
            n: 16,
            iterations: 2,
            procs: 4,
            sync: OceanSync::Barrier,
        }
    }

    #[test]
    fn rows_are_block_partitioned() {
        let o = Ocean::new(small());
        assert_eq!(o.owner_of_row(0), 0);
        assert_eq!(o.owner_of_row(3), 0);
        assert_eq!(o.owner_of_row(4), 1);
        assert_eq!(o.owner_of_row(15), 3);
    }

    #[test]
    fn band_edges_are_boundary_rows() {
        let o = Ocean::new(small());
        // Bands of 4 rows: rows 0,3 | 4,7 | 8,11 | 12,15 are boundaries.
        for row in 0..16 {
            let expect = matches!(row % 4, 0 | 3);
            assert_eq!(o.rows[row].boundary, expect, "row {row}");
        }
    }

    #[test]
    fn phase_structure() {
        let mut o = Ocean::new(small());
        let mut phases = 0;
        while o.next_phase().is_some() {
            phases += 1;
        }
        assert_eq!(phases, 1 + 2);
    }

    #[test]
    fn sweep_reads_cross_partition_boundaries() {
        let mut o = Ocean::new(small());
        let _ = o.next_phase();
        let sweep = o.next_phase().unwrap();
        // Processor 1 (rows 4..8) must read rows 3 and 8, owned by 0 and 2.
        let foreign = [o.addr(0, 3, 5).page(), o.addr(0, 8, 5).page()];
        let crosses = sweep[1].iter().any(|op| match op {
            Op::Read { addr, .. } => foreign.contains(&addr.page()),
            _ => false,
        });
        assert!(crosses);
    }

    #[test]
    fn push_mode_marks_boundary_pages_and_emits_flushes() {
        let mut p = small();
        p.sync = OceanSync::Push;
        let mut o = Ocean::new(p);
        let modes: Vec<u8> = o.layout().regions.iter().map(|r| r.mode).collect();
        assert_eq!(modes, vec![0, 0, BOUNDARY_MODE_G0, BOUNDARY_MODE_G1, 0]);
        let _ = o.next_phase();
        let sweep = o.next_phase().unwrap();
        assert!(sweep[0]
            .iter()
            .any(|op| matches!(op, Op::UserCall { op: f, .. } if *f == crate::em3d::FLUSH_OP)));
    }

    #[test]
    fn barrier_mode_keeps_everything_mode_zero() {
        let o = Ocean::new(small());
        assert!(o.layout().regions.iter().all(|r| r.mode == 0));
    }

    #[test]
    fn jacobi_native_update_is_applied() {
        let mut o = Ocean::new(small());
        let before = o.native[1].clone();
        let _ = o.next_phase();
        let _ = o.next_phase();
        assert_ne!(o.native[1], before, "sweep wrote grid 1");
    }

    #[test]
    fn reduction_is_done_by_processor_zero() {
        let mut o = Ocean::new(small());
        let _ = o.next_phase();
        let sweep = o.next_phase().unwrap();
        let partial_base = o.partials.addr(0, 0, 0).raw();
        let count = |ops: &Vec<Op>| {
            ops.iter()
                .filter(|op| matches!(op, Op::Read { addr, .. } if addr.raw() >= partial_base))
                .count()
        };
        assert_eq!(count(&sweep[0]), 4);
        assert_eq!(count(&sweep[1]), 0);
    }

    #[test]
    fn points_per_sweep_counts_interior() {
        let o = Ocean::new(small());
        assert_eq!(o.points_per_sweep(), 14 * 14);
    }
}
