//! EM3D: electromagnetic wave propagation on a static bipartite graph
//! (paper Section 4, Program 1; data sets in Table 3).
//!
//! E nodes hold electric-field values, H nodes magnetic-field values.
//! Each iteration first recomputes every E value as a weighted sum of its
//! neighboring H values, then every H value from the new E values. Nodes
//! are split evenly across processors (owners-compute); the fraction of
//! edges whose source lives on a *remote* processor is the key knob —
//! Figure 4 sweeps it from 0% to 50%.
//!
//! Value arrays are shared (one 64-bit word per graph node, placed on the
//! owner's pages); edge lists and weights are private per processor and
//! are modeled as compute cycles, as in the Split-C original where they
//! are local arrays.
//!
//! Two synchronization modes:
//! - [`SyncMode::Barrier`]: plain barriers between phases — the
//!   transparent-shared-memory version (runs on DirNNB and on Stache);
//! - [`SyncMode::Flush`]: the custom delayed-update protocol's phase
//!   flush (`tt-stache::custom`), with hardware barriers only around the
//!   first iteration while the (static) access pattern is discovered.

use tt_base::workload::{Layout, Op};
use tt_base::DetRng;

use crate::alloc::{even_split, ArenaPlanner, OwnedArray};
use crate::phased::PhasedApp;

/// Page modes matching `tt_stache::custom::{EM3D_E_MODE, EM3D_H_MODE}`.
/// Redeclared here so the apps crate does not depend on the protocol
/// crate; an integration test asserts they stay equal.
pub const E_MODE: u8 = 2;
/// See [`E_MODE`].
pub const H_MODE: u8 = 3;

/// The protocol-call op code for the phase flush (must equal
/// `tt_stache::custom::FLUSH_OP`).
pub const FLUSH_OP: u32 = 1;

/// How phases synchronize.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncMode {
    /// Hardware barrier between phases (transparent shared memory).
    Barrier,
    /// Custom-protocol flush calls; barriers only around iteration 0.
    Flush,
}

/// EM3D parameters.
#[derive(Clone, Debug)]
pub struct Em3dParams {
    /// Total graph nodes (half E, half H).
    pub graph_nodes: usize,
    /// In-degree of every node.
    pub degree: usize,
    /// Fraction of edges whose source node is remote (Figure 4 x-axis).
    pub pct_remote: f64,
    /// Iterations to simulate.
    pub iterations: usize,
    /// Processors.
    pub procs: usize,
    /// Graph-generation seed.
    pub seed: u64,
    /// Synchronization mode.
    pub sync: SyncMode,
}

impl Em3dParams {
    /// The Table 3 data set.
    pub fn table3(set: crate::DataSet, procs: usize) -> Self {
        let (graph_nodes, degree) = match set {
            crate::DataSet::Small => (64_000, 10),
            crate::DataSet::Large => (192_000, 15),
        };
        Em3dParams {
            graph_nodes,
            degree,
            pct_remote: 0.10,
            iterations: 4,
            procs,
            seed: 0xE3D,
            sync: SyncMode::Barrier,
        }
    }
}

/// One directed edge: value flows from `(src_owner, src_idx)` of the
/// other kind into the destination node.
#[derive(Clone, Copy, Debug)]
struct Edge {
    src_owner: u16,
    src_idx: u32,
    weight: f64,
}

/// Per-kind (E or H) graph side.
struct Side {
    /// Shared value array, one word per node, owner-placed.
    vals: OwnedArray,
    /// Native values, indexed `[owner][idx]`.
    native: Vec<Vec<f64>>,
    /// Edges into each node: `edges[owner][idx]` lists sources of the
    /// *other* kind.
    edges: Vec<Vec<Vec<Edge>>>,
    mode: u8,
}

/// The EM3D workload (see module docs).
pub struct Em3d {
    params: Em3dParams,
    e: Side,
    h: Side,
    layout: Layout,
    /// 0 = init; then pairs of (E phase, H phase) per iteration.
    phase: usize,
    total_edges: usize,
}

/// Cycles of private computation per edge (weight load, multiply,
/// subtract — the Split-C inner loop).
const EDGE_COMPUTE: u32 = 4;
/// Cycles of per-node loop overhead.
const NODE_COMPUTE: u32 = 6;

impl Em3d {
    /// Builds the graph and plans the shared arrays.
    pub fn new(params: Em3dParams) -> Self {
        assert!(params.procs >= 1);
        assert!((0.0..=1.0).contains(&params.pct_remote));
        let mut rng = DetRng::new(params.seed);
        let per_kind = params.graph_nodes / 2;
        let counts = even_split(per_kind, params.procs);
        let mut planner = ArenaPlanner::new();
        let build_side = |planner: &mut ArenaPlanner, rng: &mut DetRng, mode: u8| {
            let vals = OwnedArray::plan(planner, &counts, 1, mode);
            let native: Vec<Vec<f64>> = counts
                .iter()
                .map(|&c| (0..c).map(|_| rng.unit_f64()).collect())
                .collect();
            Side {
                vals,
                native,
                edges: Vec::new(),
                mode,
            }
        };
        let mut e = build_side(&mut planner, &mut rng, E_MODE);
        let mut h = build_side(&mut planner, &mut rng, H_MODE);

        // Edges: destinations of one kind draw sources from the other.
        let mut total_edges = 0usize;
        let mut gen_edges = |rng: &mut DetRng, src_counts: &[usize]| -> Vec<Vec<Vec<Edge>>> {
            counts
                .iter()
                .enumerate()
                .map(|(owner, &c)| {
                    (0..c)
                        .map(|_| {
                            (0..params.degree)
                                .map(|_| {
                                    let src_owner = if params.procs > 1
                                        && rng.chance(params.pct_remote)
                                    {
                                        // A uniformly random *other* processor.
                                        let mut o = rng.below_usize(params.procs - 1);
                                        if o >= owner {
                                            o += 1;
                                        }
                                        o
                                    } else {
                                        owner
                                    };
                                    total_edges += 1;
                                    Edge {
                                        src_owner: src_owner as u16,
                                        src_idx: rng
                                            .below_usize(src_counts[src_owner].max(1))
                                            as u32,
                                        weight: 0.5 + rng.unit_f64(),
                                    }
                                })
                                .collect()
                        })
                        .collect()
                })
                .collect()
        };
        e.edges = gen_edges(&mut rng, &counts); // E reads H
        h.edges = gen_edges(&mut rng, &counts); // H reads E

        let mut layout = Layout::new();
        layout.add(e.vals.region());
        layout.add(h.vals.region());
        Em3d {
            params,
            e,
            h,
            layout,
            phase: 0,
            total_edges,
        }
    }

    /// Total directed edges in the graph (both kinds).
    pub fn total_edges(&self) -> usize {
        self.total_edges
    }

    /// The parameters this instance was built with.
    pub fn params(&self) -> &Em3dParams {
        &self.params
    }

    /// Generates the init phase: owners write their initial values.
    fn init_phase(&self) -> Vec<Vec<Op>> {
        (0..self.params.procs)
            .map(|p| {
                let mut ops = Vec::new();
                for side in [&self.e, &self.h] {
                    for i in 0..side.vals.count(p) {
                        ops.push(Op::Write {
                            addr: side.vals.addr(p, i, 0),
                            value: side.native[p][i].to_bits(),
                        });
                    }
                }
                ops.push(Op::Barrier);
                ops
            })
            .collect()
    }

    /// Generates one compute phase (`dst` = E reading H, or H reading E)
    /// and applies the native update. `first_iteration` adds the warmup
    /// barrier in flush mode.
    fn compute_phase(&mut self, kind_e: bool, first_iteration: bool) -> Vec<Vec<Op>> {
        let procs = self.params.procs;
        let (dst, src) = if kind_e {
            (&self.e, &self.h)
        } else {
            (&self.h, &self.e)
        };
        let mut chunks: Vec<Vec<Op>> = Vec::with_capacity(procs);
        let mut new_vals: Vec<Vec<f64>> = Vec::with_capacity(procs);
        for p in 0..procs {
            let mut ops = Vec::new();
            let mut news = Vec::with_capacity(dst.vals.count(p));
            for i in 0..dst.vals.count(p) {
                let old = dst.native[p][i];
                // n->value -= n->h_nodes[k]->value * n->weights[k]
                let mut acc = old;
                ops.push(Op::Read {
                    addr: dst.vals.addr(p, i, 0),
                    expect: Some(old.to_bits()),
                });
                for edge in &dst.edges[p][i] {
                    let sv = src.native[edge.src_owner as usize][edge.src_idx as usize];
                    acc -= sv * edge.weight;
                    ops.push(Op::Read {
                        addr: src.vals.addr(edge.src_owner as usize, edge.src_idx as usize, 0),
                        expect: Some(sv.to_bits()),
                    });
                }
                // Keep values bounded so long runs stay finite.
                let newv = acc * 0.25;
                ops.push(Op::Compute(
                    NODE_COMPUTE + EDGE_COMPUTE * dst.edges[p][i].len() as u32,
                ));
                ops.push(Op::Write {
                    addr: dst.vals.addr(p, i, 0),
                    value: newv.to_bits(),
                });
                news.push(newv);
            }
            match self.params.sync {
                SyncMode::Barrier => ops.push(Op::Barrier),
                SyncMode::Flush => {
                    ops.push(Op::UserCall {
                        op: FLUSH_OP,
                        arg: dst.mode as u64,
                    });
                    if first_iteration {
                        ops.push(Op::Barrier);
                    }
                }
            }
            chunks.push(ops);
            new_vals.push(news);
        }
        let dst = if kind_e { &mut self.e } else { &mut self.h };
        dst.native = new_vals;
        chunks
    }
}

impl PhasedApp for Em3d {
    fn name(&self) -> &'static str {
        "em3d"
    }

    fn layout(&self) -> Layout {
        self.layout.clone()
    }

    fn procs(&self) -> usize {
        self.params.procs
    }

    fn next_phase(&mut self) -> Option<Vec<Vec<Op>>> {
        let phase = self.phase;
        self.phase += 1;
        if phase == 0 {
            return Some(self.init_phase());
        }
        let step = phase - 1;
        let iteration = step / 2;
        if iteration >= self.params.iterations {
            return None;
        }
        let kind_e = step.is_multiple_of(2);
        Some(self.compute_phase(kind_e, iteration == 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_base::workload::Workload;
    use crate::phased::PhasedWorkload;

    fn small() -> Em3dParams {
        Em3dParams {
            graph_nodes: 200,
            degree: 3,
            pct_remote: 0.3,
            iterations: 2,
            procs: 4,
            seed: 1,
            sync: SyncMode::Barrier,
        }
    }

    #[test]
    fn edge_sources_respect_pct_remote_zero_and_one() {
        let mut p = small();
        p.pct_remote = 0.0;
        let app = Em3d::new(p);
        for (owner, per_node) in app.e.edges.iter().enumerate() {
            for edges in per_node {
                for e in edges {
                    assert_eq!(e.src_owner as usize, owner);
                }
            }
        }
        let mut p = small();
        p.pct_remote = 1.0;
        let app = Em3d::new(p);
        for (owner, per_node) in app.h.edges.iter().enumerate() {
            for edges in per_node {
                for e in edges {
                    assert_ne!(e.src_owner as usize, owner);
                }
            }
        }
    }

    #[test]
    fn phase_count_is_init_plus_two_per_iteration() {
        let mut app = Em3d::new(small());
        let mut phases = 0;
        while app.next_phase().is_some() {
            phases += 1;
        }
        assert_eq!(phases, 1 + 2 * 2);
    }

    #[test]
    fn total_edges_matches_degree() {
        let app = Em3d::new(small());
        assert_eq!(app.total_edges(), 200 * 3);
    }

    #[test]
    fn flush_mode_emits_user_calls_and_warmup_barriers() {
        let mut p = small();
        p.sync = SyncMode::Flush;
        let mut app = Em3d::new(p);
        let _init = app.next_phase().unwrap();
        let e_phase = app.next_phase().unwrap();
        let last_two: Vec<_> = e_phase[0].iter().rev().take(2).collect();
        assert_eq!(*last_two[0], Op::Barrier, "warmup barrier in iter 0");
        assert!(matches!(last_two[1], Op::UserCall { op: FLUSH_OP, .. }));
        // Second iteration's phases end with the flush only.
        let _h = app.next_phase().unwrap();
        let e2 = app.next_phase().unwrap();
        assert!(matches!(e2[0].last(), Some(Op::UserCall { .. })));
    }

    #[test]
    fn reads_expect_previous_phase_values() {
        let mut app = Em3d::new(small());
        let init = app.next_phase().unwrap();
        // Collect the values written at init for owner 0's h array.
        let h0: Vec<u64> = init[0]
            .iter()
            .filter_map(|op| match op {
                Op::Write { addr, value }
                    if addr.raw() >= app.h.vals.addr(0, 0, 0).raw() =>
                {
                    Some(*value)
                }
                _ => None,
            })
            .collect();
        assert!(!h0.is_empty());
        let e_phase = app.next_phase().unwrap();
        // Every read of owner-0 h values in the E phase expects one of
        // the values init wrote.
        for ops in &e_phase {
            for op in ops {
                if let Op::Read { addr, expect } = op {
                    if addr.raw() >= app.h.vals.addr(0, 0, 0).raw()
                        && addr.raw() <= app.h.vals.addr(0, app.h.vals.count(0) - 1, 0).raw()
                    {
                        assert!(h0.contains(&expect.unwrap()));
                    }
                }
            }
        }
    }

    #[test]
    fn workload_wrapper_round_trips() {
        let mut w = PhasedWorkload::new(Em3d::new(small()));
        assert_eq!(w.name(), "em3d");
        assert_eq!(w.layout().regions.len(), 2);
        let mut total_ops = 0;
        for cpu in 0..4 {
            while let Some(chunk) = w.next_chunk(tt_base::NodeId::new(cpu)) {
                total_ops += chunk.len();
            }
        }
        assert!(total_ops > 200 * 3);
    }
}
