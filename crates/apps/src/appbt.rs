//! Appbt: the NAS BT (block-tridiagonal) computational-fluid-dynamics
//! kernel (Table 3 data sets 12×12×12 and 24×24×24).
//!
//! BT solves multiple independent systems of block-tridiagonal equations
//! with 5×5 blocks: each iteration computes a right-hand side from the
//! 7-point stencil of 5-element solution vectors, then performs line
//! solves along x, y, and z. The grid is partitioned in two dimensions —
//! a `py × pz` processor grid over (y, z) bands, so even the 12³ small
//! set keeps all 32 processors busy. x lines are always processor-local;
//! the y and z line solves and the rhs stencil exchange boundary planes
//! with neighboring bands.
//!
//! Simplifications (documented per DESIGN.md): the 5×5 block LU math is
//! charged as compute cycles (its operands are the 5-word vectors that
//! *are* simulated); and the y/z line solves' software pipelines are
//! approximated by a boundary-plane exchange phase followed by a local
//! sweep — the same communication volume without the pipeline
//! serialization.

use tt_base::workload::{Layout, Op};

use crate::alloc::{even_split, ArenaPlanner, OwnedArray};
use crate::phased::PhasedApp;

/// Words per grid cell (the 5-element solution/rhs vectors).
const VEC: usize = 5;
/// Cycles for the rhs stencil arithmetic per cell.
const RHS_COMPUTE: u32 = 60;
/// Cycles for one 5×5 block-tridiagonal elimination step per cell.
const SOLVE_COMPUTE: u32 = 150;

/// Appbt parameters.
#[derive(Clone, Debug)]
pub struct AppbtParams {
    /// Grid edge.
    pub n: usize,
    /// Iterations.
    pub iterations: usize,
    /// Processors.
    pub procs: usize,
}

impl AppbtParams {
    /// The Table 3 data set.
    pub fn table3(set: crate::DataSet, procs: usize) -> Self {
        let n = match set {
            crate::DataSet::Small => 12,
            crate::DataSet::Large => 24,
        };
        AppbtParams {
            n,
            iterations: 3,
            procs,
        }
    }
}

/// The processor grid: `py * pz == procs`, as square as `procs` allows.
fn proc_grid(procs: usize) -> (usize, usize) {
    let mut py = (procs as f64).sqrt() as usize;
    while py > 1 && !procs.is_multiple_of(py) {
        py -= 1;
    }
    (py.max(1), procs / py.max(1))
}

/// The sweep dimensions with cross-band coupling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BandDim {
    Y,
    Z,
}

/// The Appbt workload (see module docs).
pub struct Appbt {
    params: AppbtParams,
    /// Solution vectors: 5 words per cell, band-placed.
    u: OwnedArray,
    /// Right-hand sides: 5 words per cell, band-placed.
    rhs: OwnedArray,
    /// Native state, indexed `[cell][word]` with `cell = (z*n + y)*n + x`.
    u_native: Vec<[f64; VEC]>,
    rhs_native: Vec<[f64; VEC]>,
    /// Processor grid (bands in y, bands in z).
    py: usize,
    pz: usize,
    /// First row / rows per y-band.
    first_y: Vec<usize>,
    rows_y: Vec<usize>,
    /// First plane / planes per z-band.
    first_z: Vec<usize>,
    planes_z: Vec<usize>,
    layout: Layout,
    phase: usize,
}

impl Appbt {
    /// Builds the grid and the 2-D partition.
    pub fn new(params: AppbtParams) -> Self {
        let n = params.n;
        assert!(n >= 4);
        let (py, pz) = proc_grid(params.procs);
        let rows_y = even_split(n, py);
        let planes_z = even_split(n, pz);
        let cum = |v: &[usize]| {
            let mut first = Vec::with_capacity(v.len());
            let mut acc = 0;
            for &x in v {
                first.push(acc);
                acc += x;
            }
            first
        };
        let first_y = cum(&rows_y);
        let first_z = cum(&planes_z);
        // counts[owner] with owner = by * pz + bz.
        let mut counts = Vec::with_capacity(params.procs);
        for by in 0..py {
            for bz in 0..pz {
                counts.push(rows_y[by] * planes_z[bz] * n);
            }
        }
        let mut planner = ArenaPlanner::new();
        let u = OwnedArray::plan(&mut planner, &counts, VEC, 0);
        let rhs = OwnedArray::plan(&mut planner, &counts, VEC, 0);
        let cells = n * n * n;
        let u_native: Vec<[f64; VEC]> = (0..cells)
            .map(|c| {
                let (x, y, z) = (c % n, (c / n) % n, c / (n * n));
                let base = (x as f64 * 0.3).sin() + (y as f64 * 0.5).cos() + z as f64 * 0.01;
                [base, base * 0.5, base * 0.25, base * 0.125, base * 0.0625]
            })
            .collect();
        let rhs_native = vec![[0.0; VEC]; cells];
        let mut layout = Layout::new();
        layout.add(u.region());
        layout.add(rhs.region());
        Appbt {
            params,
            u,
            rhs,
            u_native,
            rhs_native,
            py,
            pz,
            first_y,
            rows_y,
            first_z,
            planes_z,
            layout,
            phase: 0,
        }
    }

    /// The parameters this instance was built with.
    pub fn params(&self) -> &AppbtParams {
        &self.params
    }

    /// The processor grid dimensions `(py, pz)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.py, self.pz)
    }

    fn band_of(firsts: &[usize], sizes: &[usize], coord: usize) -> usize {
        for (b, &f) in firsts.iter().enumerate() {
            if coord < f + sizes[b] {
                return b;
            }
        }
        unreachable!("coordinate {coord} out of range")
    }

    fn owner_of(&self, y: usize, z: usize) -> usize {
        let by = Self::band_of(&self.first_y, &self.rows_y, y);
        let bz = Self::band_of(&self.first_z, &self.planes_z, z);
        by * self.pz + bz
    }

    /// The (y range, z range) owned by processor `p`.
    fn bands_of(&self, p: usize) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        let by = p / self.pz;
        let bz = p % self.pz;
        (
            self.first_y[by]..self.first_y[by] + self.rows_y[by],
            self.first_z[bz]..self.first_z[bz] + self.planes_z[bz],
        )
    }

    fn cell(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.params.n + y) * self.params.n + x
    }

    fn addr(&self, arr: &OwnedArray, x: usize, y: usize, z: usize, w: usize) -> tt_base::VAddr {
        let n = self.params.n;
        let owner = self.owner_of(y, z);
        let by = owner / self.pz;
        let bz = owner % self.pz;
        let local_y = y - self.first_y[by];
        let local_z = z - self.first_z[bz];
        let idx = (local_z * self.rows_y[by] + local_y) * n + x;
        arr.addr(owner, idx, w)
    }

    /// Emits verified reads of all five words of `arr` at a cell.
    fn read_vec(
        &self,
        ops: &mut Vec<Op>,
        arr: &OwnedArray,
        native: &[[f64; VEC]],
        x: usize,
        y: usize,
        z: usize,
    ) {
        let c = self.cell(x, y, z);
        for w in 0..VEC {
            ops.push(Op::Read {
                addr: self.addr(arr, x, y, z, w),
                expect: Some(native[c][w].to_bits()),
            });
        }
    }

    fn write_vec(
        &self,
        ops: &mut Vec<Op>,
        arr: &OwnedArray,
        value: &[f64; VEC],
        x: usize,
        y: usize,
        z: usize,
    ) {
        for w in 0..VEC {
            ops.push(Op::Write {
                addr: self.addr(arr, x, y, z, w),
                value: value[w].to_bits(),
            });
        }
    }

    /// Init phase: owners publish initial u.
    fn init_phase(&self) -> Vec<Vec<Op>> {
        let n = self.params.n;
        (0..self.params.procs)
            .map(|p| {
                let (ys, zs) = self.bands_of(p);
                let mut ops = Vec::new();
                for z in zs {
                    for y in ys.clone() {
                        for x in 0..n {
                            let v = self.u_native[self.cell(x, y, z)];
                            self.write_vec(&mut ops, &self.u, &v, x, y, z);
                        }
                    }
                }
                ops.push(Op::Barrier);
                ops
            })
            .collect()
    }

    /// rhs phase: 7-point stencil over u (reads cross band boundaries in
    /// y and z), writing rhs. u is read-only here, so it is race-free.
    fn rhs_phase(&mut self) -> Vec<Vec<Op>> {
        let n = self.params.n;
        let mut chunks = Vec::with_capacity(self.params.procs);
        let mut new_rhs = self.rhs_native.clone();
        for p in 0..self.params.procs {
            let (ys, zs) = self.bands_of(p);
            let mut ops = Vec::new();
            for z in zs {
                for y in ys.clone() {
                    for x in 0..n {
                        self.read_vec(&mut ops, &self.u, &self.u_native, x, y, z);
                        let c = self.cell(x, y, z);
                        let mut acc = self.u_native[c];
                        let neighbors = [
                            (x.wrapping_sub(1), y, z),
                            (x + 1, y, z),
                            (x, y.wrapping_sub(1), z),
                            (x, y + 1, z),
                            (x, y, z.wrapping_sub(1)),
                            (x, y, z + 1),
                        ];
                        for (nx, ny, nz) in neighbors {
                            if nx < n && ny < n && nz < n {
                                self.read_vec(&mut ops, &self.u, &self.u_native, nx, ny, nz);
                                let nc = self.cell(nx, ny, nz);
                                for w in 0..VEC {
                                    acc[w] -= 0.05 * self.u_native[nc][w];
                                }
                            }
                        }
                        ops.push(Op::Compute(RHS_COMPUTE));
                        self.write_vec(&mut ops, &self.rhs, &acc, x, y, z);
                        new_rhs[c] = acc;
                    }
                }
            }
            ops.push(Op::Barrier);
            chunks.push(ops);
        }
        self.rhs_native = new_rhs;
        chunks
    }

    /// x line solve: entirely local, Gauss-Seidel along x. Reads of the
    /// previous line cell observe the value just written (native state is
    /// updated in emission order, so expectations match).
    fn x_sweep_phase(&mut self) -> Vec<Vec<Op>> {
        let n = self.params.n;
        let mut chunks = Vec::with_capacity(self.params.procs);
        for p in 0..self.params.procs {
            let (ys, zs) = self.bands_of(p);
            let mut ops = Vec::new();
            for z in zs {
                for y in ys.clone() {
                    for x in 0..n {
                        self.read_vec(&mut ops, &self.rhs, &self.rhs_native, x, y, z);
                        let c = self.cell(x, y, z);
                        let prev = if x > 0 {
                            self.read_vec(&mut ops, &self.u, &self.u_native, x - 1, y, z);
                            Some(self.u_native[self.cell(x - 1, y, z)])
                        } else {
                            None
                        };
                        let mut v = self.u_native[c];
                        for w in 0..VEC {
                            v[w] = 0.85 * v[w]
                                + 0.1 * self.rhs_native[c][w]
                                + prev.map_or(0.0, |pv| 0.05 * pv[w]);
                        }
                        ops.push(Op::Compute(SOLVE_COMPUTE));
                        self.write_vec(&mut ops, &self.u, &v, x, y, z);
                        self.u_native[c] = v;
                    }
                }
            }
            ops.push(Op::Barrier);
            chunks.push(ops);
        }
        chunks
    }

    /// Boundary-exchange phase before a banded line solve: each processor
    /// reads the predecessor band's boundary plane of u (race-free:
    /// nobody writes u in this phase).
    fn exchange_phase(&mut self, dim: BandDim) -> Vec<Vec<Op>> {
        let n = self.params.n;
        let mut chunks = Vec::with_capacity(self.params.procs);
        for p in 0..self.params.procs {
            let (ys, zs) = self.bands_of(p);
            let mut ops = Vec::new();
            match dim {
                BandDim::Y => {
                    if ys.start > 0 {
                        let y = ys.start - 1;
                        for z in zs {
                            for x in 0..n {
                                self.read_vec(&mut ops, &self.u, &self.u_native, x, y, z);
                            }
                        }
                        ops.push(Op::Compute(RHS_COMPUTE));
                    }
                }
                BandDim::Z => {
                    if zs.start > 0 {
                        let z = zs.start - 1;
                        for y in ys {
                            for x in 0..n {
                                self.read_vec(&mut ops, &self.u, &self.u_native, x, y, z);
                            }
                        }
                        ops.push(Op::Compute(RHS_COMPUTE));
                    }
                }
            }
            ops.push(Op::Barrier);
            chunks.push(ops);
        }
        chunks
    }

    /// A banded line solve (y or z): Gauss-Seidel along the dimension
    /// inside each band, coupled to the predecessor band through the
    /// boundary plane captured in the exchange phase.
    fn band_sweep_phase(&mut self, dim: BandDim) -> Vec<Vec<Op>> {
        let n = self.params.n;
        // Pre-phase values: cross-band coupling uses the exchanged plane.
        let boundary = self.u_native.clone();
        let mut chunks = Vec::with_capacity(self.params.procs);
        for p in 0..self.params.procs {
            let (ys, zs) = self.bands_of(p);
            let mut ops = Vec::new();
            for z in zs.clone() {
                for y in ys.clone() {
                    for x in 0..n {
                        self.read_vec(&mut ops, &self.rhs, &self.rhs_native, x, y, z);
                        let c = self.cell(x, y, z);
                        let (coord, start) = match dim {
                            BandDim::Y => (y, ys.start),
                            BandDim::Z => (z, zs.start),
                        };
                        let prev_cell = |d: usize| match dim {
                            BandDim::Y => self.cell(x, y - d, z),
                            BandDim::Z => self.cell(x, y, z - d),
                        };
                        let prev = if coord > start {
                            // In-band predecessor: just written this phase.
                            let (px, py_, pz_) = match dim {
                                BandDim::Y => (x, y - 1, z),
                                BandDim::Z => (x, y, z - 1),
                            };
                            self.read_vec(&mut ops, &self.u, &self.u_native, px, py_, pz_);
                            Some(self.u_native[prev_cell(1)])
                        } else if coord > 0 {
                            // Cross-band coupling via the exchanged plane
                            // (the shared read happened last phase).
                            Some(boundary[prev_cell(1)])
                        } else {
                            None
                        };
                        let mut v = self.u_native[c];
                        for w in 0..VEC {
                            v[w] = 0.85 * v[w]
                                + 0.1 * self.rhs_native[c][w]
                                + prev.map_or(0.0, |pv| 0.05 * pv[w]);
                        }
                        ops.push(Op::Compute(SOLVE_COMPUTE));
                        self.write_vec(&mut ops, &self.u, &v, x, y, z);
                        self.u_native[c] = v;
                    }
                }
            }
            ops.push(Op::Barrier);
            chunks.push(ops);
        }
        chunks
    }
}

impl PhasedApp for Appbt {
    fn name(&self) -> &'static str {
        "appbt"
    }

    fn layout(&self) -> Layout {
        self.layout.clone()
    }

    fn procs(&self) -> usize {
        self.params.procs
    }

    fn next_phase(&mut self) -> Option<Vec<Vec<Op>>> {
        let phase = self.phase;
        self.phase += 1;
        if phase == 0 {
            return Some(self.init_phase());
        }
        let step = phase - 1;
        let iteration = step / 6;
        if iteration >= self.params.iterations {
            return None;
        }
        match step % 6 {
            0 => Some(self.rhs_phase()),
            1 => Some(self.x_sweep_phase()),
            2 => Some(self.exchange_phase(BandDim::Y)),
            3 => Some(self.band_sweep_phase(BandDim::Y)),
            4 => Some(self.exchange_phase(BandDim::Z)),
            _ => Some(self.band_sweep_phase(BandDim::Z)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> AppbtParams {
        AppbtParams {
            n: 8,
            iterations: 2,
            procs: 8,
        }
    }

    #[test]
    fn processor_grid_factors() {
        assert_eq!(proc_grid(32), (4, 8));
        assert_eq!(proc_grid(16), (4, 4));
        assert_eq!(proc_grid(8), (2, 4));
        assert_eq!(proc_grid(1), (1, 1));
        assert_eq!(proc_grid(7), (1, 7));
    }

    #[test]
    fn every_processor_owns_cells_on_the_small_set() {
        // 12^3 over 32 processors: the 2-D partition keeps everyone busy.
        let a = Appbt::new(AppbtParams {
            n: 12,
            iterations: 1,
            procs: 32,
        });
        for p in 0..32 {
            let (ys, zs) = a.bands_of(p);
            assert!(!ys.is_empty() && !zs.is_empty(), "processor {p} idle");
        }
    }

    #[test]
    fn phase_structure_is_six_per_iteration() {
        let mut a = Appbt::new(small());
        let mut n = 0;
        while a.next_phase().is_some() {
            n += 1;
        }
        assert_eq!(n, 1 + 6 * 2);
    }

    #[test]
    fn banded_partition_assigns_each_cell_once() {
        let a = Appbt::new(small());
        let mut seen = vec![false; 8 * 8 * 8];
        for p in 0..8 {
            let (ys, zs) = a.bands_of(p);
            for z in zs {
                for y in ys.clone() {
                    for x in 0..8 {
                        let c = a.cell(x, y, z);
                        assert!(!seen[c], "cell owned twice");
                        seen[c] = true;
                    }
                }
            }
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn rhs_phase_reads_neighbor_bands() {
        let mut a = Appbt::new(small());
        let _ = a.next_phase();
        let rhs = a.next_phase().unwrap();
        // Some processor other than 0 must read data homed on another
        // band (its stencil crosses the partition).
        let (ys, zs) = a.bands_of(3);
        let own_pages: std::collections::HashSet<_> = zs
            .flat_map(|z| {
                let ys = ys.clone();
                ys.map(move |y| (y, z))
            })
            .map(|(y, z)| a.addr(&a.u, 0, y, z, 0).page())
            .collect();
        let crosses = rhs[3].iter().any(|op| match op {
            Op::Read { addr, .. } => !own_pages.contains(&addr.page()),
            _ => false,
        });
        assert!(crosses);
    }

    #[test]
    fn exchange_reads_only_for_non_first_bands() {
        let mut a = Appbt::new(small());
        for _ in 0..3 {
            a.next_phase();
        }
        let exch_y = a.next_phase().unwrap(); // phase index 3 = y exchange
        let reads = |ops: &Vec<Op>| ops.iter().filter(|o| matches!(o, Op::Read { .. })).count();
        // Processors in the first y band (owners 0..pz) have no
        // predecessor; others read a full boundary plane.
        let (_, pz) = (2, 4);
        assert_eq!(reads(&exch_y[0]), 0);
        assert!(reads(&exch_y[pz]) > 0);
    }

    #[test]
    fn native_values_evolve() {
        let mut a = Appbt::new(small());
        let u0 = a.u_native.clone();
        for _ in 0..7 {
            a.next_phase();
        }
        assert_ne!(a.u_native, u0);
    }
}
