//! MP3D: rarefied hypersonic flow simulation (SPLASH; Table 3 data sets
//! 10,000 and 50,000 molecules).
//!
//! MP3D moves molecules through a 3-D array of *space cells*, colliding
//! molecules that share a cell. Molecules are statically partitioned
//! across processors, but space cells are touched by whichever processors
//! own the molecules currently inside them — the classic migratory,
//! write-shared pattern that made MP3D the stress test of its era.
//!
//! This reproduction keeps exactly that structure:
//!
//! - molecule records live on their owner's pages (three words of
//!   position read and rewritten every step — verified against the
//!   native motion integration);
//! - space cells live on round-robin pages and take a read-modify-write
//!   from every molecule that traverses them each step. Cell accesses
//!   race by design, so their reads carry no expected value (the paper's
//!   MP3D is likewise non-deterministic under concurrency).
//!
//! Collisions perturb velocities natively (deterministically seeded) and
//! are charged as compute cycles.

use tt_base::workload::{Layout, Op};
use tt_base::DetRng;

use crate::alloc::{even_split, ArenaPlanner, CyclicArray, OwnedArray};
use crate::phased::PhasedApp;

/// MP3D parameters.
#[derive(Clone, Debug)]
pub struct Mp3dParams {
    /// Number of molecules.
    pub molecules: usize,
    /// Space-cell grid edge (cells per side of the cube).
    pub cells_per_side: usize,
    /// Time steps.
    pub steps: usize,
    /// Processors.
    pub procs: usize,
    /// Motion/collision seed.
    pub seed: u64,
}

impl Mp3dParams {
    /// The Table 3 data set.
    pub fn table3(set: crate::DataSet, procs: usize) -> Self {
        let molecules = match set {
            crate::DataSet::Small => 10_000,
            crate::DataSet::Large => 50_000,
        };
        // SPLASH sizes the space array to a few molecules per cell.
        let cells_per_side = ((molecules as f64 / 4.0).cbrt().ceil() as usize).max(4);
        Mp3dParams {
            molecules,
            cells_per_side,
            steps: 4,
            procs,
            seed: 0x3D,
        }
    }
}

/// Cycles of computation per molecule move (position integration,
/// boundary-condition tests, cell indexing — the SPLASH `move` path is a
/// few hundred instructions).
const MOVE_COMPUTE: u32 = 120;
/// Extra cycles when a collision is processed.
const COLLIDE_COMPUTE: u32 = 90;

/// One molecule's native state.
#[derive(Clone, Copy, Debug)]
struct Molecule {
    pos: [f64; 3],
    vel: [f64; 3],
}

/// The MP3D workload (see module docs).
pub struct Mp3d {
    params: Mp3dParams,
    /// Molecule records: 3 words (packed position), owner-placed.
    mols: OwnedArray,
    /// Space cells: 1 word each, round-robin pages.
    cells: CyclicArray,
    /// Native molecule state, `[owner][idx]`.
    native: Vec<Vec<Molecule>>,
    rng: DetRng,
    phase: usize,
}

impl Mp3d {
    /// Builds the molecule population.
    pub fn new(params: Mp3dParams) -> Self {
        let counts = even_split(params.molecules, params.procs);
        let mut planner = ArenaPlanner::new();
        let mols = OwnedArray::plan(&mut planner, &counts, 3, 0);
        let n_cells = params.cells_per_side.pow(3);
        // A space cell is a full record (counts, sums) of one coherence
        // block, as in SPLASH; giving each cell its own block also
        // avoids false sharing the original does not have.
        let cells = CyclicArray::plan(&mut planner, n_cells, 4, 0);
        let mut rng = DetRng::new(params.seed);
        let native = counts
            .iter()
            .map(|&c| {
                (0..c)
                    .map(|_| Molecule {
                        pos: [rng.unit_f64(), rng.unit_f64(), rng.unit_f64()],
                        // A directed stream with thermal spread (the wind
                        // tunnel's inflow).
                        vel: [
                            0.02 + 0.01 * rng.unit_f64(),
                            0.01 * (rng.unit_f64() - 0.5),
                            0.01 * (rng.unit_f64() - 0.5),
                        ],
                    })
                    .collect()
            })
            .collect();
        Mp3d {
            params,
            mols,
            cells,
            native,
            rng,
            phase: 0,
        }
    }

    /// The parameters this instance was built with.
    pub fn params(&self) -> &Mp3dParams {
        &self.params
    }

    fn cell_of(&self, pos: &[f64; 3]) -> usize {
        let s = self.params.cells_per_side;
        let clamp = |x: f64| ((x * s as f64) as usize).min(s - 1);
        (clamp(pos[0]) * s + clamp(pos[1])) * s + clamp(pos[2])
    }

    /// Init phase: owners write their molecules' position words.
    fn init_phase(&self) -> Vec<Vec<Op>> {
        (0..self.params.procs)
            .map(|p| {
                let mut ops = Vec::new();
                for (i, m) in self.native[p].iter().enumerate() {
                    for w in 0..3 {
                        ops.push(Op::Write {
                            addr: self.mols.addr(p, i, w),
                            value: m.pos[w].to_bits(),
                        });
                    }
                }
                ops.push(Op::Barrier);
                ops
            })
            .collect()
    }

    /// One time step: every processor moves its molecules and
    /// read-modify-writes the space cells they land in.
    fn step_phase(&mut self, step: usize) -> Vec<Vec<Op>> {
        let procs = self.params.procs;
        let mut chunks = Vec::with_capacity(procs);
        for p in 0..procs {
            let mut ops = Vec::new();
            for i in 0..self.native[p].len() {
                let m = self.native[p][i];
                // Read the old position (verified).
                for w in 0..3 {
                    ops.push(Op::Read {
                        addr: self.mols.addr(p, i, w),
                        expect: Some(m.pos[w].to_bits()),
                    });
                }
                // Native motion: advance and reflect at the walls.
                let mut nm = m;
                for d in 0..3 {
                    nm.pos[d] += nm.vel[d];
                    if nm.pos[d] < 0.0 {
                        nm.pos[d] = -nm.pos[d];
                        nm.vel[d] = -nm.vel[d];
                    } else if nm.pos[d] >= 1.0 {
                        nm.pos[d] = 2.0 - nm.pos[d] - 1e-12;
                        nm.vel[d] = -nm.vel[d];
                    }
                }
                let mut compute = MOVE_COMPUTE;
                // Occasional collision: deterministic perturbation.
                if self.rng.chance(0.2) {
                    compute += COLLIDE_COMPUTE;
                    let kick = 0.002 * (self.rng.unit_f64() - 0.5);
                    nm.vel[0] += kick;
                }
                ops.push(Op::Compute(compute));
                // Write the new position (verified by the next step).
                for w in 0..3 {
                    ops.push(Op::Write {
                        addr: self.mols.addr(p, i, w),
                        value: nm.pos[w].to_bits(),
                    });
                }
                // Read-modify-write the destination space cell. Multiple
                // processors hit the same cell concurrently, so the read
                // is unverified and the written token is arbitrary.
                let cell = self.cell_of(&nm.pos);
                ops.push(Op::Read {
                    addr: self.cells.addr(cell, 0),
                    expect: None,
                });
                ops.push(Op::Write {
                    addr: self.cells.addr(cell, 0),
                    value: ((step as u64) << 32) | (p as u64) << 20 | i as u64,
                });
                self.native[p][i] = nm;
            }
            ops.push(Op::Barrier);
            chunks.push(ops);
        }
        chunks
    }
}

impl PhasedApp for Mp3d {
    fn name(&self) -> &'static str {
        "mp3d"
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.add(self.mols.region());
        l.add(self.cells.region());
        l
    }

    fn procs(&self) -> usize {
        self.params.procs
    }

    fn next_phase(&mut self) -> Option<Vec<Vec<Op>>> {
        let phase = self.phase;
        self.phase += 1;
        if phase == 0 {
            return Some(self.init_phase());
        }
        if phase > self.params.steps {
            return None;
        }
        Some(self.step_phase(phase - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Mp3dParams {
        Mp3dParams {
            molecules: 100,
            cells_per_side: 4,
            steps: 3,
            procs: 4,
            seed: 7,
        }
    }

    #[test]
    fn phases_are_init_plus_steps() {
        let mut m = Mp3d::new(small());
        let mut n = 0;
        while m.next_phase().is_some() {
            n += 1;
        }
        assert_eq!(n, 1 + 3);
    }

    #[test]
    fn molecules_stay_in_the_unit_box() {
        let mut m = Mp3d::new(small());
        for _ in 0..4 {
            m.next_phase();
        }
        for per in &m.native {
            for mol in per {
                for d in 0..3 {
                    assert!((0.0..1.0).contains(&mol.pos[d]), "pos {:?}", mol.pos);
                }
            }
        }
    }

    #[test]
    fn cell_reads_are_unverified_and_molecule_reads_verified() {
        let mut m = Mp3d::new(small());
        let _ = m.next_phase();
        let step = m.next_phase().unwrap();
        let cell_base = m.cells.addr(0, 0).raw();
        for op in &step[0] {
            if let Op::Read { addr, expect } = op {
                if addr.raw() >= cell_base {
                    assert!(expect.is_none(), "cell reads race");
                } else {
                    assert!(expect.is_some(), "molecule reads are verified");
                }
            }
        }
    }

    #[test]
    fn cell_indexing_is_in_range() {
        let m = Mp3d::new(small());
        assert_eq!(m.cell_of(&[0.0, 0.0, 0.0]), 0);
        let last = m.cell_of(&[0.9999, 0.9999, 0.9999]);
        assert_eq!(last, 4 * 4 * 4 - 1);
    }

    #[test]
    fn multiple_processors_touch_shared_cells() {
        // With 100 molecules in 64 cells, distinct owners must hit
        // overlapping cells in step 1.
        let mut m = Mp3d::new(small());
        let _ = m.next_phase();
        let step = m.next_phase().unwrap();
        let cell_base = m.cells.addr(0, 0).raw();
        let cells_of = |ops: &Vec<Op>| -> std::collections::HashSet<u64> {
            ops.iter()
                .filter_map(|op| match op {
                    Op::Write { addr, .. } if addr.raw() >= cell_base => Some(addr.raw()),
                    _ => None,
                })
                .collect()
        };
        let c0 = cells_of(&step[0]);
        let c1 = cells_of(&step[1]);
        assert!(c0.intersection(&c1).count() > 0, "no migratory sharing");
    }
}
