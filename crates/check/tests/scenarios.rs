//! Promoted failure-injection scenarios, now shared across machines:
//! broken protocols and malformed workloads must be *caught* — by value
//! verification, the deadlock detector, or the invariant engine. The
//! same workload builders run on both `tt-typhoon` and `tt-dirnnb`.

use tt_base::SystemConfig;
use tt_check::scenarios::{
    lost_resume_workload, mismatched_barrier_workload, stale_read_workload, LoseResume,
    NeverInvalidate,
};
use tt_dirnnb::DirnnbMachine;
use tt_stache::StacheProtocol;
use tt_typhoon::TyphoonMachine;

#[test]
#[should_panic(expected = "coherence violation")]
fn typhoon_verification_catches_a_protocol_that_never_invalidates() {
    let mut m = TyphoonMachine::new(
        SystemConfig::test_config(2),
        Box::new(stale_read_workload()),
        &|id, layout, cfg| Box::new(NeverInvalidate::new(id, layout, cfg)),
    );
    let _ = m.run();
}

#[test]
fn typhoon_with_stache_passes_the_stale_read_scenario() {
    let mut m = TyphoonMachine::new(
        SystemConfig::test_config(2),
        Box::new(stale_read_workload()),
        &|id, layout, cfg| Box::new(StacheProtocol::new(id, layout, cfg)),
    );
    let _ = m.run();
}

#[test]
fn dirnnb_passes_the_stale_read_scenario() {
    let mut m = DirnnbMachine::new(SystemConfig::test_config(2), Box::new(stale_read_workload()));
    let _ = m.run();
}

#[test]
#[should_panic(expected = "deadlocked")]
fn typhoon_deadlock_detector_catches_a_lost_resume() {
    let mut m = TyphoonMachine::new(
        SystemConfig::test_config(1),
        Box::new(lost_resume_workload()),
        &|_, _, _| Box::new(LoseResume),
    );
    let _ = m.run();
}

#[test]
#[should_panic(expected = "deadlocked")]
fn typhoon_detects_mismatched_barrier_counts() {
    let mut m = TyphoonMachine::new(
        SystemConfig::test_config(2),
        Box::new(mismatched_barrier_workload()),
        &|id, layout, cfg| Box::new(StacheProtocol::new(id, layout, cfg)),
    );
    let _ = m.run();
}

#[test]
#[should_panic(expected = "deadlocked")]
fn dirnnb_detects_mismatched_barrier_counts() {
    let mut m = DirnnbMachine::new(
        SystemConfig::test_config(2),
        Box::new(mismatched_barrier_workload()),
    );
    let _ = m.run();
}
