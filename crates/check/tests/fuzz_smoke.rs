//! Fuzzer smoke tests: a bounded clean sweep with the real protocol, a
//! planted protocol bug the harness must catch quickly, bit-exact
//! replay, and seed shrinking. The wide 500-seed sweep runs in release
//! via the `tt-check` binary (`scripts/verify.sh`); the counts here are
//! sized for debug-mode CI.

use tt_base::NodeId;
use tt_check::scenarios::SkipInvalidate;
use tt_check::{fuzz, fuzz_with, fuzz_with_options, run_seed, shrink, stache_factory, FuzzOptions};

/// Debug-mode smoke budget; the release binary sweeps 500.
const SMOKE_SEEDS: u64 = 60;

#[test]
fn clean_fuzz_sweep_finds_nothing() {
    let report = fuzz(0, SMOKE_SEEDS);
    assert_eq!(report.seeds_run, SMOKE_SEEDS);
    assert!(
        report.failure.is_none(),
        "stock Stache failed fuzzing: {}",
        report.failure.unwrap()
    );
}

#[test]
fn planted_skip_invalidate_bug_is_caught_and_shrinks() {
    let factory = |id: NodeId, layout: &_, cfg: &_| {
        Box::new(SkipInvalidate::new(id, layout, cfg)) as Box<dyn tt_tempest::Protocol>
    };
    let report = fuzz_with(0, 500, &factory);
    let failure = report
        .failure
        .expect("a protocol that skips invalidations must be caught within 500 seeds");
    assert_eq!(failure.stage, "typhoon", "caught by the observed typhoon run: {failure}");

    // The failing seed replays to the identical failure.
    let seed = failure.seed;
    let again = fuzz_with(seed, 1, &factory).failure.expect("failure replays");
    assert_eq!(again.seed, failure.seed);
    assert_eq!(again.stage, failure.stage);
    assert_eq!(again.message, failure.message);

    // And shrinking yields a (weakly) smaller shape that still fails.
    let shrunk = shrink(&failure, &factory);
    let s = shrunk.shrunk.expect("shrink fills in a shape");
    assert!(s.nodes <= failure.cfg.nodes);
    assert!(s.blocks <= failure.cfg.blocks);
    assert!(s.phases <= failure.cfg.phases);
    assert!(s.pages <= failure.cfg.pages);
}

#[test]
fn clean_fault_fuzz_sweep_finds_nothing() {
    // Lossy network + reliable transport: every seed must still pass
    // the full invariant set and the differential final-image check.
    // The wide ≥200-seed sweep runs in release via `tt-check run
    // --faults` (scripts/verify.sh).
    let options = FuzzOptions { faults: true, ..FuzzOptions::default() };
    let report = fuzz_with_options(0, 30, &options, &stache_factory);
    assert_eq!(report.seeds_run, 30);
    assert!(
        report.failure.is_none(),
        "stock Stache behind the reliable transport failed fault fuzzing: {}",
        report.failure.unwrap()
    );
}

#[test]
fn replay_is_bit_exact_across_runs() {
    for seed in [3u64, 11, 29] {
        let a = run_seed(seed).expect("clean");
        let b = run_seed(seed).expect("clean");
        assert_eq!(a, b, "seed {seed} diverged between replays");
    }
}
