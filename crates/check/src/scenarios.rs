//! Known-broken protocols and reusable failure scenarios.
//!
//! Promoted from `tt-typhoon`'s old failure-injection tests so both
//! machines (and the fuzzer) can share them: deliberately broken
//! protocols must be *caught* by the harness's invariants — value
//! verification and the invariant engine catch coherence bugs, the
//! deadlock detector catches lost resumes and mismatched barriers.
//! These give confidence that green fuzzing runs actually prove
//! something.

use tt_base::addr::PAGE_BYTES;
use tt_base::workload::{Layout, Op, Placement, Region, ScriptWorkload, SHARED_SEGMENT_BASE};
use tt_base::{NodeId, SystemConfig, VAddr};
use tt_mem::{PageMeta, Tag};
use tt_net::{Payload, VirtualNet};
use tt_stache::StacheProtocol;
use tt_tempest::{
    BlockFault, HandlerId, Message, PageFault, Protocol, TempestCtx, ThreadId, UserCall,
};

const GET: HandlerId = HandlerId(0x60);
const PUT: HandlerId = HandlerId(0x61);

/// Stache's `INV` / `ACK` handler ids (`tt_stache::vn_policy` declares
/// them; the numeric values are part of the protocol's wire format).
const STACHE_INV: HandlerId = HandlerId(0x14);
const STACHE_ACK: HandlerId = HandlerId(0x15);

/// A broken "coherence" protocol: it hands out writable copies of the
/// same block to everyone and never invalidates anything. Any two nodes
/// writing then reading the same word will observe each other's lost
/// updates.
pub struct NeverInvalidate {
    node: NodeId,
    home_map: Vec<(tt_base::addr::Vpn, NodeId)>,
    pending: Option<ThreadId>,
}

impl NeverInvalidate {
    /// Builds the protocol for one node.
    pub fn new(node: NodeId, layout: &Layout, cfg: &SystemConfig) -> Self {
        NeverInvalidate {
            node,
            home_map: layout.pages(cfg.nodes).map(|(v, h, _)| (v, h)).collect(),
            pending: None,
        }
    }

    fn home_of(&self, vpn: tt_base::addr::Vpn) -> NodeId {
        self.home_map
            .iter()
            .find(|(v, _)| *v == vpn)
            .map(|(_, h)| *h)
            .expect("page in layout")
    }
}

impl Protocol for NeverInvalidate {
    fn init(&mut self, ctx: &mut dyn TempestCtx) {
        let mine: Vec<_> = self
            .home_map
            .iter()
            .filter(|(_, h)| *h == self.node)
            .map(|(v, _)| *v)
            .collect();
        for vpn in mine {
            let ppn = ctx.alloc_page();
            ctx.map_page(vpn, ppn).unwrap();
            ctx.set_page_tags(vpn, Tag::ReadWrite);
            ctx.set_page_meta(
                vpn,
                PageMeta {
                    vpn: Some(vpn),
                    mode: 0,
                    user: [self.node.raw() as u64, 0],
                },
            );
        }
    }

    fn on_page_fault(&mut self, ctx: &mut dyn TempestCtx, fault: PageFault) {
        let vpn = fault.addr.page();
        let ppn = ctx.alloc_page();
        ctx.map_page(vpn, ppn).unwrap();
        ctx.set_page_tags(vpn, Tag::Invalid);
        ctx.set_page_meta(
            vpn,
            PageMeta {
                vpn: Some(vpn),
                mode: 0,
                user: [self.home_of(vpn).raw() as u64, 0],
            },
        );
        ctx.resume(fault.thread);
    }

    fn on_block_fault(&mut self, ctx: &mut dyn TempestCtx, fault: BlockFault) {
        let home = NodeId::new(fault.meta.user[0] as u16);
        self.pending = Some(fault.thread);
        ctx.send(
            home,
            VirtualNet::Request,
            GET,
            Payload::args(&[fault.addr.block_base().raw()]),
        );
    }

    fn on_message(&mut self, ctx: &mut dyn TempestCtx, msg: Message) {
        match msg.handler {
            GET => {
                // BUG: gives a writable copy without tracking or
                // invalidating anyone.
                let addr = VAddr::new(msg.arg(0));
                let data = ctx.force_read_block(addr);
                ctx.send(
                    msg.src,
                    VirtualNet::Response,
                    PUT,
                    Payload::with_block(&[addr.raw()], data),
                );
            }
            PUT => {
                let addr = VAddr::new(msg.arg(0));
                let data = msg.payload.block();
                ctx.force_write_block(addr, &data);
                ctx.set_tag(addr, Tag::ReadWrite);
                ctx.resume(self.pending.take().expect("pending fault"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

/// A protocol that takes the fault and never resumes the thread.
pub struct LoseResume;

impl Protocol for LoseResume {
    fn on_page_fault(&mut self, _ctx: &mut dyn TempestCtx, _fault: PageFault) {
        // BUG: thread left suspended forever.
    }
    fn on_block_fault(&mut self, _ctx: &mut dyn TempestCtx, _fault: BlockFault) {}
    fn on_message(&mut self, _ctx: &mut dyn TempestCtx, _msg: Message) {}
}

/// The planted protocol bug the fuzzer must find: a full Stache
/// protocol, except that an incoming `INV` is acknowledged *without*
/// invalidating the local copy. The home then believes the block is
/// exclusive at the new writer while a stale readable copy survives —
/// an SWMR / tag-directory violation the invariant engine flags the
/// moment the grant completes, and a lost update the value checks catch
/// soon after.
pub struct SkipInvalidate {
    inner: StacheProtocol,
}

impl SkipInvalidate {
    /// Wraps a freshly built Stache instance for one node.
    pub fn new(node: NodeId, layout: &Layout, cfg: &SystemConfig) -> Self {
        SkipInvalidate { inner: StacheProtocol::new(node, layout, cfg) }
    }
}

impl Protocol for SkipInvalidate {
    fn init(&mut self, ctx: &mut dyn TempestCtx) {
        self.inner.init(ctx);
    }
    fn on_page_fault(&mut self, ctx: &mut dyn TempestCtx, fault: PageFault) {
        self.inner.on_page_fault(ctx, fault);
    }
    fn on_block_fault(&mut self, ctx: &mut dyn TempestCtx, fault: BlockFault) {
        self.inner.on_block_fault(ctx, fault);
    }
    fn on_user_call(&mut self, ctx: &mut dyn TempestCtx, thread: ThreadId, call: UserCall) {
        self.inner.on_user_call(ctx, thread, call);
    }
    fn on_message(&mut self, ctx: &mut dyn TempestCtx, msg: Message) {
        if msg.handler == STACHE_INV {
            // BUG: acknowledge the invalidation without performing it.
            let addr = VAddr::new(msg.arg(0));
            ctx.send(
                msg.src,
                VirtualNet::Response,
                STACHE_ACK,
                Payload::args(&[addr.raw()]),
            );
            return;
        }
        self.inner.on_message(ctx, msg);
    }
    fn inspect_directory(&self, out: &mut Vec<tt_tempest::BlockDirSnapshot>) {
        self.inner.inspect_directory(out);
    }
    fn name(&self) -> &'static str {
        "stache-skip-invalidate"
    }
}

/// One shared page homed on node 0.
pub fn one_page_layout() -> Layout {
    let mut l = Layout::new();
    l.add(Region {
        base: VAddr::new(SHARED_SEGMENT_BASE),
        bytes: PAGE_BYTES,
        placement: Placement::PerPage(vec![NodeId::new(0)]),
        mode: 0,
    });
    l
}

/// Two nodes; node 1 caches a word, node 0 (the home) updates it twice
/// with barriers between, node 1 must observe both updates. A protocol
/// that fails to invalidate node 1's stale copy trips value
/// verification on either machine's run.
pub fn stale_read_workload() -> ScriptWorkload {
    let word = VAddr::new(SHARED_SEGMENT_BASE);
    let mut w = ScriptWorkload::new(2).with_layout(one_page_layout());
    w.set(
        0,
        vec![
            Op::Write { addr: word, value: 1 },
            Op::Barrier,
            Op::Barrier,
            Op::Write { addr: word, value: 2 },
            Op::Barrier,
        ],
    );
    w.set(
        1,
        vec![
            Op::Barrier,
            Op::Read { addr: word, expect: Some(1) },
            Op::Barrier,
            Op::Barrier,
            Op::Read { addr: word, expect: Some(2) },
        ],
    );
    w
}

/// One node reads an unmapped page; a protocol that loses the resume
/// leaves the CPU blocked forever and must hit the deadlock detector.
pub fn lost_resume_workload() -> ScriptWorkload {
    let mut w = ScriptWorkload::new(1).with_layout(one_page_layout());
    w.set(
        0,
        vec![Op::Read {
            addr: VAddr::new(SHARED_SEGMENT_BASE + PAGE_BYTES as u64 * 10),
            expect: None,
        }],
    );
    w
}

/// Node 1 runs one barrier and finishes; node 0 waits at a second
/// barrier that can never release. Both machines must end in their
/// deadlock detector, not hang.
pub fn mismatched_barrier_workload() -> ScriptWorkload {
    let mut w = ScriptWorkload::new(2).with_layout(one_page_layout());
    w.set(0, vec![Op::Barrier, Op::Barrier]);
    w.set(1, vec![Op::Barrier]);
    w
}
