//! The schedule fuzzer and differential checker.
//!
//! One `u64` seed determines everything: the litmus case shape
//! ([`LitmusConfig::from_seed`]), the scripts ([`Litmus::generate`]),
//! and the schedule perturbation ([`PerturbConfig::from_seed`]). A
//! seed's run is therefore bit-exactly reproducible — `replay` is just
//! `run_seed` again — and a failure report only needs the seed.
//!
//! Each case runs the workload on **both** machines:
//!
//! - `tt-typhoon` with the Stache protocol (or an injected broken one),
//!   under the invariant engine and the chosen perturbations;
//! - `tt-dirnnb`, the all-hardware baseline, under the same tie-breaking
//!   seed.
//!
//! Afterwards the final shared-memory images are extracted and compared
//! against each other and against the generator's happens-before
//! prediction. Perturbations only touch *legal* nondeterminism
//! (same-cycle ordering, latency within the network band, compute
//! coalescing, direct execution, sequential vs. parallel simulation),
//! so any divergence — a panic, an invariant trip, or an image
//! mismatch — is a bug. When the seed draws `sim_threads > 1`, both
//! machines additionally rerun under the conservative parallel
//! simulator and must reproduce the sequential cycles and final images
//! bit for bit.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Mutex;

use tt_base::workload::Layout;
use tt_base::{Cycles, DetRng, FaultSpec, NodeId, SystemConfig, Topology, VAddr, WindowPolicy};
use tt_dirnnb::DirnnbMachine;
use tt_mem::Tag;
use tt_stache::{reliable_vn_policy, Reliable, ReliableConfig, StacheProtocol};
use tt_tempest::Protocol;
use tt_typhoon::TyphoonMachine;

use crate::invariants::{InvariantChecker, DEFAULT_EVENT_BUDGET};
use crate::litmus::{Litmus, LitmusConfig};

/// Builds one node's protocol instance (same shape as
/// [`TyphoonMachine::new`]'s constructor argument).
pub type ProtocolFactory<'a> = &'a dyn Fn(NodeId, &Layout, &SystemConfig) -> Box<dyn Protocol>;

/// The stock factory: the real Stache protocol.
pub fn stache_factory(id: NodeId, layout: &Layout, cfg: &SystemConfig) -> Box<dyn Protocol> {
    Box::new(StacheProtocol::new(id, layout, cfg))
}

/// Schedule perturbations for one run — all within the machines' legal
/// nondeterminism, all derived from the seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PerturbConfig {
    /// Shuffle same-cycle event ordering with this seed (None = the
    /// deterministic FIFO order production runs use).
    pub tie_shuffle: Option<u64>,
    /// Extra per-packet network latency, uniform in `0..=jitter_max`
    /// cycles on top of the configured base latency (0 = no jitter).
    /// Per-link FIFO order is preserved by construction.
    pub jitter_max: u64,
    /// Seed for the jitter stream.
    pub jitter_seed: u64,
    /// Coalesce adjacent compute ops before running.
    pub coalesce: bool,
    /// Run CPUs in direct-execution (event-frontier) mode.
    pub direct_execution: bool,
    /// Simulator threads for the parallel differential leg (1 = skip
    /// it). When > 1, both machines rerun under the conservative
    /// parallel simulator and their cycles and final images must match
    /// the sequential legs bit for bit.
    pub sim_threads: usize,
    /// Window-advance policy for the parallel differential leg.
    /// Adaptive widening must never change cycles or images, so both
    /// policies are drawn with equal probability.
    pub window_policy: WindowPolicy,
    /// Lossy-network fault schedule for the Typhoon legs (`None` =
    /// perfect network). When set, the Stache legs run wrapped in the
    /// [`Reliable`] transport, the invariant budget widens (retries
    /// inflate the event count), and the DirNNB leg stays fault-free as
    /// the reference: faults may cost cycles but must never change the
    /// final memory image. The fault schedule is keyed off deterministic
    /// merge keys, so the parallel leg replays it bit-exactly.
    pub fault: Option<FaultSpec>,
    /// Interconnect model for the Typhoon legs. Routed topologies
    /// (mesh/fat-tree) change latencies — and therefore cycles — but
    /// must never change the final memory image, and the parallel leg
    /// must still reproduce the sequential cycles bit for bit. The
    /// DirNNB reference leg always runs `Ideal`, mirroring the
    /// fault-free pristine-reference rule.
    pub topology: Topology,
}

impl PerturbConfig {
    /// Derives the perturbation from a seed. New dimensions are drawn
    /// *after* the existing ones so old seeds keep their historical
    /// shapes.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = DetRng::new(seed).fork(3);
        PerturbConfig {
            tie_shuffle: if rng.chance(0.75) { Some(rng.next_u64()) } else { None },
            jitter_max: rng.below(4),
            jitter_seed: rng.next_u64(),
            coalesce: rng.chance(0.5),
            direct_execution: rng.chance(0.5),
            sim_threads: 1 + rng.below(3) as usize,
            window_policy: if rng.chance(0.5) {
                WindowPolicy::Adaptive
            } else {
                WindowPolicy::Fixed
            },
            fault: None,
            // Drawn last (newest dimension): half the seeds keep the
            // ideal pipe, the rest split between the routed topologies
            // with derived shape parameters (width/arity 0).
            topology: match rng.below(4) {
                0 | 1 => Topology::Ideal,
                2 => Topology::Mesh2D { width: 0 },
                _ => Topology::FatTree { arity: 0 },
            },
        }
    }

    /// [`PerturbConfig::from_seed`] plus a seed-derived fault schedule:
    /// the fault-plan seed comes from its own fork so fault decisions
    /// are independent of every other drawn dimension.
    pub fn from_seed_with_faults(seed: u64) -> Self {
        let mut p = PerturbConfig::from_seed(seed);
        p.fault = Some(FaultSpec::from_seed(DetRng::new(seed).fork(12).next_u64()));
        p
    }

    /// No perturbation at all (production schedule).
    pub fn none() -> Self {
        PerturbConfig {
            tie_shuffle: None,
            jitter_max: 0,
            jitter_seed: 0,
            coalesce: false,
            direct_execution: false,
            sim_threads: 1,
            window_policy: WindowPolicy::Fixed,
            fault: None,
            topology: Topology::Ideal,
        }
    }
}

/// Compact one-line rendering of a fault schedule for failure reports.
pub(crate) fn fault_summary(f: &FaultSpec) -> String {
    format!(
        "faults[seed={} drop={}‰ dup={}‰ corrupt={}‰ partition={}‰/{}x{}]",
        f.seed,
        f.drop_permille,
        f.dup_permille,
        f.corrupt_permille,
        f.partition_permille,
        f.partition_epoch,
        f.partition_run
    )
}

/// A clean run's vitals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaseResult {
    /// Typhoon completion time under the perturbation.
    pub typhoon_cycles: Cycles,
    /// DirNNB completion time.
    pub dirnnb_cycles: Cycles,
    /// Events the invariant engine observed on the Typhoon run.
    pub events: u64,
}

/// A caught failure: which seed, which shape, which stage, and the
/// panic or mismatch message. `shrunk` is filled in by [`shrink`].
#[derive(Clone, Debug)]
pub struct Failure {
    /// The seed that produced the case.
    pub seed: u64,
    /// The (possibly hand-built) case shape that failed.
    pub cfg: LitmusConfig,
    /// The schedule perturbation in force.
    pub perturb: PerturbConfig,
    /// Which stage failed: `"typhoon"`, `"dirnnb"`, `"differential"`,
    /// or `"parallel"` (sequential-vs-parallel simulator divergence).
    pub stage: &'static str,
    /// The panic message or mismatch description.
    pub message: String,
    /// A smaller shape that still fails, if [`shrink`] ran.
    pub shrunk: Option<LitmusConfig>,
    /// A simpler perturbation/fault schedule that still fails, if
    /// [`shrink`] ran: each schedule dimension is delta-debugged toward
    /// the production schedule one at a time.
    pub shrunk_perturb: Option<PerturbConfig>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed {} [{} stage] nodes={} pages={} blocks={} phases={}",
            self.seed, self.stage, self.cfg.nodes, self.cfg.pages, self.cfg.blocks, self.cfg.phases,
        )?;
        if let Some(fs) = &self.perturb.fault {
            write!(f, " {}", fault_summary(fs))?;
        }
        if self.perturb.topology != Topology::Ideal {
            write!(f, " topology={}", self.perturb.topology)?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(s) = &self.shrunk {
            write!(
                f,
                " (shrunk to nodes={} pages={} blocks={} phases={})",
                s.nodes, s.pages, s.blocks, s.phases
            )?;
        }
        if let Some(p) = &self.shrunk_perturb {
            write!(
                f,
                " (schedule shrunk to tie={} jitter={} coalesce={} direct={} threads={} \
                 topology={} {})",
                p.tie_shuffle.is_some(),
                p.jitter_max,
                p.coalesce,
                p.direct_execution,
                p.sim_threads,
                p.topology,
                match &p.fault {
                    Some(fs) => fault_summary(fs),
                    None => "no-faults".to_string(),
                }
            )?;
        }
        Ok(())
    }
}

/// Serializes panic-hook swapping so concurrent fuzz runs (e.g. test
/// threads) don't clobber each other's hooks.
static HOOK_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f`, converting a panic into its message. The default panic
/// hook is silenced for the duration: the fuzzer *expects* failures and
/// reports them itself.
pub(crate) fn catch<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    let guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let out = panic::catch_unwind(AssertUnwindSafe(f));
    panic::set_hook(prev);
    drop(guard);
    out.map_err(|e| {
        if let Some(s) = e.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = e.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// Reconstructs the word at `addr` from a finished Typhoon machine:
/// prefer the writable copy (SWMR makes it unique), then any readable
/// copy, then the home node's memory.
pub(crate) fn typhoon_word(m: &TyphoonMachine, addr: VAddr) -> u64 {
    let nodes = m.config().nodes;
    let mut readable = None;
    for n in 0..nodes {
        match m.node_tag(n, addr) {
            Some(Tag::ReadWrite) => return m.node_word(n, addr).expect("writable copy mapped"),
            Some(Tag::ReadOnly) if readable.is_none() => readable = Some(n),
            _ => {}
        }
    }
    if let Some(n) = readable {
        return m.node_word(n, addr).expect("readable copy mapped");
    }
    let home = m
        .layout()
        .pages(nodes)
        .find(|(vpn, _, _)| *vpn == addr.page())
        .map(|(_, h, _)| h.index())
        .expect("address in layout");
    m.node_word(home, addr).expect("home page mapped")
}

/// Runs one case with the stock Stache protocol.
pub fn run_case(cfg: &LitmusConfig, perturb: &PerturbConfig) -> Result<CaseResult, Box<Failure>> {
    run_case_with(cfg, perturb, &stache_factory)
}

/// Runs one case with an injected protocol factory (used to prove the
/// harness catches planted bugs). Under a fault schedule the protocol
/// is wrapped in the stock [`Reliable`] transport.
pub fn run_case_with(
    cfg: &LitmusConfig,
    perturb: &PerturbConfig,
    factory: ProtocolFactory,
) -> Result<CaseResult, Box<Failure>> {
    run_case_full(cfg, perturb, factory, &ReliableConfig::default())
}

/// [`run_case_with`] with the reliable transport's configuration also
/// injectable. `transport` matters only when `perturb.fault` is set —
/// a perfect network never wraps the protocol — and exists so the
/// harness can plant the transport-level bug (`dedupe: false`:
/// retransmission without duplicate suppression) and prove the fuzzer
/// catches it.
pub fn run_case_full(
    cfg: &LitmusConfig,
    perturb: &PerturbConfig,
    factory: ProtocolFactory,
    transport: &ReliableConfig,
) -> Result<CaseResult, Box<Failure>> {
    let litmus = Litmus::generate(cfg);
    let fail = |stage: &'static str, message: String| Box::new(Failure {
        seed: cfg.seed,
        cfg: cfg.clone(),
        perturb: perturb.clone(),
        stage,
        message,
        shrunk: None,
        shrunk_perturb: None,
    });

    let mut syscfg = SystemConfig::test_config(cfg.nodes);
    syscfg.seed = cfg.seed;
    syscfg.direct_execution = perturb.direct_execution;
    syscfg.fault = perturb.fault;
    syscfg.topology = perturb.topology;

    // Under faults the protocol runs behind the reliable transport,
    // the invariant engine accepts the transport's ack handler, and the
    // livelock watchdog widens (every retry/ack is an extra event).
    type BoxedFactory<'a> = Box<dyn Fn(NodeId, &Layout, &SystemConfig) -> Box<dyn Protocol> + 'a>;
    let wrapped: Option<BoxedFactory<'_>> = perturb.fault.map(|_| {
        let rel = *transport;
        Box::new(move |id: NodeId, layout: &Layout, scfg: &SystemConfig| {
            Box::new(Reliable::with_config(factory(id, layout, scfg), rel))
                as Box<dyn Protocol>
        }) as BoxedFactory<'_>
    });
    let tfactory: ProtocolFactory = match &wrapped {
        Some(w) => &**w,
        None => factory,
    };
    let make_checker = |blocks: Vec<VAddr>| {
        let checker = InvariantChecker::new(blocks);
        if perturb.fault.is_some() {
            checker
                .with_policy(reliable_vn_policy(tt_stache::vn_policy()))
                .with_budget(DEFAULT_EVENT_BUDGET * 4)
        } else {
            checker
        }
    };

    // Typhoon under the invariant engine and the full perturbation set.
    let (typhoon_cycles, typhoon_image, events) = {
        let syscfg = syscfg.clone();
        let litmus = &litmus;
        catch(move || {
            let mut m = TyphoonMachine::new(
                syscfg,
                Box::new(litmus.workload(perturb.coalesce)),
                tfactory,
            );
            if let Some(seed) = perturb.tie_shuffle {
                m.set_tie_shuffle(seed);
            }
            if perturb.jitter_max > 0 {
                m.set_net_jitter(perturb.jitter_seed, Cycles::new(perturb.jitter_max));
            }
            let mut checker = make_checker(litmus.blocks.clone());
            let r = m.run_observed(&mut |now, ev, mach| checker.check(now, ev, mach));
            let image: Vec<(VAddr, u64)> = litmus
                .finals
                .iter()
                .map(|&(a, _)| (a, typhoon_word(&m, a)))
                .collect();
            (r.cycles, image, checker.events())
        })
        .map_err(|msg| fail("typhoon", msg))?
    };

    // DirNNB: same workload and tie-break seed; jitter is a Typhoon
    // network knob (DirNNB latencies come from its cost tables), and
    // faults and routed topologies never apply — DirNNB is the pristine
    // ideal-network reference a lossy or mesh-routed Typhoon run's
    // final image is held against.
    let (dirnnb_cycles, dirnnb_image) = {
        let mut syscfg = syscfg.clone();
        syscfg.fault = None;
        syscfg.topology = Topology::Ideal;
        let litmus = &litmus;
        catch(move || {
            let mut m = DirnnbMachine::new(syscfg, Box::new(litmus.workload(perturb.coalesce)));
            if let Some(seed) = perturb.tie_shuffle {
                m.set_tie_shuffle(seed);
            }
            let r = m.run();
            let image: Vec<(VAddr, u64)> = litmus
                .finals
                .iter()
                .map(|&(a, _)| (a, m.shared_word(a)))
                .collect();
            (r.cycles, image)
        })
        .map_err(|msg| fail("dirnnb", msg))?
    };

    // Differential: both machines, and the generator's own prediction,
    // must agree on every written word.
    for (i, &(addr, expect)) in litmus.finals.iter().enumerate() {
        let t = typhoon_image[i].1;
        let d = dirnnb_image[i].1;
        if t != expect || d != expect {
            return Err(fail(
                "differential",
                format!(
                    "final image mismatch at {addr}: typhoon {t:#x}, dirnnb {d:#x}, \
                     expected {expect:#x}"
                ),
            ));
        }
    }

    // Parallel differential: the same case under the conservative
    // parallel simulator must reproduce the sequential legs bit for
    // bit — cycles and final images. (The invariant engine needs the
    // single total event order, so the parallel Typhoon leg runs plain.)
    if perturb.sim_threads > 1 {
        let mut parcfg = syscfg.clone();
        parcfg.sim_threads = perturb.sim_threads;
        parcfg.window_policy = perturb.window_policy;

        let (par_typhoon_cycles, par_typhoon_image) = {
            let parcfg = parcfg.clone();
            let litmus = &litmus;
            catch(move || {
                let mut m = TyphoonMachine::new(
                    parcfg,
                    Box::new(litmus.workload(perturb.coalesce)),
                    tfactory,
                );
                if let Some(seed) = perturb.tie_shuffle {
                    m.set_tie_shuffle(seed);
                }
                if perturb.jitter_max > 0 {
                    m.set_net_jitter(perturb.jitter_seed, Cycles::new(perturb.jitter_max));
                }
                let r = m.run();
                let image: Vec<(VAddr, u64)> = litmus
                    .finals
                    .iter()
                    .map(|&(a, _)| (a, typhoon_word(&m, a)))
                    .collect();
                (r.cycles, image)
            })
            .map_err(|msg| fail("parallel", msg))?
        };
        let (par_dirnnb_cycles, par_dirnnb_image) = {
            let mut parcfg = parcfg.clone();
            parcfg.fault = None;
            parcfg.topology = Topology::Ideal;
            let litmus = &litmus;
            catch(move || {
                let mut m = DirnnbMachine::new(parcfg, Box::new(litmus.workload(perturb.coalesce)));
                if let Some(seed) = perturb.tie_shuffle {
                    m.set_tie_shuffle(seed);
                }
                let r = m.run();
                let image: Vec<(VAddr, u64)> = litmus
                    .finals
                    .iter()
                    .map(|&(a, _)| (a, m.shared_word(a)))
                    .collect();
                (r.cycles, image)
            })
            .map_err(|msg| fail("parallel", msg))?
        };
        if par_typhoon_cycles != typhoon_cycles {
            return Err(fail(
                "parallel",
                format!(
                    "typhoon cycles diverged under sim_threads={} policy={}: \
                     sequential {}, parallel {}",
                    perturb.sim_threads, perturb.window_policy, typhoon_cycles, par_typhoon_cycles
                ),
            ));
        }
        if par_dirnnb_cycles != dirnnb_cycles {
            return Err(fail(
                "parallel",
                format!(
                    "dirnnb cycles diverged under sim_threads={} policy={}: \
                     sequential {}, parallel {}",
                    perturb.sim_threads, perturb.window_policy, dirnnb_cycles, par_dirnnb_cycles
                ),
            ));
        }
        if par_typhoon_image != typhoon_image || par_dirnnb_image != dirnnb_image {
            return Err(fail(
                "parallel",
                format!(
                    "final image diverged under sim_threads={} policy={}",
                    perturb.sim_threads, perturb.window_policy
                ),
            ));
        }
    }

    Ok(CaseResult { typhoon_cycles, dirnnb_cycles, events })
}

/// Derives the case and perturbation from `seed` and runs it. This is
/// also `replay`: the same seed always reruns the identical case.
pub fn run_seed(seed: u64) -> Result<CaseResult, Box<Failure>> {
    run_seed_with_threads(seed, None)
}

/// [`run_seed`] with the parallel-differential thread count forced
/// (`tt-check replay --sim-threads N`): the seed's case and all other
/// perturbations are reproduced bit-exactly, but the parallel legs run
/// at `N` threads (1 = sequential only). `None` keeps the seed's own
/// derived thread count.
pub fn run_seed_with_threads(
    seed: u64,
    sim_threads: Option<usize>,
) -> Result<CaseResult, Box<Failure>> {
    run_seed_with_overrides(seed, sim_threads, None)
}

/// [`run_seed_with_threads`] with the window policy of the parallel leg
/// also forceable (`tt-check replay --window-policy adaptive`). `None`
/// keeps the seed's own drawn policy.
pub fn run_seed_with_overrides(
    seed: u64,
    sim_threads: Option<usize>,
    window_policy: Option<WindowPolicy>,
) -> Result<CaseResult, Box<Failure>> {
    let options = FuzzOptions {
        sim_threads,
        window_policy,
        ..FuzzOptions::default()
    };
    run_seed_with_options(seed, &options)
}

/// Cross-cutting knobs for a fuzzing run or replay — everything the
/// `tt-check` CLI can force on top of the seed-derived shapes.
#[derive(Clone, Debug, Default)]
pub struct FuzzOptions {
    /// Force the parallel-differential thread count (`None` = each
    /// seed's own draw).
    pub sim_threads: Option<usize>,
    /// Force the parallel leg's window policy (`None` = each seed's
    /// own draw).
    pub window_policy: Option<WindowPolicy>,
    /// Enable the lossy-network dimension: every case gets a
    /// seed-derived fault schedule and the protocol runs behind the
    /// reliable transport.
    pub faults: bool,
    /// Force the fault-plan seed instead of deriving it from the case
    /// seed (`tt-check replay --fault-seed F`). Implies `faults`.
    pub fault_seed: Option<u64>,
    /// Reliable-transport configuration for faulty runs; `None` = the
    /// stock config. `ReliableConfig { dedupe: false, .. }` is the
    /// transport-level planted bug.
    pub transport: Option<ReliableConfig>,
    /// Force the interconnect model of the Typhoon legs
    /// (`tt-check run --topology mesh`); `None` = each seed's own draw.
    pub topology: Option<Topology>,
}

impl FuzzOptions {
    /// The perturbation this options set produces for one seed.
    pub fn perturb_for(&self, seed: u64) -> PerturbConfig {
        let mut p = PerturbConfig::from_seed(seed);
        if let Some(n) = self.sim_threads {
            p.sim_threads = n.max(1);
        }
        if let Some(w) = self.window_policy {
            p.window_policy = w;
        }
        if self.faults || self.fault_seed.is_some() {
            let fs = self
                .fault_seed
                .unwrap_or_else(|| DetRng::new(seed).fork(12).next_u64());
            p.fault = Some(FaultSpec::from_seed(fs));
        }
        if let Some(t) = self.topology {
            p.topology = t;
        }
        p
    }

    /// The transport configuration in force.
    pub fn transport_config(&self) -> ReliableConfig {
        self.transport.unwrap_or_default()
    }
}

/// Derives the case from `seed` under `options` and runs it — the
/// engine behind `tt-check replay` in all its variants.
pub fn run_seed_with_options(
    seed: u64,
    options: &FuzzOptions,
) -> Result<CaseResult, Box<Failure>> {
    run_case_full(
        &LitmusConfig::from_seed(seed),
        &options.perturb_for(seed),
        &stache_factory,
        &options.transport_config(),
    )
}

/// What a fuzzing sweep found.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Seeds actually run (stops at the first failure).
    pub seeds_run: u64,
    /// The first failure, if any.
    pub failure: Option<Failure>,
}

/// Fuzzes `count` consecutive seeds starting at `base_seed` with the
/// stock protocol; stops at the first failure.
pub fn fuzz(base_seed: u64, count: u64) -> FuzzReport {
    fuzz_with(base_seed, count, &stache_factory)
}

/// Fuzzes with an injected protocol factory.
pub fn fuzz_with(base_seed: u64, count: u64, factory: ProtocolFactory) -> FuzzReport {
    fuzz_with_threads(base_seed, count, None, factory)
}

/// [`fuzz_with`] with the parallel-differential thread count forced on
/// every seed (`tt-check run --sim-threads N`): each case keeps its
/// seed-derived shape and perturbations but runs the
/// sequential-vs-parallel differential at exactly `N` threads.
pub fn fuzz_with_threads(
    base_seed: u64,
    count: u64,
    sim_threads: Option<usize>,
    factory: ProtocolFactory,
) -> FuzzReport {
    fuzz_with_overrides(base_seed, count, sim_threads, None, factory)
}

/// [`fuzz_with_threads`] with the window policy of every parallel leg
/// also forceable (`tt-check run --window-policy adaptive`). `None`
/// keeps each seed's own drawn policy.
pub fn fuzz_with_overrides(
    base_seed: u64,
    count: u64,
    sim_threads: Option<usize>,
    window_policy: Option<WindowPolicy>,
    factory: ProtocolFactory,
) -> FuzzReport {
    let options = FuzzOptions {
        sim_threads,
        window_policy,
        ..FuzzOptions::default()
    };
    fuzz_with_options(base_seed, count, &options, factory)
}

/// Fuzzes `count` consecutive seeds under the full options set —
/// including the fault-schedule dimension — stopping at the first
/// failure. The engine behind `tt-check run` in all its variants.
pub fn fuzz_with_options(
    base_seed: u64,
    count: u64,
    options: &FuzzOptions,
    factory: ProtocolFactory,
) -> FuzzReport {
    let transport = options.transport_config();
    for i in 0..count {
        let seed = base_seed + i;
        let cfg = LitmusConfig::from_seed(seed);
        let perturb = options.perturb_for(seed);
        if let Err(f) = run_case_full(&cfg, &perturb, factory, &transport) {
            return FuzzReport { seeds_run: i + 1, failure: Some(*f) };
        }
    }
    FuzzReport { seeds_run: count, failure: None }
}

/// Greedily shrinks a failing case. Two interleaved dimensions:
///
/// - **shape** — repeatedly tries dropping a phase, a block, a page, or
///   a node (in that order), keeping any reduction that still fails;
/// - **schedule** — delta-debugs the perturbation and fault dimensions
///   one at a time toward the production schedule (tie-shuffle off,
///   jitter 0, no coalescing, direct execution off, sequential,
///   fixed windows, each fault rate 0, finally no faults at all),
///   keeping any simplification that still fails.
///
/// Returns the failure with `shrunk` and `shrunk_perturb` filled in.
pub fn shrink(failure: &Failure, factory: ProtocolFactory) -> Failure {
    shrink_with_transport(failure, factory, &ReliableConfig::default())
}

/// [`shrink`] under an injected transport configuration, so
/// transport-level planted bugs shrink under the same broken transport
/// that caught them.
pub fn shrink_with_transport(
    failure: &Failure,
    factory: ProtocolFactory,
    transport: &ReliableConfig,
) -> Failure {
    let still_fails = |c: &LitmusConfig, p: &PerturbConfig| {
        run_case_full(c, p, factory, transport).is_err()
    };
    let mut cur = failure.cfg.clone();
    let mut per = failure.perturb.clone();
    loop {
        let mut progressed = false;

        // Shape: drop one dimension at a time.
        loop {
            let mut candidates = Vec::new();
            if cur.phases > 1 {
                candidates.push(LitmusConfig { phases: cur.phases - 1, ..cur.clone() });
            }
            if cur.blocks > 1 {
                let blocks = cur.blocks - 1;
                candidates
                    .push(LitmusConfig { blocks, pages: cur.pages.min(blocks), ..cur.clone() });
            }
            if cur.pages > 1 {
                candidates.push(LitmusConfig { pages: cur.pages - 1, ..cur.clone() });
            }
            if cur.nodes > 2 {
                candidates.push(LitmusConfig { nodes: cur.nodes - 1, ..cur.clone() });
            }
            match candidates.into_iter().find(|c| still_fails(c, &per)) {
                Some(smaller) => {
                    cur = smaller;
                    progressed = true;
                }
                None => break,
            }
        }

        // Schedule: simplify one dimension at a time.
        loop {
            let mut candidates: Vec<PerturbConfig> = Vec::new();
            if per.tie_shuffle.is_some() {
                candidates.push(PerturbConfig { tie_shuffle: None, ..per.clone() });
            }
            if per.jitter_max > 0 {
                candidates.push(PerturbConfig { jitter_max: 0, jitter_seed: 0, ..per.clone() });
            }
            if per.coalesce {
                candidates.push(PerturbConfig { coalesce: false, ..per.clone() });
            }
            if per.direct_execution {
                candidates.push(PerturbConfig { direct_execution: false, ..per.clone() });
            }
            if per.sim_threads > 1 {
                candidates.push(PerturbConfig { sim_threads: 1, ..per.clone() });
            }
            if per.window_policy != WindowPolicy::Fixed {
                candidates.push(PerturbConfig { window_policy: WindowPolicy::Fixed, ..per.clone() });
            }
            if per.topology != Topology::Ideal {
                candidates.push(PerturbConfig { topology: Topology::Ideal, ..per.clone() });
            }
            if let Some(fs) = per.fault {
                for zeroed in [
                    FaultSpec { drop_permille: 0, ..fs },
                    FaultSpec { dup_permille: 0, ..fs },
                    FaultSpec { corrupt_permille: 0, ..fs },
                    FaultSpec { partition_permille: 0, ..fs },
                ] {
                    if zeroed != fs {
                        candidates.push(PerturbConfig { fault: Some(zeroed), ..per.clone() });
                    }
                }
                candidates.push(PerturbConfig { fault: None, ..per.clone() });
            }
            match candidates.into_iter().find(|p| still_fails(&cur, p)) {
                Some(simpler) => {
                    per = simpler;
                    progressed = true;
                }
                None => break,
            }
        }

        if !progressed {
            break;
        }
    }
    Failure { shrunk: Some(cur), shrunk_perturb: Some(per), ..failure.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perturb_derivation_is_deterministic() {
        for seed in 0..100 {
            assert_eq!(PerturbConfig::from_seed(seed), PerturbConfig::from_seed(seed));
            assert!(PerturbConfig::from_seed(seed).jitter_max <= 3);
            assert!((1..=3).contains(&PerturbConfig::from_seed(seed).sim_threads));
        }
        assert!(
            (0..100).any(|s| PerturbConfig::from_seed(s).sim_threads > 1),
            "some seeds must exercise the parallel differential"
        );
        assert!(
            (0..100).any(|s| {
                let p = PerturbConfig::from_seed(s);
                p.sim_threads > 1 && p.window_policy == WindowPolicy::Adaptive
            }),
            "some seeds must exercise adaptive windows in the parallel leg"
        );
        assert!(
            (0..100).any(|s| {
                let p = PerturbConfig::from_seed(s);
                p.sim_threads > 1 && p.window_policy == WindowPolicy::Fixed
            }),
            "some seeds must keep the fixed policy in the parallel leg"
        );
        for shape in [
            Topology::Ideal,
            Topology::Mesh2D { width: 0 },
            Topology::FatTree { arity: 0 },
        ] {
            assert!(
                (0..100).any(|s| PerturbConfig::from_seed(s).topology == shape),
                "some seeds must draw topology {shape}"
            );
        }
        assert!(
            (0..100).any(|s| {
                let p = PerturbConfig::from_seed(s);
                p.sim_threads > 1 && p.topology != Topology::Ideal
            }),
            "some seeds must run routed topologies through the parallel differential"
        );
    }

    #[test]
    fn replay_can_force_the_window_policy() {
        let adaptive = run_seed_with_overrides(7, Some(3), Some(WindowPolicy::Adaptive))
            .expect("seed 7 clean at 3 threads adaptive");
        let fixed = run_seed_with_overrides(7, Some(3), Some(WindowPolicy::Fixed))
            .expect("seed 7 clean at 3 threads fixed");
        assert_eq!(adaptive, fixed, "window policy leaked into the case result");
    }

    #[test]
    fn replay_can_force_the_parallel_leg() {
        let forced = run_seed_with_threads(7, Some(3)).expect("seed 7 clean at 3 threads");
        let seq = run_seed_with_threads(7, Some(1)).expect("seed 7 clean sequentially");
        assert_eq!(forced, seq, "thread count leaked into the case result");
    }

    #[test]
    fn catch_captures_panic_message() {
        let err = catch(|| panic!("boom {}", 7)).unwrap_err();
        assert_eq!(err, "boom 7");
        assert_eq!(catch(|| 42).unwrap(), 42);
    }

    #[test]
    fn a_single_seed_runs_clean_and_replays_identically() {
        let a = run_seed(7).expect("seed 7 clean");
        let b = run_seed(7).expect("seed 7 clean on replay");
        assert_eq!(a, b);
        assert!(a.events > 0);
    }

    #[test]
    fn fault_dimension_is_deterministic_and_varied() {
        for seed in 0..50 {
            let a = PerturbConfig::from_seed_with_faults(seed);
            assert_eq!(a, PerturbConfig::from_seed_with_faults(seed));
            let fs = a.fault.expect("faults drawn");
            // Everything else matches the fault-free draw: the fault
            // dimension must not disturb historical seed shapes.
            assert_eq!(PerturbConfig { fault: None, ..a }, PerturbConfig::from_seed(seed));
            assert!(fs.drop_permille <= 150 && fs.dup_permille <= 150);
        }
        assert!(
            (0..50).any(|s| {
                let f = PerturbConfig::from_seed_with_faults(s).fault.unwrap();
                f.drop_permille > 0 && f.dup_permille > 0
            }),
            "some schedules must both drop and duplicate"
        );
    }

    #[test]
    fn faulty_seeds_run_clean_and_replay_identically() {
        let options = FuzzOptions { faults: true, ..FuzzOptions::default() };
        for seed in 0..4 {
            let a = run_seed_with_options(seed, &options)
                .unwrap_or_else(|f| panic!("faulty seed {seed} failed: {f}"));
            let b = run_seed_with_options(seed, &options).expect("replay clean");
            assert_eq!(a, b, "faulty seed {seed} did not replay bit-exactly");
        }
    }

    #[test]
    fn forced_fault_seed_is_bit_exact_across_sim_threads() {
        // Same fault schedule, 1 vs 3 simulator threads: identical
        // cycles (the images are checked inside the case itself).
        let one = FuzzOptions {
            faults: true,
            fault_seed: Some(0xFA17),
            sim_threads: Some(1),
            ..FuzzOptions::default()
        };
        let three = FuzzOptions { sim_threads: Some(3), ..one.clone() };
        let a = run_seed_with_options(11, &one).expect("sequential faulty run clean");
        let b = run_seed_with_options(11, &three).expect("3-thread faulty run clean");
        assert_eq!(a, b, "fault schedule not bit-exact across sim-thread counts");
    }

    #[test]
    fn planted_transport_bug_is_caught_and_shrunk() {
        // Retransmission without duplicate suppression: the transport
        // hands stale deliveries to Stache, which the harness must
        // catch. The shrinker then delta-debugs the fault schedule.
        let broken = ReliableConfig { dedupe: false, ..ReliableConfig::default() };
        let options = FuzzOptions {
            faults: true,
            transport: Some(broken),
            ..FuzzOptions::default()
        };
        let report = fuzz_with_options(0, 30, &options, &stache_factory);
        let failure = report.failure.expect("dedupe-off transport must be caught");
        let shrunk = shrink_with_transport(&failure, &stache_factory, &broken);
        let per = shrunk.shrunk_perturb.expect("schedule shrink ran");
        assert!(
            per.fault.is_some(),
            "the failure needs faults, so shrinking must keep a fault schedule"
        );
        assert!(shrunk.shrunk.is_some());
    }
}
