//! Seed-generated litmus workloads.
//!
//! A litmus case is a small shared-memory program — 2–4 nodes, 1–4
//! blocks spread over 1–2 pages, 1–4 barrier-separated phases — whose
//! entire shape derives from a single `u64` seed via [`DetRng`]. Each
//! phase picks one writer per block (so the data race is always
//! reader-vs-single-writer, which both machines must order); readers
//! issue *racy* reads of the word being written (`expect: None` — any
//! outcome is legal) and *checked* reads of the previous phase's word
//! (`expect: Some(v)` — the barrier made it visible). Every (block,
//! phase) pair writes a distinct word, so each word is written exactly
//! once and the expected final memory image is known statically; the
//! case ends with every node reading the whole image back.

use tt_base::addr::{BLOCK_BYTES, PAGE_BYTES, WORD_BYTES};
use tt_base::workload::{
    coalesce_computes, Layout, Op, Placement, Region, ScriptWorkload, SHARED_SEGMENT_BASE,
};
use tt_base::{Cycles, DetRng, NodeId, SystemConfig, VAddr};
use tt_dirnnb::DirnnbMachine;
use tt_stache::{Reliable, ReliableConfig};
use tt_tempest::Protocol;
use tt_typhoon::TyphoonMachine;

use crate::fuzz::{stache_factory, PerturbConfig};

/// The words in a coherence block.
pub const WORDS_PER_BLOCK: usize = BLOCK_BYTES / WORD_BYTES;

/// The shape of a litmus case. Usually derived from a seed with
/// [`LitmusConfig::from_seed`]; the shrinker mutates the fields
/// directly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LitmusConfig {
    /// Seed that generated (or, after shrinking, accompanies) the case.
    pub seed: u64,
    /// Processors (2–4).
    pub nodes: usize,
    /// Shared pages (1–2), round-robin homed.
    pub pages: usize,
    /// Contended blocks (1–4), spread across the pages.
    pub blocks: usize,
    /// Barrier-separated phases (1–4).
    pub phases: usize,
}

impl LitmusConfig {
    /// Derives a case shape from a seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = DetRng::new(seed).fork(1);
        let nodes = 2 + rng.below_usize(3);
        let blocks = 1 + rng.below_usize(4);
        let pages = (1 + rng.below_usize(2)).min(blocks);
        let phases = 1 + rng.below_usize(4);
        LitmusConfig { seed, nodes, pages, blocks, phases }
    }
}

/// A generated litmus case: layout, per-node op scripts, the block
/// addresses the invariant engine should watch, and the expected final
/// value of every written word.
pub struct Litmus {
    /// The shape this case was generated from.
    pub cfg: LitmusConfig,
    /// Shared-segment layout (one region per page).
    pub layout: Layout,
    /// Per-node op scripts (index = node).
    pub scripts: Vec<Vec<Op>>,
    /// Base address of every contended block.
    pub blocks: Vec<VAddr>,
    /// Expected final value of every word any phase wrote.
    pub finals: Vec<(VAddr, u64)>,
}

impl Litmus {
    /// Generates the case for `cfg`. Deterministic: the same config
    /// always yields the same scripts.
    pub fn generate(cfg: &LitmusConfig) -> Litmus {
        let mut rng = DetRng::new(cfg.seed).fork(2);

        let mut layout = Layout::new();
        for p in 0..cfg.pages {
            layout.add(Region {
                base: VAddr::new(SHARED_SEGMENT_BASE + (p * PAGE_BYTES) as u64),
                bytes: PAGE_BYTES,
                placement: Placement::PerPage(vec![NodeId::new((p % cfg.nodes) as u16)]),
                mode: 0,
            });
        }

        // Spread blocks across the pages at distinct slots; the random
        // offset rotates which slots (including the last block of a
        // frame) get exercised.
        let blocks_per_page = PAGE_BYTES / BLOCK_BYTES;
        let slot_offset = rng.below_usize(blocks_per_page);
        let blocks: Vec<VAddr> = (0..cfg.blocks)
            .map(|b| {
                let page = b % cfg.pages;
                let slot = (slot_offset + (b / cfg.pages) * 43) % blocks_per_page;
                VAddr::new(
                    SHARED_SEGMENT_BASE + (page * PAGE_BYTES) as u64 + (slot * BLOCK_BYTES) as u64,
                )
            })
            .collect();

        let mut scripts: Vec<Vec<Op>> = vec![Vec::new(); cfg.nodes];
        let mut finals: Vec<(VAddr, u64)> = Vec::new();
        let mut prev_write: Vec<Option<(VAddr, u64)>> = vec![None; cfg.blocks];
        let mut next_val: u64 = 1;

        for phase in 0..cfg.phases {
            // Each (block, phase) pair targets a distinct word of the
            // block, so no word is ever written twice and checked reads
            // of an earlier phase's word stay stable under the current
            // phase's writes.
            let word = phase % WORDS_PER_BLOCK;
            let writes: Vec<(usize, usize, VAddr, u64)> = (0..cfg.blocks)
                .map(|b| {
                    let writer = rng.below_usize(cfg.nodes);
                    let addr = VAddr::new(blocks[b].raw() + (word * WORD_BYTES) as u64);
                    let value = 0xC0DE_0000 + next_val;
                    next_val += 1;
                    (b, writer, addr, value)
                })
                .collect();
            for (node, ops) in scripts.iter_mut().enumerate() {
                for &(b, writer, addr, value) in &writes {
                    if rng.chance(0.5) {
                        ops.push(Op::Compute(1 + rng.below(16) as u32));
                    }
                    if node == writer {
                        ops.push(Op::Write { addr, value });
                        if rng.chance(0.5) {
                            // Read-own-write: program order must hold.
                            ops.push(Op::Read { addr, expect: Some(value) });
                        }
                    } else {
                        if rng.chance(0.4) {
                            // Racy read of the word being written: any
                            // value is legal, but it forces sharing.
                            ops.push(Op::Read { addr, expect: None });
                        }
                        if let Some((paddr, pval)) = prev_write[b] {
                            if rng.chance(0.5) {
                                // The previous phase's barrier ordered
                                // this write before us.
                                ops.push(Op::Read { addr: paddr, expect: Some(pval) });
                            }
                        }
                    }
                }
                ops.push(Op::Barrier);
            }
            for &(b, _, addr, value) in &writes {
                prev_write[b] = Some((addr, value));
                match finals.iter_mut().find(|(a, _)| *a == addr) {
                    Some(slot) => slot.1 = value,
                    None => finals.push((addr, value)),
                }
            }
        }

        // Everyone reads the whole image back after the last barrier.
        for ops in scripts.iter_mut() {
            for &(addr, value) in &finals {
                ops.push(Op::Read { addr, expect: Some(value) });
            }
        }

        Litmus { cfg: cfg.clone(), layout, scripts, blocks, finals }
    }

    /// Builds a fresh workload for one machine run, optionally
    /// coalescing adjacent compute ops (a legal perturbation: it only
    /// merges think-time).
    pub fn workload(&self, coalesce: bool) -> ScriptWorkload {
        let mut w = ScriptWorkload::new(self.cfg.nodes).with_layout(self.layout.clone());
        for (n, script) in self.scripts.iter().enumerate() {
            let mut ops = script.clone();
            if coalesce {
                coalesce_computes(&mut ops);
            }
            w.set(n, ops);
        }
        w
    }
}

/// A classic hand-written weak-memory litmus shape — store buffering,
/// message passing, load buffering, IRIW — expressed over two shared
/// variables homed at *different* nodes (so every access crosses the
/// network) and value-recording reads ([`Op::ReadRecord`]).
///
/// Both machines implement sequential consistency: a CPU blocks on its
/// single outstanding access and the coherence protocol serializes
/// conflicting writes. The `forbidden` predicate names the outcome a
/// weaker memory model would admit but SC forbids; the harness asserts
/// it never appears — on either machine, under any legal schedule
/// perturbation, and (for Typhoon) under lossy-network fault schedules
/// with the reliable transport underneath.
pub struct ClassicLitmus {
    /// Litmus-tradition name: `"SB"`, `"MP"`, `"LB"`, `"IRIW"`.
    pub name: &'static str,
    /// Processors the shape needs (2, or 4 for IRIW).
    pub nodes: usize,
    /// Per-node op scripts over variables `x` and `y`.
    pub scripts: Vec<Vec<Op>>,
    /// Returns true if the per-node recorded-read vectors form the
    /// SC-forbidden outcome.
    pub forbidden: fn(&[Vec<u64>]) -> bool,
}

/// Variable `x`: first word of a page homed at node 0.
fn var_x() -> VAddr {
    VAddr::new(SHARED_SEGMENT_BASE)
}

/// Variable `y`: first word of a page homed at node 1.
fn var_y() -> VAddr {
    VAddr::new(SHARED_SEGMENT_BASE + PAGE_BYTES as u64)
}

impl ClassicLitmus {
    /// Two one-page regions, homed at nodes 0 and 1 — the homes are
    /// always distinct from each other, and for IRIW distinct from the
    /// readers too.
    pub fn layout(&self) -> Layout {
        let mut l = Layout::new();
        for (p, home) in [(0usize, 0u16), (1, 1)] {
            l.add(Region {
                base: VAddr::new(SHARED_SEGMENT_BASE + (p * PAGE_BYTES) as u64),
                bytes: PAGE_BYTES,
                placement: Placement::PerPage(vec![NodeId::new(home)]),
                mode: 0,
            });
        }
        l
    }

    /// A fresh workload for one machine run.
    pub fn workload(&self) -> ScriptWorkload {
        let mut w = ScriptWorkload::new(self.nodes).with_layout(self.layout());
        for (n, script) in self.scripts.iter().enumerate() {
            w.set(n, script.clone());
        }
        w
    }

    /// Recorded reads each node's script will produce.
    pub fn reads_per_node(&self) -> Vec<usize> {
        self.scripts
            .iter()
            .map(|s| s.iter().filter(|o| matches!(o, Op::ReadRecord { .. })).count())
            .collect()
    }
}

/// The classic suite. Initial state is all-zero; writes store 1.
pub fn classic_suite() -> Vec<ClassicLitmus> {
    let (x, y) = (var_x(), var_y());
    let w = |addr| Op::Write { addr, value: 1 };
    let r = |addr| Op::ReadRecord { addr };
    vec![
        // Store buffering: both writes buffered past the reads would
        // let both nodes read 0.
        ClassicLitmus {
            name: "SB",
            nodes: 2,
            scripts: vec![vec![w(x), r(y)], vec![w(y), r(x)]],
            forbidden: |recs| recs[0][0] == 0 && recs[1][0] == 0,
        },
        // Message passing: the flag (y) visible without the data (x)
        // means the writes were reordered.
        ClassicLitmus {
            name: "MP",
            nodes: 2,
            scripts: vec![vec![w(x), w(y)], vec![r(y), r(x)]],
            forbidden: |recs| recs[1][0] == 1 && recs[1][1] == 0,
        },
        // Load buffering: each load observing the *other* node's later
        // store requires loads hoisted above program order.
        ClassicLitmus {
            name: "LB",
            nodes: 2,
            scripts: vec![vec![r(x), w(y)], vec![r(y), w(x)]],
            forbidden: |recs| recs[0][0] == 1 && recs[1][0] == 1,
        },
        // Independent reads of independent writes: the two readers
        // disagreeing on the write order breaks write atomicity.
        ClassicLitmus {
            name: "IRIW",
            nodes: 4,
            scripts: vec![
                vec![w(x)],
                vec![w(y)],
                vec![r(x), r(y)],
                vec![r(y), r(x)],
            ],
            forbidden: |recs| {
                recs[2][0] == 1 && recs[2][1] == 0 && recs[3][0] == 1 && recs[3][1] == 0
            },
        },
    ]
}

/// Runs one classic shape on both machines under `perturb` (`seed`
/// feeds the machines' internal RNG streams) and checks the forbidden
/// outcome never appears. A fault schedule applies to the Typhoon leg
/// only (behind the reliable transport); DirNNB has no lossy mode.
///
/// Returns the observed per-node recorded reads of the Typhoon leg, or
/// an error naming the machine and outcome.
pub fn run_classic(
    case: &ClassicLitmus,
    seed: u64,
    perturb: &PerturbConfig,
) -> Result<Vec<Vec<u64>>, String> {
    let mut syscfg = SystemConfig::test_config(case.nodes);
    syscfg.seed = seed;
    syscfg.direct_execution = perturb.direct_execution;
    syscfg.fault = perturb.fault;

    let check = |machine: &str, recs: &[Vec<u64>]| -> Result<(), String> {
        for (n, (got, want)) in recs.iter().zip(case.reads_per_node()).enumerate() {
            if got.len() != want {
                return Err(format!(
                    "{}: {machine} node {n} recorded {} reads, script has {want}",
                    case.name,
                    got.len()
                ));
            }
            if let Some(v) = got.iter().find(|v| **v > 1) {
                return Err(format!(
                    "{}: {machine} node {n} read corrupt value {v:#x}",
                    case.name
                ));
            }
        }
        if (case.forbidden)(recs) {
            return Err(format!(
                "{}: {machine} produced the SC-forbidden outcome {recs:?}",
                case.name
            ));
        }
        Ok(())
    };

    let wrapped = |id: NodeId, layout: &Layout, cfg: &SystemConfig| -> Box<dyn Protocol> {
        Box::new(Reliable::with_config(
            stache_factory(id, layout, cfg),
            ReliableConfig::default(),
        ))
    };
    let typhoon_recs = {
        let mut m = if perturb.fault.is_some() {
            TyphoonMachine::new(syscfg.clone(), Box::new(case.workload()), &wrapped)
        } else {
            TyphoonMachine::new(syscfg.clone(), Box::new(case.workload()), &stache_factory)
        };
        if let Some(s) = perturb.tie_shuffle {
            m.set_tie_shuffle(s);
        }
        if perturb.jitter_max > 0 {
            m.set_net_jitter(perturb.jitter_seed, Cycles::new(perturb.jitter_max));
        }
        m.run();
        let recs: Vec<Vec<u64>> =
            (0..case.nodes).map(|n| m.recorded_reads(n).to_vec()).collect();
        check("typhoon+stache", &recs)?;
        recs
    };

    {
        let mut dircfg = syscfg;
        dircfg.fault = None;
        let mut m = DirnnbMachine::new(dircfg, Box::new(case.workload()));
        if let Some(s) = perturb.tie_shuffle {
            m.set_tie_shuffle(s);
        }
        m.run();
        let recs: Vec<Vec<u64>> =
            (0..case.nodes).map(|n| m.recorded_reads(n).to_vec()).collect();
        check("dirnnb", &recs)?;
    }

    Ok(typhoon_recs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_base::FaultSpec;

    #[test]
    fn config_derivation_is_deterministic_and_in_range() {
        for seed in 0..200 {
            let a = LitmusConfig::from_seed(seed);
            let b = LitmusConfig::from_seed(seed);
            assert_eq!(a, b);
            assert!((2..=4).contains(&a.nodes));
            assert!((1..=4).contains(&a.blocks));
            assert!((1..=4).contains(&a.phases));
            assert!((1..=2).contains(&a.pages) && a.pages <= a.blocks);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = LitmusConfig::from_seed(42);
        let a = Litmus::generate(&cfg);
        let b = Litmus::generate(&cfg);
        assert_eq!(a.scripts, b.scripts);
        assert_eq!(a.finals, b.finals);
        assert_eq!(a.blocks, b.blocks);
    }

    #[test]
    fn every_node_has_matching_barrier_counts() {
        for seed in 0..50 {
            let l = Litmus::generate(&LitmusConfig::from_seed(seed));
            let counts: Vec<usize> = l
                .scripts
                .iter()
                .map(|s| s.iter().filter(|o| matches!(o, Op::Barrier)).count())
                .collect();
            assert!(counts.windows(2).all(|w| w[0] == w[1]), "seed {seed}: {counts:?}");
            assert_eq!(counts[0], l.cfg.phases);
        }
    }

    #[test]
    fn blocks_are_distinct_and_words_written_once() {
        for seed in 0..50 {
            let l = Litmus::generate(&LitmusConfig::from_seed(seed));
            for (i, a) in l.blocks.iter().enumerate() {
                for b in &l.blocks[i + 1..] {
                    assert_ne!(a, b, "seed {seed}");
                }
            }
            // One final entry per (block, word) written; each written
            // exactly once, so finals length = blocks × distinct words.
            let distinct_words = l.cfg.phases.min(WORDS_PER_BLOCK);
            assert_eq!(l.finals.len(), l.cfg.blocks * distinct_words, "seed {seed}");
        }
    }

    #[test]
    fn classic_shapes_are_well_formed() {
        let suite = classic_suite();
        assert_eq!(suite.len(), 4);
        for case in &suite {
            assert_eq!(case.scripts.len(), case.nodes);
            let reads: usize = case.reads_per_node().iter().sum();
            assert!(reads >= 1, "{} records no reads", case.name);
        }
        assert_eq!(suite[3].name, "IRIW");
        assert_eq!(suite[3].nodes, 4);
    }

    #[test]
    fn classic_suite_holds_on_both_machines() {
        for case in &classic_suite() {
            for seed in 0..6 {
                let perturb = PerturbConfig::from_seed(seed);
                run_classic(case, seed, &perturb)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            }
        }
    }

    #[test]
    fn classic_suite_holds_under_faults() {
        for case in &classic_suite() {
            for seed in 0..4 {
                let mut perturb = PerturbConfig::from_seed(seed);
                perturb.fault = Some(FaultSpec::from_seed(seed.wrapping_mul(0x9E37)));
                run_classic(case, seed, &perturb)
                    .unwrap_or_else(|e| panic!("faulty seed {seed}: {e}"));
            }
        }
    }

    #[test]
    fn classic_runs_are_deterministic() {
        let suite = classic_suite();
        let case = &suite[0];
        let mut perturb = PerturbConfig::from_seed(5);
        perturb.fault = Some(FaultSpec::from_seed(5));
        let a = run_classic(case, 5, &perturb).expect("clean");
        let b = run_classic(case, 5, &perturb).expect("clean replay");
        assert_eq!(a, b);
    }
}
