//! Seed-generated litmus workloads.
//!
//! A litmus case is a small shared-memory program — 2–4 nodes, 1–4
//! blocks spread over 1–2 pages, 1–4 barrier-separated phases — whose
//! entire shape derives from a single `u64` seed via [`DetRng`]. Each
//! phase picks one writer per block (so the data race is always
//! reader-vs-single-writer, which both machines must order); readers
//! issue *racy* reads of the word being written (`expect: None` — any
//! outcome is legal) and *checked* reads of the previous phase's word
//! (`expect: Some(v)` — the barrier made it visible). Every (block,
//! phase) pair writes a distinct word, so each word is written exactly
//! once and the expected final memory image is known statically; the
//! case ends with every node reading the whole image back.

use tt_base::addr::{BLOCK_BYTES, PAGE_BYTES, WORD_BYTES};
use tt_base::workload::{
    coalesce_computes, Layout, Op, Placement, Region, ScriptWorkload, SHARED_SEGMENT_BASE,
};
use tt_base::{DetRng, NodeId, VAddr};

/// The words in a coherence block.
pub const WORDS_PER_BLOCK: usize = BLOCK_BYTES / WORD_BYTES;

/// The shape of a litmus case. Usually derived from a seed with
/// [`LitmusConfig::from_seed`]; the shrinker mutates the fields
/// directly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LitmusConfig {
    /// Seed that generated (or, after shrinking, accompanies) the case.
    pub seed: u64,
    /// Processors (2–4).
    pub nodes: usize,
    /// Shared pages (1–2), round-robin homed.
    pub pages: usize,
    /// Contended blocks (1–4), spread across the pages.
    pub blocks: usize,
    /// Barrier-separated phases (1–4).
    pub phases: usize,
}

impl LitmusConfig {
    /// Derives a case shape from a seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = DetRng::new(seed).fork(1);
        let nodes = 2 + rng.below_usize(3);
        let blocks = 1 + rng.below_usize(4);
        let pages = (1 + rng.below_usize(2)).min(blocks);
        let phases = 1 + rng.below_usize(4);
        LitmusConfig { seed, nodes, pages, blocks, phases }
    }
}

/// A generated litmus case: layout, per-node op scripts, the block
/// addresses the invariant engine should watch, and the expected final
/// value of every written word.
pub struct Litmus {
    /// The shape this case was generated from.
    pub cfg: LitmusConfig,
    /// Shared-segment layout (one region per page).
    pub layout: Layout,
    /// Per-node op scripts (index = node).
    pub scripts: Vec<Vec<Op>>,
    /// Base address of every contended block.
    pub blocks: Vec<VAddr>,
    /// Expected final value of every word any phase wrote.
    pub finals: Vec<(VAddr, u64)>,
}

impl Litmus {
    /// Generates the case for `cfg`. Deterministic: the same config
    /// always yields the same scripts.
    pub fn generate(cfg: &LitmusConfig) -> Litmus {
        let mut rng = DetRng::new(cfg.seed).fork(2);

        let mut layout = Layout::new();
        for p in 0..cfg.pages {
            layout.add(Region {
                base: VAddr::new(SHARED_SEGMENT_BASE + (p * PAGE_BYTES) as u64),
                bytes: PAGE_BYTES,
                placement: Placement::PerPage(vec![NodeId::new((p % cfg.nodes) as u16)]),
                mode: 0,
            });
        }

        // Spread blocks across the pages at distinct slots; the random
        // offset rotates which slots (including the last block of a
        // frame) get exercised.
        let blocks_per_page = PAGE_BYTES / BLOCK_BYTES;
        let slot_offset = rng.below_usize(blocks_per_page);
        let blocks: Vec<VAddr> = (0..cfg.blocks)
            .map(|b| {
                let page = b % cfg.pages;
                let slot = (slot_offset + (b / cfg.pages) * 43) % blocks_per_page;
                VAddr::new(
                    SHARED_SEGMENT_BASE + (page * PAGE_BYTES) as u64 + (slot * BLOCK_BYTES) as u64,
                )
            })
            .collect();

        let mut scripts: Vec<Vec<Op>> = vec![Vec::new(); cfg.nodes];
        let mut finals: Vec<(VAddr, u64)> = Vec::new();
        let mut prev_write: Vec<Option<(VAddr, u64)>> = vec![None; cfg.blocks];
        let mut next_val: u64 = 1;

        for phase in 0..cfg.phases {
            // Each (block, phase) pair targets a distinct word of the
            // block, so no word is ever written twice and checked reads
            // of an earlier phase's word stay stable under the current
            // phase's writes.
            let word = phase % WORDS_PER_BLOCK;
            let writes: Vec<(usize, usize, VAddr, u64)> = (0..cfg.blocks)
                .map(|b| {
                    let writer = rng.below_usize(cfg.nodes);
                    let addr = VAddr::new(blocks[b].raw() + (word * WORD_BYTES) as u64);
                    let value = 0xC0DE_0000 + next_val;
                    next_val += 1;
                    (b, writer, addr, value)
                })
                .collect();
            for (node, ops) in scripts.iter_mut().enumerate() {
                for &(b, writer, addr, value) in &writes {
                    if rng.chance(0.5) {
                        ops.push(Op::Compute(1 + rng.below(16) as u32));
                    }
                    if node == writer {
                        ops.push(Op::Write { addr, value });
                        if rng.chance(0.5) {
                            // Read-own-write: program order must hold.
                            ops.push(Op::Read { addr, expect: Some(value) });
                        }
                    } else {
                        if rng.chance(0.4) {
                            // Racy read of the word being written: any
                            // value is legal, but it forces sharing.
                            ops.push(Op::Read { addr, expect: None });
                        }
                        if let Some((paddr, pval)) = prev_write[b] {
                            if rng.chance(0.5) {
                                // The previous phase's barrier ordered
                                // this write before us.
                                ops.push(Op::Read { addr: paddr, expect: Some(pval) });
                            }
                        }
                    }
                }
                ops.push(Op::Barrier);
            }
            for &(b, _, addr, value) in &writes {
                prev_write[b] = Some((addr, value));
                match finals.iter_mut().find(|(a, _)| *a == addr) {
                    Some(slot) => slot.1 = value,
                    None => finals.push((addr, value)),
                }
            }
        }

        // Everyone reads the whole image back after the last barrier.
        for ops in scripts.iter_mut() {
            for &(addr, value) in &finals {
                ops.push(Op::Read { addr, expect: Some(value) });
            }
        }

        Litmus { cfg: cfg.clone(), layout, scripts, blocks, finals }
    }

    /// Builds a fresh workload for one machine run, optionally
    /// coalescing adjacent compute ops (a legal perturbation: it only
    /// merges think-time).
    pub fn workload(&self, coalesce: bool) -> ScriptWorkload {
        let mut w = ScriptWorkload::new(self.cfg.nodes).with_layout(self.layout.clone());
        for (n, script) in self.scripts.iter().enumerate() {
            let mut ops = script.clone();
            if coalesce {
                coalesce_computes(&mut ops);
            }
            w.set(n, ops);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_derivation_is_deterministic_and_in_range() {
        for seed in 0..200 {
            let a = LitmusConfig::from_seed(seed);
            let b = LitmusConfig::from_seed(seed);
            assert_eq!(a, b);
            assert!((2..=4).contains(&a.nodes));
            assert!((1..=4).contains(&a.blocks));
            assert!((1..=4).contains(&a.phases));
            assert!((1..=2).contains(&a.pages) && a.pages <= a.blocks);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = LitmusConfig::from_seed(42);
        let a = Litmus::generate(&cfg);
        let b = Litmus::generate(&cfg);
        assert_eq!(a.scripts, b.scripts);
        assert_eq!(a.finals, b.finals);
        assert_eq!(a.blocks, b.blocks);
    }

    #[test]
    fn every_node_has_matching_barrier_counts() {
        for seed in 0..50 {
            let l = Litmus::generate(&LitmusConfig::from_seed(seed));
            let counts: Vec<usize> = l
                .scripts
                .iter()
                .map(|s| s.iter().filter(|o| matches!(o, Op::Barrier)).count())
                .collect();
            assert!(counts.windows(2).all(|w| w[0] == w[1]), "seed {seed}: {counts:?}");
            assert_eq!(counts[0], l.cfg.phases);
        }
    }

    #[test]
    fn blocks_are_distinct_and_words_written_once() {
        for seed in 0..50 {
            let l = Litmus::generate(&LitmusConfig::from_seed(seed));
            for (i, a) in l.blocks.iter().enumerate() {
                for b in &l.blocks[i + 1..] {
                    assert_ne!(a, b, "seed {seed}");
                }
            }
            // One final entry per (block, word) written; each written
            // exactly once, so finals length = blocks × distinct words.
            let distinct_words = l.cfg.phases.min(WORDS_PER_BLOCK);
            assert_eq!(l.finals.len(), l.cfg.blocks * distinct_words, "seed {seed}");
        }
    }
}
