//! The KV litmus family: proving the write-update server equivalent.
//!
//! `tt-apps::kv_update` replaces invalidation with home-serialized
//! update broadcasts for KV slot pages. That is a real protocol with
//! real races — colliding puts to one key, gets overlapping an
//! in-flight broadcast, sharers dropping pages mid-update — so it gets
//! the same treatment as Stache itself: seed-generated contended
//! workloads, schedule fuzzing, and a differential against independent
//! references.
//!
//! A case derives entirely from one `u64` seed: a handful of *hot keys*
//! sampled from a larger key space, 2–4 nodes, and 1–3 put rounds. Each
//! round has exactly one writer per hot key (put), racy concurrent gets
//! (`expect: None` — any snapshot is legal while a put is in flight),
//! and read-own-write gets by the writer (`expect: Some` — a completed
//! put must be visible to its issuer). A barrier then closes the round
//! and every node may re-read the round's values *checked* — the
//! definition of "the put completed" under an update protocol is
//! exactly that post-barrier readers see it. The case ends with every
//! node reading every hot key's full slot back against the statically
//! known final image.
//!
//! Three legs must agree word-for-word on that image:
//!
//! - **Typhoon + Stache** on the raw-store variant of the scripts,
//!   under the invariant engine (tag/directory agreement, SWMR) and the
//!   seed's schedule perturbations;
//! - **Typhoon + KvUpdateProtocol** on the staged-put variant — same
//!   requests, different coherence machinery (no invariant engine: the
//!   update protocol intentionally keeps home ReadWrite alongside
//!   sharer ReadOnly copies, so SWMR does not apply);
//! - **DirNNB** (all-hardware baseline) on the raw-store variant.
//!
//! When the seed draws `sim_threads > 1`, both Typhoon legs rerun under
//! the conservative parallel simulator and must reproduce their
//! sequential cycles and images bit for bit. Seeds may also draw a
//! *tight* stache frame budget, which forces page replacement under
//! both protocols and exercises the update protocol's stale-copy path
//! (updates arriving for pages the sharer has dropped).

use tt_base::addr::{BLOCK_BYTES, PAGE_BYTES, WORD_BYTES};
use tt_base::workload::{coalesce_computes, Op, ScriptWorkload};
use tt_base::{Cycles, DetRng, NodeId, SystemConfig, VAddr, WindowPolicy};
use tt_apps::kv_update::KvUpdateProtocol;
use tt_dirnnb::DirnnbMachine;
use tt_serve::{header_word, value_word, KvLayout, SharedKvLatency, KV_PUT_OP};
use tt_stache::{reliable_vn_policy, Reliable, ReliableConfig};
use tt_typhoon::TyphoonMachine;

use crate::fuzz::{catch, fault_summary, stache_factory, typhoon_word, FuzzOptions, PerturbConfig};
use crate::invariants::{InvariantChecker, DEFAULT_EVENT_BUDGET};

/// Words written by one put: `(addr, value)` pairs over the slot.
type SlotWords = Vec<(VAddr, u64)>;
/// A boxed machine-shaped protocol factory.
type BoxedFactory =
    Box<dyn Fn(NodeId, &tt_base::workload::Layout, &SystemConfig) -> Box<dyn tt_tempest::Protocol>>;

/// The shape of a KV litmus case.
#[derive(Clone, Debug, PartialEq)]
pub struct KvLitmusConfig {
    /// Seed that generated the case.
    pub seed: u64,
    /// Processors (2–4).
    pub nodes: usize,
    /// Key-space size the hot keys are sampled from (64–512).
    pub keyspace: u64,
    /// Contended keys (2–5).
    pub hot_keys: usize,
    /// Put rounds (1–3).
    pub rounds: usize,
    /// Value words per slot (1–6; 4+ makes slots span two blocks).
    pub value_words: usize,
    /// Cap the stache frame budget at two pages, forcing replacement
    /// and stale-update handling.
    pub tight_stache: bool,
}

impl KvLitmusConfig {
    /// Derives a case shape from a seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = DetRng::new(seed).fork(7);
        KvLitmusConfig {
            seed,
            nodes: 2 + rng.below_usize(3),
            keyspace: 64 + rng.below(449),
            hot_keys: 2 + rng.below_usize(4),
            rounds: 1 + rng.below_usize(3),
            value_words: 1 + rng.below_usize(6),
            tight_stache: rng.chance(0.3),
        }
    }
}

/// A generated KV litmus case: both script variants, the contended
/// blocks, and the predicted final slot image.
pub struct KvLitmus {
    /// The shape this case was generated from.
    pub cfg: KvLitmusConfig,
    /// Key layout (identical for both variants).
    pub kv: KvLayout,
    /// Raw-store scripts (Stache and DirNNB legs).
    pub stache_scripts: Vec<Vec<Op>>,
    /// Staged-put scripts (update-protocol leg).
    pub update_scripts: Vec<Vec<Op>>,
    /// Slot blocks of the hot keys (invariant-engine watch list).
    pub blocks: Vec<VAddr>,
    /// Expected final value of every written slot word.
    pub finals: Vec<(VAddr, u64)>,
}

impl KvLitmus {
    /// Generates the case for `cfg`. Deterministic.
    pub fn generate(cfg: &KvLitmusConfig) -> KvLitmus {
        let mut rng = DetRng::new(cfg.seed).fork(8);
        let kv = KvLayout::new(cfg.keyspace, cfg.value_words, cfg.nodes);

        // Sample distinct hot keys from the key space.
        let mut hot: Vec<u64> = Vec::with_capacity(cfg.hot_keys);
        while hot.len() < cfg.hot_keys {
            let k = rng.below(cfg.keyspace);
            if !hot.contains(&k) {
                hot.push(k);
            }
        }

        let mut blocks: Vec<VAddr> = Vec::new();
        for &k in &hot {
            for b in 0..kv.slot_blocks() {
                blocks.push(kv.slot_addr(k).offset((b * BLOCK_BYTES) as u64));
            }
        }

        let slot_words = kv.slot_words();
        let words_of = |k: u64, hdr: u64| -> Vec<(VAddr, u64)> {
            std::iter::once(hdr)
                .chain((0..cfg.value_words).map(|i| value_word(k, hdr, i)))
                .enumerate()
                .map(|(w, v)| (kv.word_addr(k, w), v))
                .collect()
        };

        let mut stache: Vec<Vec<Op>> = vec![Vec::new(); cfg.nodes];
        let mut update: Vec<Vec<Op>> = vec![Vec::new(); cfg.nodes];
        // Last committed words per hot key (index parallel to `hot`).
        let mut committed: Vec<Option<SlotWords>> = vec![None; cfg.hot_keys];
        let mut seq = 0u64;

        for _round in 0..cfg.rounds {
            // One writer per hot key this round.
            let puts: Vec<(usize, usize, SlotWords)> = hot
                .iter()
                .enumerate()
                .map(|(ki, &k)| {
                    let writer = rng.below_usize(cfg.nodes);
                    seq += 1;
                    let hdr = header_word(NodeId::new(writer as u16), seq, cfg.value_words);
                    (ki, writer, words_of(k, hdr))
                })
                .collect();

            // Put sub-round: writers put; everyone else may issue racy
            // gets (any snapshot legal) or checked gets of the previous
            // round's committed value is NOT legal here — the new put
            // races with it — so non-writers only read racy.
            for node in 0..cfg.nodes {
                for (ki, writer, words) in &puts {
                    let k = hot[*ki];
                    if rng.chance(0.5) {
                        let c = Op::Compute(1 + rng.below(16) as u32);
                        stache[node].push(c);
                        update[node].push(c);
                    }
                    if node == *writer {
                        // Stache variant: raw stores into the slot.
                        for &(addr, v) in words {
                            stache[node].push(Op::Write { addr, value: v });
                        }
                        // Update variant: stage locally, then publish.
                        let base = kv.staging_addr(NodeId::new(node as u16));
                        for (w, &(_, v)) in words.iter().enumerate() {
                            update[node].push(Op::Write {
                                addr: base.offset((w * WORD_BYTES) as u64),
                                value: v,
                            });
                        }
                        update[node].push(Op::UserCall { op: KV_PUT_OP, arg: k });
                        if rng.chance(0.5) {
                            // Read-own-write: a completed put is visible
                            // to its issuer in both variants.
                            for &(addr, v) in words {
                                stache[node].push(Op::Read { addr, expect: Some(v) });
                                update[node].push(Op::Read { addr, expect: Some(v) });
                            }
                        }
                    } else if rng.chance(0.4) {
                        // Racy get concurrent with the put.
                        for w in 0..slot_words {
                            let addr = kv.word_addr(k, w);
                            stache[node].push(Op::Read { addr, expect: None });
                            update[node].push(Op::Read { addr, expect: None });
                        }
                    }
                }
                stache[node].push(Op::Barrier);
                update[node].push(Op::Barrier);
            }

            for (ki, _, words) in puts {
                committed[ki] = Some(words);
            }

            // Check sub-round: post-barrier, this round's puts are
            // committed — gets must observe them exactly.
            for node in 0..cfg.nodes {
                for (ki, _k) in hot.iter().enumerate() {
                    if rng.chance(0.5) {
                        for &(addr, v) in committed[ki].as_ref().expect("put this round") {
                            stache[node].push(Op::Read { addr, expect: Some(v) });
                            update[node].push(Op::Read { addr, expect: Some(v) });
                        }
                    }
                }
                stache[node].push(Op::Barrier);
                update[node].push(Op::Barrier);
            }
        }

        // Final readback: every node checks every hot key's full slot.
        let finals: Vec<(VAddr, u64)> = committed
            .iter()
            .flat_map(|w| w.as_ref().expect("every key written").clone())
            .collect();
        for node in 0..cfg.nodes {
            for &(addr, v) in &finals {
                stache[node].push(Op::Read { addr, expect: Some(v) });
                update[node].push(Op::Read { addr, expect: Some(v) });
            }
        }

        KvLitmus {
            cfg: cfg.clone(),
            kv,
            stache_scripts: stache,
            update_scripts: update,
            blocks,
            finals,
        }
    }

    /// Builds a fresh workload for one run of one variant.
    pub fn workload(&self, update_variant: bool, coalesce: bool) -> ScriptWorkload {
        let scripts = if update_variant { &self.update_scripts } else { &self.stache_scripts };
        let mut w = ScriptWorkload::new(self.cfg.nodes).with_layout(self.kv.layout());
        for (n, script) in scripts.iter().enumerate() {
            let mut ops = script.clone();
            if coalesce {
                coalesce_computes(&mut ops);
            }
            w.set(n, ops);
        }
        w
    }
}

/// A caught KV-differential failure.
#[derive(Clone, Debug)]
pub struct KvFailure {
    /// The seed that produced the case.
    pub seed: u64,
    /// The case shape.
    pub cfg: KvLitmusConfig,
    /// The schedule perturbation in force.
    pub perturb: PerturbConfig,
    /// Which leg failed: `"kv-stache"`, `"kv-update"`, `"kv-dirnnb"`,
    /// `"kv-differential"`, or `"kv-parallel"`.
    pub stage: &'static str,
    /// The panic message or mismatch description.
    pub message: String,
}

impl std::fmt::Display for KvFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed {} [{} stage] nodes={} keyspace={} hot={} rounds={} words={}{}",
            self.seed,
            self.stage,
            self.cfg.nodes,
            self.cfg.keyspace,
            self.cfg.hot_keys,
            self.cfg.rounds,
            self.cfg.value_words,
            if self.cfg.tight_stache { " tight" } else { "" },
        )?;
        if let Some(fs) = &self.perturb.fault {
            write!(f, " {}", fault_summary(fs))?;
        }
        write!(f, ": {}", self.message)
    }
}

/// A clean KV case's vitals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KvCaseResult {
    /// Stache-leg completion time.
    pub stache_cycles: Cycles,
    /// Update-leg completion time.
    pub update_cycles: Cycles,
    /// DirNNB-leg completion time.
    pub dirnnb_cycles: Cycles,
    /// Events the invariant engine observed on the stache leg.
    pub events: u64,
}

/// Runs one KV case: three legs, a four-way image differential, and —
/// when the perturbation draws threads — parallel-simulator reruns of
/// both Typhoon legs.
pub fn run_kv_case(
    cfg: &KvLitmusConfig,
    perturb: &PerturbConfig,
) -> Result<KvCaseResult, Box<KvFailure>> {
    let litmus = KvLitmus::generate(cfg);
    let fail = |stage: &'static str, message: String| {
        Box::new(KvFailure {
            seed: cfg.seed,
            cfg: cfg.clone(),
            perturb: perturb.clone(),
            stage,
            message,
        })
    };

    let mut syscfg = SystemConfig::test_config(cfg.nodes);
    syscfg.seed = cfg.seed;
    syscfg.direct_execution = perturb.direct_execution;
    syscfg.fault = perturb.fault;
    syscfg.topology = perturb.topology;
    if cfg.tight_stache {
        syscfg.stache_capacity_bytes = 2 * PAGE_BYTES;
    }

    let run_typhoon = |parallel: bool,
                       update_variant: bool,
                       observe: bool|
     -> Result<(Cycles, SlotWords, u64), String> {
        let mut runcfg = syscfg.clone();
        if parallel {
            runcfg.sim_threads = perturb.sim_threads;
            runcfg.window_policy = perturb.window_policy;
        }
        let litmus = &litmus;
        catch(move || {
            let workload = Box::new(litmus.workload(update_variant, perturb.coalesce));
            let collector = SharedKvLatency::default();
            let inner: BoxedFactory = if update_variant {
                let kv = litmus.kv.clone();
                Box::new(move |id, layout, cfg| {
                    Box::new(KvUpdateProtocol::new(id, layout, cfg, kv.clone(), collector.clone()))
                })
            } else {
                Box::new(stache_factory)
            };
            // Under a fault schedule both protocols — Stache *and* the
            // custom kv_update protocol — run behind the reliable
            // transport; the fault plan replays identically on the
            // parallel reruns via the deterministic merge keys.
            let factory: BoxedFactory = if perturb.fault.is_some() {
                Box::new(move |id, layout, cfg| {
                    Box::new(Reliable::with_config(
                        inner(id, layout, cfg),
                        ReliableConfig::default(),
                    ))
                })
            } else {
                inner
            };
            let mut m = TyphoonMachine::new(runcfg, workload, &*factory);
            if let Some(seed) = perturb.tie_shuffle {
                m.set_tie_shuffle(seed);
            }
            if perturb.jitter_max > 0 {
                m.set_net_jitter(perturb.jitter_seed, Cycles::new(perturb.jitter_max));
            }
            let (cycles, events) = if observe {
                let mut checker = InvariantChecker::new(litmus.blocks.clone());
                if perturb.fault.is_some() {
                    checker = checker
                        .with_policy(reliable_vn_policy(tt_stache::vn_policy()))
                        .with_budget(DEFAULT_EVENT_BUDGET * 4);
                }
                let r = m.run_observed(&mut |now, ev, mach| checker.check(now, ev, mach));
                (r.cycles, checker.events())
            } else {
                (m.run().cycles, 0)
            };
            let image: Vec<(VAddr, u64)> = litmus
                .finals
                .iter()
                .map(|&(a, _)| (a, typhoon_word(&m, a)))
                .collect();
            (cycles, image, events)
        })
    };

    // Leg 1: Typhoon + Stache on raw stores, invariant engine on (the
    // engine needs the sequential single total order, so observation
    // happens on the sequential run).
    let (stache_cycles, stache_image, events) =
        run_typhoon(false, false, true).map_err(|m| fail("kv-stache", m))?;

    // Leg 2: Typhoon + the write-update protocol on staged puts. No
    // invariant engine: home-ReadWrite + sharer-ReadOnly is this
    // protocol's intended tag state and violates SWMR by design.
    let (update_cycles, update_image, _) =
        run_typhoon(false, true, false).map_err(|m| fail("kv-update", m))?;

    // Leg 3: DirNNB on raw stores — always fault-free and on the ideal
    // network; it is the pristine reference the lossy or mesh-routed
    // legs' final images are held against.
    let (dirnnb_cycles, dirnnb_image) = {
        let mut syscfg = syscfg.clone();
        syscfg.fault = None;
        syscfg.topology = tt_base::Topology::Ideal;
        let litmus = &litmus;
        catch(move || {
            let mut m = DirnnbMachine::new(syscfg, Box::new(litmus.workload(false, perturb.coalesce)));
            if let Some(seed) = perturb.tie_shuffle {
                m.set_tie_shuffle(seed);
            }
            let r = m.run();
            let image: Vec<(VAddr, u64)> = litmus
                .finals
                .iter()
                .map(|&(a, _)| (a, m.shared_word(a)))
                .collect();
            (r.cycles, image)
        })
        .map_err(|m| fail("kv-dirnnb", m))?
    };

    // Differential: all three legs and the generator's prediction must
    // agree on every written slot word.
    for (i, &(addr, expect)) in litmus.finals.iter().enumerate() {
        let s = stache_image[i].1;
        let u = update_image[i].1;
        let d = dirnnb_image[i].1;
        if s != expect || u != expect || d != expect {
            return Err(fail(
                "kv-differential",
                format!(
                    "final image mismatch at {addr}: stache {s:#x}, update {u:#x}, \
                     dirnnb {d:#x}, expected {expect:#x}"
                ),
            ));
        }
    }

    // Parallel differential: both Typhoon legs bit-identical under the
    // conservative parallel simulator.
    if perturb.sim_threads > 1 {
        for (leg, update_variant, seq_cycles, seq_image) in [
            ("kv-stache", false, stache_cycles, &stache_image),
            ("kv-update", true, update_cycles, &update_image),
        ] {
            let (par_cycles, par_image, _) =
                run_typhoon(true, update_variant, false).map_err(|m| fail("kv-parallel", m))?;
            if par_cycles != seq_cycles {
                return Err(fail(
                    "kv-parallel",
                    format!(
                        "{leg} cycles diverged under sim_threads={} policy={}: \
                         sequential {}, parallel {}",
                        perturb.sim_threads, perturb.window_policy, seq_cycles, par_cycles
                    ),
                ));
            }
            if &par_image != seq_image {
                return Err(fail(
                    "kv-parallel",
                    format!(
                        "{leg} final image diverged under sim_threads={} policy={}",
                        perturb.sim_threads, perturb.window_policy
                    ),
                ));
            }
        }
    }

    Ok(KvCaseResult { stache_cycles, update_cycles, dirnnb_cycles, events })
}

/// Derives the KV case and perturbation from `seed` and runs it, with
/// the parallel leg's thread count and window policy optionally forced.
pub fn run_kv_seed(
    seed: u64,
    sim_threads: Option<usize>,
    window_policy: Option<WindowPolicy>,
) -> Result<KvCaseResult, Box<KvFailure>> {
    let options = FuzzOptions { sim_threads, window_policy, ..FuzzOptions::default() };
    run_kv_seed_with_options(seed, &options)
}

/// [`run_kv_seed`] under the full options set, including the
/// fault-schedule dimension — `kv_update` under retransmission is the
/// scariest corner the harness covers.
pub fn run_kv_seed_with_options(
    seed: u64,
    options: &FuzzOptions,
) -> Result<KvCaseResult, Box<KvFailure>> {
    run_kv_case(&KvLitmusConfig::from_seed(seed), &options.perturb_for(seed))
}

/// What a KV fuzzing sweep found.
#[derive(Clone, Debug)]
pub struct KvFuzzReport {
    /// Seeds actually run (stops at the first failure).
    pub seeds_run: u64,
    /// The first failure, if any.
    pub failure: Option<KvFailure>,
}

/// Fuzzes `count` consecutive KV seeds starting at `base_seed`; stops
/// at the first failure. Overrides force the parallel legs' shape on
/// every seed (`None` keeps each seed's own draw).
pub fn fuzz_kv(
    base_seed: u64,
    count: u64,
    sim_threads: Option<usize>,
    window_policy: Option<WindowPolicy>,
) -> KvFuzzReport {
    let options = FuzzOptions { sim_threads, window_policy, ..FuzzOptions::default() };
    fuzz_kv_with_options(base_seed, count, &options)
}

/// [`fuzz_kv`] under the full options set, including fault schedules.
pub fn fuzz_kv_with_options(base_seed: u64, count: u64, options: &FuzzOptions) -> KvFuzzReport {
    for i in 0..count {
        let seed = base_seed + i;
        if let Err(f) = run_kv_seed_with_options(seed, options) {
            return KvFuzzReport { seeds_run: i + 1, failure: Some(*f) };
        }
    }
    KvFuzzReport { seeds_run: count, failure: None }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_derivation_is_deterministic_and_in_range() {
        for seed in 0..200 {
            let a = KvLitmusConfig::from_seed(seed);
            assert_eq!(a, KvLitmusConfig::from_seed(seed));
            assert!((2..=4).contains(&a.nodes));
            assert!((64..=512).contains(&a.keyspace));
            assert!((2..=5).contains(&a.hot_keys));
            assert!((1..=3).contains(&a.rounds));
            assert!((1..=6).contains(&a.value_words));
        }
        assert!(
            (0..100).any(|s| KvLitmusConfig::from_seed(s).value_words > 3),
            "multi-block slots must be exercised"
        );
        assert!(
            (0..100).any(|s| KvLitmusConfig::from_seed(s).tight_stache),
            "tight frame budgets must be exercised"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = KvLitmusConfig::from_seed(42);
        let a = KvLitmus::generate(&cfg);
        let b = KvLitmus::generate(&cfg);
        assert_eq!(a.stache_scripts, b.stache_scripts);
        assert_eq!(a.update_scripts, b.update_scripts);
        assert_eq!(a.finals, b.finals);
    }

    #[test]
    fn first_seeds_pass_the_differential() {
        let report = fuzz_kv(0, 25, None, None);
        assert!(
            report.failure.is_none(),
            "seed failed: {}",
            report.failure.unwrap()
        );
        assert_eq!(report.seeds_run, 25);
    }

    #[test]
    fn forced_parallel_seeds_pass() {
        let report = fuzz_kv(0, 10, Some(2), Some(WindowPolicy::Adaptive));
        assert!(
            report.failure.is_none(),
            "seed failed: {}",
            report.failure.unwrap()
        );
    }

    #[test]
    fn faulty_kv_seeds_pass_the_differential() {
        let options = FuzzOptions { faults: true, ..FuzzOptions::default() };
        let report = fuzz_kv_with_options(0, 8, &options);
        assert!(
            report.failure.is_none(),
            "faulty kv seed failed: {}",
            report.failure.unwrap()
        );
        assert_eq!(report.seeds_run, 8);
    }

    #[test]
    fn same_fault_seed_is_bit_exact_across_sim_threads() {
        // The acceptance bar for determinism: one fault schedule, run
        // at 1 and at 3 simulator threads, must produce identical
        // cycles on every leg (the parallel reruns inside the 3-thread
        // case additionally pin the final images).
        let base = FuzzOptions {
            faults: true,
            fault_seed: Some(0xFA17_5EED),
            sim_threads: Some(1),
            ..FuzzOptions::default()
        };
        let three = FuzzOptions { sim_threads: Some(3), ..base.clone() };
        let a = run_kv_seed_with_options(5, &base).expect("sequential faulty kv run clean");
        let b = run_kv_seed_with_options(5, &three).expect("3-thread faulty kv run clean");
        assert_eq!(a, b, "kv fault schedule not bit-exact across sim-thread counts");
    }
}
