//! The invariant engine: event-boundary observers for
//! [`TyphoonMachine::run_observed`].
//!
//! Handlers are atomic in the simulation, so after every event the
//! machine is in a protocol-consistent state; these checks assert the
//! properties a correct write-invalidate protocol maintains at exactly
//! those boundaries:
//!
//! - **SWMR** — at most one node holds a `ReadWrite` copy of a block,
//!   and a writable copy excludes readable copies elsewhere;
//! - **data value** — all readable copies of a block agree word for
//!   word (the invalidate protocol never lets a stale readable copy
//!   coexist with a fresh one);
//! - **tag/directory agreement** — a non-busy home directory entry and
//!   the access tags tell the same story: `Idle` ⟹ home holds the only
//!   (writable) copy, `Shared` ⟹ home is read-only and every remote
//!   readable copy is a registered sharer, `Exclusive(o)` ⟹ home is
//!   invalid and nobody but `o` holds a copy. Busy entries are skipped:
//!   mid-transaction the directory intentionally leads or trails the
//!   tags, and silent replacement means the sharer list may *over*state
//!   copies (never understate), which is why the check is
//!   one-directional (tags ⟹ directory, not the converse);
//! - **virtual-network discipline** — every delivered protocol packet
//!   travels on the virtual network its handler declared
//!   ([`tt_stache::vn_policy`]); keeping requests off the response
//!   network is what makes the waits-for order acyclic, i.e. the
//!   request/response system deadlock-free;
//! - **event budget** — a livelocked protocol (e.g. two nodes stealing
//!   a block back and forth without progress) produces unbounded
//!   events; a generous budget turns that into a reported failure
//!   instead of a hung fuzzer.
//!
//! [`TyphoonMachine::run_observed`]: tt_typhoon::TyphoonMachine::run_observed

use tt_base::addr::{BLOCK_BYTES, WORD_BYTES};
use tt_base::{Cycles, VAddr};
use tt_mem::Tag;
use tt_tempest::{DirSnapshotState, HandlerId, VnPolicy};
use tt_typhoon::machine::MACHINE_HANDLER_BASE;
use tt_typhoon::{Event, TyphoonMachine};

/// Default event budget: far above anything a litmus-sized run needs,
/// low enough that a livelock fails in well under a second.
pub const DEFAULT_EVENT_BUDGET: u64 = 2_000_000;

/// Event-boundary invariant checker. Construct one per run and feed it
/// to [`TyphoonMachine::run_observed`]:
///
/// ```ignore
/// let mut checker = InvariantChecker::new(litmus.blocks.clone());
/// machine.run_observed(&mut |now, ev, m| checker.check(now, ev, m));
/// ```
pub struct InvariantChecker {
    policy: VnPolicy,
    tracked: Vec<VAddr>,
    budget: u64,
    events: u64,
}

impl InvariantChecker {
    /// A checker watching the given block base addresses, enforcing the
    /// Stache virtual-network policy and the default event budget.
    pub fn new(tracked: Vec<VAddr>) -> Self {
        InvariantChecker {
            policy: tt_stache::vn_policy(),
            tracked,
            budget: DEFAULT_EVENT_BUDGET,
            events: 0,
        }
    }

    /// Replaces the virtual-network policy (for non-Stache protocols).
    pub fn with_policy(mut self, policy: VnPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the event budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Events observed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Asserts every invariant against the machine's post-event state.
    ///
    /// # Panics
    ///
    /// Panics with a message naming the violated invariant.
    pub fn check(&mut self, now: Cycles, event: &Event, m: &TyphoonMachine) {
        self.events += 1;
        assert!(
            self.events <= self.budget,
            "event budget exceeded: {} events by cycle {now} without completion (livelock?)",
            self.events
        );
        if let Event::Deliver(p) = event {
            if p.handler < MACHINE_HANDLER_BASE {
                self.policy.assert_send(HandlerId(p.handler), p.vn);
            }
        }
        self.check_tags(now, m);
        self.check_directories(now, m);
    }

    /// SWMR + data-value over the tracked blocks.
    fn check_tags(&self, now: Cycles, m: &TyphoonMachine) {
        let nodes = m.config().nodes;
        for &blk in &self.tracked {
            let mut writable = Vec::new();
            let mut readable = Vec::new();
            for n in 0..nodes {
                match m.node_tag(n, blk) {
                    Some(Tag::ReadWrite) => writable.push(n),
                    Some(Tag::ReadOnly) => readable.push(n),
                    _ => {}
                }
            }
            assert!(
                writable.len() <= 1,
                "SWMR violation: block {blk} writable on nodes {writable:?} at cycle {now}"
            );
            if let Some(&w) = writable.first() {
                assert!(
                    readable.is_empty(),
                    "SWMR violation: block {blk} writable on node {w} while readable on \
                     {readable:?} at cycle {now}"
                );
            }
            // All copies that may be read must agree word for word.
            let holders: Vec<usize> = writable.iter().chain(readable.iter()).copied().collect();
            if holders.len() >= 2 {
                for w in 0..BLOCK_BYTES / WORD_BYTES {
                    let a = VAddr::new(blk.raw() + (w * WORD_BYTES) as u64);
                    let v0 = m.node_word(holders[0], a).expect("tagged copy is mapped");
                    for &h in &holders[1..] {
                        let v = m.node_word(h, a).expect("tagged copy is mapped");
                        assert_eq!(
                            v, v0,
                            "data-value violation: block {blk} word {w} is {v0:#x} on node \
                             {} but {v:#x} on node {h} at cycle {now}",
                            holders[0]
                        );
                    }
                }
            }
        }
    }

    /// Tag/directory agreement over every non-busy home entry.
    fn check_directories(&self, now: Cycles, m: &TyphoonMachine) {
        let nodes = m.config().nodes;
        for d in m.inspect_directories() {
            if d.busy {
                continue;
            }
            let home = d.home.index();
            let home_tag = m.node_tag(home, d.addr);
            match &d.state {
                DirSnapshotState::Idle => {
                    assert_eq!(
                        home_tag,
                        Some(Tag::ReadWrite),
                        "tag/dir disagreement: idle block {} but home {home} tag is \
                         {home_tag:?} at cycle {now}",
                        d.addr
                    );
                }
                DirSnapshotState::Shared(sharers) => {
                    assert_eq!(
                        home_tag,
                        Some(Tag::ReadOnly),
                        "tag/dir disagreement: shared block {} but home {home} tag is \
                         {home_tag:?} at cycle {now}",
                        d.addr
                    );
                    for n in 0..nodes {
                        if n == home {
                            continue;
                        }
                        match m.node_tag(n, d.addr) {
                            Some(Tag::ReadWrite) => panic!(
                                "tag/dir disagreement: shared block {} writable on node {n} \
                                 at cycle {now}",
                                d.addr
                            ),
                            Some(Tag::ReadOnly) => assert!(
                                sharers.iter().any(|s| s.index() == n),
                                "tag/dir disagreement: block {} readable on node {n}, which \
                                 the home directory does not list as a sharer \
                                 (sharers {sharers:?}) at cycle {now}",
                                d.addr
                            ),
                            _ => {}
                        }
                    }
                }
                DirSnapshotState::Exclusive(owner) => {
                    if owner.index() != home {
                        assert_eq!(
                            home_tag,
                            Some(Tag::Invalid),
                            "tag/dir disagreement: block {} exclusive at node {} but home \
                             {home} tag is {home_tag:?} at cycle {now}",
                            d.addr,
                            owner.index()
                        );
                    }
                    for n in 0..nodes {
                        if n == owner.index() || n == home {
                            continue;
                        }
                        let t = m.node_tag(n, d.addr);
                        assert!(
                            !matches!(t, Some(Tag::ReadOnly) | Some(Tag::ReadWrite)),
                            "tag/dir disagreement: block {} exclusive at node {} but node \
                             {n} holds a {t:?} copy at cycle {now}",
                            d.addr,
                            owner.index()
                        );
                    }
                }
            }
        }
    }
}
