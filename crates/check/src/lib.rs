//! **tt-check** — coherence model checking for the Tempest/Typhoon
//! reproduction.
//!
//! Simulators are only as trustworthy as the invariants they are checked
//! against. This crate turns the repo's two machines into a
//! model-checking harness with three layers:
//!
//! 1. an **invariant engine** ([`invariants`]) — observers attached to
//!    [`TyphoonMachine::run_observed`] that assert, at every event
//!    boundary: single-writer/multiple-reader over the 32-byte block
//!    tags, agreement between each node's Stache tags and the home
//!    directory state, word-level agreement of all readable copies of a
//!    block, the request/response virtual-network send discipline
//!    (deadlock-freedom of the waits-for order), and an event budget
//!    that turns livelock into a reported failure;
//! 2. a **schedule fuzzer** ([`fuzz`]) — seed-generated litmus workloads
//!    ([`litmus`]) run under perturbations of the machine's *legal*
//!    nondeterminism (same-cycle tie-breaking, network latency jitter,
//!    compute coalescing, direct execution on/off, sequential vs.
//!    parallel simulation). Everything derives from one `u64` seed
//!    through [`tt_base::DetRng`], so `tt-check replay --seed S`
//!    reproduces a failure bit-exactly (`--sim-threads N` forces the
//!    parallel leg's thread count), and a greedy shrinker reduces a
//!    failing case to a minimal configuration;
//! 3. a **differential checker** (also in [`fuzz`]) — the same workload
//!    runs on `tt-typhoon` (user-level Stache protocol) and `tt-dirnnb`
//!    (the hardware `Dir_N NB` baseline); final shared-memory images
//!    must match each other *and* the generator's own happens-before
//!    prediction, word for word.
//!
//! [`scenarios`] carries known-broken protocols (promoted from the old
//! `tt-typhoon` failure-injection tests) that the harness must catch:
//! a protocol that never invalidates, a protocol that loses resumes,
//! and a planted single-line Stache bug ([`scenarios::SkipInvalidate`])
//! that skips the invalidation an `INV` message demands while still
//! acknowledging it.
//!
//! The `tt-check` binary (in `tt-bench`) drives fuzzing runs and writes
//! a JSON report; see the repository README for a quick start.
//!
//! [`TyphoonMachine::run_observed`]: tt_typhoon::TyphoonMachine::run_observed

pub mod fuzz;
pub mod invariants;
pub mod kvlitmus;
pub mod litmus;
pub mod scenarios;

pub use fuzz::{
    fuzz, fuzz_with, fuzz_with_options, fuzz_with_overrides, fuzz_with_threads, run_case,
    run_case_full, run_case_with, run_seed, run_seed_with_options, run_seed_with_overrides,
    run_seed_with_threads, shrink, shrink_with_transport, stache_factory, CaseResult, Failure,
    FuzzOptions, FuzzReport, PerturbConfig,
};
pub use invariants::InvariantChecker;
pub use kvlitmus::{
    fuzz_kv, fuzz_kv_with_options, run_kv_case, run_kv_seed, run_kv_seed_with_options,
    KvCaseResult, KvFailure, KvFuzzReport, KvLitmus, KvLitmusConfig,
};
pub use litmus::{classic_suite, run_classic, ClassicLitmus, Litmus, LitmusConfig};
