//! Stache capacity eviction under KV churn.
//!
//! A serving node whose stache budget is smaller than its working set
//! must continuously evict and refetch slot pages. This test pins the
//! whole cycle: a rolling key scan overflows a two-page frame budget,
//! dirty pages are written back to their homes, evicted pages are
//! refetched on the next pass, and — with `verify_values` on — every
//! refetched word still carries the value the protocol wrote back.

use tt_base::workload::{Op, ScriptWorkload};
use tt_base::{mix64, NodeId, SystemConfig};
use tt_serve::KvLayout;
use tt_stache::StacheProtocol;
use tt_typhoon::TyphoonMachine;

const KEYS: u64 = 1024;
const NODES: usize = 2;

fn w0val(k: u64) -> u64 {
    mix64(k ^ 0xAB) | 1
}

fn w1val(k: u64) -> u64 {
    mix64(k ^ 0xCD) | 1
}

/// Node 0 seeds word 0 of every slot; node 1 then writes word 1 of
/// every slot and re-reads both words across two more full passes, so
/// each pass re-touches far more pages than the frame budget holds.
fn churn_workload(kv: &KvLayout) -> ScriptWorkload {
    let mut w = ScriptWorkload::new(NODES).with_layout(kv.layout());
    let mut seed_ops = Vec::new();
    for k in 0..KEYS {
        seed_ops.push(Op::Write { addr: kv.word_addr(k, 0), value: w0val(k) });
    }
    seed_ops.push(Op::Barrier);
    w.set(0, seed_ops);

    let mut churn_ops = vec![Op::Barrier];
    for k in 0..KEYS {
        churn_ops.push(Op::Write { addr: kv.word_addr(k, 1), value: w1val(k) });
    }
    for _pass in 0..2 {
        for k in 0..KEYS {
            churn_ops.push(Op::Read { addr: kv.word_addr(k, 0), expect: Some(w0val(k)) });
            churn_ops.push(Op::Read { addr: kv.word_addr(k, 1), expect: Some(w1val(k)) });
        }
    }
    w.set(1, churn_ops);
    w
}

fn run(capacity_bytes: usize) -> tt_typhoon::RunResult {
    let kv = KvLayout::new(KEYS, 3, NODES);
    let mut cfg = SystemConfig::test_config(NODES);
    cfg.stache_capacity_bytes = capacity_bytes;
    let mut m = TyphoonMachine::new(
        cfg.clone(),
        Box::new(churn_workload(&kv)),
        &|id: NodeId, layout: &_, cfg: &_| Box::new(StacheProtocol::new(id, layout, cfg)),
    );
    m.run()
}

#[test]
fn eviction_under_churn_refetches_correct_values() {
    let tight = run(2 * 4096);
    let roomy = run(usize::MAX);

    // The tight budget must actually churn: pages evicted, dirty ones
    // written back, and evicted pages pulled again on later passes.
    let replacements = tight.report.get("stache.replacements").unwrap();
    let writebacks = tight.report.get("stache.writebacks_sent").unwrap();
    assert!(replacements > 0.0, "no evictions despite a 2-page budget");
    assert!(writebacks > 0.0, "dirty evictions must write back");
    let tight_pf = tight.report.get("stache.page_faults").unwrap();
    let roomy_pf = roomy.report.get("stache.page_faults").unwrap();
    assert!(
        tight_pf > roomy_pf,
        "churn must refetch pages: {tight_pf} vs {roomy_pf} faults"
    );

    // An unbounded budget faults each remote page exactly once and
    // never replaces anything.
    assert_eq!(roomy.report.get("stache.replacements"), Some(0.0));

    // Both budgets ran with verify_values on, so every Read above
    // already checked that refetched words survived the writeback
    // round-trip. Cycle counts may differ; correctness may not.
    assert!(tight.cycles > roomy.cycles, "churn should cost cycles");
}
