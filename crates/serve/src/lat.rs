//! Cycle-domain latency collection for KV requests.
//!
//! Every request ends with a [`KV_STAMP_OP`](crate::KV_STAMP_OP) user
//! call carrying its scheduled arrival cycle; the protocol records
//! `now - arrival` — queueing delay included, because the arrival was
//! fixed by the open-loop schedule, not by when the processor got to the
//! request. Each node's protocol accumulates into a private
//! [`KvLatency`] and folds it into the shared collector when the
//! machine is torn down. Folding is a commutative bucket-wise add, so
//! the merged histogram is identical no matter how many simulator
//! threads ran the nodes or in which order they dropped.

use std::sync::{Arc, Mutex};

use tt_base::stats::LatHistogram;
use tt_base::Cycles;

/// Per-class latency histograms for one run (or one node).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KvLatency {
    /// Get (read) request latencies, in cycles.
    pub get: LatHistogram,
    /// Put (write) request latencies, in cycles.
    pub put: LatHistogram,
}

impl KvLatency {
    /// Folds `other` into `self` (bucket-wise; commutative).
    pub fn merge(&mut self, other: &KvLatency) {
        self.get.merge(&other.get);
        self.put.merge(&other.put);
    }

    /// Total requests recorded.
    pub fn requests(&self) -> u64 {
        self.get.total() + self.put.total()
    }
}

/// The run-wide collector a protocol factory closure captures.
pub type SharedKvLatency = Arc<Mutex<KvLatency>>;

/// One node's accumulator plus the run-wide collector it folds into on
/// drop. Embedded in both KV protocol variants so the recording and
/// hand-off logic exists once.
#[derive(Debug)]
pub struct LatSink {
    /// This node's histograms (also surfaced as report counters).
    pub local: KvLatency,
    shared: SharedKvLatency,
}

impl LatSink {
    /// A sink folding into `shared`.
    pub fn new(shared: SharedKvLatency) -> Self {
        LatSink { local: KvLatency::default(), shared }
    }

    /// Records one finished request from a stamp argument
    /// (`arrival << 1 | is_put`).
    pub fn record(&mut self, now: Cycles, stamp: u64) {
        let arrival = stamp >> 1;
        let lat = now.raw().saturating_sub(arrival);
        if stamp & 1 == 1 {
            self.local.put.record(lat);
        } else {
            self.local.get.record(lat);
        }
    }
}

impl Drop for LatSink {
    fn drop(&mut self) {
        let mut shared = self.shared.lock().expect("latency collector poisoned");
        shared.merge(&self.local);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_sinks(shared: &SharedKvLatency) -> (LatSink, LatSink) {
        let mut s0 = LatSink::new(shared.clone());
        let mut s1 = LatSink::new(shared.clone());
        s0.record(Cycles::new(100), 10 << 1);
        s1.record(Cycles::new(100), (20 << 1) | 1);
        (s0, s1)
    }

    #[test]
    fn sinks_fold_on_drop_in_any_order() {
        let a: SharedKvLatency = Default::default();
        let (s0, s1) = two_sinks(&a);
        drop(s0);
        drop(s1);
        let b: SharedKvLatency = Default::default();
        let (s0, s1) = two_sinks(&b);
        drop(s1);
        drop(s0);
        let a = a.lock().unwrap().clone();
        let b = b.lock().unwrap().clone();
        assert_eq!(a, b);
        assert_eq!(a.get.total(), 1);
        assert_eq!(a.put.total(), 1);
        assert_eq!(a.get.max(), 90);
        assert_eq!(a.put.max(), 80);
    }
}
