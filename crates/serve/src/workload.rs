//! The open-loop Zipfian client population.
//!
//! Each node fronts a slice of a large logical client population. The
//! population is *open-loop*: request arrival times follow a Poisson
//! process fixed up front by the seed, independent of how long the
//! server takes — a slow request does not slow the arrival of the next
//! one, it just queues behind it, and the queueing delay lands in the
//! measured latency (the standard serving-systems methodology; closed
//! loops hide overload by throttling the generator, a mistake this
//! module is built to avoid).
//!
//! Keys are drawn from a Zipf(`skew`) distribution over `0..keys`; a
//! coin with probability `write_pct`/100 picks put vs get. Every stream
//! is generated from a per-node fork of the run seed, so chunk pull
//! order — which differs between the sequential and parallel simulators
//! — cannot perturb the programs.
//!
//! Each request compiles to ops:
//!
//! - `WaitUntil(arrival)` — realize the scheduled arrival;
//! - `Compute(think)` — request parsing / hash lookup;
//! - get: tag-checked `Read`s of the slot's header and value words;
//! - put (stache variant): tag-checked `Write`s of the slot words —
//!   plain shared-memory stores, Stache does the rest;
//! - put (update variant): `Write`s into the node's local staging page
//!   followed by `UserCall(KV_PUT_OP, key)`, which publishes the staged
//!   value through the write-update protocol;
//! - `UserCall(KV_STAMP_OP, arrival << 1 | is_put)` — latency stamp.

use tt_base::addr::WORD_BYTES;
use tt_base::workload::{Layout, Op, Workload};
use tt_base::{DetRng, NodeId, Zipf};

use crate::layout::{header_word, value_word, KvLayout, KV_PUT_OP, KV_STAMP_OP};

/// Which server variant the generated programs target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvVariant {
    /// Plain transparent shared memory: puts are ordinary stores into
    /// the slot; Stache's invalidation protocol propagates them.
    Stache,
    /// The hot-key write-update protocol: puts stage locally and
    /// publish via `KV_PUT_OP`.
    Update,
}

impl KvVariant {
    /// Short name for tables and reports.
    pub fn name(self) -> &'static str {
        match self {
            KvVariant::Stache => "kv-stache",
            KvVariant::Update => "kv-update",
        }
    }
}

/// Full parameter set for one KV serving run.
#[derive(Clone, Debug)]
pub struct KvParams {
    /// Machine size.
    pub nodes: usize,
    /// Key-space size.
    pub keys: u64,
    /// Zipf skew `s` (0 = uniform; 1+ = heavily skewed).
    pub skew: f64,
    /// Percentage of requests that are puts (5 = read-mostly 95/5,
    /// 50 = write-heavy 50/50).
    pub write_pct: u32,
    /// Requests each node serves.
    pub requests_per_node: u64,
    /// Mean cycles between request arrivals at one node (exponential).
    pub mean_interarrival: f64,
    /// Value size in 64-bit words.
    pub value_words: usize,
    /// Per-request compute cycles (parse + hash).
    pub think: u32,
    /// Workload seed (independent of the machine seed).
    pub seed: u64,
    /// Which server variant the programs drive.
    pub variant: KvVariant,
}

impl KvParams {
    /// A small default point, used by tests and as the CLI baseline.
    pub fn small(variant: KvVariant) -> Self {
        KvParams {
            nodes: 4,
            keys: 256,
            skew: 0.9,
            write_pct: 5,
            requests_per_node: 200,
            mean_interarrival: 150.0,
            value_words: 3,
            think: 10,
            seed: 0x5e7e,
            variant,
        }
    }

    /// The layout these parameters imply.
    pub fn kv_layout(&self) -> KvLayout {
        KvLayout::new(self.keys, self.value_words, self.nodes)
    }
}

/// Requests generated per `next_chunk` call.
const CHUNK_REQUESTS: u64 = 64;

struct NodeGen {
    rng: DetRng,
    /// Next request's scheduled arrival (absolute cycle).
    arrival: u64,
    /// Requests generated so far.
    issued: u64,
    /// Per-node put sequence number (feeds the header word).
    seq: u64,
}

/// The open-loop client workload (implements [`Workload`]).
pub struct KvWorkload {
    params: KvParams,
    kv: KvLayout,
    zipf: Zipf,
    gens: Vec<NodeGen>,
}

impl KvWorkload {
    /// Builds the workload; all randomness derives from `params.seed`.
    pub fn new(params: KvParams) -> Self {
        let kv = params.kv_layout();
        let zipf = Zipf::new(params.keys, params.skew);
        let root = DetRng::new(params.seed);
        let gens = (0..params.nodes)
            .map(|n| NodeGen {
                rng: root.clone().fork(n as u64 + 1),
                arrival: 0,
                issued: 0,
                seq: 0,
            })
            .collect();
        KvWorkload { params, kv, zipf, gens }
    }

    fn push_request(&mut self, cpu: NodeId, ops: &mut Vec<Op>) {
        let p = &self.params;
        let g = &mut self.gens[cpu.raw() as usize];
        // Exponential interarrival, floored at one cycle.
        let u = g.rng.unit_f64();
        let gap = (-(1.0 - u).ln() * p.mean_interarrival).ceil().max(1.0) as u64;
        g.arrival += gap;
        let key = self.zipf.sample(&mut g.rng);
        let is_put = g.rng.below(100) < p.write_pct as u64;
        ops.push(Op::WaitUntil { until: g.arrival });
        ops.push(Op::Compute(p.think));
        if is_put {
            g.seq += 1;
            let hdr = header_word(cpu, g.seq, p.value_words);
            let words: Vec<u64> = std::iter::once(hdr)
                .chain((0..p.value_words).map(|i| value_word(key, hdr, i)))
                .collect();
            match p.variant {
                KvVariant::Stache => {
                    for (w, &v) in words.iter().enumerate() {
                        ops.push(Op::Write { addr: self.kv.word_addr(key, w), value: v });
                    }
                }
                KvVariant::Update => {
                    let base = self.kv.staging_addr(cpu);
                    for (w, &v) in words.iter().enumerate() {
                        ops.push(Op::Write {
                            addr: base.offset((w * WORD_BYTES) as u64),
                            value: v,
                        });
                    }
                    ops.push(Op::UserCall { op: KV_PUT_OP, arg: key });
                }
            }
        } else {
            // Concurrent writers make the loaded values unpredictable;
            // `expect: None` reads still exercise the full coherence
            // path and the machine's tag checks.
            for w in 0..self.kv.slot_words() {
                ops.push(Op::Read { addr: self.kv.word_addr(key, w), expect: None });
            }
        }
        ops.push(Op::UserCall { op: KV_STAMP_OP, arg: g.arrival << 1 | is_put as u64 });
        g.issued += 1;
    }
}

impl Workload for KvWorkload {
    fn name(&self) -> &'static str {
        "kv-serve"
    }

    fn layout(&self) -> Layout {
        self.kv.layout()
    }

    fn next_chunk(&mut self, cpu: NodeId) -> Option<Vec<Op>> {
        let total = self.params.requests_per_node;
        let issued = self.gens[cpu.raw() as usize].issued;
        if issued >= total {
            return None;
        }
        let batch = CHUNK_REQUESTS.min(total - issued);
        let mut ops = Vec::with_capacity(batch as usize * (6 + 2 * self.kv.slot_words()));
        for _ in 0..batch {
            self.push_request(cpu, &mut ops);
        }
        Some(ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut KvWorkload, cpu: NodeId) -> Vec<Op> {
        let mut all = Vec::new();
        while let Some(chunk) = w.next_chunk(cpu) {
            all.extend(chunk);
        }
        all
    }

    #[test]
    fn streams_are_pull_order_independent() {
        let params = KvParams::small(KvVariant::Stache);
        let mut a = KvWorkload::new(params.clone());
        let mut b = KvWorkload::new(params);
        // a: node 0 fully, then node 1; b: interleaved.
        let a0 = drain(&mut a, NodeId::new(0));
        let a1 = drain(&mut a, NodeId::new(1));
        let mut b0 = Vec::new();
        let mut b1 = Vec::new();
        loop {
            let c1 = b.next_chunk(NodeId::new(1));
            let c0 = b.next_chunk(NodeId::new(0));
            if let Some(c) = &c1 {
                b1.extend(c.iter().copied());
            }
            if let Some(c) = &c0 {
                b0.extend(c.iter().copied());
            }
            if c0.is_none() && c1.is_none() {
                break;
            }
        }
        assert_eq!(a0, b0);
        assert_eq!(a1, b1);
    }

    #[test]
    fn variants_differ_only_in_put_compilation() {
        let mut s = KvParams::small(KvVariant::Stache);
        s.write_pct = 50;
        let mut u = s.clone();
        u.variant = KvVariant::Update;
        let sv = drain(&mut KvWorkload::new(s), NodeId::new(2));
        let uv = drain(&mut KvWorkload::new(u), NodeId::new(2));
        // Same request count (same number of stamps)...
        let stamps = |ops: &[Op]| {
            ops.iter()
                .filter(|o| matches!(o, Op::UserCall { op, .. } if *op == KV_STAMP_OP))
                .count()
        };
        assert_eq!(stamps(&sv), 200);
        assert_eq!(stamps(&uv), 200);
        // ...same arrivals and key choices (identical rng draws).
        let waits = |ops: &[Op]| -> Vec<u64> {
            ops.iter()
                .filter_map(|o| match o {
                    Op::WaitUntil { until } => Some(*until),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(waits(&sv), waits(&uv));
        // The update variant publishes each put with a KV_PUT_OP call.
        let puts = |ops: &[Op]| {
            ops.iter()
                .filter(|o| matches!(o, Op::UserCall { op, .. } if *op == KV_PUT_OP))
                .count()
        };
        assert_eq!(puts(&sv), 0);
        assert!(puts(&uv) > 0);
    }

    #[test]
    fn read_mostly_mix_is_mostly_reads() {
        let params = KvParams::small(KvVariant::Stache);
        let ops = drain(&mut KvWorkload::new(params), NodeId::new(0));
        let stamps: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                Op::UserCall { op, arg } if *op == KV_STAMP_OP => Some(*arg),
                _ => None,
            })
            .collect();
        let puts = stamps.iter().filter(|&&s| s & 1 == 1).count();
        assert_eq!(stamps.len(), 200);
        assert!(puts <= 30, "95/5 mix produced {puts} puts of 200");
    }
}
