//! Key-to-address layout for the KV store.
//!
//! Keys live in a dense `0..keys` space (the Zipf rank *is* the key), but
//! popular keys must not cluster on one home node: ranks are scattered
//! across slots by sorting keys on a `mix64` hash, so the ten hottest
//! keys land on ten essentially random pages. The permutation depends
//! only on `(keys, salt)`, never on the run seed, so every system under
//! comparison serves the identical placement.
//!
//! A slot is one header word followed by `value_words` data words,
//! rounded up to whole coherence blocks so two keys never share a block
//! (no false sharing between unrelated keys; a put invalidates or
//! updates exactly its own key's blocks).
//!
//! After the slot region, one page per node serves as that node's
//! *staging buffer*: the write-update variant's puts compose the new
//! value there with ordinary stores (the page is homed locally, so they
//! never fault) and then hand the protocol the key in a single user
//! call. The stache variant leaves the staging pages untouched, which
//! keeps final memory images comparable across variants.

use tt_base::addr::{BLOCK_BYTES, PAGE_BYTES, WORD_BYTES};
use tt_base::workload::{Layout, Placement, Region, SHARED_SEGMENT_BASE};
use tt_base::{mix64, NodeId, VAddr};

/// Page mode of KV slot pages. `StacheProtocol` ignores modes it does
/// not know, so the same layout runs unchanged under plain Stache; the
/// update protocol keys its custom handling off this mode.
pub const KV_MODE: u8 = 4;

/// User call: publish the value staged in this node's staging page to
/// the slot of key `arg` (write-update variant only).
pub const KV_PUT_OP: u32 = 0x20;
/// User call: record one finished request's latency. `arg` packs the
/// request's scheduled arrival cycle in bits 63..1 and "was a put" in
/// bit 0; the protocol charges `now - arrival` to the per-class
/// histogram.
pub const KV_STAMP_OP: u32 = 0x21;

/// Salt for the slot permutation; fixed so layouts are run-independent.
const SLOT_SALT: u64 = 0x7455_4b56_u64;

/// Where each key lives: slot addressing, home mapping, staging pages.
#[derive(Clone, Debug)]
pub struct KvLayout {
    /// Number of keys (key identifiers are `0..keys`).
    pub keys: u64,
    /// Data words per value.
    pub value_words: usize,
    /// Machine size (fixes the cyclic home mapping).
    pub nodes: usize,
    /// Bytes per slot (header + value, rounded up to whole blocks).
    slot_bytes: u64,
    /// `slot_of[key]` = slot index after the scatter permutation.
    slot_of: Vec<u32>,
    /// First byte past the (page-rounded) slot region.
    staging_base: u64,
}

impl KvLayout {
    /// Builds the layout for `keys` keys of `value_words`-word values on
    /// a `nodes`-node machine.
    pub fn new(keys: u64, value_words: usize, nodes: usize) -> Self {
        assert!(keys > 0 && keys <= u32::MAX as u64, "key count out of range");
        assert!(value_words >= 1, "a value has at least one word");
        let slot_words = 1 + value_words;
        let slot_bytes = (slot_words * WORD_BYTES).next_multiple_of(BLOCK_BYTES) as u64;
        // Scatter: order keys by a seed-independent hash of the key.
        // Sorting on (hash, key) keeps the permutation total even if two
        // hashes collide.
        let mut order: Vec<u32> = (0..keys as u32).collect();
        order.sort_unstable_by_key(|&k| (mix64(k as u64 ^ SLOT_SALT), k));
        let mut slot_of = vec![0u32; keys as usize];
        for (slot, &key) in order.iter().enumerate() {
            slot_of[key as usize] = slot as u32;
        }
        let slots_bytes = (keys * slot_bytes).next_multiple_of(PAGE_BYTES as u64);
        KvLayout {
            keys,
            value_words,
            nodes,
            slot_bytes,
            slot_of,
            staging_base: SHARED_SEGMENT_BASE + slots_bytes,
        }
    }

    /// Words per slot (header + value).
    pub fn slot_words(&self) -> usize {
        1 + self.value_words
    }

    /// Coherence blocks per slot.
    pub fn slot_blocks(&self) -> usize {
        self.slot_bytes as usize / BLOCK_BYTES
    }

    /// Base address of `key`'s slot (the header word).
    pub fn slot_addr(&self, key: u64) -> VAddr {
        let slot = self.slot_of[key as usize] as u64;
        VAddr::new(SHARED_SEGMENT_BASE + slot * self.slot_bytes)
    }

    /// Address of word `w` of `key`'s slot (word 0 is the header,
    /// words `1..=value_words` the value).
    pub fn word_addr(&self, key: u64, w: usize) -> VAddr {
        debug_assert!(w < self.slot_words());
        self.slot_addr(key).offset((w * WORD_BYTES) as u64)
    }

    /// Home node of `key`'s slot under the cyclic page placement.
    pub fn home_of_key(&self, key: u64) -> NodeId {
        let page = (self.slot_addr(key).raw() - SHARED_SEGMENT_BASE) / PAGE_BYTES as u64;
        NodeId::new((page % self.nodes as u64) as u16)
    }

    /// Base address of `node`'s staging page.
    pub fn staging_addr(&self, node: NodeId) -> VAddr {
        VAddr::new(self.staging_base + node.raw() as u64 * PAGE_BYTES as u64)
    }

    /// True if `addr` falls in a KV slot page (as opposed to staging or
    /// some other region).
    pub fn is_slot_addr(&self, addr: VAddr) -> bool {
        addr.raw() >= SHARED_SEGMENT_BASE && addr.raw() < self.staging_base
    }

    /// The shared-segment layout: slot pages (mode [`KV_MODE`]) followed
    /// by one staging page per node (mode 0), both cyclically homed —
    /// staging page `i` lands on node `i` exactly because the staging
    /// region starts on a fresh page boundary with one page per node.
    pub fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.add(Region {
            base: VAddr::new(SHARED_SEGMENT_BASE),
            bytes: (self.staging_base - SHARED_SEGMENT_BASE) as usize,
            placement: Placement::Cyclic,
            mode: KV_MODE,
        });
        l.add(Region {
            base: VAddr::new(self.staging_base),
            bytes: self.nodes * PAGE_BYTES,
            placement: Placement::Cyclic,
            mode: 0,
        });
        l
    }
}

/// Packs a slot header word: writing node, per-writer sequence number,
/// and value length in words. Readers treat it as an opaque version
/// stamp; the litmus tests predict it exactly.
pub fn header_word(writer: NodeId, seq: u64, value_words: usize) -> u64 {
    (writer.raw() as u64) << 48 | (seq & 0xFFFF_FFFF) << 8 | value_words as u64
}

/// Value word `i` for a slot whose header is `hdr`: a `mix64` stream
/// keyed on (key, header, position). Pure, so workload generation and
/// litmus prediction derive identical bytes without communicating.
pub fn value_word(key: u64, hdr: u64, i: usize) -> u64 {
    mix64(mix64(key ^ SLOT_SALT) ^ hdr.wrapping_add(0x9E37_79B9_7F4A_7C15) ^ (i as u64) << 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_never_share_blocks() {
        let kv = KvLayout::new(100, 3, 4);
        assert_eq!(kv.slot_blocks(), 1);
        let mut bases: Vec<u64> = (0..100).map(|k| kv.slot_addr(k).raw()).collect();
        bases.sort_unstable();
        bases.dedup();
        assert_eq!(bases.len(), 100, "each key has a distinct slot");
        for k in 0..100 {
            assert_eq!(kv.slot_addr(k).block_offset(), 0);
        }
    }

    #[test]
    fn wide_values_span_blocks() {
        let kv = KvLayout::new(10, 7, 2); // 8 words = 64 bytes = 2 blocks
        assert_eq!(kv.slot_blocks(), 2);
        assert_eq!(kv.word_addr(3, 7).raw() - kv.slot_addr(3).raw(), 56);
    }

    #[test]
    fn permutation_scatters_hot_keys() {
        // The ten hottest ranks should not all map to one page.
        let kv = KvLayout::new(4096, 3, 8);
        let mut pages: Vec<u64> = (0..10).map(|k| kv.slot_addr(k).page().0).collect();
        pages.sort_unstable();
        pages.dedup();
        assert!(pages.len() >= 4, "hot keys clustered: {pages:?}");
    }

    #[test]
    fn staging_pages_are_per_node() {
        let kv = KvLayout::new(64, 3, 4);
        let l = kv.layout();
        for n in 0..4u16 {
            let vpn = kv.staging_addr(NodeId::new(n)).page();
            let (home, mode) = l.home_of(vpn, 4).expect("staging page in layout");
            assert_eq!(home, NodeId::new(n));
            assert_eq!(mode, 0);
        }
        for k in [0u64, 17, 63] {
            let (home, mode) = l.home_of(kv.slot_addr(k).page(), 4).expect("slot page");
            assert_eq!(home, kv.home_of_key(k));
            assert_eq!(mode, KV_MODE);
        }
    }

    #[test]
    fn header_roundtrip_fields() {
        let h = header_word(NodeId::new(7), 0x1234, 3);
        assert_eq!(h >> 48, 7);
        assert_eq!(h >> 8 & 0xFFFF_FFFF, 0x1234);
        assert_eq!(h & 0xFF, 3);
    }
}
