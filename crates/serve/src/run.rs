//! One-call runners for KV serving experiments.
//!
//! The machine's protocol factory has a fixed shape —
//! `(NodeId, &Layout, &SystemConfig) -> Box<dyn Protocol>` — but KV
//! protocols additionally need the key layout and the shared latency
//! collector. [`run_kv`] owns that plumbing: it builds the collector and
//! the workload, adapts a KV-aware factory to the machine's shape, runs,
//! and harvests the merged histograms after the machine (and with it
//! every node's `LatSink`) is dropped.
//!
//! The update-variant protocol lives upstack in `tt-apps` (it is an
//! application-level custom protocol, exactly like the paper's EM3D
//! update protocol), so this module only hardwires the stache variant
//! and takes a factory for anything else.

use tt_base::stats::{PdesTelemetry, Report};
use tt_base::workload::{Layout, Workload};
use tt_base::{Cycles, NodeId, SystemConfig};
use tt_stache::Reliable;
use tt_tempest::Protocol;
use tt_typhoon::TyphoonMachine;

use crate::lat::{KvLatency, SharedKvLatency};
use crate::layout::KvLayout;
use crate::protocol::KvStacheProtocol;
use crate::workload::{KvParams, KvWorkload};

/// A protocol factory that also receives the KV layout and collector.
pub type KvProtocolFactory<'a> = &'a dyn Fn(
    NodeId,
    &Layout,
    &SystemConfig,
    &KvLayout,
    SharedKvLatency,
) -> Box<dyn Protocol>;

/// What one KV run produced.
#[derive(Clone, Debug)]
pub struct KvOutcome {
    /// Total simulated cycles.
    pub cycles: Cycles,
    /// Machine + protocol statistics.
    pub report: Report,
    /// Merged request-latency histograms (all nodes).
    pub lat: KvLatency,
    /// Host-side window-driver telemetry; `None` on the sequential path.
    pub pdes: Option<PdesTelemetry>,
}

impl KvOutcome {
    /// Requests served per thousand simulated cycles (all nodes).
    pub fn requests_per_kcycle(&self) -> f64 {
        self.lat.requests() as f64 * 1000.0 / self.cycles.raw() as f64
    }
}

/// Runs the workload of `params` on a Typhoon machine whose protocols
/// come from `factory`. `cfg.nodes` must equal `params.nodes`.
///
/// When `cfg.fault` carries a lossy-network schedule, every node's
/// protocol runs behind the [`Reliable`] transport (seq/ack/retransmit,
/// duplicate suppression), so the server survives drops, duplicates,
/// detected corruption, and transient partitions; the retry traffic
/// shows up in the report as `rel.*` counters. With `cfg.fault = None`
/// nothing is wrapped and the run is bit-identical to builds before the
/// fault machinery existed.
pub fn run_kv(cfg: &SystemConfig, params: &KvParams, factory: KvProtocolFactory) -> KvOutcome {
    assert_eq!(cfg.nodes, params.nodes, "machine and workload sizes differ");
    let shared: SharedKvLatency = Default::default();
    let kv = params.kv_layout();
    let workload: Box<dyn Workload> = Box::new(KvWorkload::new(params.clone()));
    let adapt = |node: NodeId, layout: &Layout, cfg: &SystemConfig| {
        let inner = factory(node, layout, cfg, &kv, shared.clone());
        if cfg.fault.is_some() {
            Box::new(Reliable::new(inner)) as Box<dyn Protocol>
        } else {
            inner
        }
    };
    let mut machine = TyphoonMachine::new(cfg.clone(), workload, &adapt);
    let result = machine.run();
    drop(machine); // every node's LatSink folds into `shared` here
    let lat = std::mem::take(&mut *shared.lock().expect("latency collector poisoned"));
    KvOutcome { cycles: result.cycles, report: result.report, lat, pdes: result.pdes }
}

/// [`run_kv`] with the baseline stache-variant protocol.
pub fn run_kv_stache(cfg: &SystemConfig, params: &KvParams) -> KvOutcome {
    run_kv(cfg, params, &|node, layout, cfg, _kv, shared| {
        Box::new(KvStacheProtocol::new(node, layout, cfg, shared))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::KvVariant;

    #[test]
    fn stache_serving_runs_and_counts_every_request() {
        let params = KvParams::small(KvVariant::Stache);
        let cfg = SystemConfig::test_config(params.nodes);
        let out = run_kv_stache(&cfg, &params);
        assert_eq!(
            out.lat.requests(),
            params.requests_per_node * params.nodes as u64,
            "every request must be stamped exactly once"
        );
        assert_eq!(
            out.report.get("kv.gets").unwrap() as u64 + out.report.get("kv.puts").unwrap() as u64,
            out.lat.requests(),
            "report counters agree with the merged histograms"
        );
        assert!(out.lat.get.quantile(0.99) >= out.lat.get.quantile(0.50));
        assert!(out.cycles.raw() > 0);
    }

    #[test]
    fn stache_serving_is_sim_thread_invariant() {
        let params = KvParams::small(KvVariant::Stache);
        let seq = run_kv_stache(&SystemConfig::test_config(params.nodes), &params);
        let mut cfg = SystemConfig::test_config(params.nodes);
        cfg.sim_threads = 2;
        let par = run_kv_stache(&cfg, &params);
        assert_eq!(seq.cycles, par.cycles);
        assert_eq!(seq.report, par.report);
        assert_eq!(seq.lat, par.lat, "histograms must merge order-independently");
    }

    #[test]
    fn lossy_serving_completes_and_is_sim_thread_invariant() {
        let params = KvParams::small(KvVariant::Stache);
        let mut cfg = SystemConfig::test_config(params.nodes);
        cfg.fault = Some(tt_base::FaultSpec::uniform(7, 30));
        let seq = run_kv_stache(&cfg, &params);
        assert_eq!(
            seq.lat.requests(),
            params.requests_per_node * params.nodes as u64,
            "every request must complete despite the lossy network"
        );
        assert!(
            seq.report.get("rel.sent").unwrap_or(0.0) > 0.0,
            "the reliable transport must be in the path"
        );
        let mut parcfg = cfg.clone();
        parcfg.sim_threads = 2;
        let par = run_kv_stache(&parcfg, &params);
        assert_eq!(seq.cycles, par.cycles, "fault schedule must replay across threads");
        assert_eq!(seq.report, par.report);
        assert_eq!(seq.lat, par.lat);
    }
}
