//! `tt-serve` — distributed key-value serving on the Tempest interface.
//!
//! The paper's claim is that user-level shared memory lets *applications*
//! choose their coherence policy. This crate stages that argument on a
//! workload the original authors could not have benchmarked but whose
//! access pattern they anticipated exactly: a distributed KV cache under
//! a skewed (Zipfian) request mix.
//!
//! - [`layout`] — keys hashed into the shared segment: one slot per key
//!   (version/length header word + fixed-size value), scattered across
//!   cyclically-homed pages so hot keys spread over the machine, plus a
//!   per-node staging page for the update variant's puts.
//! - [`workload`] — a deterministic *open-loop* client population:
//!   Poisson arrivals realized with `Op::WaitUntil`, Zipf-distributed
//!   keys, read-mostly (95/5) and write-heavy (50/50) mixes, all derived
//!   from per-node forks of one seed.
//! - [`lat`] — per-request latency in simulated cycles, recorded by the
//!   protocol at a stamp user-call and merged across nodes into
//!   order-independent histograms (p50/p99/p999 come out bit-identical
//!   however many simulator threads ran).
//! - [`protocol`] — the baseline server: Stache's transparent
//!   invalidation coherence plus the stamp call.
//! - [`run`] — one-call runners that wire workload, machine, protocol,
//!   and collector together.
//!
//! The specialized hot-key *write-update* protocol — the payoff of the
//! comparison — is `tt_apps::kv_update::KvUpdateProtocol`, an
//! application-level custom protocol in the same sense as the paper's
//! EM3D update protocol. `tt-check`'s KV litmus family proves the two
//! variants observationally equivalent; `kv_bench` measures the gap.

pub mod lat;
pub mod layout;
pub mod protocol;
pub mod run;
pub mod workload;

pub use lat::{KvLatency, LatSink, SharedKvLatency};
pub use layout::{header_word, value_word, KvLayout, KV_MODE, KV_PUT_OP, KV_STAMP_OP};
pub use protocol::KvStacheProtocol;
pub use run::{run_kv, run_kv_stache, KvOutcome, KvProtocolFactory};
pub use workload::{KvParams, KvVariant, KvWorkload};
