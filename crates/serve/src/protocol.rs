//! The baseline server protocol: Stache plus the latency stamp.
//!
//! Gets and puts are ordinary tag-checked loads and stores; Stache's
//! transparent invalidation-based coherence does all the work. The only
//! KV-specific behavior is the [`KV_STAMP_OP`] user call that records a
//! finished request's latency — which is exactly the paper's pitch:
//! start from transparent shared memory, then specialize (the
//! write-update variant in `tt-apps::kv_update`) only where the access
//! pattern rewards it.

use tt_base::stats::Report;
use tt_base::workload::Layout;
use tt_base::{NodeId, SystemConfig};
use tt_stache::StacheProtocol;
use tt_tempest::{BlockFault, Message, PageFault, Protocol, TempestCtx, ThreadId, UserCall};

use crate::lat::{LatSink, SharedKvLatency};
use crate::layout::{KV_PUT_OP, KV_STAMP_OP};

/// NP instructions to process a latency stamp.
const STAMP_INSTR: u64 = 4;

/// Stache with KV latency stamping.
pub struct KvStacheProtocol {
    stache: StacheProtocol,
    sink: LatSink,
}

impl KvStacheProtocol {
    /// One node's protocol; latencies fold into `shared` at teardown.
    pub fn new(
        node: NodeId,
        layout: &Layout,
        cfg: &SystemConfig,
        shared: SharedKvLatency,
    ) -> Self {
        KvStacheProtocol {
            stache: StacheProtocol::new(node, layout, cfg),
            sink: LatSink::new(shared),
        }
    }
}

impl Protocol for KvStacheProtocol {
    fn init(&mut self, ctx: &mut dyn TempestCtx) {
        self.stache.init(ctx);
    }

    fn on_page_fault(&mut self, ctx: &mut dyn TempestCtx, fault: PageFault) {
        self.stache.on_page_fault(ctx, fault);
    }

    fn on_block_fault(&mut self, ctx: &mut dyn TempestCtx, fault: BlockFault) {
        self.stache.on_block_fault(ctx, fault);
    }

    fn on_message(&mut self, ctx: &mut dyn TempestCtx, msg: Message) {
        self.stache.on_message(ctx, msg);
    }

    fn on_user_call(&mut self, ctx: &mut dyn TempestCtx, thread: ThreadId, call: UserCall) {
        match call.op {
            KV_STAMP_OP => {
                ctx.charge(STAMP_INSTR);
                self.sink.record(ctx.now(), call.arg);
                ctx.resume(thread);
            }
            KV_PUT_OP => panic!(
                "KV_PUT_OP under the stache variant: the workload's variant \
                 does not match the protocol"
            ),
            _ => ctx.resume(thread),
        }
    }

    fn name(&self) -> &'static str {
        "kv-stache"
    }

    fn report(&self, report: &mut Report) {
        self.stache.report(report);
        report.push_count("kv.gets", self.sink.local.get.total());
        report.push_count("kv.puts", self.sink.local.put.total());
    }

    fn inspect_directory(&self, out: &mut Vec<tt_tempest::BlockDirSnapshot>) {
        self.stache.inspect_directory(out);
    }
}
