//! A fast, deterministic hasher for the simulator's hot lookup tables.
//!
//! The default `std` hasher (SipHash) showed up prominently in profiles of
//! full-machine runs: page-table translations, directory lookups, and the
//! DirNNB value store all hash a `u64`-sized key on nearly every simulated
//! memory operation. This module provides the well-known Fx multiply-mix
//! hash (as used by rustc) — a couple of nanoseconds per key instead of
//! tens — with no external dependency.
//!
//! **Use only for maps that are never iterated on a semantics-bearing
//! path.** Swapping the hasher changes a `HashMap`'s internal bucket
//! order; any code that iterates one of these maps and schedules events
//! or allocates resources in iteration order would change simulation
//! results. Lookup/insert/remove-only maps are bit-exact under any
//! hasher. (It is also not DoS-resistant, which a simulator does not
//! need.)

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx string/integer hasher: `hash = (rotl(hash, 5) ^ word) * SEED`
/// per 8-byte word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_keys() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn byte_tail_is_hashed() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"abcdefghijk");
        b.write(b"abcdefghijj");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_round_trip() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 4096, i as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 4096)), Some(&(i as u32)));
        }
        assert_eq!(m.len(), 1000);
    }
}
