//! A minimal plain-text table formatter for the bench harness.
//!
//! The harness prints the paper's tables and figure series as aligned text
//! so `cargo run -p tt-bench --bin figure3` output can be compared to the
//! paper side by side.

use std::fmt;

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use tt_base::table::Table;
/// let mut t = Table::new(vec!["app", "ratio"]);
/// t.row(vec!["em3d".to_string(), "0.97".to_string()]);
/// let s = t.to_string();
/// assert!(s.contains("em3d"));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows
    /// extend the column count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let all_rows = std::iter::once(&self.headers).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i + 1 == widths.len() {
                    writeln!(f, "{cell}")?;
                } else {
                    write!(f, "{cell:w$}  ")?;
                }
            }
            Ok(())
        };
        print_row(f, &self.headers)?;
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(rule))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let mut t = Table::new(vec!["name", "v"]);
        t.row(vec!["longer-name".into(), "1".into()]);
        t.row(vec!["x".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Both value cells start at the same column.
        let col = lines[2].find('1').unwrap();
        assert_eq!(lines[3].find("22").unwrap(), col);
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["x".into(), "extra".into()]);
        assert!(t.to_string().contains("extra"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
