//! Simulated time, measured in processor cycles.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or span of) simulated time, in CPU clock cycles.
///
/// All of the paper's latency parameters (Table 2) are expressed in cycles
/// of the primary processor's clock; the network-interface processor is
/// clocked at the same rate.
///
/// # Example
///
/// ```
/// use tt_base::Cycles;
/// let start = Cycles::new(100);
/// let end = start + Cycles::new(29); // a local cache miss
/// assert_eq!(end - start, Cycles::new(29));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Time zero.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// The raw cycle count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Saturating subtraction; useful for "time remaining" computations.
    #[inline]
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// `self` as a floating-point number of cycles (for ratio reporting).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl From<u64> for Cycles {
    fn from(n: u64) -> Self {
        Cycles(n)
    }
}

impl fmt::Debug for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let mut t = Cycles::new(5);
        t += Cycles::new(10);
        assert_eq!(t, Cycles::new(15));
        t -= Cycles::new(1);
        assert_eq!(t.raw(), 14);
        assert_eq!(Cycles::new(3).saturating_sub(Cycles::new(9)), Cycles::ZERO);
    }

    #[test]
    fn sum() {
        let total: Cycles = (1..=4).map(Cycles::new).sum();
        assert_eq!(total, Cycles::new(10));
    }

    #[test]
    fn ordering_matches_raw() {
        assert!(Cycles::new(1) < Cycles::new(2));
        assert_eq!(format!("{:?}", Cycles::new(7)), "7cy");
    }
}
