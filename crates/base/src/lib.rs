//! Common foundation types for the Tempest/Typhoon reproduction.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! - [`addr`] — virtual/physical addresses and the memory geometry of the
//!   simulated machine (32-byte blocks, 4-kilobyte pages, 8-byte words);
//! - [`cycles`] — the simulated time unit;
//! - [`ids`] — node and thread identifiers;
//! - [`config`] — the full simulation parameter set of Table 2 of the paper;
//! - [`rng`] — a small deterministic random-number generator so that every
//!   simulation run is bit-reproducible from its seed;
//! - [`stats`] — counters and histograms collected by the machines;
//! - [`table`] — a plain-text table formatter used by the bench harness.
//!
//! # Example
//!
//! ```
//! use tt_base::addr::{VAddr, BLOCK_BYTES};
//! use tt_base::config::SystemConfig;
//!
//! let a = VAddr::new(0x1000_0040);
//! assert_eq!(a.block_offset(), 0x40 % BLOCK_BYTES as u64);
//! let cfg = SystemConfig::default();
//! assert_eq!(cfg.nodes, 32);
//! ```

pub mod addr;
pub mod alloc_stats;
pub mod config;
pub mod cycles;
pub mod fxhash;
pub mod ids;
pub mod rng;
pub mod stats;
pub mod table;
pub mod workload;

pub use addr::{PAddr, Ppn, VAddr, Vpn};
pub use config::{FaultSpec, SystemConfig, Topology, WindowPolicy};
pub use cycles::Cycles;
pub use fxhash::{FxHashMap, FxHashSet};
pub use ids::NodeId;
pub use rng::{mix64, DetRng, Zipf};
