//! Simulation parameters — a direct transcription of Table 2 of the paper.
//!
//! Every latency the machines charge comes from this module, so a single
//! [`SystemConfig`] value fully determines a simulation (together with the
//! workload). The `Default` impl reproduces Table 2; the bench harness
//! prints the live defaults so "Table 2" is regenerated from code rather
//! than copied prose.

use crate::cycles::Cycles;
use crate::rng::DetRng;

/// Configuration of the primary CPU's cache and TLB (Table 2, "Common").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CpuConfig {
    /// Data cache capacity in bytes (Figure 3 sweeps 4 KB – 256 KB).
    pub cache_bytes: usize,
    /// Data cache associativity (paper: 4-way, random replacement).
    pub cache_assoc: usize,
    /// TLB entries (paper: 64-entry, fully associative, FIFO replacement).
    pub tlb_entries: usize,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            cache_bytes: 64 * 1024,
            cache_assoc: 4,
            tlb_entries: 64,
        }
    }
}

/// Latencies shared by both target machines (Table 2, "Common").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimingConfig {
    /// Cycles to satisfy a cache miss from local memory.
    pub local_miss: Cycles,
    /// Cycles charged for a writeback (paper assumes a perfect write buffer).
    pub local_writeback: Cycles,
    /// Cycles to service a TLB miss.
    pub tlb_miss: Cycles,
    /// One-way network latency between any two nodes.
    pub network_latency: Cycles,
    /// Cycles each packet occupies its sender's injection port. The
    /// paper models no contention (0); nonzero values serialize senders
    /// for the contention-sensitivity ablation.
    pub network_occupancy: Cycles,
    /// Latency of the hardware barrier once the last processor arrives.
    pub barrier_latency: Cycles,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            local_miss: Cycles::new(29),
            local_writeback: Cycles::ZERO,
            tlb_miss: Cycles::new(25),
            network_latency: Cycles::new(11),
            network_occupancy: Cycles::ZERO,
            barrier_latency: Cycles::new(11),
        }
    }
}

/// How the DirNNB machine assigns pages to home nodes.
///
/// The paper's DirNNB allocates pages without application knowledge;
/// Section 6 notes that its results "can be significantly improved using
/// careful data placement" (first-touch, migration) — at extra hardware
/// or programmer cost — whereas Stache gets locality automatically.
/// `RoundRobin` reproduces the paper's baseline; `Owner` models a
/// perfectly placed (first-touch-quality) DirNNB using the workload's
/// owners-compute layout, used for the Figure 4 comparison and the
/// placement ablation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DirPlacement {
    /// Pages homed round-robin by virtual page number (paper baseline).
    #[default]
    RoundRobin,
    /// Pages homed on the workload's owning node (ideal placement).
    Owner,
}

/// Cost model for the all-hardware DirNNB machine (Table 2, "DirNNB Only").
///
/// A remote cache miss costs
/// `remote_miss_request + replacement? + network/directory + remote_miss_finish`;
/// a directory operation costs
/// `dir_op_base + dir_op_block_recv? + dir_op_per_msg * msgs + dir_op_block_send?`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirnnbCosts {
    /// Page-to-home assignment policy.
    pub placement: DirPlacement,
    /// Request-side cycles of a remote miss before the network (paper: 23).
    pub remote_miss_request: Cycles,
    /// Completion-side cycles of a remote miss after the response arrives
    /// (paper: 34).
    pub remote_miss_finish: Cycles,
    /// Extra cycles when the miss must replace a shared block (paper: 5).
    pub replace_shared: Cycles,
    /// Extra cycles when the miss must replace an exclusive block (paper: 16).
    pub replace_exclusive: Cycles,
    /// Cycles for a remote cache to process an invalidation (paper: 8,
    /// plus a replacement charge).
    pub remote_invalidate: Cycles,
    /// Base cycles of every directory operation (paper: 16).
    pub dir_op_base: Cycles,
    /// Extra cycles if the directory operation received a data block (paper: 11).
    pub dir_op_block_recv: Cycles,
    /// Extra cycles per message the directory sends (paper: 5).
    pub dir_op_per_msg: Cycles,
    /// Extra cycles if the directory operation sends a data block (paper: 11).
    pub dir_op_block_send: Cycles,
}

impl Default for DirnnbCosts {
    fn default() -> Self {
        DirnnbCosts {
            placement: DirPlacement::RoundRobin,
            remote_miss_request: Cycles::new(23),
            remote_miss_finish: Cycles::new(34),
            replace_shared: Cycles::new(5),
            replace_exclusive: Cycles::new(16),
            remote_invalidate: Cycles::new(8),
            dir_op_base: Cycles::new(16),
            dir_op_block_recv: Cycles::new(11),
            dir_op_per_msg: Cycles::new(5),
            dir_op_block_send: Cycles::new(11),
        }
    }
}

/// Window-advance policy of the conservative parallel simulator
/// (`tt_sim::pdes`). Purely a simulator-speed knob: cycle tables are
/// bit-identical under either policy, which the equivalence tests and
/// the `tt-check` fuzzer pin.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WindowPolicy {
    /// Every shard advances in lockstep `min(lookahead, release_delay)`
    /// quanta from the global minimum head (the WWT baseline).
    #[default]
    Fixed,
    /// Per-shard window ends: each shard runs to the earliest time a
    /// foreign event or barrier release could still reach it, skipping
    /// the rendezvous the fixed quantum would have spent in between.
    Adaptive,
}

impl WindowPolicy {
    /// CLI / provenance spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            WindowPolicy::Fixed => "fixed",
            WindowPolicy::Adaptive => "adaptive",
        }
    }
}

impl std::str::FromStr for WindowPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fixed" => Ok(WindowPolicy::Fixed),
            "adaptive" => Ok(WindowPolicy::Adaptive),
            other => Err(format!("unknown window policy {other:?} (fixed|adaptive)")),
        }
    }
}

impl std::fmt::Display for WindowPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Interconnect topology of the simulated machine (DESIGN.md §11).
///
/// The paper models an ideal constant-latency network; big-machine mode
/// replaces it with routed topologies whose links have occupancy queues,
/// so hot-home saturation is priced per link. Routes and queuing are pure
/// functions of `(topology, src, dst, per-source send history, inject
/// time)`, so latencies are bit-identical at every
/// `sim_threads`/`sim_shards`/`jobs`/`window_policy` setting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Topology {
    /// Constant-latency pipe (`timing.network_latency` between any pair) —
    /// the paper's model and the byte-identical default.
    #[default]
    Ideal,
    /// 2D mesh, dimension-order (X then Y) routing. `width` 0 derives
    /// `ceil(sqrt(nodes))` at install time.
    Mesh2D {
        /// Nodes per row; node `i` sits at `(i % width, i / width)`.
        width: usize,
    },
    /// Fat tree over the node leaves: route climbs to the lowest common
    /// ancestor and back down (`2h` hops for radix-`arity` subtrees).
    /// `arity` 0 derives 4.
    FatTree {
        /// Branching factor of the tree (≥ 2 after derivation).
        arity: usize,
    },
}

impl Topology {
    /// CLI / provenance spelling: `ideal`, `mesh[:width]`, `fat-tree[:arity]`.
    pub fn as_string(self) -> String {
        match self {
            Topology::Ideal => "ideal".to_string(),
            Topology::Mesh2D { width: 0 } => "mesh".to_string(),
            Topology::Mesh2D { width } => format!("mesh:{width}"),
            Topology::FatTree { arity: 0 } => "fat-tree".to_string(),
            Topology::FatTree { arity } => format!("fat-tree:{arity}"),
        }
    }
}

impl std::str::FromStr for Topology {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (name, param) = match s.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (s, None),
        };
        let param = match param {
            Some(p) => Some(
                p.parse::<usize>()
                    .map_err(|_| format!("bad topology parameter {p:?} in {s:?}"))?,
            ),
            None => None,
        };
        match name {
            "ideal" if param.is_none() => Ok(Topology::Ideal),
            "mesh" => Ok(Topology::Mesh2D { width: param.unwrap_or(0) }),
            "fat-tree" | "fattree" => Ok(Topology::FatTree { arity: param.unwrap_or(0) }),
            _ => Err(format!(
                "unknown topology {s:?} (ideal|mesh[:width]|fat-tree[:arity])"
            )),
        }
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.as_string())
    }
}

/// Where protocol handlers execute.
///
/// The paper's Section 2 notes Tempest "can also be implemented in
/// software for existing machines" (a native CM-5 version — the design
/// that became Blizzard). [`NpMode::OnCpu`] models that: handlers
/// interrupt the primary processor instead of running on a dedicated NP,
/// and fine-grain fault detection pays a software (trap-synthesis) cost
/// instead of the bus monitor's few cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NpMode {
    /// Handlers run on Typhoon's dedicated network interface processor.
    #[default]
    Dedicated,
    /// Handlers interrupt the primary CPU (software Tempest).
    OnCpu,
}

/// Configuration of Typhoon's network interface processor
/// (Table 2, "Typhoon Only", plus Section 6's measured handler path lengths).
#[derive(Clone, Debug, PartialEq)]
pub struct TyphoonConfig {
    /// NP TLB entries (64-entry, fully associative, FIFO).
    pub np_tlb_entries: usize,
    /// Reverse-TLB entries (64-entry, fully associative, FIFO).
    pub rtlb_entries: usize,
    /// Cycles to service an NP TLB or RTLB miss (paper: 25).
    pub np_tlb_miss: Cycles,
    /// NP data cache capacity in bytes (paper: 16 KB, 2-way).
    pub np_dcache_bytes: usize,
    /// NP data cache associativity.
    pub np_dcache_assoc: usize,
    /// Cycles for the hardware-assisted dispatch to start a handler.
    pub dispatch: Cycles,
    /// Cycles for the bus monitor to detect a block access fault, nack the
    /// transaction, and deposit a BAF-buffer entry.
    pub fault_detect: Cycles,
    /// Cycles a handler's 32-byte block transfer occupies the NP (the
    /// block transfer buffer overlaps the MBus transfer with execution).
    pub np_block_xfer: Cycles,
    /// Cycles the NP spends injecting or absorbing one bulk-transfer
    /// packet (Section 5.2's data-transfer thread).
    pub bulk_packet_cycles: Cycles,
    /// Instructions executed by the Stache miss handler that sends a block
    /// request (paper Section 6: 14 in the best case).
    pub stache_request_instr: u64,
    /// Instructions executed by the home-node handler that services a
    /// request and responds with data (paper: 30).
    pub stache_home_instr: u64,
    /// Instructions executed by the reply handler that installs arriving
    /// data and resumes the faulting thread (paper: 20).
    pub stache_reply_instr: u64,
    /// Instructions for the user-level page fault handler that allocates
    /// and maps a new stache page (not on the critical miss path).
    pub stache_page_fault_instr: u64,
    /// Multiplier applied to all Stache handler path lengths; used by the
    /// handler-cost ablation (DESIGN.md §5.2). 1.0 reproduces the paper.
    pub handler_cost_scale: f64,
    /// Where handlers execute (dedicated NP vs. the primary CPU).
    pub np_mode: NpMode,
    /// In [`NpMode::OnCpu`], cycles to enter/exit the handler interrupt
    /// (no hardware-assisted dispatch).
    pub software_dispatch: Cycles,
    /// In [`NpMode::OnCpu`], cycles to detect a block access fault in
    /// software (synthesized from ECC tricks or page protection, as the
    /// CM-5 port would; far costlier than the bus monitor).
    pub software_fault_detect: Cycles,
}

impl Default for TyphoonConfig {
    fn default() -> Self {
        TyphoonConfig {
            np_tlb_entries: 64,
            rtlb_entries: 64,
            np_tlb_miss: Cycles::new(25),
            np_dcache_bytes: 16 * 1024,
            np_dcache_assoc: 2,
            dispatch: Cycles::new(4),
            fault_detect: Cycles::new(5),
            np_block_xfer: Cycles::new(12),
            bulk_packet_cycles: Cycles::new(8),
            stache_request_instr: 14,
            stache_home_instr: 30,
            stache_reply_instr: 20,
            stache_page_fault_instr: 250,
            handler_cost_scale: 1.0,
            np_mode: NpMode::Dedicated,
            software_dispatch: Cycles::new(100),
            software_fault_detect: Cycles::new(250),
        }
    }
}

/// A deterministic lossy-network fault schedule (DESIGN.md §10).
///
/// The paper assumes a reliable interconnect; this knob drops, duplicates,
/// bit-corrupts, and transiently partitions per-link traffic so the
/// protocols' retry/idempotence machinery can be exercised. Every fault
/// decision is a pure hash of `(seed, ordered link, per-link packet
/// index)` — or, for partitions, of `(seed, link, epoch run)` — so a
/// fault schedule replays bit-exactly at any `sim_threads`/`sim_shards`
/// setting, exactly like network jitter.
///
/// Partitions are bounded by construction: time is cut into
/// `partition_epoch`-cycle epochs grouped into runs of `partition_run`
/// epochs, and a partitioned run blacks out at most `partition_run - 1`
/// epochs from its start. The last epoch of every run is always clear,
/// so a bounded retry/backoff schedule is guaranteed to get a packet
/// through eventually (unless `drop_permille` is 1000, the
/// total-blackout setting used to test graceful degradation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Seed all fault decisions derive from.
    pub seed: u64,
    /// Per-packet drop probability in permille (1000 = drop everything).
    pub drop_permille: u32,
    /// Per-packet duplication probability in permille.
    pub dup_permille: u32,
    /// Per-packet-copy corruption probability in permille. Corruption is
    /// always detected by the wire checksum, so a corrupted copy behaves
    /// like a detected drop (and is counted separately).
    pub corrupt_permille: u32,
    /// Probability in permille that a given (link, run) is partitioned.
    pub partition_permille: u32,
    /// Cycles per partition epoch (0 disables partitions entirely).
    pub partition_epoch: u64,
    /// Epochs per partition decision run (must be ≥ 2 when partitions
    /// are enabled; a partition lasts at most `partition_run - 1` epochs).
    pub partition_run: u64,
}

impl FaultSpec {
    /// Derives a randomized-but-bounded fault mix from one seed: the
    /// rates stay low enough that a 24-retry capped-backoff sender
    /// succeeds with overwhelming probability, so clean fuzzing sweeps
    /// stay clean.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = DetRng::new(seed).fork(11);
        FaultSpec {
            seed,
            drop_permille: rng.below(151) as u32,
            dup_permille: rng.below(151) as u32,
            corrupt_permille: rng.below(81) as u32,
            partition_permille: if rng.chance(0.5) { 100 + rng.below(201) as u32 } else { 0 },
            partition_epoch: 1024 + rng.below(2048),
            partition_run: 4,
        }
    }

    /// A flat loss profile for benchmark sweeps: drop and duplicate at
    /// `permille`, corrupt at half that, no partitions.
    pub fn uniform(seed: u64, permille: u32) -> Self {
        FaultSpec {
            seed,
            drop_permille: permille,
            dup_permille: permille,
            corrupt_permille: permille / 2,
            partition_permille: 0,
            partition_epoch: 0,
            partition_run: 4,
        }
    }
}

/// The complete configuration of a simulated target system.
///
/// # Example
///
/// ```
/// use tt_base::SystemConfig;
/// let mut cfg = SystemConfig::default();
/// cfg.cpu.cache_bytes = 4 * 1024; // the paper's smallest cache point
/// assert_eq!(cfg.timing.local_miss.raw(), 29);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Number of processing nodes (paper: 32).
    pub nodes: usize,
    /// Seed for all simulation randomness; equal seeds give bit-identical runs.
    pub seed: u64,
    /// When true, every simulated read is checked against the workload's
    /// natively computed value — an end-to-end coherence check.
    pub verify_values: bool,
    /// When true (the default), the machines use direct execution: a
    /// node's CPU keeps running guaranteed-local work inline past the
    /// scheduling quantum whenever the event queue proves nothing can
    /// interact with it (see `EventQueue::safe_horizon`). Purely a
    /// simulator-speed knob — reported cycles and statistics are
    /// identical either way; equivalence tests pin that by toggling it.
    pub direct_execution: bool,
    /// OS threads the simulator may spread one run across (conservative
    /// parallel discrete-event simulation, `tt_sim::pdes`). Purely a
    /// simulator-speed knob: reported cycles and statistics are
    /// bit-identical at every value, which the equivalence tests pin.
    /// `1` (the default) is the plain sequential event loop.
    pub sim_threads: usize,
    /// Event-queue shards for the parallel simulator. `0` (the default)
    /// derives the count from `sim_threads`; an explicit value may
    /// exceed `sim_threads` — workers then multiplex several shards per
    /// OS thread, which keeps windows shard-local on topology-aware
    /// shard maps even with few cores. Clamped to `nodes`. Purely a
    /// simulator-speed knob; cycle tables are bit-identical at every
    /// value.
    pub sim_shards: usize,
    /// How the parallel simulator advances its windows (fixed quanta vs
    /// adaptive per-shard bounds). Ignored by the sequential path.
    pub window_policy: WindowPolicy,
    /// Interconnect topology. [`Topology::Ideal`] (the default) is the
    /// paper's constant-latency pipe; mesh / fat-tree route packets over
    /// per-link occupancy queues (DESIGN.md §11). Unlike the simulator
    /// knobs above this changes reported cycles — by design.
    pub topology: Topology,
    /// Deterministic lossy-network fault schedule; `None` (the default)
    /// is the paper's reliable interconnect. Machines that model the
    /// network install this as a `tt_net::FaultPlan`; protocol stacks
    /// must then be wrapped in a reliable transport (see
    /// `tt_stache::Reliable`) to survive it.
    pub fault: Option<FaultSpec>,
    /// Bytes of local memory each node may devote to stache pages.
    /// `usize::MAX` (the default) means "as much as needed"; benchmarks of
    /// page replacement set a finite budget.
    pub stache_capacity_bytes: usize,
    /// Primary CPU cache/TLB configuration.
    pub cpu: CpuConfig,
    /// Common latencies.
    pub timing: TimingConfig,
    /// DirNNB-only cost model.
    pub dirnnb: DirnnbCosts,
    /// Typhoon-only configuration.
    pub typhoon: TyphoonConfig,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            nodes: 32,
            seed: 0x7EA9_0457,
            verify_values: false,
            direct_execution: true,
            sim_threads: 1,
            sim_shards: 0,
            window_policy: WindowPolicy::Fixed,
            topology: Topology::Ideal,
            fault: None,
            stache_capacity_bytes: usize::MAX,
            cpu: CpuConfig::default(),
            timing: TimingConfig::default(),
            dirnnb: DirnnbCosts::default(),
            typhoon: TyphoonConfig::default(),
        }
    }
}

impl TyphoonConfig {
    /// Dispatch cost for the configured handler placement.
    pub fn effective_dispatch(&self) -> Cycles {
        match self.np_mode {
            NpMode::Dedicated => self.dispatch,
            NpMode::OnCpu => self.software_dispatch,
        }
    }

    /// Fault-detection cost for the configured handler placement.
    pub fn effective_fault_detect(&self) -> Cycles {
        match self.np_mode {
            NpMode::Dedicated => self.fault_detect,
            NpMode::OnCpu => self.software_fault_detect,
        }
    }
}

impl SystemConfig {
    /// A small configuration convenient for tests: `nodes` nodes, 4 KB
    /// caches, value verification on.
    #[allow(clippy::field_reassign_with_default)] // mutate-after-default is the config idiom
    pub fn test_config(nodes: usize) -> Self {
        let mut cfg = SystemConfig::default();
        cfg.nodes = nodes;
        cfg.cpu.cache_bytes = 4 * 1024;
        cfg.verify_values = true;
        cfg
    }

    /// Effective instruction count for a Stache handler after applying the
    /// ablation scale factor, as whole cycles.
    pub fn scaled_handler_instr(&self, base: u64) -> u64 {
        ((base as f64) * self.typhoon.handler_cost_scale).round() as u64
    }

    /// `(shards, threads)` the parallel simulator should use: shard
    /// count from `sim_shards` (or `sim_threads` when 0), clamped to
    /// `nodes`; thread count never exceeding the shard count. `(1, 1)`
    /// means the plain sequential event loop.
    pub fn pdes_shape(&self) -> (usize, usize) {
        let shards = if self.sim_shards > 0 {
            self.sim_shards
        } else {
            self.sim_threads
        }
        .clamp(1, self.nodes.max(1));
        let threads = self.sim_threads.clamp(1, shards);
        (shards, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_2() {
        let c = SystemConfig::default();
        assert_eq!(c.nodes, 32);
        assert_eq!(c.cpu.cache_assoc, 4);
        assert_eq!(c.cpu.tlb_entries, 64);
        assert_eq!(c.timing.local_miss.raw(), 29);
        assert_eq!(c.timing.local_writeback.raw(), 0);
        assert_eq!(c.timing.tlb_miss.raw(), 25);
        assert_eq!(c.timing.network_latency.raw(), 11);
        assert_eq!(c.timing.barrier_latency.raw(), 11);
        assert_eq!(c.dirnnb.remote_miss_request.raw(), 23);
        assert_eq!(c.dirnnb.remote_miss_finish.raw(), 34);
        assert_eq!(c.dirnnb.replace_shared.raw(), 5);
        assert_eq!(c.dirnnb.replace_exclusive.raw(), 16);
        assert_eq!(c.dirnnb.remote_invalidate.raw(), 8);
        assert_eq!(c.dirnnb.dir_op_base.raw(), 16);
        assert_eq!(c.typhoon.np_dcache_bytes, 16 * 1024);
        assert_eq!(c.typhoon.np_dcache_assoc, 2);
        assert_eq!(c.typhoon.stache_request_instr, 14);
        assert_eq!(c.typhoon.stache_home_instr, 30);
        assert_eq!(c.typhoon.stache_reply_instr, 20);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn pdes_shape_derives_shards_and_threads() {
        let mut c = SystemConfig::default();
        assert_eq!(c.pdes_shape(), (1, 1), "defaults are sequential");
        c.sim_threads = 3;
        assert_eq!(c.pdes_shape(), (3, 3));
        c.sim_shards = 8;
        assert_eq!(c.pdes_shape(), (8, 3), "threads multiplex extra shards");
        c.sim_shards = 64;
        assert_eq!(c.pdes_shape(), (32, 3), "shards clamp to nodes");
        c.sim_threads = 1;
        assert_eq!(c.pdes_shape(), (32, 1), "explicit shards allow 1 thread");
        c.sim_shards = 0;
        assert_eq!(c.pdes_shape(), (1, 1));
    }

    #[test]
    fn window_policy_parses_round_trip() {
        for p in [WindowPolicy::Fixed, WindowPolicy::Adaptive] {
            assert_eq!(p.as_str().parse::<WindowPolicy>(), Ok(p));
        }
        assert!("eager".parse::<WindowPolicy>().is_err());
        assert_eq!(WindowPolicy::default(), WindowPolicy::Fixed);
    }

    #[test]
    fn topology_parses_round_trip() {
        for t in [
            Topology::Ideal,
            Topology::Mesh2D { width: 0 },
            Topology::Mesh2D { width: 8 },
            Topology::FatTree { arity: 0 },
            Topology::FatTree { arity: 4 },
        ] {
            assert_eq!(t.as_string().parse::<Topology>(), Ok(t));
        }
        assert_eq!("mesh".parse::<Topology>(), Ok(Topology::Mesh2D { width: 0 }));
        assert_eq!("fattree:2".parse::<Topology>(), Ok(Topology::FatTree { arity: 2 }));
        assert!("torus".parse::<Topology>().is_err());
        assert!("mesh:x".parse::<Topology>().is_err());
        assert!("ideal:3".parse::<Topology>().is_err());
        assert_eq!(Topology::default(), Topology::Ideal);
    }

    #[test]
    fn fault_spec_derivation_is_deterministic_and_bounded() {
        for seed in 0..200 {
            let a = FaultSpec::from_seed(seed);
            assert_eq!(a, FaultSpec::from_seed(seed));
            assert!(a.drop_permille <= 150);
            assert!(a.dup_permille <= 150);
            assert!(a.corrupt_permille <= 80);
            assert!(a.partition_permille <= 300);
            assert!(a.partition_epoch >= 1024);
            assert!(a.partition_run >= 2);
        }
        assert!(
            (0..50).any(|s| FaultSpec::from_seed(s).partition_permille > 0),
            "partitions must be exercised"
        );
        let u = FaultSpec::uniform(7, 100);
        assert_eq!(u.drop_permille, 100);
        assert_eq!(u.partition_permille, 0);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn handler_scale() {
        let mut c = SystemConfig::default();
        c.typhoon.handler_cost_scale = 2.0;
        assert_eq!(c.scaled_handler_instr(14), 28);
        c.typhoon.handler_cost_scale = 0.5;
        assert_eq!(c.scaled_handler_instr(30), 15);
    }
}
