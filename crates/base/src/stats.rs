//! Lightweight statistics primitives used by the machine models.
//!
//! The machines define their own typed statistics structs; this module
//! provides the shared building blocks: a [`Counter`], a bounded
//! [`Histogram`], and a [`Report`] of name/value rows that machines emit
//! for the bench harness to print.

use std::fmt;

/// A monotonically increasing event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// The current count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Host-side telemetry of one conservative-parallel simulation
/// (`tt_sim::pdes::run_windows`). These describe the *simulator's* work,
/// not the simulated machine: they are deliberately kept out of
/// [`Report`] so sequential and parallel runs of the same workload
/// produce identical reports. All ratios (events per window, messages
/// per window) are derived, not stored.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PdesTelemetry {
    /// Window rounds executed (each bounded by its window end).
    pub windows: u64,
    /// Barrier rendezvous performed: one leader decision per round
    /// (windows, barrier releases, and the final stop round).
    pub rendezvous: u64,
    /// Rendezvous the adaptive policy skipped, estimated per round as
    /// the largest number of fixed-quantum buckets any one shard's
    /// executed events spanned, minus one — the extra rounds a fixed
    /// driver (which re-anchors each window at the current global
    /// minimum) would have needed for the same work. 0 under the fixed
    /// policy.
    pub rendezvous_elided: u64,
    /// Events dispatched inside windows, across all shards.
    pub events: u64,
    /// Cross-shard messages exchanged at window boundaries.
    pub cross_messages: u64,
    /// Barrier generations released by the window driver.
    pub releases: u64,
}

impl PdesTelemetry {
    /// Mean events dispatched per window.
    pub fn events_per_window(&self) -> f64 {
        self.events as f64 / (self.windows.max(1)) as f64
    }

    /// Mean cross-shard messages per window.
    pub fn cross_messages_per_window(&self) -> f64 {
        self.cross_messages as f64 / (self.windows.max(1)) as f64
    }
}

/// A fixed-bucket histogram of small integer samples (e.g. sharer counts).
///
/// Samples at or above the bucket count land in the final, overflow bucket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets (the last is overflow).
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            buckets: vec![0; buckets],
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: usize) {
        let i = value.min(self.buckets.len() - 1);
        self.buckets[i] += 1;
    }

    /// The recorded count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Total number of samples recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean of the recorded samples (overflow bucket counted at its index).
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| i as u64 * c)
            .sum();
        weighted as f64 / total as f64
    }
}

/// One named value in a statistics report.
#[derive(Clone, Debug, PartialEq)]
pub struct ReportRow {
    /// Metric name, e.g. `"stache.block_faults"`.
    pub name: String,
    /// Metric value.
    pub value: f64,
}

/// An ordered list of named metrics produced by a simulation run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    rows: Vec<ReportRow>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a metric.
    pub fn push(&mut self, name: impl Into<String>, value: f64) {
        self.rows.push(ReportRow {
            name: name.into(),
            value,
        });
    }

    /// Appends an integer metric.
    pub fn push_count(&mut self, name: impl Into<String>, value: u64) {
        self.push(name, value as f64);
    }

    /// Looks up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.name == name).map(|r| r.value)
    }

    /// Iterates over the rows in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &ReportRow> {
        self.rows.iter()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the report has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.rows.iter().map(|r| r.name.len()).max().unwrap_or(0);
        for row in &self.rows {
            if row.value.fract() == 0.0 && row.value.abs() < 1e15 {
                writeln!(f, "{:width$}  {}", row.name, row.value as i64)?;
            } else {
                writeln!(f, "{:width$}  {:.4}", row.name, row.value)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let mut h = Histogram::new(4);
        h.record(0);
        h.record(3);
        h.record(99); // overflow -> bucket 3
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(3), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn histogram_mean() {
        let mut h = Histogram::new(10);
        h.record(2);
        h.record(4);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert_eq!(Histogram::new(3).mean(), 0.0);
    }

    #[test]
    fn report_round_trip() {
        let mut r = Report::new();
        r.push_count("a.b", 7);
        r.push("c", 1.5);
        assert_eq!(r.get("a.b"), Some(7.0));
        assert_eq!(r.get("missing"), None);
        assert_eq!(r.len(), 2);
        let text = r.to_string();
        assert!(text.contains("a.b"));
        assert!(text.contains("1.5"));
    }
}
