//! Lightweight statistics primitives used by the machine models.
//!
//! The machines define their own typed statistics structs; this module
//! provides the shared building blocks: a [`Counter`], a bounded
//! [`Histogram`], and a [`Report`] of name/value rows that machines emit
//! for the bench harness to print.

use std::fmt;

/// A monotonically increasing event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// The current count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Host-side telemetry of one conservative-parallel simulation
/// (`tt_sim::pdes::run_windows`). These describe the *simulator's* work,
/// not the simulated machine: they are deliberately kept out of
/// [`Report`] so sequential and parallel runs of the same workload
/// produce identical reports. All ratios (events per window, messages
/// per window) are derived, not stored.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PdesTelemetry {
    /// Window rounds executed (each bounded by its window end).
    pub windows: u64,
    /// Barrier rendezvous performed: one leader decision per round
    /// (windows, barrier releases, and the final stop round).
    pub rendezvous: u64,
    /// Rendezvous the adaptive policy skipped, estimated per round as
    /// the largest number of fixed-quantum buckets any one shard's
    /// executed events spanned, minus one — the extra rounds a fixed
    /// driver (which re-anchors each window at the current global
    /// minimum) would have needed for the same work. 0 under the fixed
    /// policy.
    pub rendezvous_elided: u64,
    /// Events dispatched inside windows, across all shards.
    pub events: u64,
    /// Cross-shard messages exchanged at window boundaries.
    pub cross_messages: u64,
    /// Barrier generations released by the window driver.
    pub releases: u64,
}

impl PdesTelemetry {
    /// Mean events dispatched per window.
    pub fn events_per_window(&self) -> f64 {
        self.events as f64 / (self.windows.max(1)) as f64
    }

    /// Mean cross-shard messages per window.
    pub fn cross_messages_per_window(&self) -> f64 {
        self.cross_messages as f64 / (self.windows.max(1)) as f64
    }
}

/// A fixed-bucket histogram of small integer samples (e.g. sharer counts).
///
/// Samples at or above the bucket count land in the final, overflow bucket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets (the last is overflow).
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            buckets: vec![0; buckets],
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: usize) {
        let i = value.min(self.buckets.len() - 1);
        self.buckets[i] += 1;
    }

    /// The recorded count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Total number of samples recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean of the recorded samples (overflow bucket counted at its index).
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| i as u64 * c)
            .sum();
        weighted as f64 / total as f64
    }
}

/// Sub-buckets per power-of-two group of a [`LatHistogram`].
const LAT_SUB: usize = 32;
const LAT_SUB_BITS: u32 = 5;
/// Values `0..2*LAT_SUB` get exact buckets; groups cover the rest of u64.
const LAT_BUCKETS: usize = 2 * LAT_SUB + (64 - LAT_SUB_BITS as usize - 1) * LAT_SUB;

/// A log-linear histogram of u64 samples (latencies in simulated cycles).
///
/// Values below 64 are counted exactly; above that, each power-of-two
/// range is split into 32 linear sub-buckets, bounding the relative
/// quantile error at ~3% while keeping the footprint fixed (no stored
/// samples, so millions of ops cost nothing). Merging is bucket-wise
/// addition — commutative and order-independent, so per-node histograms
/// folded together are identical at every simulator thread count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for LatHistogram {
    fn default() -> Self {
        LatHistogram::new()
    }
}

impl LatHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatHistogram {
            counts: vec![0; LAT_BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v < (2 * LAT_SUB) as u64 {
            v as usize
        } else {
            let msb = 63 - v.leading_zeros() as usize;
            let group = msb - LAT_SUB_BITS as usize - 1;
            let sub = ((v >> (msb - LAT_SUB_BITS as usize)) & (LAT_SUB as u64 - 1)) as usize;
            2 * LAT_SUB + group * LAT_SUB + sub
        }
    }

    /// Smallest value mapping to bucket `i` — the value quantiles report.
    fn bucket_low(i: usize) -> u64 {
        if i < 2 * LAT_SUB {
            i as u64
        } else {
            let group = (i - 2 * LAT_SUB) / LAT_SUB;
            let sub = (i - 2 * LAT_SUB) % LAT_SUB;
            ((LAT_SUB + sub) as u64) << (group + 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded samples (exact — the running sum is kept
    /// outside the buckets).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest sample recorded (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0 < q <= 1`) as the lower bound of the bucket
    /// holding the `ceil(q * total)`-th smallest sample; 0 when empty.
    /// `quantile(0.5)` is p50, `quantile(0.99)` p99.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        // Nearest-rank, with a one-ulp shave so q * total landing a hair
        // above an integer (0.999 * 1000 = 999.0000…1) doesn't skip a rank.
        let mut target = ((q * self.total as f64) * (1.0 - 1e-12)).ceil() as u64;
        target = target.clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_low(i).min(self.max);
            }
        }
        self.max
    }

    /// Adds another histogram's samples into this one.
    pub fn merge(&mut self, other: &LatHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// One named value in a statistics report.
#[derive(Clone, Debug, PartialEq)]
pub struct ReportRow {
    /// Metric name, e.g. `"stache.block_faults"`.
    pub name: String,
    /// Metric value.
    pub value: f64,
}

/// An ordered list of named metrics produced by a simulation run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    rows: Vec<ReportRow>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a metric.
    pub fn push(&mut self, name: impl Into<String>, value: f64) {
        self.rows.push(ReportRow {
            name: name.into(),
            value,
        });
    }

    /// Appends an integer metric.
    pub fn push_count(&mut self, name: impl Into<String>, value: u64) {
        self.push(name, value as f64);
    }

    /// Looks up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.name == name).map(|r| r.value)
    }

    /// Iterates over the rows in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &ReportRow> {
        self.rows.iter()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the report has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.rows.iter().map(|r| r.name.len()).max().unwrap_or(0);
        for row in &self.rows {
            if row.value.fract() == 0.0 && row.value.abs() < 1e15 {
                writeln!(f, "{:width$}  {}", row.name, row.value as i64)?;
            } else {
                writeln!(f, "{:width$}  {:.4}", row.name, row.value)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let mut h = Histogram::new(4);
        h.record(0);
        h.record(3);
        h.record(99); // overflow -> bucket 3
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(3), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn histogram_mean() {
        let mut h = Histogram::new(10);
        h.record(2);
        h.record(4);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert_eq!(Histogram::new(3).mean(), 0.0);
    }

    #[test]
    fn lat_histogram_is_exact_below_64() {
        let mut h = LatHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.total(), 64);
        assert_eq!(h.quantile(0.5), 31); // 32nd smallest of 0..=63
        assert_eq!(h.quantile(1.0), 63);
        assert_eq!(h.max(), 63);
        assert!((h.mean() - 31.5).abs() < 1e-12);
    }

    #[test]
    fn lat_histogram_buckets_are_monotone() {
        let mut last = 0;
        for v in [0u64, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, u64::MAX] {
            let b = LatHistogram::bucket_of(v);
            assert!(b >= last, "bucket order broke at {v}");
            assert!(LatHistogram::bucket_low(b) <= v);
            last = b;
        }
        assert!(LatHistogram::bucket_of(u64::MAX) < LAT_BUCKETS);
    }

    #[test]
    fn lat_histogram_quantile_error_is_bounded() {
        let mut h = LatHistogram::new();
        // 999 fast ops at 100 cycles, 1 slow op at 100_000.
        for _ in 0..999 {
            h.record(100);
        }
        h.record(100_000);
        let p50 = h.quantile(0.5);
        assert!((96..=100).contains(&p50), "p50 {p50} off");
        let p999 = h.quantile(0.999);
        assert!((96..=100).contains(&p999), "p999 {p999} should be fast");
        let p100 = h.quantile(1.0);
        assert!(
            (96_000..=100_000).contains(&p100),
            "p100 {p100} outside the slow op's bucket"
        );
        // Relative error of the bucketing stays ~3%.
        let v = 123_456u64;
        let low = LatHistogram::bucket_low(LatHistogram::bucket_of(v));
        assert!((v - low) as f64 / (v as f64) < 0.04);
    }

    #[test]
    fn lat_histogram_merge_matches_combined_recording() {
        let mut a = LatHistogram::new();
        let mut b = LatHistogram::new();
        let mut both = LatHistogram::new();
        for v in [5u64, 70, 900, 12_345] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 100, 1_000_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        assert_eq!(a.total(), 7);
    }

    #[test]
    fn lat_histogram_empty_is_zero() {
        let h = LatHistogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn report_round_trip() {
        let mut r = Report::new();
        r.push_count("a.b", 7);
        r.push("c", 1.5);
        assert_eq!(r.get("a.b"), Some(7.0));
        assert_eq!(r.get("missing"), None);
        assert_eq!(r.len(), 2);
        let text = r.to_string();
        assert!(text.contains("a.b"));
        assert!(text.contains("1.5"));
    }
}
