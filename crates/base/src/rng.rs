//! A small deterministic random-number generator.
//!
//! Everything random in the reproduction — cache victim selection, workload
//! graph generation, particle motion — draws from [`DetRng`], a
//! xoshiro256** generator seeded explicitly. Two runs with the same
//! [`crate::config::SystemConfig`] therefore produce bit-identical cycle
//! counts, which the integration tests rely on.
//!
//! We deliberately do not depend on the `rand` crate anywhere; every
//! random draw in the repository comes from this generator.

/// Mixes 64 bits into 64 uniformly scrambled bits (the splitmix64
/// finalizer). Unlike a [`DetRng`] *stream*, a pure mix of a stable
/// identifier is order-independent: callers that need per-item
/// randomness but cannot rely on draw order (the tie-shuffle salt and
/// network jitter under parallel simulation) hash the item's key
/// instead of consuming a stream.
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256** random-number generator.
///
/// # Example
///
/// ```
/// use tt_base::DetRng;
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a seed, expanding it with splitmix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        DetRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniformly random integer in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "DetRng::below(0)");
        // Lemire-style multiply-shift; bias is negligible for our bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniformly random `usize` in `0..bound`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// A uniformly random float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Derives an independent child generator; handy for giving each
    /// simulated node or workload phase its own stream.
    pub fn fork(&mut self, tag: u64) -> DetRng {
        DetRng::new(self.next_u64() ^ tag.wrapping_mul(0xA24B_AED4_963E_E407))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = DetRng::new(4);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = DetRng::new(5);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.below_usize(8)] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket count {b} out of range");
        }
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = DetRng::new(9);
        let mut child = a.fork(1);
        assert_ne!(a.next_u64(), child.next_u64());
    }
}
