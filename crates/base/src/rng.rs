//! A small deterministic random-number generator.
//!
//! Everything random in the reproduction — cache victim selection, workload
//! graph generation, particle motion — draws from [`DetRng`], a
//! xoshiro256** generator seeded explicitly. Two runs with the same
//! [`crate::config::SystemConfig`] therefore produce bit-identical cycle
//! counts, which the integration tests rely on.
//!
//! We deliberately do not depend on the `rand` crate anywhere; every
//! random draw in the repository comes from this generator.

/// Mixes 64 bits into 64 uniformly scrambled bits (the splitmix64
/// finalizer). Unlike a [`DetRng`] *stream*, a pure mix of a stable
/// identifier is order-independent: callers that need per-item
/// randomness but cannot rely on draw order (the tie-shuffle salt and
/// network jitter under parallel simulation) hash the item's key
/// instead of consuming a stream.
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256** random-number generator.
///
/// # Example
///
/// ```
/// use tt_base::DetRng;
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a seed, expanding it with splitmix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        DetRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniformly random integer in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "DetRng::below(0)");
        // Lemire-style multiply-shift; bias is negligible for our bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniformly random `usize` in `0..bound`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// A uniformly random float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Derives an independent child generator; handy for giving each
    /// simulated node or workload phase its own stream.
    pub fn fork(&mut self, tag: u64) -> DetRng {
        DetRng::new(self.next_u64() ^ tag.wrapping_mul(0xA24B_AED4_963E_E407))
    }
}

/// A Zipfian (power-law) rank sampler over `0..n` with skew `s`:
/// rank `k` (0-based) is drawn with probability proportional to
/// `(k + 1)^-s`. Rank 0 is the hottest item.
///
/// Uses rejection-inversion for monotone discrete distributions
/// (Hörmann & Derflinger, "Rejection-inversion to generate variates
/// from monotone discrete distributions", 1996): O(1) per sample with
/// no per-rank tables, so key spaces of millions cost nothing to set
/// up. All randomness comes from the caller's [`DetRng`], so sampling
/// is deterministic given the seed. `s = 0` degenerates to uniform;
/// the serving workloads sweep `s` through the web-caching range
/// (~0.6–1.2).
#[derive(Clone, Copy, Debug)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// `H(n + 1/2)`, the lower end of the inversion range.
    h_n: f64,
    /// `H(3/2) - 1`, the upper end of the inversion range.
    h_x1: f64,
    /// Acceptance cut for the hottest ranks (avoids evaluating the
    /// rejection test where acceptance is certain).
    cut: f64,
}

impl Zipf {
    /// A sampler over ranks `0..n` with skew `s >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf over an empty rank space");
        assert!(s >= 0.0 && s.is_finite(), "Zipf skew must be finite and >= 0");
        let h_n = h_integral(n as f64 + 0.5, s);
        let h_x1 = h_integral(1.5, s) - 1.0;
        let cut = 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s);
        Zipf { n, s, h_n, h_x1, cut }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> u64 {
        self.n
    }

    /// The configured skew.
    pub fn skew(&self) -> f64 {
        self.s
    }

    /// Draws a rank in `0..n` (0 = hottest).
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        if self.n == 1 {
            return 0;
        }
        loop {
            let u = self.h_n + rng.unit_f64() * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.s);
            // Candidate rank (1-based), clamped into range.
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= self.cut || u >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                return k as u64 - 1;
            }
        }
    }
}

/// `H(x) = ((x^(1-s)) - 1) / (1 - s)`, continued as `ln x` at `s = 1`.
/// Written via `exp_m1`/`ln_1p` so the two branches meet smoothly.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - s) * log_x) * log_x
}

/// The density bound `h(x) = x^-s`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// The inverse of [`h_integral`].
fn h_integral_inverse(y: f64, s: f64) -> f64 {
    let mut t = y * (1.0 - s);
    if t < -1.0 {
        // Numerical round-off can push t slightly past the pole.
        t = -1.0;
    }
    (helper1(t) * y).exp()
}

/// `ln(1+x)/x`, stable near 0.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x / 3.0)
    }
}

/// `(e^x - 1)/x`, stable near 0.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * (0.5 + x / 6.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = DetRng::new(4);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = DetRng::new(5);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.below_usize(8)] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket count {b} out of range");
        }
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = DetRng::new(9);
        let mut child = a.fork(1);
        assert_ne!(a.next_u64(), child.next_u64());
    }

    /// Draws `samples` ranks and returns per-rank counts for the first
    /// `track` ranks.
    fn zipf_counts(n: u64, s: f64, samples: usize, track: usize, seed: u64) -> Vec<u64> {
        let zipf = Zipf::new(n, s);
        let mut rng = DetRng::new(seed);
        let mut counts = vec![0u64; track];
        for _ in 0..samples {
            let k = zipf.sample(&mut rng);
            assert!(k < n, "rank {k} out of range 0..{n}");
            if (k as usize) < track {
                counts[k as usize] += 1;
            }
        }
        counts
    }

    /// The frequency-ratio test that pins the skew: under pmf ∝ (k+1)^-s,
    /// count(rank a) / count(rank b) must approach ((b+1)/(a+1))^s.
    #[test]
    fn zipf_frequency_ratios_pin_the_skew() {
        for &s in &[0.8, 1.0, 1.5] {
            let counts = zipf_counts(1000, s, 400_000, 10, 0x21BF);
            let ratio10 = counts[0] as f64 / counts[1] as f64;
            let expect10 = 2f64.powf(s);
            assert!(
                (ratio10 / expect10 - 1.0).abs() < 0.10,
                "s={s}: rank0/rank1 ratio {ratio10:.3}, expected {expect10:.3}"
            );
            let ratio90 = counts[0] as f64 / counts[9] as f64;
            let expect90 = 10f64.powf(s);
            assert!(
                (ratio90 / expect90 - 1.0).abs() < 0.20,
                "s={s}: rank0/rank9 ratio {ratio90:.3}, expected {expect90:.3}"
            );
        }
    }

    #[test]
    fn zipf_zero_skew_is_uniform() {
        let counts = zipf_counts(8, 0.0, 64_000, 8, 11);
        for &c in &counts {
            assert!((7000..9000).contains(&c), "bucket count {c} not uniform");
        }
    }

    #[test]
    fn zipf_is_deterministic_and_seed_sensitive() {
        let z = Zipf::new(1 << 20, 0.99);
        let draw = |seed| {
            let mut rng = DetRng::new(seed);
            (0..64).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }

    #[test]
    fn zipf_single_rank_and_heavy_skew() {
        let mut rng = DetRng::new(1);
        let one = Zipf::new(1, 1.2);
        assert_eq!(one.sample(&mut rng), 0);
        let heavy = Zipf::new(1 << 30, 2.0);
        // With s=2 over a huge space, the head dominates: most draws tiny.
        let small = (0..1000).filter(|_| heavy.sample(&mut rng) < 8).count();
        assert!(small > 900, "only {small}/1000 draws in the head");
    }
}
