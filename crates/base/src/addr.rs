//! Addresses and memory geometry.
//!
//! The simulated machine uses the geometry of the paper's Table 2:
//! 32-byte coherence blocks and 4-kilobyte pages. Words are 64 bits wide
//! (the paper's SPARC used 32-bit words; we model doubles, the dominant
//! datatype of all five benchmarks, as single-word accesses).
//!
//! Virtual and physical addresses are separate newtypes so that protocol
//! code cannot accidentally index a page table with a physical address or
//! a reverse TLB with a virtual one.

use std::fmt;

/// Bytes per coherence block (the fine-grain access-control granule).
pub const BLOCK_BYTES: usize = 32;
/// Bytes per virtual-memory page.
pub const PAGE_BYTES: usize = 4096;
/// Bytes per data word.
pub const WORD_BYTES: usize = 8;
/// Coherence blocks per page.
pub const BLOCKS_PER_PAGE: usize = PAGE_BYTES / BLOCK_BYTES;
/// Data words per coherence block.
pub const WORDS_PER_BLOCK: usize = BLOCK_BYTES / WORD_BYTES;

/// A virtual address in a node's (shared) address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VAddr(u64);

/// A physical address in a node's local memory.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PAddr(u64);

/// A virtual page number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Vpn(pub u64);

/// A physical page number (local to one node).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Ppn(pub u64);

macro_rules! addr_impl {
    ($t:ident, $pn:ident) => {
        impl $t {
            /// Creates an address from a raw byte address.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw byte address.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// The page number containing this address.
            #[inline]
            pub const fn page(self) -> $pn {
                $pn(self.0 / PAGE_BYTES as u64)
            }

            /// Byte offset within the page.
            #[inline]
            pub const fn page_offset(self) -> u64 {
                self.0 % PAGE_BYTES as u64
            }

            /// Index of the coherence block within the page (0..[`BLOCKS_PER_PAGE`]).
            #[inline]
            pub const fn block_in_page(self) -> usize {
                (self.page_offset() as usize) / BLOCK_BYTES
            }

            /// Byte offset within the coherence block.
            #[inline]
            pub const fn block_offset(self) -> u64 {
                self.0 % BLOCK_BYTES as u64
            }

            /// The address rounded down to its block base.
            #[inline]
            pub const fn block_base(self) -> Self {
                Self(self.0 - self.0 % BLOCK_BYTES as u64)
            }

            /// The address rounded down to its page base.
            #[inline]
            pub const fn page_base(self) -> Self {
                Self(self.0 - self.0 % PAGE_BYTES as u64)
            }

            /// Index of the word within the block (0..[`WORDS_PER_BLOCK`]).
            ///
            /// # Panics
            ///
            /// Panics in debug builds if the address is not word-aligned.
            #[inline]
            pub fn word_in_block(self) -> usize {
                debug_assert_eq!(self.0 % WORD_BYTES as u64, 0, "unaligned word access");
                (self.block_offset() as usize) / WORD_BYTES
            }

            /// Adds a byte offset.
            #[inline]
            pub const fn offset(self, bytes: u64) -> Self {
                Self(self.0 + bytes)
            }
        }

        impl From<u64> for $t {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl fmt::Debug for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($t), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }
    };
}

addr_impl!(VAddr, Vpn);
addr_impl!(PAddr, Ppn);

impl Vpn {
    /// The base virtual address of this page.
    #[inline]
    pub const fn base(self) -> VAddr {
        VAddr::new(self.0 * PAGE_BYTES as u64)
    }
}

impl Ppn {
    /// The base physical address of this page.
    #[inline]
    pub const fn base(self) -> PAddr {
        PAddr::new(self.0 * PAGE_BYTES as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_consistent() {
        assert_eq!(BLOCKS_PER_PAGE, 128);
        assert_eq!(WORDS_PER_BLOCK, 4);
        assert_eq!(BLOCKS_PER_PAGE * BLOCK_BYTES, PAGE_BYTES);
    }

    #[test]
    fn vaddr_decomposition() {
        let a = VAddr::new(0x1000_1230);
        assert_eq!(a.page(), Vpn(0x10001));
        assert_eq!(a.page_offset(), 0x230);
        assert_eq!(a.block_in_page(), 0x230 / 32);
        assert_eq!(a.block_offset(), 0x230 % 32);
        assert_eq!(a.word_in_block(), (0x230 % 32) / 8);
        assert_eq!(a.block_base().raw(), 0x1000_1220);
        assert_eq!(a.page_base().raw(), 0x1000_1000);
    }

    #[test]
    fn page_round_trip() {
        let v = Vpn(42);
        assert_eq!(v.base().page(), v);
        let p = Ppn(7);
        assert_eq!(p.base().page(), p);
    }

    #[test]
    fn offset_and_block_base_commute() {
        let a = VAddr::new(0x2000_0000);
        assert_eq!(a.offset(40).block_base().raw(), 0x2000_0020);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", VAddr::new(0x10)), "0x10");
        assert_eq!(format!("{:?}", PAddr::new(0x10)), "PAddr(0x10)");
    }
}
