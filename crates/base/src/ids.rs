//! Node identifiers.

use std::fmt;

/// Identifies one processing node of the simulated parallel machine.
///
/// The paper's target systems have 32 nodes; this reproduction supports any
/// node count up to `u16::MAX`, and the Stache directory falls back from
/// six explicit pointers to a bit vector exactly as the paper describes
/// when the machine has at most 32 nodes (see `tt-stache`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node id.
    #[inline]
    pub const fn new(n: u16) -> Self {
        NodeId(n)
    }

    /// The raw id.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// The id as a `usize`, for indexing per-node tables.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all node ids of an `n`-node machine.
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> {
        (0..n as u16).map(NodeId)
    }
}

impl From<u16> for NodeId {
    fn from(n: u16) -> Self {
        NodeId(n)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_enumerates_in_order() {
        let ids: Vec<_> = NodeId::all(4).collect();
        assert_eq!(ids, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2), NodeId::new(3)]);
        assert_eq!(ids[3].index(), 3);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", NodeId::new(5)), "n5");
    }
}
