//! A counting global allocator for heap-footprint measurement.
//!
//! Big-machine mode (DESIGN.md §11) reports *resident bytes per node* for
//! the 64/256/1024-node sweeps. Rather than parse `/proc/self/status`
//! (noisy, allocator-dependent), the bench binaries install
//! [`CountingAlloc`] as their global allocator: it forwards to the system
//! allocator and keeps three atomics — live bytes, the high-water mark,
//! and a cumulative allocation count. The counters are process-global, so
//! per-point readings are only attributable at `--jobs 1`
//! (EXPERIMENTS.md records the methodology).
//!
//! The counter updates are relaxed atomics; the peak is maintained with a
//! CAS loop, so a concurrent reader can never observe a peak below a live
//! value it caused. Overhead is a few nanoseconds per allocation — far
//! below measurement noise — and the simulator's own determinism is
//! untouched (no simulated state reads these counters).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static COUNT: AtomicU64 = AtomicU64::new(0);

/// A forwarding allocator that counts live bytes, peak bytes, and
/// allocation events. Install with `#[global_allocator]`.
pub struct CountingAlloc;

fn on_alloc(bytes: usize) {
    COUNT.fetch_add(1, Ordering::Relaxed);
    let live = LIVE.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
    let mut peak = PEAK.load(Ordering::Relaxed);
    while live > peak {
        match PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(cur) => peak = cur,
        }
    }
}

// SAFETY: pure forwarding to `System`; the bookkeeping never allocates.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
            on_alloc(new_size);
        }
        p
    }
}

/// Bytes currently allocated (0 if the counting allocator is not installed).
pub fn live_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark of live bytes since process start or the last
/// [`reset_peak`].
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Cumulative number of allocation events (allocs + growing reallocs).
pub fn alloc_count() -> u64 {
    COUNT.load(Ordering::Relaxed)
}

/// Resets the peak to the current live footprint, so a subsequent
/// [`peak_bytes`] reading is attributable to work after this call.
/// Only meaningful when one measured region runs at a time.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Whether a [`CountingAlloc`] is actually installed in this process
/// (detected by the counters moving at all — the bench binaries install
/// it, unit-test binaries generally do not).
pub fn installed() -> bool {
    COUNT.load(Ordering::Relaxed) > 0
}
