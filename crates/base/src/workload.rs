//! The machine-independent workload model.
//!
//! The paper runs unmodified SPARC binaries under the Wisconsin Wind
//! Tunnel. This reproduction instead drives the simulated machines with
//! *op streams*: each simulated processor pulls a lazily generated
//! sequence of [`Op`]s — compute spans, tag-checked shared-memory reads
//! and writes, barriers, and explicit protocol calls. The five benchmark
//! kernels in `tt-apps` generate these streams while natively computing
//! the same values, so every simulated read can be verified against the
//! value a sequentially consistent execution would produce.
//!
//! A workload also declares its shared-segment [`Layout`]: which address
//! ranges exist, which node is *home* for each page, and the page `mode`
//! protocols use to select custom handlers (the EM3D update protocol
//! marks its graph-node pages with a custom mode, Section 4).
//!
//! Both machines (`tt-typhoon`, `tt-dirnnb`) consume the same streams and
//! the same layout, so measured differences come from the memory-system
//! policies alone.

use crate::addr::{VAddr, Vpn, PAGE_BYTES};
use crate::ids::NodeId;

/// Base virtual address of the user-managed shared segment.
///
/// Matches the paper's model of "a large user-reserved address range"
/// (Section 2.3); private data is below it and is modeled as compute time.
pub const SHARED_SEGMENT_BASE: u64 = 0x1000_0000;

/// One step of a processor's program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Local computation (private loads/stores, ALU, FP) for this many cycles.
    Compute(u32),
    /// A tag-checked load of the 64-bit word at `addr`. If `expect` is
    /// set and the machine's `verify_values` flag is on, the machine
    /// asserts the loaded value equals it.
    Read {
        /// Word-aligned shared virtual address.
        addr: VAddr,
        /// The value a sequentially consistent execution would load.
        expect: Option<u64>,
    },
    /// A tag-checked load of the 64-bit word at `addr` whose observed
    /// value is appended to the processor's *recorded-read log* (exposed
    /// by each machine after the run). Litmus harnesses use this to
    /// check outcome combinations across processors — the classic
    /// weak-memory shapes (SB, MP, LB, IRIW) need the values racy reads
    /// actually returned, which `Read { expect: None }` discards.
    ReadRecord {
        /// Word-aligned shared virtual address.
        addr: VAddr,
    },
    /// A tag-checked store of `value` to the 64-bit word at `addr`.
    Write {
        /// Word-aligned shared virtual address.
        addr: VAddr,
        /// The value stored.
        value: u64,
    },
    /// Global barrier across all processors.
    Barrier,
    /// An explicit call into the node's protocol library (e.g. the EM3D
    /// end-of-phase flush). Suspends the thread until the protocol
    /// resumes it.
    UserCall {
        /// Protocol-defined operation code.
        op: u32,
        /// Protocol-defined argument.
        arg: u64,
    },
    /// Open-loop idling: advance this processor's clock to `until` (an
    /// absolute simulated cycle) if it is not already past it; otherwise
    /// a free no-op. Serving workloads use this to realize scheduled
    /// request arrival times independently of how long earlier requests
    /// took — the open-loop client model, where queueing delay shows up
    /// in latency instead of being absorbed by a slowed-down generator.
    /// The processor never suspends and no event is consumed, so the op
    /// is exactly as cheap and as deterministic as a `Compute` span.
    WaitUntil {
        /// Absolute cycle the processor's clock must reach before the
        /// next op.
        until: u64,
    },
}

/// How pages of a region are assigned home nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Page `i` of the region lives on node `i mod nodes` (the paper's
    /// round-robin default, IVY's "fixed distributed manager").
    Cyclic,
    /// Explicit per-page homes (owner-compute allocation).
    PerPage(Vec<NodeId>),
}

/// A contiguous range of the shared segment with a home policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Region {
    /// Page-aligned base address.
    pub base: VAddr,
    /// Length in bytes (rounded up to whole pages).
    pub bytes: usize,
    /// Home-node assignment for the region's pages.
    pub placement: Placement,
    /// Protocol page mode (0 = default transparent shared memory; custom
    /// protocols define their own, see `tt-stache::custom`).
    pub mode: u8,
}

impl Region {
    /// Number of whole pages covering the region.
    pub fn pages(&self) -> usize {
        self.bytes.div_ceil(PAGE_BYTES)
    }

    /// The home node of the region page containing `vpn`, given the
    /// machine size.
    fn home_of(&self, vpn: Vpn, nodes: usize) -> Option<NodeId> {
        let first = self.base.page().0;
        let idx = vpn.0.checked_sub(first)? as usize;
        if idx >= self.pages() {
            return None;
        }
        Some(match &self.placement {
            Placement::Cyclic => NodeId::new((idx % nodes) as u16),
            Placement::PerPage(homes) => homes[idx],
        })
    }
}

/// The shared-segment layout a workload declares.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Layout {
    /// The regions, in increasing address order, non-overlapping.
    pub regions: Vec<Region>,
}

impl Layout {
    /// An empty layout.
    pub fn new() -> Self {
        Layout::default()
    }

    /// Adds a region.
    pub fn add(&mut self, region: Region) -> &mut Self {
        self.regions.push(region);
        self
    }

    /// The home node and page mode for `vpn`, if any region covers it.
    pub fn home_of(&self, vpn: Vpn, nodes: usize) -> Option<(NodeId, u8)> {
        self.regions
            .iter()
            .find_map(|r| r.home_of(vpn, nodes).map(|h| (h, r.mode)))
    }

    /// Iterates over every `(vpn, home, mode)` of the layout.
    pub fn pages(&self, nodes: usize) -> impl Iterator<Item = (Vpn, NodeId, u8)> + '_ {
        self.regions.iter().flat_map(move |r| {
            let first = r.base.page().0;
            (0..r.pages() as u64).map(move |i| {
                let vpn = Vpn(first + i);
                let home = r.home_of(vpn, nodes).expect("page within region");
                (vpn, home, r.mode)
            })
        })
    }

    /// Total pages across all regions.
    pub fn total_pages(&self) -> usize {
        self.regions.iter().map(Region::pages).sum()
    }
}

/// A parallel program: one op stream per processor, plus a layout.
///
/// Streams are pulled in bounded *chunks* so that workloads with hundreds
/// of millions of ops never materialize them all at once.
///
/// `Send` because the parallel simulator pulls chunks from worker
/// threads (behind a mutex — one puller at a time, so no `Sync` bound).
pub trait Workload: Send {
    /// A short name ("em3d", "ocean", ...).
    fn name(&self) -> &'static str;

    /// The shared-segment layout. Called once before the run.
    fn layout(&self) -> Layout;

    /// The next chunk of ops for processor `cpu`, or `None` when that
    /// processor's program has ended. Chunks may be any nonzero length;
    /// the machine consumes them in order.
    fn next_chunk(&mut self, cpu: NodeId) -> Option<Vec<Op>>;

    /// Refills `buf` with the next chunk for `cpu`, returning `false`
    /// when the program has ended (in which case `buf` is left empty).
    ///
    /// The machines call this on each refill so a workload can reuse the
    /// processor's chunk buffer instead of allocating a fresh `Vec` per
    /// chunk. The default delegates to [`Workload::next_chunk`];
    /// implementations that own their chunks should override it.
    fn next_chunk_into(&mut self, cpu: NodeId, buf: &mut Vec<Op>) -> bool {
        match self.next_chunk(cpu) {
            Some(chunk) => {
                *buf = chunk;
                true
            }
            None => {
                buf.clear();
                false
            }
        }
    }
}

/// Merges runs of consecutive [`Op::Compute`] ops in place, saturating
/// each merged span at `u32::MAX` (a new op is started on overflow).
///
/// A chunk's total compute cycles — and therefore every simulated clock —
/// is unchanged; only the number of ops the machine's inner loop touches
/// shrinks. Workload generators that interleave many small compute spans
/// (address arithmetic, per-element work) call this once per chunk at
/// emission time.
pub fn coalesce_computes(ops: &mut Vec<Op>) {
    let mut w = 0usize;
    for r in 0..ops.len() {
        let op = ops[r];
        if let (Some(prev_i), Op::Compute(k)) = (w.checked_sub(1), op) {
            if let Op::Compute(prev) = ops[prev_i] {
                let sum = prev as u64 + k as u64;
                if sum <= u32::MAX as u64 {
                    ops[prev_i] = Op::Compute(sum as u32);
                    continue;
                }
            }
        }
        ops[w] = op;
        w += 1;
    }
    ops.truncate(w);
}

/// A workload built from explicit per-processor op scripts.
///
/// Useful for tests, examples, and microbenchmarks where the exact access
/// sequence matters more than realism.
///
/// # Example
///
/// ```
/// use tt_base::workload::{Op, ScriptWorkload, SHARED_SEGMENT_BASE};
/// use tt_base::{NodeId, VAddr};
///
/// let mut w = ScriptWorkload::new(2);
/// w.set(0, vec![Op::Write { addr: VAddr::new(SHARED_SEGMENT_BASE), value: 1 }]);
/// w.set(1, vec![Op::Compute(10)]);
/// assert_eq!(w.next_chunk(NodeId::new(1)).unwrap().len(), 1);
/// # use tt_base::workload::Workload;
/// ```
#[derive(Clone, Debug)]
pub struct ScriptWorkload {
    layout: Layout,
    per_cpu: Vec<Option<Vec<Op>>>,
}

impl ScriptWorkload {
    /// A script workload for `nodes` processors with an empty layout.
    pub fn new(nodes: usize) -> Self {
        ScriptWorkload {
            layout: Layout::new(),
            per_cpu: vec![Some(Vec::new()); nodes],
        }
    }

    /// Sets the layout.
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    /// Sets processor `cpu`'s full op script.
    pub fn set(&mut self, cpu: usize, ops: Vec<Op>) {
        self.per_cpu[cpu] = Some(ops);
    }
}

impl Workload for ScriptWorkload {
    fn name(&self) -> &'static str {
        "script"
    }

    fn layout(&self) -> Layout {
        self.layout.clone()
    }

    fn next_chunk(&mut self, cpu: NodeId) -> Option<Vec<Op>> {
        self.per_cpu[cpu.index()].take()
    }

    fn next_chunk_into(&mut self, cpu: NodeId, buf: &mut Vec<Op>) -> bool {
        match self.per_cpu[cpu.index()].take() {
            Some(ops) => {
                *buf = ops;
                true
            }
            None => {
                buf.clear();
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(base_page: u64, pages: usize, placement: Placement) -> Region {
        Region {
            base: VAddr::new(base_page * PAGE_BYTES as u64),
            bytes: pages * PAGE_BYTES,
            placement,
            mode: 0,
        }
    }

    #[test]
    fn cyclic_placement_round_robins() {
        let mut l = Layout::new();
        l.add(region(0x10000, 5, Placement::Cyclic));
        assert_eq!(l.home_of(Vpn(0x10000), 4), Some((NodeId::new(0), 0)));
        assert_eq!(l.home_of(Vpn(0x10001), 4), Some((NodeId::new(1), 0)));
        assert_eq!(l.home_of(Vpn(0x10004), 4), Some((NodeId::new(0), 0)));
        assert_eq!(l.home_of(Vpn(0x10005), 4), None, "past the region");
        assert_eq!(l.home_of(Vpn(0xFFFF), 4), None, "before the region");
    }

    #[test]
    fn per_page_placement() {
        let homes = vec![NodeId::new(3), NodeId::new(1)];
        let mut l = Layout::new();
        l.add(region(0x20000, 2, Placement::PerPage(homes)));
        assert_eq!(l.home_of(Vpn(0x20000), 8), Some((NodeId::new(3), 0)));
        assert_eq!(l.home_of(Vpn(0x20001), 8), Some((NodeId::new(1), 0)));
    }

    #[test]
    fn pages_enumerates_all() {
        let mut l = Layout::new();
        l.add(region(0x10000, 3, Placement::Cyclic));
        l.add(region(0x20000, 2, Placement::Cyclic));
        let pages: Vec<_> = l.pages(2).collect();
        assert_eq!(pages.len(), 5);
        assert_eq!(l.total_pages(), 5);
        assert_eq!(pages[0], (Vpn(0x10000), NodeId::new(0), 0));
        assert_eq!(pages[1], (Vpn(0x10001), NodeId::new(1), 0));
    }

    #[test]
    fn partial_page_rounds_up() {
        let r = Region {
            base: VAddr::new(0),
            bytes: PAGE_BYTES + 1,
            placement: Placement::Cyclic,
            mode: 0,
        };
        assert_eq!(r.pages(), 2);
    }

    #[test]
    fn coalesce_merges_runs_and_preserves_total() {
        let mut ops = vec![
            Op::Compute(3),
            Op::Compute(4),
            Op::Compute(5),
            Op::Barrier,
            Op::Compute(1),
            Op::Read { addr: VAddr::new(SHARED_SEGMENT_BASE), expect: None },
            Op::Compute(2),
            Op::Compute(9),
        ];
        let total: u64 = ops
            .iter()
            .map(|op| match op {
                Op::Compute(k) => *k as u64,
                _ => 0,
            })
            .sum();
        coalesce_computes(&mut ops);
        assert_eq!(
            ops,
            vec![
                Op::Compute(12),
                Op::Barrier,
                Op::Compute(1),
                Op::Read { addr: VAddr::new(SHARED_SEGMENT_BASE), expect: None },
                Op::Compute(11),
            ]
        );
        let after: u64 = ops
            .iter()
            .map(|op| match op {
                Op::Compute(k) => *k as u64,
                _ => 0,
            })
            .sum();
        assert_eq!(total, after);
    }

    #[test]
    fn coalesce_splits_on_u32_overflow() {
        let mut ops = vec![
            Op::Compute(u32::MAX - 1),
            Op::Compute(10),
            Op::Compute(5),
        ];
        coalesce_computes(&mut ops);
        assert_eq!(ops, vec![Op::Compute(u32::MAX - 1), Op::Compute(15)]);
    }

    #[test]
    fn coalesce_handles_empty_and_singleton() {
        let mut empty: Vec<Op> = vec![];
        coalesce_computes(&mut empty);
        assert!(empty.is_empty());
        let mut one = vec![Op::Barrier];
        coalesce_computes(&mut one);
        assert_eq!(one, vec![Op::Barrier]);
    }

    #[test]
    fn next_chunk_into_default_and_override_agree() {
        let mut w = ScriptWorkload::new(1);
        w.set(0, vec![Op::Compute(7), Op::Barrier]);
        let mut buf = Vec::new();
        assert!(w.next_chunk_into(NodeId::new(0), &mut buf));
        assert_eq!(buf, vec![Op::Compute(7), Op::Barrier]);
        assert!(!w.next_chunk_into(NodeId::new(0), &mut buf));
        assert!(buf.is_empty());
    }

    #[test]
    fn first_region_wins_overlap_lookup() {
        // Layout is declared non-overlapping; lookup is first-match.
        let mut l = Layout::new();
        l.add(region(0x1000, 1, Placement::PerPage(vec![NodeId::new(7)])));
        assert_eq!(l.home_of(Vpn(0x1000), 32), Some((NodeId::new(7), 0)));
    }
}
