//! A deterministic discrete-event simulation engine.
//!
//! The paper evaluated Typhoon on the Wisconsin Wind Tunnel, a parallel
//! discrete-event simulator. This crate is our deterministic equivalent:
//! a time-ordered event queue plus a driver loop, and — in [`pdes`] — a
//! conservative parallel driver in the WWT style that runs one
//! simulation across OS threads while producing bit-identical results.
//!
//! Events scheduled for the same cycle are delivered in scheduling order
//! (FIFO), which makes every simulation bit-reproducible.
//!
//! # Example
//!
//! ```
//! use tt_base::Cycles;
//! use tt_sim::{run, EventHandler, EventQueue, RunLimit};
//!
//! struct Counter {
//!     fired: Vec<u32>,
//! }
//!
//! impl EventHandler for Counter {
//!     type Event = u32;
//!     fn handle(&mut self, _now: Cycles, ev: u32, q: &mut EventQueue<u32>) {
//!         self.fired.push(ev);
//!         if ev < 3 {
//!             q.schedule_after(Cycles::new(10), ev + 1);
//!         }
//!     }
//! }
//!
//! let mut q = EventQueue::new();
//! q.schedule_at(Cycles::ZERO, 0);
//! let mut h = Counter { fired: vec![] };
//! let end = run(&mut h, &mut q, RunLimit::none());
//! assert_eq!(h.fired, vec![0, 1, 2, 3]);
//! assert_eq!(end, Cycles::new(30));
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tt_base::{mix64, Cycles};

pub mod pdes;

pub use pdes::{run_windows, OutMsg, ShardQueue, Windowing, GLOBAL_ORIGIN};

/// Bits of an entry key available to schedulers. Keys are either the
/// queue's internal monotonic counter or, for the machines, a packed
/// `(origin, per-origin counter)` pair (see [`pdes::ShardQueue`]); both
/// fit comfortably in 48 bits. The top 16 bits are reserved for the
/// tie-shuffle salt so the heap `Entry` never grows (an earlier draft
/// that widened `Entry` by 16 bytes cost DirNNB ~25% wall time).
const KEY_BITS: u32 = 48;

/// A pending event: ordering key is `(time, key)`, so same-cycle events
/// fire in a deterministic scheduler-chosen order. The ordering impls
/// deliberately ignore the event payload so event types need no `Ord`.
#[derive(Clone, Debug)]
struct Entry<E> {
    time: Cycles,
    key: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.key).cmp(&(other.time, other.key))
    }
}

/// How keys have been assigned so far; mixing the two schemes in one
/// queue would silently break the FIFO/total-order invariants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum KeyMode {
    Unset,
    Internal,
    Caller,
}

/// A time-ordered queue of simulation events.
///
/// The common pattern in the machines is *self-rescheduling*: a handler
/// pops the earliest event and immediately schedules its successor,
/// which is very often again the earliest pending event. The queue keeps
/// that front-runner in a dedicated slot (`front`) so the pattern costs
/// two comparisons instead of two `O(log n)` heap operations.
///
/// Invariant: whenever `front` is occupied it orders before every entry
/// in `heap` (entries are totally ordered by `(time, key)`, so delivery
/// of same-cycle events follows the key order deterministically).
///
/// # Keys
///
/// By default the queue assigns each entry a monotonically increasing
/// key, which makes same-cycle delivery FIFO. Callers that need an
/// ordering that is independent of *when* an entry was inserted — the
/// parallel driver in [`pdes`] inserts cross-shard events at window
/// boundaries, long after their logical scheduling point — supply their
/// own keys via [`EventQueue::schedule_keyed_at_for`]. The two schemes
/// must not be mixed in one queue.
///
/// # Per-node horizons
///
/// Schedulers that know which node an event affects can say so via
/// [`EventQueue::schedule_at_for`]. With horizon tracking enabled
/// ([`EventQueue::enable_horizon_tracking`]), the queue maintains the
/// pending `(time, key)` minima per declared target incrementally — a
/// small per-target heap pushed on schedule and popped on delivery,
/// nothing else. The delivery side needs to know the popped entry's
/// target, which the queue deliberately does not store (keeping a
/// side-table keyed by entry cost a hash insert/remove per event and
/// dominated the tracking overhead measured in PR 2); instead the
/// caller, who can read the target off the event itself, passes it to
/// [`EventQueue::pop_tracked`]. Two queries are then cheap:
///
/// - [`EventQueue::node_horizon`]: the earliest pending event that can
///   touch a given node (its own events plus untargeted ones), and
/// - [`EventQueue::safe_horizon`]: the earliest cycle at which *anything*
///   still in the queue could influence the node, given a minimum
///   cross-node interaction latency — the bound a WWT-style simulator
///   may run a node ahead to without violating causality.
///
/// Tracking is **off by default** and free when off. The machines'
/// direct-execution path needs only [`EventQueue::peek_time`]; the
/// parallel driver leaves tracking on in its shard queues as a causality
/// cross-check, which the incremental scheme makes affordable.
#[derive(Clone, Debug)]
pub struct EventQueue<E> {
    now: Cycles,
    seq: u64,
    scheduled: u64,
    front: Option<Entry<E>>,
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Whether per-node horizon mirrors are maintained.
    track_horizons: bool,
    /// Pending `(time, key)` mirrors, one heap per declared target node
    /// (grown on demand). Empty unless `track_horizons`.
    tracks: Vec<BinaryHeap<Reverse<(Cycles, u64)>>>,
    /// Mirror for untargeted (global-effect) events.
    global_track: BinaryHeap<Reverse<(Cycles, u64)>>,
    /// When set, same-cycle tie-breaking is deterministically permuted by
    /// salting the high bits of each entry's key with a hash of the seed
    /// and the raw key (see [`EventQueue::enable_tie_shuffle`]). `None`
    /// keeps the unsalted key order (FIFO for internal keys).
    shuffle: Option<u64>,
    /// Which key scheme this queue is using (debug-checked).
    key_mode: KeyMode,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            now: Cycles::ZERO,
            seq: 0,
            scheduled: 0,
            front: None,
            heap: BinaryHeap::new(),
            track_horizons: false,
            tracks: Vec::new(),
            global_track: BinaryHeap::new(),
            shuffle: None,
            key_mode: KeyMode::Unset,
        }
    }

    /// Turns on deterministic same-cycle tie-shuffling: events scheduled
    /// for the same cycle are delivered in a seed-dependent permutation
    /// instead of FIFO order. Simulations must be correct under *any*
    /// same-cycle ordering, so this is a legal-nondeterminism knob for
    /// the `tt-check` schedule fuzzer; the same seed always produces the
    /// same permutation.
    ///
    /// The salt for an entry is a pure hash of `(seed, key)`, not a draw
    /// from an RNG stream: a stream's draw order would depend on
    /// insertion order, which under the parallel driver differs from the
    /// sequential run (cross-shard entries are inserted at window
    /// boundaries). Hashing the key gives every entry the same salt in
    /// both modes, so the shuffled schedule is identical at any thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if events are already pending (their keys are unsalted).
    pub fn enable_tie_shuffle(&mut self, seed: u64) {
        assert!(
            self.is_empty(),
            "enable tie-shuffle on an empty queue, before scheduling"
        );
        self.shuffle = Some(seed);
    }

    /// Turns on per-node horizon tracking (see the struct docs). Must be
    /// called before any event is scheduled, or the mirrors would miss
    /// what is already pending. Every pop must then go through
    /// [`EventQueue::pop_tracked`].
    ///
    /// # Panics
    ///
    /// Panics if events are already pending.
    pub fn enable_horizon_tracking(&mut self) {
        assert!(
            self.is_empty(),
            "enable horizon tracking on an empty queue, before scheduling"
        );
        self.track_horizons = true;
    }

    /// The current simulated time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Salts a raw key with the tie-shuffle hash, if shuffling is on.
    #[inline]
    fn salted(&self, key: u64) -> u64 {
        match self.shuffle {
            Some(seed) => {
                debug_assert!(key < 1 << KEY_BITS);
                (mix64(seed ^ key) << KEY_BITS) | key
            }
            None => key,
        }
    }

    /// Schedules `event` at absolute time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past (`t < self.now()`): the simulation
    /// would no longer be causal.
    pub fn schedule_at(&mut self, t: Cycles, event: E) {
        self.schedule_at_for(t, None, event);
    }

    /// Schedules `event` at absolute time `t`, declaring the node whose
    /// state the event (directly) touches. `None` means the event has
    /// global effect and counts against every node's horizon.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past (`t < self.now()`).
    pub fn schedule_at_for(&mut self, t: Cycles, target: Option<usize>, event: E) {
        debug_assert_ne!(self.key_mode, KeyMode::Caller, "queue is caller-keyed");
        self.key_mode = KeyMode::Internal;
        self.seq += 1;
        let key = self.salted(self.seq);
        self.insert(t, key, target, event);
    }

    /// Schedules `event` at absolute time `t` under a caller-supplied
    /// key. Same-cycle entries are delivered in key order (after
    /// tie-shuffle salting, if enabled), regardless of insertion order —
    /// the property the parallel driver needs to merge cross-shard
    /// events deterministically. Keys must be unique among pending
    /// entries and fit in 48 bits.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past (`t < self.now()`).
    pub fn schedule_keyed_at_for(&mut self, t: Cycles, key: u64, target: Option<usize>, event: E) {
        debug_assert_ne!(self.key_mode, KeyMode::Internal, "queue is internally keyed");
        debug_assert!(key < 1 << KEY_BITS, "event key overflows 48 bits");
        self.key_mode = KeyMode::Caller;
        let key = self.salted(key);
        self.insert(t, key, target, event);
    }

    fn insert(&mut self, t: Cycles, key: u64, target: Option<usize>, event: E) {
        assert!(t >= self.now, "scheduling into the past: {t:?} < {:?}", self.now);
        self.scheduled += 1;
        if self.track_horizons {
            match target {
                Some(node) => {
                    if node >= self.tracks.len() {
                        self.tracks.resize_with(node + 1, BinaryHeap::new);
                    }
                    self.tracks[node].push(Reverse((t, key)));
                }
                None => self.global_track.push(Reverse((t, key))),
            }
        }
        let entry = Entry {
            time: t,
            key,
            event,
        };
        match &self.front {
            Some(f) if entry < *f => {
                let old = std::mem::replace(self.front.as_mut().expect("front present"), entry);
                self.heap.push(Reverse(old));
            }
            Some(_) => self.heap.push(Reverse(entry)),
            None => match self.heap.peek() {
                Some(Reverse(min)) if *min < entry => self.heap.push(Reverse(entry)),
                _ => self.front = Some(entry),
            },
        }
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_after(&mut self, delay: Cycles, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` at `now + delay` for a declared target node.
    pub fn schedule_after_for(&mut self, delay: Cycles, target: Option<usize>, event: E) {
        self.schedule_at_for(self.now + delay, target, event);
    }

    /// Removes and returns the earliest event, advancing `now` to its time.
    ///
    /// # Panics
    ///
    /// Panics if horizon tracking is enabled — the mirrors need the
    /// popped entry's target; use [`EventQueue::pop_tracked`].
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        assert!(
            !self.track_horizons,
            "horizon tracking is on: pop through pop_tracked"
        );
        self.pop_tracked(|_| None)
    }

    /// Removes and returns the earliest event, advancing `now` to its
    /// time. When horizon tracking is enabled, `target_of` must report
    /// the same target the entry was scheduled with (machines read it
    /// off the event itself); it is not called otherwise.
    pub fn pop_tracked(
        &mut self,
        target_of: impl FnOnce(&E) -> Option<usize>,
    ) -> Option<(Cycles, E)> {
        let e = match self.front.take() {
            Some(e) => e,
            None => self.heap.pop()?.0,
        };
        debug_assert!(e.time >= self.now);
        if self.track_horizons {
            // The popped entry is the global minimum, hence also the
            // minimum of the track mirroring it.
            let mirrored = match target_of(&e.event) {
                Some(node) => self.tracks[node].pop(),
                None => self.global_track.pop(),
            };
            debug_assert_eq!(
                mirrored.map(|Reverse(k)| k),
                Some((e.time, e.key)),
                "track mirrors diverged from the queue"
            );
        }
        self.now = e.time;
        Some((e.time, e.event))
    }

    /// The earliest pending event that can touch `node`: the minimum over
    /// events targeted at `node` and untargeted (global) events.
    ///
    /// # Panics
    ///
    /// Panics unless [`EventQueue::enable_horizon_tracking`] was called.
    pub fn node_horizon(&self, node: usize) -> Option<Cycles> {
        assert!(self.track_horizons, "horizon queries need tracking enabled");
        let own = self
            .tracks
            .get(node)
            .and_then(|t| t.peek())
            .map(|Reverse((t, _))| *t);
        let global = self.global_track.peek().map(|Reverse((t, _))| *t);
        match (own, global) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// The earliest pending event targeted at any node other than `node`.
    ///
    /// # Panics
    ///
    /// Panics unless [`EventQueue::enable_horizon_tracking`] was called.
    pub fn foreign_horizon(&self, node: usize) -> Option<Cycles> {
        assert!(self.track_horizons, "horizon queries need tracking enabled");
        let mut best: Option<Cycles> = None;
        for (i, track) in self.tracks.iter().enumerate() {
            if i == node {
                continue;
            }
            if let Some(Reverse((t, _))) = track.peek() {
                best = Some(best.map_or(*t, |b: Cycles| b.min(*t)));
            }
        }
        best
    }

    /// The earliest cycle at which anything still pending (or any event
    /// it later spawns) could influence `node`, assuming every cross-node
    /// interaction costs at least `cross_latency` cycles from the event
    /// that initiates it. Work by `node` at cycles strictly below this
    /// bound cannot observe, and is not observed by, the rest of the
    /// machine. `None` means nothing pending constrains the node at all.
    ///
    /// Soundness: an event already targeted at `node` (or global) acts at
    /// its own timestamp — that is `node_horizon`. Any *future* event for
    /// `node` must descend from some currently-pending foreign event, and
    /// the cross-node step of that chain adds at least `cross_latency`
    /// after an ancestor whose time is at least `foreign_horizon`.
    pub fn safe_horizon(&self, node: usize, cross_latency: Cycles) -> Option<Cycles> {
        let own = self.node_horizon(node);
        let foreign = self
            .foreign_horizon(node)
            .map(|t| Cycles::new(t.raw().saturating_add(cross_latency.raw())));
        match (own, foreign) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycles> {
        match &self.front {
            Some(e) => Some(e.time),
            None => self.heap.peek().map(|Reverse(e)| e.time),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + usize::from(self.front.is_some())
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.front.is_none() && self.heap.is_empty()
    }

    /// Total events scheduled over the queue's lifetime (for statistics).
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }
}

/// A component that reacts to simulation events.
pub trait EventHandler {
    /// The machine's event type.
    type Event;

    /// Handles one event at time `now`, possibly scheduling more.
    fn handle(&mut self, now: Cycles, event: Self::Event, queue: &mut EventQueue<Self::Event>);

    /// The node `event` was scheduled for, mirroring what the scheduler
    /// declared via [`EventQueue::schedule_at_for`]. Only consulted when
    /// horizon tracking is on; the default suits untargeted schedulers.
    fn target(event: &Self::Event) -> Option<usize> {
        let _ = event;
        None
    }
}

/// Bounds on a [`run`] invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunLimit {
    /// Stop once the next event's time reaches this point (that event is
    /// *not* delivered).
    pub max_time: Option<Cycles>,
    /// Stop after delivering this many events.
    pub max_events: Option<u64>,
}

impl RunLimit {
    /// No limits: run until the queue drains.
    pub fn none() -> Self {
        RunLimit::default()
    }

    /// Limit on simulated time only.
    pub fn until(t: Cycles) -> Self {
        RunLimit {
            max_time: Some(t),
            max_events: None,
        }
    }

    /// Limit on delivered events only (a runaway-protocol backstop).
    pub fn events(n: u64) -> Self {
        RunLimit {
            max_time: None,
            max_events: Some(n),
        }
    }
}

/// Drains the queue through `handler` until it is empty or a limit is hit.
/// Returns the final simulated time.
pub fn run<H: EventHandler>(
    handler: &mut H,
    queue: &mut EventQueue<H::Event>,
    limit: RunLimit,
) -> Cycles {
    let mut delivered = 0u64;
    loop {
        if let Some(max) = limit.max_events {
            if delivered >= max {
                return queue.now();
            }
        }
        match queue.peek_time() {
            None => return queue.now(),
            Some(head) => {
                if let Some(max_t) = limit.max_time {
                    if head >= max_t {
                        return queue.now();
                    }
                }
            }
        }
        let (now, ev) = queue.pop_tracked(H::target).expect("peeked non-empty");
        handler.handle(now, ev, queue);
        delivered += 1;
    }
}

/// Like [`run`], but invokes `observe` after every delivered event with
/// the event just handled and the handler's post-event state. This is the
/// hook the `tt-check` invariant engine attaches to: invariants are
/// asserted at every event boundary, where handlers are atomic and the
/// machine is in a consistent state.
///
/// The observer is a separate entry point rather than an `Option` inside
/// [`run`] so the production loop stays branch-free — checking is exactly
/// zero-cost when off.
pub fn run_observed<H: EventHandler>(
    handler: &mut H,
    queue: &mut EventQueue<H::Event>,
    limit: RunLimit,
    observe: &mut dyn FnMut(Cycles, &H::Event, &H),
) -> Cycles
where
    H::Event: Clone,
{
    let mut delivered = 0u64;
    loop {
        if let Some(max) = limit.max_events {
            if delivered >= max {
                return queue.now();
            }
        }
        match queue.peek_time() {
            None => return queue.now(),
            Some(head) => {
                if let Some(max_t) = limit.max_time {
                    if head >= max_t {
                        return queue.now();
                    }
                }
            }
        }
        let (now, ev) = queue.pop_tracked(H::target).expect("peeked non-empty");
        let observed = ev.clone();
        handler.handle(now, ev, queue);
        observe(now, &observed, handler);
        delivered += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(u64, u32)>,
    }

    impl EventHandler for Recorder {
        type Event = u32;
        fn handle(&mut self, now: Cycles, ev: u32, _q: &mut EventQueue<u32>) {
            self.seen.push((now.raw(), ev));
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Cycles::new(30), 3);
        q.schedule_at(Cycles::new(10), 1);
        q.schedule_at(Cycles::new(20), 2);
        let mut h = Recorder::default();
        run(&mut h, &mut q, RunLimit::none());
        assert_eq!(h.seen, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn same_cycle_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(Cycles::new(5), i);
        }
        let mut h = Recorder::default();
        run(&mut h, &mut q, RunLimit::none());
        let order: Vec<u32> = h.seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn caller_keys_order_same_cycle_events_regardless_of_insertion() {
        let mut q = EventQueue::new();
        // Inserted out of key order, delivered in key order.
        q.schedule_keyed_at_for(Cycles::new(5), 30, Some(0), 2);
        q.schedule_keyed_at_for(Cycles::new(5), 10, Some(1), 0);
        q.schedule_keyed_at_for(Cycles::new(5), 20, Some(0), 1);
        let mut seen = Vec::new();
        while let Some((_, e)) = q.pop() {
            seen.push(e);
        }
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(Cycles::new(10), 1);
        q.pop();
        q.schedule_at(Cycles::new(5), 2);
    }

    #[test]
    fn run_respects_time_limit() {
        let mut q = EventQueue::new();
        q.schedule_at(Cycles::new(10), 1);
        q.schedule_at(Cycles::new(20), 2);
        let mut h = Recorder::default();
        run(&mut h, &mut q, RunLimit::until(Cycles::new(15)));
        assert_eq!(h.seen, vec![(10, 1)]);
        assert_eq!(q.len(), 1, "the event past the limit stays queued");
    }

    #[test]
    fn run_respects_event_limit() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(Cycles::new(i), i as u32);
        }
        let mut h = Recorder::default();
        run(&mut h, &mut q, RunLimit::events(4));
        assert_eq!(h.seen.len(), 4);
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_at(Cycles::new(7), 0);
        q.pop();
        q.schedule_after(Cycles::new(3), 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Cycles::new(10));
        assert_eq!(q.total_scheduled(), 2);
    }

    #[test]
    fn targeted_and_untargeted_events_interleave_fifo() {
        let mut q = EventQueue::new();
        q.schedule_at_for(Cycles::new(5), Some(0), 0);
        q.schedule_at(Cycles::new(5), 1);
        q.schedule_at_for(Cycles::new(5), Some(1), 2);
        let mut h = Recorder::default();
        run(&mut h, &mut q, RunLimit::none());
        assert_eq!(h.seen, vec![(5, 0), (5, 1), (5, 2)]);
    }

    /// The recorder tests that pop with tracking on: events 0..n are
    /// targeted at node `e % 3`.
    fn pop3(q: &mut EventQueue<u32>) -> Option<(Cycles, u32)> {
        q.pop_tracked(|e| Some((*e % 3) as usize))
    }

    #[test]
    fn node_horizon_sees_own_and_global_events() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.enable_horizon_tracking();
        q.schedule_at_for(Cycles::new(30), Some(0), 0);
        q.schedule_at_for(Cycles::new(10), Some(1), 1);
        assert_eq!(q.node_horizon(0), Some(Cycles::new(30)));
        assert_eq!(q.node_horizon(1), Some(Cycles::new(10)));
        assert_eq!(q.node_horizon(7), None, "untouched node is unconstrained");
        q.schedule_at(Cycles::new(20), 2); // global: constrains everyone
        assert_eq!(q.node_horizon(0), Some(Cycles::new(20)));
        assert_eq!(q.node_horizon(7), Some(Cycles::new(20)));
    }

    #[test]
    fn foreign_horizon_excludes_own_and_global() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.enable_horizon_tracking();
        q.schedule_at_for(Cycles::new(10), Some(0), 0);
        q.schedule_at_for(Cycles::new(40), Some(2), 1);
        q.schedule_at(Cycles::new(5), 2);
        assert_eq!(q.foreign_horizon(0), Some(Cycles::new(40)));
        assert_eq!(q.foreign_horizon(2), Some(Cycles::new(10)));
        assert_eq!(q.foreign_horizon(1), Some(Cycles::new(10)));
    }

    #[test]
    fn safe_horizon_pads_foreign_events_by_latency() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.enable_horizon_tracking();
        // Event 0 targets node 1; event 1 targets node 0.
        let target = |e: &u32| Some(if *e == 0 { 1 } else { 0 });
        q.schedule_at_for(Cycles::new(10), Some(1), 0);
        // Node 0: nothing own, foreign at 10 + latency 11 = 21.
        assert_eq!(q.safe_horizon(0, Cycles::new(11)), Some(Cycles::new(21)));
        // Node 1's own event is not padded.
        assert_eq!(q.safe_horizon(1, Cycles::new(11)), Some(Cycles::new(10)));
        q.schedule_at_for(Cycles::new(15), Some(0), 1);
        assert_eq!(q.safe_horizon(0, Cycles::new(11)), Some(Cycles::new(15)));
        // Popping restores the mirrors.
        q.pop_tracked(target);
        assert_eq!(q.safe_horizon(1, Cycles::new(11)), Some(Cycles::new(26)));
        q.pop_tracked(target);
        assert_eq!(q.safe_horizon(1, Cycles::new(11)), None);
    }

    #[test]
    #[should_panic(expected = "tracking enabled")]
    fn horizon_queries_require_tracking() {
        let q: EventQueue<u32> = EventQueue::new();
        q.node_horizon(0);
    }

    #[test]
    #[should_panic(expected = "pop through pop_tracked")]
    fn plain_pop_rejected_under_tracking() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.enable_horizon_tracking();
        q.schedule_at_for(Cycles::new(1), Some(0), 0);
        q.pop();
    }

    #[test]
    #[should_panic(expected = "empty queue")]
    fn tracking_must_be_enabled_before_scheduling() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_at(Cycles::new(1), 0);
        q.enable_horizon_tracking();
    }

    #[test]
    fn tie_shuffle_permutes_same_cycle_events_deterministically() {
        let order_with_seed = |seed: Option<u64>| {
            let mut q = EventQueue::new();
            if let Some(s) = seed {
                q.enable_tie_shuffle(s);
            }
            for i in 0..50 {
                q.schedule_at(Cycles::new(5), i);
            }
            let mut h = Recorder::default();
            run(&mut h, &mut q, RunLimit::none());
            h.seen.iter().map(|&(_, e)| e).collect::<Vec<_>>()
        };
        let fifo = order_with_seed(None);
        assert_eq!(fifo, (0..50).collect::<Vec<_>>());
        let a = order_with_seed(Some(7));
        let b = order_with_seed(Some(7));
        assert_eq!(a, b, "same seed must reproduce the permutation");
        assert_ne!(a, fifo, "seed 7 should permute 50 same-cycle events");
        let c = order_with_seed(Some(8));
        assert_ne!(a, c, "different seeds should usually differ");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, fifo, "shuffling is a permutation, not a loss");
    }

    #[test]
    fn tie_shuffle_salt_depends_on_key_not_insertion_order() {
        // The same (time, key) entries inserted in different orders must
        // come out identically — the property the parallel driver's
        // cross-shard merge relies on.
        let deliver = |keys: &[u64]| {
            let mut q = EventQueue::new();
            q.enable_tie_shuffle(99);
            for &k in keys {
                q.schedule_keyed_at_for(Cycles::new(5), k, None, k as u32);
            }
            let mut out = Vec::new();
            while let Some((_, e)) = q.pop() {
                out.push(e);
            }
            out
        };
        let forward = deliver(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let backward = deliver(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(forward, backward);
    }

    #[test]
    fn tie_shuffle_preserves_time_order() {
        let mut q = EventQueue::new();
        q.enable_tie_shuffle(3);
        q.schedule_at(Cycles::new(30), 3);
        q.schedule_at(Cycles::new(10), 1);
        q.schedule_at(Cycles::new(20), 2);
        let mut h = Recorder::default();
        run(&mut h, &mut q, RunLimit::none());
        assert_eq!(h.seen, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn tie_shuffle_keeps_horizon_mirrors_consistent() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.enable_horizon_tracking();
        q.enable_tie_shuffle(11);
        for i in 0..20 {
            q.schedule_at_for(Cycles::new(5), Some(i % 3), i as u32);
        }
        assert_eq!(q.node_horizon(0), Some(Cycles::new(5)));
        // Popping everything exercises the mirror debug-asserts.
        while pop3(&mut q).is_some() {}
        assert_eq!(q.node_horizon(0), None);
    }

    #[test]
    #[should_panic(expected = "empty queue")]
    fn tie_shuffle_must_be_enabled_before_scheduling() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_at(Cycles::new(1), 0);
        q.enable_tie_shuffle(1);
    }

    #[test]
    fn run_observed_sees_every_event_at_its_boundary() {
        let mut q = EventQueue::new();
        q.schedule_at(Cycles::new(10), 1);
        q.schedule_at(Cycles::new(20), 2);
        let mut h = Recorder::default();
        let mut observed: Vec<(u64, u32, usize)> = Vec::new();
        run_observed(&mut h, &mut q, RunLimit::none(), &mut |now, ev, h| {
            observed.push((now.raw(), *ev, h.seen.len()));
        });
        // The observer runs after the handler: state reflects the event.
        assert_eq!(observed, vec![(10, 1, 1), (20, 2, 2)]);
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert_eq!(q.now(), Cycles::ZERO);
        q.schedule_at(Cycles::new(42), 9);
        q.pop();
        assert_eq!(q.now(), Cycles::new(42));
        assert!(q.is_empty());
    }
}
