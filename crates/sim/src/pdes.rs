//! Conservative parallel discrete-event simulation (PDES).
//!
//! This module parallelizes **one** simulation run across OS threads
//! using the Wisconsin Wind Tunnel's quantum scheme, while producing
//! results bit-identical to the sequential run:
//!
//! - The machine's nodes are partitioned into contiguous *shards*, each
//!   owning a [`ShardQueue`] — a private [`EventQueue`] plus an outbox
//!   for events targeting nodes another shard owns.
//! - Every cross-node interaction costs at least the network's minimum
//!   one-way latency, the *lookahead* `L`. Shards therefore advance in
//!   lockstep windows `[T, T + Q)` with `Q ≤ L`: an event a shard
//!   executes inside the window can only schedule onto a foreign shard
//!   at `≥ T + L ≥` the window end, so within a window the shards are
//!   causally independent and may run concurrently.
//! - At each window boundary the outboxes are exchanged. Cross-shard
//!   events are inserted into the target's queue under the *key* they
//!   were scheduled with, not an insertion-order sequence number, so the
//!   late merge lands them at exactly the position the sequential heap
//!   would have given them.
//!
//! # Deterministic keys
//!
//! The sequential queue's FIFO tie-break (a global monotonic counter)
//! is meaningless across shards: each shard pops independently, so "who
//! scheduled first this window" is a race. Instead every event carries a
//! key packed from its *origin* — the node whose handler scheduled it,
//! or [`GLOBAL_ORIGIN`] for machine-global bookkeeping such as barrier
//! releases — and a per-origin counter:
//!
//! ```text
//! key = origin_id << 32 | counter      (origin_id = node + 1, 0 = global)
//! ```
//!
//! A node's handler sequence is deterministic (it is the projection of
//! the deterministic simulation onto that node), so its counter values
//! are independent of the thread count, and the total order
//! `(time, origin_id, counter)` is the same whether the simulation ran
//! on one thread or sixteen. Same-cycle events from different origins
//! are ordered by origin id — fixed and shard-independent — and global
//! events (`origin_id = 0`) sort ahead of every node's, which puts
//! barrier releases before same-cycle node work in both modes.
//!
//! # Barriers
//!
//! The machines' global barrier is the one interaction that is not
//! node-to-node. Shards record arrivals locally
//! ([`ShardQueue::note_barrier_arrival`]); the window driver aggregates
//! them at boundaries and, once every participant has arrived, releases
//! at `t_r = max_arrival + release_delay` by invoking the machine's
//! release hook on each shard for its own nodes. Windows are clamped so
//! no shard runs past `t_r` before the release is applied, and the
//! window quantum is `Q = min(lookahead, release_delay)`: the last
//! arrival happens inside a window `[T, T + Q)` that is discovered at
//! `T + Q`, and `t_r = max_arrival + release_delay ≥ T + Q`, so the
//! release is never scheduled into a shard's past.
//!
//! In single-shard mode ([`ShardQueue::enable_inline_barrier`]) the one
//! shard owns every node, so `note_barrier_arrival` completes the
//! barrier inline and the machine schedules its own release event — no
//! windows, no worker threads, no per-boundary overhead. That path *is*
//! the sequential simulator, and the equivalence the whole scheme is
//! tested against.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex};

use tt_base::Cycles;

use crate::EventQueue;

/// Origin id of machine-global scheduling (barrier bookkeeping). Sorts
/// ahead of every node origin at the same cycle.
pub const GLOBAL_ORIGIN: u64 = 0;

/// Bits of the key holding the per-origin counter.
const COUNTER_BITS: u32 = 32;

/// Packs an origin id and counter into an event key.
#[inline]
fn pack_key(origin_id: u64, counter: u64) -> u64 {
    debug_assert!(origin_id < 1 << 16, "origin id overflows 16 bits");
    debug_assert!(counter < 1 << COUNTER_BITS, "origin counter overflows");
    (origin_id << COUNTER_BITS) | counter
}

/// A cross-shard event captured in a shard's outbox, to be merged into
/// the owning shard's queue at the next window boundary.
#[derive(Clone, Debug)]
pub struct OutMsg<E> {
    /// Absolute delivery time (≥ the window end, by the lookahead bound).
    pub time: Cycles,
    /// The deterministic key assigned at scheduling time.
    pub key: u64,
    /// Node the event targets; identifies the owning shard.
    pub target: usize,
    /// The event itself.
    pub event: E,
}

/// Inline (single-shard) barrier bookkeeping.
#[derive(Clone, Debug)]
struct InlineBarrier {
    expected: usize,
    delay: Cycles,
    arrived: usize,
    max_arrival: Cycles,
}

/// One shard's event queue: a private [`EventQueue`] over the shard's
/// contiguous node range, an outbox for foreign-node events, and the
/// per-origin counters that make event keys deterministic. Machines
/// schedule exclusively through [`ShardQueue::schedule_for`] /
/// [`ShardQueue::schedule_global`]; the active origin is set by the
/// event dispatch loop before each handler runs.
#[derive(Debug)]
pub struct ShardQueue<E> {
    queue: EventQueue<E>,
    outbox: Vec<OutMsg<E>>,
    first_node: usize,
    node_count: usize,
    /// Per-origin scheduling counters for the local nodes.
    counters: Vec<u64>,
    global_counter: u64,
    /// Origin for keys of subsequently scheduled events. `None` = global.
    origin: Option<usize>,
    /// Exclusive end of the current window; `None` outside window mode.
    window_end: Option<Cycles>,
    /// Barrier arrivals not yet drained by the window driver.
    arrivals: Vec<Cycles>,
    inline_barrier: Option<InlineBarrier>,
}

impl<E> ShardQueue<E> {
    /// A queue for the shard owning nodes `first_node .. first_node + node_count`.
    pub fn new(first_node: usize, node_count: usize) -> Self {
        ShardQueue {
            queue: EventQueue::new(),
            outbox: Vec::new(),
            first_node,
            node_count,
            counters: vec![0; node_count],
            global_counter: 0,
            origin: None,
            window_end: None,
            arrivals: Vec::new(),
            inline_barrier: None,
        }
    }

    /// See [`EventQueue::enable_tie_shuffle`]. The salt is a pure hash
    /// of the deterministic key, so the shuffled schedule is identical
    /// at every thread count.
    pub fn enable_tie_shuffle(&mut self, seed: u64) {
        self.queue.enable_tie_shuffle(seed);
    }

    /// See [`EventQueue::enable_horizon_tracking`].
    pub fn enable_horizon_tracking(&mut self) {
        self.queue.enable_horizon_tracking();
    }

    /// Switches the barrier to inline mode: this shard owns every node,
    /// so the `expected`-th arrival completes the barrier locally and
    /// [`ShardQueue::note_barrier_arrival`] returns the release time
    /// (`max_arrival + delay`) for the machine to schedule its release
    /// event. Single-shard (sequential) runs use this; window-driven
    /// runs leave it off and let the driver aggregate.
    pub fn enable_inline_barrier(&mut self, expected: usize, delay: Cycles) {
        self.inline_barrier = Some(InlineBarrier {
            expected,
            delay,
            arrived: 0,
            max_arrival: Cycles::ZERO,
        });
    }

    /// First node this shard owns.
    pub fn first_node(&self) -> usize {
        self.first_node
    }

    /// Number of nodes this shard owns.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Whether `node` belongs to this shard.
    #[inline]
    pub fn owns(&self, node: usize) -> bool {
        (self.first_node..self.first_node + self.node_count).contains(&node)
    }

    /// Current simulated time of this shard (last popped event).
    #[inline]
    pub fn now(&self) -> Cycles {
        self.queue.now()
    }

    /// Timestamp of the earliest pending local event.
    #[inline]
    pub fn peek_time(&self) -> Option<Cycles> {
        self.queue.peek_time()
    }

    /// Whether no local events are pending (the outbox may be non-empty).
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Pending local events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Total events scheduled into the local queue over its lifetime.
    pub fn total_scheduled(&self) -> u64 {
        self.queue.total_scheduled()
    }

    /// Exclusive end of the current window, if running windowed. The
    /// machines' direct-execution guard must keep a CPU's inline run
    /// strictly below this bound.
    #[inline]
    pub fn window_end(&self) -> Option<Cycles> {
        self.window_end
    }

    /// See [`EventQueue::node_horizon`].
    pub fn node_horizon(&self, node: usize) -> Option<Cycles> {
        self.queue.node_horizon(node)
    }

    /// See [`EventQueue::safe_horizon`].
    pub fn safe_horizon(&self, node: usize, cross_latency: Cycles) -> Option<Cycles> {
        self.queue.safe_horizon(node, cross_latency)
    }

    fn set_window_end(&mut self, end: Option<Cycles>) {
        self.window_end = end;
    }

    /// Declares `node` the origin of subsequently scheduled events. The
    /// dispatch loop calls this with the handling node before each
    /// event; handlers themselves never need to.
    #[inline]
    pub fn set_origin(&mut self, node: usize) {
        debug_assert!(self.owns(node), "origin {node} outside shard");
        self.origin = Some(node);
    }

    /// Declares subsequent scheduling machine-global ([`GLOBAL_ORIGIN`]).
    #[inline]
    pub fn set_origin_global(&mut self) {
        self.origin = None;
    }

    fn next_key(&mut self) -> u64 {
        match self.origin {
            Some(node) => {
                // Counters start at 1: counter 0 is the reserved wakeup
                // key (`schedule_wakeup`).
                let c = &mut self.counters[node - self.first_node];
                *c += 1;
                pack_key(node as u64 + 1, *c)
            }
            None => {
                self.global_counter += 1;
                pack_key(GLOBAL_ORIGIN, self.global_counter)
            }
        }
    }

    /// Schedules `event` at `t` for `target`'s shard: locally if this
    /// shard owns the target, otherwise into the outbox for the merge at
    /// the window boundary.
    ///
    /// # Panics
    ///
    /// Panics if a cross-shard event lands inside the current window —
    /// that would mean the machine interacted across nodes faster than
    /// the declared lookahead, the one way the conservative scheme can
    /// be unsound.
    pub fn schedule_for(&mut self, t: Cycles, target: usize, event: E) {
        let key = self.next_key();
        if self.owns(target) {
            self.queue.schedule_keyed_at_for(t, key, Some(target), event);
        } else {
            assert!(
                self.window_end.is_none_or(|end| t >= end),
                "cross-shard event at {t:?} inside window ending {:?}: \
                 interaction faster than the lookahead bound",
                self.window_end
            );
            self.outbox.push(OutMsg {
                time: t,
                key,
                target,
                event,
            });
        }
    }

    /// Schedules a machine-global `event` (no single target node) into
    /// the local queue, keyed from the dedicated global counter — never
    /// from a node's origin counter, so scheduling a global event leaves
    /// every per-node key stream untouched. Only meaningful in
    /// single-shard mode, where "global" and "local" coincide; windowed
    /// runs mirror the same keys through
    /// [`ShardQueue::deliver_release`].
    pub fn schedule_global(&mut self, t: Cycles, event: E) {
        debug_assert!(
            self.inline_barrier.is_some(),
            "global events are driver business in windowed mode"
        );
        self.global_counter += 1;
        let key = pack_key(GLOBAL_ORIGIN, self.global_counter);
        self.queue.schedule_keyed_at_for(t, key, None, event);
    }

    /// Schedules node `node`'s own wakeup under its *reserved* key
    /// (origin `node`, counter 0). The machines' CPU self-rescheduling
    /// is the one event the direct-execution optimization may elide;
    /// giving it a key outside the counter stream keeps every other
    /// event's key — and therefore the tie-shuffled order — independent
    /// of whether the wakeup was scheduled or elided. Sound because at
    /// most one such wakeup per node is ever pending (the machines'
    /// `step_pending` flag).
    pub fn schedule_wakeup(&mut self, t: Cycles, node: usize, event: E) {
        debug_assert!(self.owns(node), "wakeup for a foreign node");
        let key = pack_key(node as u64 + 1, 0);
        self.queue.schedule_keyed_at_for(t, key, Some(node), event);
    }

    /// Pops the earliest local event strictly inside the current window
    /// (or any pending event when not windowed). `target_of` feeds the
    /// horizon mirrors, as in [`EventQueue::pop_tracked`].
    pub fn pop(&mut self, target_of: impl FnOnce(&E) -> Option<usize>) -> Option<(Cycles, E)> {
        if let (Some(t), Some(end)) = (self.queue.peek_time(), self.window_end) {
            if t >= end {
                return None;
            }
        }
        self.queue.pop_tracked(target_of)
    }

    /// Records a barrier arrival at `at`. In inline mode, returns the
    /// release time once every participant has arrived (resetting for
    /// the next generation); in windowed mode, always `None` — the
    /// driver aggregates arrivals across shards at window boundaries.
    pub fn note_barrier_arrival(&mut self, at: Cycles) -> Option<Cycles> {
        match &mut self.inline_barrier {
            Some(b) => {
                b.arrived += 1;
                b.max_arrival = b.max_arrival.max(at);
                if b.arrived == b.expected {
                    b.arrived = 0;
                    let release = b.max_arrival + b.delay;
                    b.max_arrival = Cycles::ZERO;
                    Some(release)
                } else {
                    None
                }
            }
            None => {
                self.arrivals.push(at);
                None
            }
        }
    }

    /// Inserts a cross-shard event under its original key. The insertion
    /// time is irrelevant to ordering: the key places it exactly where
    /// the sequential heap would have.
    pub fn deliver(&mut self, msg: OutMsg<E>) {
        debug_assert!(self.owns(msg.target), "delivery to a foreign shard");
        self.queue
            .schedule_keyed_at_for(msg.time, msg.key, Some(msg.target), msg.event);
    }

    /// Inserts the windowed-mode barrier-release event under the exact
    /// global key the sequential path's [`ShardQueue::schedule_global`]
    /// would have assigned (`generation + 1`, since the global counter
    /// is consumed only by releases), so the salted (tie-shuffled) order
    /// at the release cycle is identical at every shard count.
    pub fn deliver_release(&mut self, t: Cycles, generation: u64, event: E) {
        debug_assert!(
            self.inline_barrier.is_none(),
            "inline mode schedules its own release"
        );
        self.global_counter += 1;
        debug_assert_eq!(
            self.global_counter,
            generation + 1,
            "release keys must mirror the sequential global counter"
        );
        let key = pack_key(GLOBAL_ORIGIN, self.global_counter);
        self.queue.schedule_keyed_at_for(t, key, None, event);
    }

    /// Drains the accumulated cross-shard events. The machines route
    /// any scheduling their *setup* phase produced (before the window
    /// driver takes over and routes boundaries itself).
    pub fn take_outbox(&mut self) -> Vec<OutMsg<E>> {
        std::mem::take(&mut self.outbox)
    }

    fn take_arrivals(&mut self) -> Vec<Cycles> {
        std::mem::take(&mut self.arrivals)
    }
}

/// Window-driver parameters.
#[derive(Clone, Copy, Debug)]
pub struct Windowing {
    /// Minimum cross-node interaction latency (the WWT lookahead).
    pub lookahead: Cycles,
    /// Barrier release latency: release fires at `max_arrival + release_delay`.
    pub release_delay: Cycles,
    /// Number of barrier participants (arrivals per generation).
    pub barrier_expected: usize,
}

/// What every worker does next, decided by the window leader.
#[derive(Clone, Copy, Debug)]
enum Decision {
    /// All queues and inboxes are empty and no release is pending.
    Stop,
    /// Apply the barrier release at `at` to each shard's own nodes.
    Release { at: Cycles, generation: u64 },
    /// Run events with `time < end`.
    Window { end: Cycles },
}

/// Leader-maintained global state.
#[derive(Debug)]
struct DriverState {
    pending_release: Option<Cycles>,
    generation: u64,
    arrived: usize,
    max_arrival: Cycles,
}

struct Shared<E> {
    rendezvous: Barrier,
    /// Earliest pending event per shard, published at the end of each act.
    heads: Vec<Mutex<Option<Cycles>>>,
    /// Cross-shard events routed but not yet drained by their owner.
    inboxes: Vec<Mutex<Vec<OutMsg<E>>>>,
    /// Owning shard of every node.
    node_shard: Vec<usize>,
    state: Mutex<DriverState>,
    decision: Mutex<Decision>,
    panicked: AtomicBool,
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Runs a sharded machine to completion under the conservative window
/// scheme, one OS thread per shard. `handle` dispatches one event on a
/// shard (setting the origin via [`ShardQueue::set_origin`] before the
/// machine handler runs); `release` applies a barrier release at the
/// given time and generation to the shard's own nodes, scheduling the
/// wakeups with the global origin. `target_of` reports an event's
/// target node (for horizon mirrors and inbox routing sanity).
///
/// Returns the final simulated time: the maximum over shards.
///
/// Panics raised by shard handlers are caught, the remaining workers
/// wound down at the next boundary, and the panic re-raised on the
/// calling thread — so a machine assertion behaves as it does
/// sequentially.
pub fn run_windows<E, S, H, R, T>(
    shards: &mut [S],
    queues: &mut [ShardQueue<E>],
    cfg: Windowing,
    handle: H,
    release: R,
    target_of: T,
) -> Cycles
where
    E: Send,
    S: Send,
    H: Fn(&mut S, Cycles, E, &mut ShardQueue<E>) + Sync,
    R: Fn(&mut S, &mut ShardQueue<E>, Cycles, u64) + Sync,
    T: Fn(&E) -> Option<usize> + Sync,
{
    let n_shards = shards.len();
    assert_eq!(n_shards, queues.len());
    assert!(n_shards > 0, "at least one shard");
    assert!(cfg.lookahead > Cycles::ZERO, "lookahead must be positive");
    assert!(cfg.release_delay > Cycles::ZERO, "release delay must be positive");
    // A pending release may clamp any window; it must never land before
    // a window the shards have already executed.
    let quantum = cfg.lookahead.min(cfg.release_delay);

    let nodes = queues
        .iter()
        .map(|q| q.first_node + q.node_count)
        .max()
        .expect("non-empty");
    let mut node_shard = vec![usize::MAX; nodes];
    for (i, q) in queues.iter().enumerate() {
        node_shard[q.first_node..q.first_node + q.node_count].fill(i);
    }
    assert!(
        node_shard.iter().all(|&s| s != usize::MAX),
        "shards must cover all nodes"
    );

    let shared = Shared {
        rendezvous: Barrier::new(n_shards),
        heads: queues.iter().map(|q| Mutex::new(q.peek_time())).collect(),
        inboxes: (0..n_shards).map(|_| Mutex::new(Vec::new())).collect(),
        node_shard,
        state: Mutex::new(DriverState {
            pending_release: None,
            generation: 0,
            arrived: 0,
            max_arrival: Cycles::ZERO,
        }),
        decision: Mutex::new(Decision::Stop),
        panicked: AtomicBool::new(false),
        panic_payload: Mutex::new(None),
    };

    std::thread::scope(|scope| {
        for (i, (shard, queue)) in shards.iter_mut().zip(queues.iter_mut()).enumerate() {
            let shared = &shared;
            let handle = &handle;
            let release = &release;
            let target_of = &target_of;
            scope.spawn(move || {
                worker(i, shard, queue, shared, cfg, quantum, handle, release, target_of)
            });
        }
    });

    if shared.panicked.load(Ordering::SeqCst) {
        let payload = shared
            .panic_payload
            .lock()
            .expect("payload lock")
            .take()
            .unwrap_or_else(|| Box::new("PDES worker panicked"));
        resume_unwind(payload);
    }

    queues.iter().map(|q| q.now()).max().expect("non-empty")
}

/// Leader step: read the published heads, inboxes, and barrier arrivals
/// and decide the next round.
fn decide<E>(shared: &Shared<E>, cfg: Windowing, quantum: Cycles) -> Decision {
    if shared.panicked.load(Ordering::SeqCst) {
        return Decision::Stop;
    }
    let mut min_head: Option<Cycles> = None;
    let mut merge = |t: Cycles| {
        min_head = Some(min_head.map_or(t, |m| m.min(t)));
    };
    for head in &shared.heads {
        if let Some(t) = *head.lock().expect("head lock") {
            merge(t);
        }
    }
    for inbox in &shared.inboxes {
        for msg in inbox.lock().expect("inbox lock").iter() {
            merge(msg.time);
        }
    }
    let mut st = shared.state.lock().expect("state lock");
    if st.pending_release.is_none() && st.arrived > 0 && st.arrived == cfg.barrier_expected {
        st.pending_release = Some(st.max_arrival + cfg.release_delay);
        st.arrived = 0;
        st.max_arrival = Cycles::ZERO;
    }
    match (min_head, st.pending_release) {
        (None, None) => Decision::Stop,
        (head, Some(at)) if head.is_none_or(|h| h >= at) => {
            st.pending_release = None;
            let generation = st.generation;
            st.generation += 1;
            Decision::Release { at, generation }
        }
        (Some(head), pending) => {
            let natural = head + quantum;
            Decision::Window {
                end: pending.map_or(natural, |at| natural.min(at)),
            }
        }
        (None, Some(_)) => unreachable!("covered by the release arm"),
    }
}

#[allow(clippy::too_many_arguments)]
fn worker<E, S, H, R, T>(
    index: usize,
    shard: &mut S,
    queue: &mut ShardQueue<E>,
    shared: &Shared<E>,
    cfg: Windowing,
    quantum: Cycles,
    handle: &H,
    release: &R,
    target_of: &T,
) where
    E: Send,
    S: Send,
    H: Fn(&mut S, Cycles, E, &mut ShardQueue<E>) + Sync,
    R: Fn(&mut S, &mut ShardQueue<E>, Cycles, u64) + Sync,
    T: Fn(&E) -> Option<usize> + Sync,
{
    loop {
        if shared.rendezvous.wait().is_leader() {
            let d = decide(shared, cfg, quantum);
            *shared.decision.lock().expect("decision lock") = d;
        }
        shared.rendezvous.wait();
        let decision = *shared.decision.lock().expect("decision lock");
        let act = AssertUnwindSafe(|| match decision {
            Decision::Stop => {}
            Decision::Release { at, generation } => {
                drain_inbox(index, queue, shared);
                release(shard, queue, at, generation);
                publish(index, queue, shared);
            }
            Decision::Window { end } => {
                drain_inbox(index, queue, shared);
                queue.set_window_end(Some(end));
                while let Some((now, ev)) = queue.pop(|e| target_of(e)) {
                    handle(shard, now, ev, queue);
                }
                queue.set_window_end(None);
                for msg in queue.take_outbox() {
                    let owner = shared.node_shard[msg.target];
                    debug_assert_ne!(owner, index, "own-shard event in outbox");
                    shared.inboxes[owner].lock().expect("inbox lock").push(msg);
                }
                let arrivals = queue.take_arrivals();
                if !arrivals.is_empty() {
                    let mut st = shared.state.lock().expect("state lock");
                    st.arrived += arrivals.len();
                    for at in arrivals {
                        st.max_arrival = st.max_arrival.max(at);
                    }
                }
                publish(index, queue, shared);
            }
        });
        if let Err(payload) = catch_unwind(act) {
            shared.panicked.store(true, Ordering::SeqCst);
            let mut slot = shared.panic_payload.lock().expect("payload lock");
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        if matches!(decision, Decision::Stop) {
            break;
        }
    }
}

fn drain_inbox<E>(index: usize, queue: &mut ShardQueue<E>, shared: &Shared<E>) {
    let msgs = std::mem::take(&mut *shared.inboxes[index].lock().expect("inbox lock"));
    for msg in msgs {
        queue.deliver(msg);
    }
}

fn publish<E>(index: usize, queue: &ShardQueue<E>, shared: &Shared<E>) {
    *shared.heads[index].lock().expect("head lock") = queue.peek_time();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy machine: each node repeatedly sends a token to the next
    /// node with a fixed latency and bumps a per-node counter. Runs on
    /// any shard count; the counters and final time must match.
    #[derive(Clone, Debug, PartialEq)]
    struct Token {
        to: usize,
        hops_left: u32,
    }

    struct ToyShard {
        counts: Vec<u64>,
        first: usize,
    }

    const LATENCY: u64 = 11;

    fn toy_handle(s: &mut ToyShard, now: Cycles, ev: Token, q: &mut ShardQueue<Token>) {
        q.set_origin(ev.to);
        s.counts[ev.to - s.first] += 1;
        if ev.hops_left > 0 {
            let nodes = 8;
            let next = (ev.to + 1) % nodes;
            q.schedule_for(
                now + Cycles::new(LATENCY),
                next,
                Token {
                    to: next,
                    hops_left: ev.hops_left - 1,
                },
            );
        }
    }

    fn run_toy(n_shards: usize) -> (Vec<u64>, Cycles) {
        let nodes = 8;
        let per = nodes / n_shards;
        let mut shards: Vec<ToyShard> = (0..n_shards)
            .map(|i| ToyShard {
                counts: vec![0; per],
                first: i * per,
            })
            .collect();
        let mut queues: Vec<ShardQueue<Token>> =
            (0..n_shards).map(|i| ShardQueue::new(i * per, per)).collect();
        // Every node starts a token at cycle 0.
        for n in 0..nodes {
            let q = &mut queues[n / per];
            q.set_origin(n);
            q.schedule_for(
                Cycles::ZERO,
                n,
                Token {
                    to: n,
                    hops_left: 40,
                },
            );
        }
        let end = if n_shards == 1 {
            let (shard, queue) = (&mut shards[0], &mut queues[0]);
            while let Some((now, ev)) = queue.pop(|e| Some(e.to)) {
                toy_handle(shard, now, ev, queue);
            }
            queue.now()
        } else {
            run_windows(
                &mut shards,
                &mut queues,
                Windowing {
                    lookahead: Cycles::new(LATENCY),
                    release_delay: Cycles::new(LATENCY),
                    barrier_expected: nodes,
                },
                toy_handle,
                |_s, _q, _at, _gen| unreachable!("toy machine has no barrier"),
                |e: &Token| Some(e.to),
            )
        };
        let mut counts = vec![0; nodes];
        for s in &shards {
            for (i, c) in s.counts.iter().enumerate() {
                counts[s.first + i] = *c;
            }
        }
        (counts, end)
    }

    #[test]
    fn toy_machine_is_identical_across_shard_counts() {
        let seq = run_toy(1);
        for shards in [2, 4, 8] {
            assert_eq!(run_toy(shards), seq, "diverged at {shards} shards");
        }
    }

    #[test]
    fn inline_barrier_completes_and_resets() {
        let mut q: ShardQueue<u32> = ShardQueue::new(0, 4);
        q.enable_inline_barrier(4, Cycles::new(11));
        assert_eq!(q.note_barrier_arrival(Cycles::new(5)), None);
        assert_eq!(q.note_barrier_arrival(Cycles::new(9)), None);
        assert_eq!(q.note_barrier_arrival(Cycles::new(7)), None);
        assert_eq!(
            q.note_barrier_arrival(Cycles::new(8)),
            Some(Cycles::new(20)),
            "release at max arrival + delay"
        );
        // Next generation starts clean.
        assert_eq!(q.note_barrier_arrival(Cycles::new(30)), None);
    }

    #[test]
    fn windowed_arrivals_accumulate_for_the_driver() {
        let mut q: ShardQueue<u32> = ShardQueue::new(0, 4);
        assert_eq!(q.note_barrier_arrival(Cycles::new(5)), None);
        assert_eq!(q.note_barrier_arrival(Cycles::new(9)), None);
        assert_eq!(q.take_arrivals(), vec![Cycles::new(5), Cycles::new(9)]);
        assert!(q.take_arrivals().is_empty());
    }

    #[test]
    fn global_origin_sorts_before_node_origins() {
        let mut q: ShardQueue<u32> = ShardQueue::new(0, 2);
        q.enable_inline_barrier(2, Cycles::new(1));
        q.set_origin(0);
        q.schedule_for(Cycles::new(5), 0, 100);
        q.set_origin_global();
        q.schedule_global(Cycles::new(5), 999);
        q.set_origin(1);
        q.schedule_for(Cycles::new(5), 1, 101);
        let mut order = Vec::new();
        let target = |e: &u32| if *e == 999 { None } else { Some((*e - 100) as usize) };
        while let Some((_, e)) = q.pop(target) {
            order.push(e);
        }
        assert_eq!(order, vec![999, 100, 101]);
    }

    #[test]
    fn cross_shard_events_go_to_the_outbox_with_stable_keys() {
        let mut a: ShardQueue<u32> = ShardQueue::new(0, 2);
        let mut b: ShardQueue<u32> = ShardQueue::new(2, 2);
        a.set_origin(1);
        a.schedule_for(Cycles::new(20), 3, 7);
        assert!(a.is_empty(), "foreign event must not enter the local queue");
        let out = a.take_outbox();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].target, 3);
        // Origin id = node 1 + 1 = 2, first counter value 1.
        assert_eq!(out[0].key, (2 << 32) | 1);
        b.deliver(out.into_iter().next().unwrap());
        assert_eq!(b.pop(|_| Some(3)), Some((Cycles::new(20), 7)));
    }

    #[test]
    #[should_panic(expected = "faster than the lookahead bound")]
    fn cross_shard_event_inside_window_panics() {
        let mut q: ShardQueue<u32> = ShardQueue::new(0, 2);
        q.set_window_end(Some(Cycles::new(50)));
        q.set_origin(0);
        q.schedule_for(Cycles::new(30), 5, 1);
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let nodes = 4;
        let mut shards = vec![(), ()];
        let mut queues: Vec<ShardQueue<u32>> =
            (0..2).map(|i| ShardQueue::new(i * 2, 2)).collect();
        for n in 0..nodes {
            let q = &mut queues[n / 2];
            q.set_origin(n);
            q.schedule_for(Cycles::ZERO, n, n as u32);
        }
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_windows(
                &mut shards,
                &mut queues,
                Windowing {
                    lookahead: Cycles::new(11),
                    release_delay: Cycles::new(11),
                    barrier_expected: nodes,
                },
                |_s: &mut (), _now, ev: u32, _q: &mut ShardQueue<u32>| {
                    assert!(ev != 3, "planted failure on node 3");
                },
                |_s, _q, _at, _gen| {},
                |e: &u32| Some(*e as usize),
            )
        }));
        assert!(result.is_err(), "the planted panic must reach the caller");
    }
}
