//! Conservative parallel discrete-event simulation (PDES).
//!
//! This module parallelizes **one** simulation run across OS threads
//! using the Wisconsin Wind Tunnel's quantum scheme, while producing
//! results bit-identical to the sequential run:
//!
//! - The machine's nodes are partitioned into contiguous *shards*, each
//!   owning a [`ShardQueue`] — a private [`EventQueue`] plus an outbox
//!   for events targeting nodes another shard owns.
//! - Every cross-node interaction costs at least the network's minimum
//!   one-way latency, the *lookahead* `L`. Shards therefore advance in
//!   lockstep windows `[T, T + Q)` with `Q ≤ L`: an event a shard
//!   executes inside the window can only schedule onto a foreign shard
//!   at `≥ T + L ≥` the window end, so within a window the shards are
//!   causally independent and may run concurrently.
//! - At each window boundary the outboxes are exchanged. Cross-shard
//!   events are inserted into the target's queue under the *key* they
//!   were scheduled with, not an insertion-order sequence number, so the
//!   late merge lands them at exactly the position the sequential heap
//!   would have given them.
//!
//! # Deterministic keys
//!
//! The sequential queue's FIFO tie-break (a global monotonic counter)
//! is meaningless across shards: each shard pops independently, so "who
//! scheduled first this window" is a race. Instead every event carries a
//! key packed from its *origin* — the node whose handler scheduled it,
//! or [`GLOBAL_ORIGIN`] for machine-global bookkeeping such as barrier
//! releases — and a per-origin counter:
//!
//! ```text
//! key = origin_id << 32 | counter      (origin_id = node + 1, 0 = global)
//! ```
//!
//! A node's handler sequence is deterministic (it is the projection of
//! the deterministic simulation onto that node), so its counter values
//! are independent of the thread count, and the total order
//! `(time, origin_id, counter)` is the same whether the simulation ran
//! on one thread or sixteen. Same-cycle events from different origins
//! are ordered by origin id — fixed and shard-independent — and global
//! events (`origin_id = 0`) sort ahead of every node's, which puts
//! barrier releases before same-cycle node work in both modes.
//!
//! # Barriers
//!
//! The machines' global barrier is the one interaction that is not
//! node-to-node. Shards record arrivals locally
//! ([`ShardQueue::note_barrier_arrival`]); the window driver aggregates
//! them at boundaries and, once every participant has arrived, releases
//! at `t_r = max_arrival + release_delay` by invoking the machine's
//! release hook on each shard for its own nodes. Windows are clamped so
//! no shard runs past `t_r` before the release is applied, and the
//! window quantum is `Q = min(lookahead, release_delay)`: the last
//! arrival happens inside a window `[T, T + Q)` that is discovered at
//! `T + Q`, and `t_r = max_arrival + release_delay ≥ T + Q`, so the
//! release is never scheduled into a shard's past.
//!
//! In single-shard mode ([`ShardQueue::enable_inline_barrier`]) the one
//! shard owns every node, so `note_barrier_arrival` completes the
//! barrier inline and the machine schedules its own release event — no
//! windows, no worker threads, no per-boundary overhead. That path *is*
//! the sequential simulator, and the equivalence the whole scheme is
//! tested against.
//!
//! # Adaptive windows
//!
//! The fixed policy rendezvouses every `Q = min(lookahead,
//! release_delay)` cycles even when the shards have nothing to say to
//! each other. Under [`WindowPolicy::Adaptive`] the leader instead
//! grants each shard its own window end — the earliest time anything
//! *foreign* could still reach it:
//!
//! - **Cross-shard traffic.** Every cross-shard event departs at
//!   `≥ sender_now + lookahead` (asserted in
//!   [`ShardQueue::schedule_for`]), and a sender only pops events at or
//!   after its published head `h_B`, so nothing from shard `B` can land
//!   on `A` before `h_B + lookahead`. Shard `A` may therefore run to
//!   `min over B≠A of h_B + lookahead` — unbounded if no other shard has
//!   pending work. In-flight inbox messages count toward their target's
//!   head. Window boundaries only ever *withhold* already-merged events;
//!   the deterministic `(time, origin, counter)` keys order them, so
//!   where the boundaries fall cannot change the delivery order — only
//!   wall-clock.
//! - **Echoes.** The leader prices foreign shards by their heads *at
//!   the rendezvous*, but a message `A` emits mid-window can wake a
//!   shard the leader saw as idle, and its reply — earliest `t +
//!   lookahead` for a message departing at `t` — would land in `A`'s
//!   past if `A` kept running under a wide bound. So the queue clamps
//!   its own window to `t + lookahead` at the moment of each cross-shard
//!   send: pops already made precede `t`, pops after stay below the
//!   earliest echo, and any longer relay (`A → B → C → A`) is later
//!   still. From the next rendezvous on, the message sits in an inbox
//!   and is priced into its target's head as usual.
//! - **Barrier releases.** A release fires at `t_r = last_arrival +
//!   release_delay`, which is unknown while shards still owe arrivals.
//!   Three bounds keep every pop below `t_r`: (1) a shard whose nodes
//!   are all parked at the barrier is clamped to `release_lb +
//!   release_delay`, where `release_lb` — the max of the arrivals so far
//!   and each owing shard's head — lower-bounds the last arrival; (2) a
//!   shard that still owes an arrival needs no leader clamp, because its
//!   pops precede its own arrival, which precedes `t_r` (every node
//!   participates in every generation); (3) the queue itself clamps its
//!   window to `arrival + release_delay` the moment the arrival parking
//!   its *last* node is recorded mid-window
//!   ([`ShardQueue::note_barrier_arrival`]), so a wide window cannot
//!   outrun a release its own final arrival completes. Earlier arrivals
//!   need no clamp: the pops that follow them precede the shard's own
//!   next arrival (a later pop in the same time-ordered stream), which
//!   precedes the release.
//!
//! Every adaptive end is `max`ed with the fixed end, so adaptive rounds
//! make at least the fixed policy's progress and the decision loop
//! terminates identically. Cycle tables are bit-identical under either
//! policy — pinned by the machine equivalence tests and the `tt-check`
//! fuzzer's window-policy dimension.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use tt_base::stats::PdesTelemetry;
use tt_base::{Cycles, WindowPolicy};

use crate::EventQueue;

/// Window end meaning "unbounded": no foreign event or release can
/// reach the shard, so it may drain everything it has. Only ever
/// compared against, never added to.
const UNBOUNDED: Cycles = Cycles::new(u64::MAX);

/// Origin id of machine-global scheduling (barrier bookkeeping). Sorts
/// ahead of every node origin at the same cycle.
pub const GLOBAL_ORIGIN: u64 = 0;

/// Bits of the key holding the per-origin counter.
const COUNTER_BITS: u32 = 32;

/// Packs an origin id and counter into an event key.
#[inline]
fn pack_key(origin_id: u64, counter: u64) -> u64 {
    debug_assert!(origin_id < 1 << 16, "origin id overflows 16 bits");
    debug_assert!(counter < 1 << COUNTER_BITS, "origin counter overflows");
    (origin_id << COUNTER_BITS) | counter
}

/// A cross-shard event captured in a shard's outbox, to be merged into
/// the owning shard's queue at the next window boundary.
#[derive(Clone, Debug)]
pub struct OutMsg<E> {
    /// Absolute delivery time (≥ the window end, by the lookahead bound).
    pub time: Cycles,
    /// The deterministic key assigned at scheduling time.
    pub key: u64,
    /// Node the event targets; identifies the owning shard.
    pub target: usize,
    /// The event itself.
    pub event: E,
}

/// Inline (single-shard) barrier bookkeeping.
#[derive(Clone, Debug)]
struct InlineBarrier {
    expected: usize,
    delay: Cycles,
    arrived: usize,
    max_arrival: Cycles,
}

/// Windowed-mode context the driver installs on each queue: the shard's
/// index and the latency bounds the lookahead contract is checked
/// against.
#[derive(Clone, Copy, Debug)]
struct WinCtx {
    index: usize,
    lookahead: Cycles,
    release_delay: Cycles,
}

/// One shard's event queue: a private [`EventQueue`] over the shard's
/// contiguous node range, an outbox for foreign-node events, and the
/// per-origin counters that make event keys deterministic. Machines
/// schedule exclusively through [`ShardQueue::schedule_for`] /
/// [`ShardQueue::schedule_global`]; the active origin is set by the
/// event dispatch loop before each handler runs.
#[derive(Debug)]
pub struct ShardQueue<E> {
    queue: EventQueue<E>,
    outbox: Vec<OutMsg<E>>,
    first_node: usize,
    node_count: usize,
    /// Per-origin scheduling counters for the local nodes.
    counters: Vec<u64>,
    global_counter: u64,
    /// Origin for keys of subsequently scheduled events. `None` = global.
    origin: Option<usize>,
    /// Exclusive end of the current window; `None` outside window mode.
    window_end: Option<Cycles>,
    /// Barrier arrivals not yet drained by the window driver.
    arrivals: Vec<Cycles>,
    /// Nodes of this shard currently parked at the barrier (windowed
    /// mode; cleared when the release is delivered).
    waiting: usize,
    /// First pop of the current window (telemetry anchor).
    window_anchor: Option<Cycles>,
    /// Distinct fixed-quantum buckets this window's pops occupied
    /// (telemetry; see [`decide`]'s elision estimate).
    window_buckets: u64,
    /// Bucket index of the most recent pop, relative to the anchor.
    window_last_bucket: u64,
    /// Windowed-mode context, installed by [`run_windows`].
    win: Option<WinCtx>,
    inline_barrier: Option<InlineBarrier>,
}

impl<E> ShardQueue<E> {
    /// A queue for the shard owning nodes `first_node .. first_node + node_count`.
    pub fn new(first_node: usize, node_count: usize) -> Self {
        ShardQueue {
            queue: EventQueue::new(),
            outbox: Vec::new(),
            first_node,
            node_count,
            counters: vec![0; node_count],
            global_counter: 0,
            origin: None,
            window_end: None,
            arrivals: Vec::new(),
            waiting: 0,
            window_anchor: None,
            window_buckets: 0,
            window_last_bucket: 0,
            win: None,
            inline_barrier: None,
        }
    }

    /// See [`EventQueue::enable_tie_shuffle`]. The salt is a pure hash
    /// of the deterministic key, so the shuffled schedule is identical
    /// at every thread count.
    pub fn enable_tie_shuffle(&mut self, seed: u64) {
        self.queue.enable_tie_shuffle(seed);
    }

    /// See [`EventQueue::enable_horizon_tracking`].
    pub fn enable_horizon_tracking(&mut self) {
        self.queue.enable_horizon_tracking();
    }

    /// Switches the barrier to inline mode: this shard owns every node,
    /// so the `expected`-th arrival completes the barrier locally and
    /// [`ShardQueue::note_barrier_arrival`] returns the release time
    /// (`max_arrival + delay`) for the machine to schedule its release
    /// event. Single-shard (sequential) runs use this; window-driven
    /// runs leave it off and let the driver aggregate.
    pub fn enable_inline_barrier(&mut self, expected: usize, delay: Cycles) {
        self.inline_barrier = Some(InlineBarrier {
            expected,
            delay,
            arrived: 0,
            max_arrival: Cycles::ZERO,
        });
    }

    /// First node this shard owns.
    pub fn first_node(&self) -> usize {
        self.first_node
    }

    /// Number of nodes this shard owns.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Whether `node` belongs to this shard.
    #[inline]
    pub fn owns(&self, node: usize) -> bool {
        (self.first_node..self.first_node + self.node_count).contains(&node)
    }

    /// Current simulated time of this shard (last popped event).
    #[inline]
    pub fn now(&self) -> Cycles {
        self.queue.now()
    }

    /// Timestamp of the earliest pending local event.
    #[inline]
    pub fn peek_time(&self) -> Option<Cycles> {
        self.queue.peek_time()
    }

    /// Whether no local events are pending (the outbox may be non-empty).
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Pending local events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Total events scheduled into the local queue over its lifetime.
    pub fn total_scheduled(&self) -> u64 {
        self.queue.total_scheduled()
    }

    /// Exclusive end of the current window, if running windowed. The
    /// machines' direct-execution guard must keep a CPU's inline run
    /// strictly below this bound.
    #[inline]
    pub fn window_end(&self) -> Option<Cycles> {
        self.window_end
    }

    /// See [`EventQueue::node_horizon`].
    pub fn node_horizon(&self, node: usize) -> Option<Cycles> {
        self.queue.node_horizon(node)
    }

    /// See [`EventQueue::safe_horizon`].
    pub fn safe_horizon(&self, node: usize, cross_latency: Cycles) -> Option<Cycles> {
        self.queue.safe_horizon(node, cross_latency)
    }

    fn set_window_end(&mut self, end: Option<Cycles>) {
        self.window_end = end;
    }

    /// Installs the windowed-mode context: shard index (for
    /// diagnostics) and the latency bounds. Arms the lookahead-contract
    /// assertion in [`ShardQueue::schedule_for`] and the arrival-side
    /// window clamp in [`ShardQueue::note_barrier_arrival`].
    fn configure_windowing(&mut self, index: usize, lookahead: Cycles, release_delay: Cycles) {
        self.win = Some(WinCtx {
            index,
            lookahead,
            release_delay,
        });
    }

    /// Nodes of this shard currently parked at the barrier (windowed
    /// mode only; inline mode resets its own tally).
    pub fn waiting(&self) -> usize {
        self.waiting
    }

    /// Declares `node` the origin of subsequently scheduled events. The
    /// dispatch loop calls this with the handling node before each
    /// event; handlers themselves never need to.
    #[inline]
    pub fn set_origin(&mut self, node: usize) {
        debug_assert!(self.owns(node), "origin {node} outside shard");
        self.origin = Some(node);
    }

    /// Declares subsequent scheduling machine-global ([`GLOBAL_ORIGIN`]).
    #[inline]
    pub fn set_origin_global(&mut self) {
        self.origin = None;
    }

    fn next_key(&mut self) -> u64 {
        match self.origin {
            Some(node) => {
                // Counters start at 1: counter 0 is the reserved wakeup
                // key (`schedule_wakeup`).
                let c = &mut self.counters[node - self.first_node];
                *c += 1;
                pack_key(node as u64 + 1, *c)
            }
            None => {
                self.global_counter += 1;
                pack_key(GLOBAL_ORIGIN, self.global_counter)
            }
        }
    }

    /// Schedules `event` at `t` for `target`'s shard: locally if this
    /// shard owns the target, otherwise into the outbox for the merge at
    /// the window boundary.
    ///
    /// # Panics
    ///
    /// In windowed mode, panics if a cross-shard event is scheduled
    /// closer than the declared lookahead — the one way the
    /// conservative scheme can be unsound. (This is the contract the
    /// window leader's per-shard bounds rely on, and it is strictly
    /// stronger than "lands past the window end": fixed windows end at
    /// or before `now + lookahead`, and adaptive windows may end later.)
    pub fn schedule_for(&mut self, t: Cycles, target: usize, event: E) {
        let key = self.next_key();
        if self.owns(target) {
            self.queue.schedule_keyed_at_for(t, key, Some(target), event);
        } else {
            if let Some(win) = self.win {
                let now = self.queue.now();
                assert!(
                    t >= now + win.lookahead,
                    "cross-shard event from shard {} (nodes {}..{}, origin {:?}) to \
                     node {target} at t={t:?} with now={now:?}, lookahead={:?}: \
                     interaction faster than the lookahead bound \
                     (window ending {:?})",
                    win.index,
                    self.first_node,
                    self.first_node + self.node_count,
                    self.origin,
                    win.lookahead,
                    self.window_end,
                );
                // Echo clamp: this message can wake its target — even a
                // shard the leader saw as idle — whose earliest causal
                // reply is one more lookahead hop away, at `t +
                // lookahead`. Clamp our own window there so a widened
                // bound can never outrun the echo. (Pops already made
                // this round precede `t`, so the clamp is not late; a
                // no-op under fixed windows, which end at or before
                // `now + lookahead ≤ t + lookahead`.)
                if let Some(end) = self.window_end {
                    self.window_end = Some(end.min(t + win.lookahead));
                }
            }
            self.outbox.push(OutMsg {
                time: t,
                key,
                target,
                event,
            });
        }
    }

    /// Schedules a machine-global `event` (no single target node) into
    /// the local queue, keyed from the dedicated global counter — never
    /// from a node's origin counter, so scheduling a global event leaves
    /// every per-node key stream untouched. Only meaningful in
    /// single-shard mode, where "global" and "local" coincide; windowed
    /// runs mirror the same keys through
    /// [`ShardQueue::deliver_release`].
    pub fn schedule_global(&mut self, t: Cycles, event: E) {
        debug_assert!(
            self.inline_barrier.is_some(),
            "global events are driver business in windowed mode"
        );
        self.global_counter += 1;
        let key = pack_key(GLOBAL_ORIGIN, self.global_counter);
        self.queue.schedule_keyed_at_for(t, key, None, event);
    }

    /// Schedules node `node`'s own wakeup under its *reserved* key
    /// (origin `node`, counter 0). The machines' CPU self-rescheduling
    /// is the one event the direct-execution optimization may elide;
    /// giving it a key outside the counter stream keeps every other
    /// event's key — and therefore the tie-shuffled order — independent
    /// of whether the wakeup was scheduled or elided. Sound because at
    /// most one such wakeup per node is ever pending (the machines'
    /// `step_pending` flag).
    pub fn schedule_wakeup(&mut self, t: Cycles, node: usize, event: E) {
        debug_assert!(self.owns(node), "wakeup for a foreign node");
        let key = pack_key(node as u64 + 1, 0);
        self.queue.schedule_keyed_at_for(t, key, Some(node), event);
    }

    /// Pops the earliest local event strictly inside the current window
    /// (or any pending event when not windowed). `target_of` feeds the
    /// horizon mirrors, as in [`EventQueue::pop_tracked`].
    pub fn pop(&mut self, target_of: impl FnOnce(&E) -> Option<usize>) -> Option<(Cycles, E)> {
        if let (Some(t), Some(end)) = (self.queue.peek_time(), self.window_end) {
            if t >= end {
                return None;
            }
        }
        let popped = self.queue.pop_tracked(target_of);
        // Telemetry: count the *occupied* fixed-quantum buckets this
        // window's pops land in. Empty buckets between pops don't count
        // — a fixed driver re-anchors each window at the current global
        // minimum, so it skips fully-empty time in one round too. Pops
        // arrive in time order, so a transition check suffices.
        if let (Some((t, _)), Some(win)) = (&popped, self.win) {
            let quantum = win.lookahead.min(win.release_delay);
            match self.window_anchor {
                None => {
                    self.window_anchor = Some(*t);
                    self.window_buckets = 1;
                    self.window_last_bucket = 0;
                }
                Some(anchor) if quantum > Cycles::ZERO => {
                    let b = t.saturating_sub(anchor).raw() / quantum.raw();
                    if b != self.window_last_bucket {
                        self.window_last_bucket = b;
                        self.window_buckets += 1;
                    }
                }
                Some(_) => {}
            }
        }
        popped
    }

    /// Records a barrier arrival at `at`. In inline mode, returns the
    /// release time once every participant has arrived (resetting for
    /// the next generation); in windowed mode, always `None` — the
    /// driver aggregates arrivals across shards at window boundaries.
    pub fn note_barrier_arrival(&mut self, at: Cycles) -> Option<Cycles> {
        match &mut self.inline_barrier {
            Some(b) => {
                b.arrived += 1;
                b.max_arrival = b.max_arrival.max(at);
                if b.arrived == b.expected {
                    b.arrived = 0;
                    let release = b.max_arrival + b.delay;
                    b.max_arrival = Cycles::ZERO;
                    Some(release)
                } else {
                    None
                }
            }
            None => {
                self.arrivals.push(at);
                self.waiting += 1;
                // Once the shard's *last* node parks, the release
                // completing this generation fires at `last_arrival +
                // release_delay ≥ at + release_delay`; clamp the window
                // so a wide (adaptive) bound cannot run past it. Earlier
                // arrivals need no clamp: every pop that follows them
                // precedes the shard's own next arrival, which precedes
                // the release. A no-op under fixed windows, whose ends
                // never exceed `global_min + quantum ≤ at + delay`.
                if self.waiting == self.node_count {
                    if let (Some(end), Some(win)) = (self.window_end, self.win) {
                        self.window_end = Some(end.min(at + win.release_delay));
                    }
                }
                None
            }
        }
    }

    /// Inserts a cross-shard event under its original key. The insertion
    /// time is irrelevant to ordering: the key places it exactly where
    /// the sequential heap would have.
    pub fn deliver(&mut self, msg: OutMsg<E>) {
        debug_assert!(self.owns(msg.target), "delivery to a foreign shard");
        self.queue
            .schedule_keyed_at_for(msg.time, msg.key, Some(msg.target), msg.event);
    }

    /// Inserts the windowed-mode barrier-release event under the exact
    /// global key the sequential path's [`ShardQueue::schedule_global`]
    /// would have assigned (`generation + 1`, since the global counter
    /// is consumed only by releases), so the salted (tie-shuffled) order
    /// at the release cycle is identical at every shard count.
    pub fn deliver_release(&mut self, t: Cycles, generation: u64, event: E) {
        debug_assert!(
            self.inline_barrier.is_none(),
            "inline mode schedules its own release"
        );
        self.global_counter += 1;
        debug_assert_eq!(
            self.global_counter,
            generation + 1,
            "release keys must mirror the sequential global counter"
        );
        let key = pack_key(GLOBAL_ORIGIN, self.global_counter);
        self.queue.schedule_keyed_at_for(t, key, None, event);
        self.waiting = 0;
    }

    /// Drains the accumulated cross-shard events. The machines route
    /// any scheduling their *setup* phase produced (before the window
    /// driver takes over and routes boundaries itself).
    pub fn take_outbox(&mut self) -> Vec<OutMsg<E>> {
        std::mem::take(&mut self.outbox)
    }

    fn take_arrivals(&mut self) -> Vec<Cycles> {
        std::mem::take(&mut self.arrivals)
    }

    /// Returns and resets the bucket count of the window just run (0 in
    /// rounds that ran no window, e.g. releases).
    fn take_window_buckets(&mut self) -> u64 {
        self.window_anchor = None;
        std::mem::take(&mut self.window_buckets)
    }
}

/// Window-driver parameters.
#[derive(Clone, Copy, Debug)]
pub struct Windowing {
    /// Minimum cross-node interaction latency (the WWT lookahead).
    pub lookahead: Cycles,
    /// Barrier release latency: release fires at `max_arrival + release_delay`.
    pub release_delay: Cycles,
    /// Number of barrier participants (arrivals per generation). The
    /// adaptive policy's owing-shard reasoning requires every node to
    /// participate in every generation, which both machines guarantee
    /// (their release asserts each node is at the barrier); `0` means
    /// "no barrier at all" and disables the release bounds entirely.
    pub barrier_expected: usize,
    /// Window-advance policy (see the module docs).
    pub policy: WindowPolicy,
    /// OS threads to spread the shards over; `0` means one per shard.
    /// Fewer threads than shards makes each worker multiplex a
    /// contiguous group of shards per round.
    pub threads: usize,
}

/// What every worker does next, decided by the window leader.
#[derive(Clone, Copy, Debug)]
enum Decision {
    /// All queues and inboxes are empty and no release is pending.
    Stop,
    /// Apply the barrier release at `at` to each shard's own nodes.
    Release { at: Cycles, generation: u64 },
    /// Run events with `time < ends[shard]` (per-shard bounds published
    /// in [`Shared::ends`]).
    Window,
}

/// Leader-maintained global state.
#[derive(Debug)]
struct DriverState {
    pending_release: Option<Cycles>,
    generation: u64,
    arrived: usize,
    max_arrival: Cycles,
    /// Telemetry: window rounds, leader decisions, estimated fixed-policy
    /// rounds the adaptive bounds skipped.
    windows: u64,
    rendezvous: u64,
    elided: u64,
}

/// Per-shard state published at the end of each act.
#[derive(Clone, Copy, Debug)]
struct ShardStatus {
    /// Earliest pending local event.
    head: Option<Cycles>,
    /// Nodes currently parked at the barrier.
    waiting: usize,
    /// Fixed-quantum buckets the previous window's pops spanned
    /// (telemetry for the leader's elision estimate).
    buckets: u64,
}

struct Shared<E> {
    rendezvous: Barrier,
    /// Head + barrier occupancy per shard, published at the end of each act.
    status: Vec<Mutex<ShardStatus>>,
    /// Per-shard window ends for the current [`Decision::Window`] round.
    ends: Mutex<Vec<Cycles>>,
    /// Node count of every shard (for the owing-shard test).
    shard_nodes: Vec<usize>,
    /// Cross-shard events routed but not yet drained by their owner.
    inboxes: Vec<Mutex<Vec<OutMsg<E>>>>,
    /// Owning shard of every node.
    node_shard: Vec<usize>,
    state: Mutex<DriverState>,
    decision: Mutex<Decision>,
    /// Telemetry: events dispatched inside windows / cross-shard
    /// messages routed at boundaries.
    events: AtomicU64,
    cross_messages: AtomicU64,
    panicked: AtomicBool,
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Runs a sharded machine to completion under the conservative window
/// scheme across `cfg.threads` OS threads (0 = one per shard; fewer
/// threads multiplex contiguous shard groups). `handle` dispatches one
/// event on a shard (setting the origin via [`ShardQueue::set_origin`]
/// before the machine handler runs); `release` applies a barrier
/// release at the given time and generation to the shard's own nodes,
/// scheduling the wakeups with the global origin. `target_of` reports
/// an event's target node (for horizon mirrors and inbox routing
/// sanity).
///
/// Returns the final simulated time (the maximum over shards) and the
/// run's [`PdesTelemetry`].
///
/// Panics raised by shard handlers are caught, the remaining workers
/// wound down at the next boundary, and the panic re-raised on the
/// calling thread — so a machine assertion behaves as it does
/// sequentially.
pub fn run_windows<E, S, H, R, T>(
    shards: &mut [S],
    queues: &mut [ShardQueue<E>],
    cfg: Windowing,
    handle: H,
    release: R,
    target_of: T,
) -> (Cycles, PdesTelemetry)
where
    E: Send,
    S: Send,
    H: Fn(&mut S, Cycles, E, &mut ShardQueue<E>) + Sync,
    R: Fn(&mut S, &mut ShardQueue<E>, Cycles, u64) + Sync,
    T: Fn(&E) -> Option<usize> + Sync,
{
    let n_shards = shards.len();
    assert_eq!(n_shards, queues.len());
    assert!(n_shards > 0, "at least one shard");
    assert!(cfg.lookahead > Cycles::ZERO, "lookahead must be positive");
    assert!(cfg.release_delay > Cycles::ZERO, "release delay must be positive");
    let threads = if cfg.threads == 0 {
        n_shards
    } else {
        cfg.threads.min(n_shards)
    };
    // A pending release may clamp any window; it must never land before
    // a window the shards have already executed.
    let quantum = cfg.lookahead.min(cfg.release_delay);

    let nodes = queues
        .iter()
        .map(|q| q.first_node + q.node_count)
        .max()
        .expect("non-empty");
    let mut node_shard = vec![usize::MAX; nodes];
    for (i, q) in queues.iter_mut().enumerate() {
        node_shard[q.first_node..q.first_node + q.node_count].fill(i);
        q.configure_windowing(i, cfg.lookahead, cfg.release_delay);
    }
    assert!(
        node_shard.iter().all(|&s| s != usize::MAX),
        "shards must cover all nodes"
    );

    let shared = Shared {
        rendezvous: Barrier::new(threads),
        status: queues
            .iter()
            .map(|q| {
                Mutex::new(ShardStatus {
                    head: q.peek_time(),
                    waiting: q.waiting(),
                    buckets: 0,
                })
            })
            .collect(),
        ends: Mutex::new(vec![Cycles::ZERO; n_shards]),
        shard_nodes: queues.iter().map(|q| q.node_count()).collect(),
        inboxes: (0..n_shards).map(|_| Mutex::new(Vec::new())).collect(),
        node_shard,
        state: Mutex::new(DriverState {
            pending_release: None,
            generation: 0,
            arrived: 0,
            max_arrival: Cycles::ZERO,
            windows: 0,
            rendezvous: 0,
            elided: 0,
        }),
        decision: Mutex::new(Decision::Stop),
        events: AtomicU64::new(0),
        cross_messages: AtomicU64::new(0),
        panicked: AtomicBool::new(false),
        panic_payload: Mutex::new(None),
    };

    std::thread::scope(|scope| {
        // Deal the shards into `threads` contiguous groups whose sizes
        // differ by at most one.
        let mut shards_rest: &mut [S] = shards;
        let mut queues_rest: &mut [ShardQueue<E>] = queues;
        let mut first = 0usize;
        for g in 0..threads {
            let size = n_shards / threads + usize::from(g < n_shards % threads);
            let (s_chunk, s_rest) =
                std::mem::take(&mut shards_rest).split_at_mut(size);
            let (q_chunk, q_rest) =
                std::mem::take(&mut queues_rest).split_at_mut(size);
            shards_rest = s_rest;
            queues_rest = q_rest;
            let shared = &shared;
            let handle = &handle;
            let release = &release;
            let target_of = &target_of;
            let base = first;
            scope.spawn(move || {
                worker(base, s_chunk, q_chunk, shared, cfg, quantum, handle, release, target_of)
            });
            first += size;
        }
    });

    if shared.panicked.load(Ordering::SeqCst) {
        let payload = shared
            .panic_payload
            .lock()
            .expect("payload lock")
            .take()
            .unwrap_or_else(|| Box::new("PDES worker panicked"));
        resume_unwind(payload);
    }

    let end = queues.iter().map(|q| q.now()).max().expect("non-empty");
    let events = shared.events.load(Ordering::SeqCst);
    let cross_messages = shared.cross_messages.load(Ordering::SeqCst);
    let st = shared.state.into_inner().expect("state lock");
    let telemetry = PdesTelemetry {
        windows: st.windows,
        rendezvous: st.rendezvous,
        rendezvous_elided: st.elided,
        events,
        cross_messages,
        releases: st.generation,
    };
    (end, telemetry)
}

/// Leader step: read the published heads, inboxes, and barrier arrivals
/// and decide the next round. For [`Decision::Window`], the per-shard
/// window ends are written to [`Shared::ends`].
fn decide<E>(shared: &Shared<E>, cfg: Windowing, quantum: Cycles) -> Decision {
    if shared.panicked.load(Ordering::SeqCst) {
        return Decision::Stop;
    }
    let n = shared.status.len();
    let mut head: Vec<Option<Cycles>> = Vec::with_capacity(n);
    let mut waiting: Vec<usize> = Vec::with_capacity(n);
    let mut max_buckets = 0u64;
    for status in &shared.status {
        let s = status.lock().expect("status lock");
        head.push(s.head);
        waiting.push(s.waiting);
        max_buckets = max_buckets.max(s.buckets);
    }
    // In-flight cross-shard messages bound their *target* shard exactly
    // like its pending local events.
    for (owner, inbox) in shared.inboxes.iter().enumerate() {
        for msg in inbox.lock().expect("inbox lock").iter() {
            head[owner] = Some(head[owner].map_or(msg.time, |h| h.min(msg.time)));
        }
    }
    let global_min = head.iter().flatten().min().copied();

    let mut st = shared.state.lock().expect("state lock");
    st.rendezvous += 1;
    // Elision estimate for the round just finished: a fixed driver
    // re-anchors each window at the then-current global minimum and
    // pops at least one event per round, so the fixed rounds this work
    // would have taken is (approximately) the largest number of
    // quantum-sized buckets any one shard's pops spanned — every bucket
    // beyond the first is a rendezvous the widened bounds skipped.
    if cfg.policy == WindowPolicy::Adaptive {
        st.elided += max_buckets.saturating_sub(1);
    }
    if st.pending_release.is_none() && st.arrived > 0 && st.arrived == cfg.barrier_expected {
        st.pending_release = Some(st.max_arrival + cfg.release_delay);
        st.arrived = 0;
        st.max_arrival = Cycles::ZERO;
    }
    match (global_min, st.pending_release) {
        (None, None) => Decision::Stop,
        (h, Some(at)) if h.is_none_or(|h| h >= at) => {
            st.pending_release = None;
            let generation = st.generation;
            st.generation += 1;
            Decision::Release { at, generation }
        }
        (Some(global_min), pending) => {
            st.windows += 1;
            let natural = global_min + quantum;
            let fixed_end = pending.map_or(natural, |at| natural.min(at));
            let mut ends = shared.ends.lock().expect("ends lock");
            match cfg.policy {
                WindowPolicy::Fixed => ends.fill(fixed_end),
                WindowPolicy::Adaptive => adaptive_ends(
                    &cfg, &head, &waiting, &shared.shard_nodes, &st, global_min, pending,
                    fixed_end, &mut ends,
                ),
            }
            Decision::Window
        }
        (None, Some(_)) => unreachable!("covered by the release arm"),
    }
}

/// Computes the adaptive per-shard window ends (see the module docs for
/// the soundness argument). Every end is at least `fixed_end`, so the
/// adaptive policy never makes less progress than the fixed one.
#[allow(clippy::too_many_arguments)] // leader-internal plumbing, one call site
fn adaptive_ends(
    cfg: &Windowing,
    head: &[Option<Cycles>],
    waiting: &[usize],
    shard_nodes: &[usize],
    st: &DriverState,
    global_min: Cycles,
    pending: Option<Cycles>,
    fixed_end: Cycles,
    ends: &mut [Cycles],
) {
    // Smallest and second-smallest heads, for min-excluding-self.
    let mut min1: Option<(Cycles, usize)> = None;
    let mut min2: Option<Cycles> = None;
    for (i, h) in head.iter().enumerate() {
        let Some(t) = *h else { continue };
        match min1 {
            None => min1 = Some((t, i)),
            Some((m, _)) if t < m => {
                min2 = Some(min2.map_or(m, |s| s.min(m)));
                min1 = Some((t, i));
            }
            Some(_) => min2 = Some(min2.map_or(t, |s| s.min(t))),
        }
    }
    let foreign_head = |i: usize| -> Option<Cycles> {
        match min1 {
            Some((m, j)) if j != i => Some(m),
            Some(_) => min2,
            None => None,
        }
    };
    // Lower bound on the arrival completing the current barrier
    // generation: each shard still owing one must yet produce an
    // arrival at or after its head (or after the global minimum, if its
    // future depends on in-flight replies), and arrivals already
    // recorded bound it from below too.
    let barrier = cfg.barrier_expected > 0;
    let mut any_owing = false;
    let mut release_lb = if st.arrived > 0 { st.max_arrival } else { Cycles::ZERO };
    if barrier {
        for i in 0..head.len() {
            if waiting[i] < shard_nodes[i] {
                any_owing = true;
                release_lb = release_lb.max(head[i].unwrap_or(global_min));
            }
        }
    }
    for (i, end) in ends.iter_mut().enumerate() {
        let mut e = match foreign_head(i) {
            Some(h) => h + cfg.lookahead,
            None => UNBOUNDED,
        };
        // A fully-waiting shard must not run past the earliest release
        // the still-computing shards could produce. Owing shards need
        // no leader clamp: their pops precede their own next arrival
        // (which precedes the release), and the queue-side arrival
        // clamp bounds the remainder of the window.
        if barrier && any_owing && waiting[i] == shard_nodes[i] {
            e = e.min(release_lb + cfg.release_delay);
        }
        if let Some(at) = pending {
            e = e.min(at);
        }
        *end = e.max(fixed_end);
    }
}

/// One worker thread's loop: rendezvous, (leader) decide, then act the
/// round out on every shard in this worker's contiguous group
/// (`first .. first + shards.len()`). With as many threads as shards
/// each group is a single shard; with fewer, the worker multiplexes.
/// Routing a finished shard's outbox before a groupmate later in the
/// same round acts is harmless: cross-shard messages land at or after
/// their target's window end, so the target cannot pop them this round.
#[allow(clippy::too_many_arguments)]
fn worker<E, S, H, R, T>(
    first: usize,
    shards: &mut [S],
    queues: &mut [ShardQueue<E>],
    shared: &Shared<E>,
    cfg: Windowing,
    quantum: Cycles,
    handle: &H,
    release: &R,
    target_of: &T,
) where
    E: Send,
    S: Send,
    H: Fn(&mut S, Cycles, E, &mut ShardQueue<E>) + Sync,
    R: Fn(&mut S, &mut ShardQueue<E>, Cycles, u64) + Sync,
    T: Fn(&E) -> Option<usize> + Sync,
{
    loop {
        if shared.rendezvous.wait().is_leader() {
            let d = decide(shared, cfg, quantum);
            *shared.decision.lock().expect("decision lock") = d;
        }
        shared.rendezvous.wait();
        let decision = *shared.decision.lock().expect("decision lock");
        for (k, (shard, queue)) in shards.iter_mut().zip(queues.iter_mut()).enumerate() {
            let index = first + k;
            let act = AssertUnwindSafe(|| match decision {
                Decision::Stop => {}
                Decision::Release { at, generation } => {
                    drain_inbox(index, queue, shared);
                    release(shard, queue, at, generation);
                    publish(index, queue, shared);
                }
                Decision::Window => {
                    drain_inbox(index, queue, shared);
                    let end = shared.ends.lock().expect("ends lock")[index];
                    queue.set_window_end(Some(end));
                    let mut handled = 0u64;
                    while let Some((now, ev)) = queue.pop(|e| target_of(e)) {
                        handle(shard, now, ev, queue);
                        handled += 1;
                    }
                    queue.set_window_end(None);
                    if handled > 0 {
                        shared.events.fetch_add(handled, Ordering::Relaxed);
                    }
                    let outbox = queue.take_outbox();
                    if !outbox.is_empty() {
                        shared
                            .cross_messages
                            .fetch_add(outbox.len() as u64, Ordering::Relaxed);
                        for msg in outbox {
                            let owner = shared.node_shard[msg.target];
                            debug_assert_ne!(owner, index, "own-shard event in outbox");
                            shared.inboxes[owner].lock().expect("inbox lock").push(msg);
                        }
                    }
                    let arrivals = queue.take_arrivals();
                    if !arrivals.is_empty() {
                        let mut st = shared.state.lock().expect("state lock");
                        st.arrived += arrivals.len();
                        for at in arrivals {
                            st.max_arrival = st.max_arrival.max(at);
                        }
                    }
                    publish(index, queue, shared);
                }
            });
            if let Err(payload) = catch_unwind(act) {
                shared.panicked.store(true, Ordering::SeqCst);
                let mut slot = shared.panic_payload.lock().expect("payload lock");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
        if matches!(decision, Decision::Stop) {
            break;
        }
    }
}

fn drain_inbox<E>(index: usize, queue: &mut ShardQueue<E>, shared: &Shared<E>) {
    let msgs = std::mem::take(&mut *shared.inboxes[index].lock().expect("inbox lock"));
    for msg in msgs {
        queue.deliver(msg);
    }
}

fn publish<E>(index: usize, queue: &mut ShardQueue<E>, shared: &Shared<E>) {
    let mut st = shared.status[index].lock().expect("status lock");
    st.head = queue.peek_time();
    st.waiting = queue.waiting();
    st.buckets = queue.take_window_buckets();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy machine: each node repeatedly sends a token to the next
    /// node with a fixed latency and bumps a per-node counter. Runs on
    /// any shard count; the counters and final time must match.
    #[derive(Clone, Debug, PartialEq)]
    struct Token {
        to: usize,
        hops_left: u32,
    }

    struct ToyShard {
        counts: Vec<u64>,
        first: usize,
    }

    const LATENCY: u64 = 11;

    fn toy_handle(s: &mut ToyShard, now: Cycles, ev: Token, q: &mut ShardQueue<Token>) {
        q.set_origin(ev.to);
        s.counts[ev.to - s.first] += 1;
        if ev.hops_left > 0 {
            let nodes = 8;
            let next = (ev.to + 1) % nodes;
            q.schedule_for(
                now + Cycles::new(LATENCY),
                next,
                Token {
                    to: next,
                    hops_left: ev.hops_left - 1,
                },
            );
        }
    }

    fn run_toy(n_shards: usize, policy: WindowPolicy, threads: usize) -> (Vec<u64>, Cycles) {
        let nodes = 8;
        let per = nodes / n_shards;
        let mut shards: Vec<ToyShard> = (0..n_shards)
            .map(|i| ToyShard {
                counts: vec![0; per],
                first: i * per,
            })
            .collect();
        let mut queues: Vec<ShardQueue<Token>> =
            (0..n_shards).map(|i| ShardQueue::new(i * per, per)).collect();
        // Every node starts a token at cycle 0.
        for n in 0..nodes {
            let q = &mut queues[n / per];
            q.set_origin(n);
            q.schedule_for(
                Cycles::ZERO,
                n,
                Token {
                    to: n,
                    hops_left: 40,
                },
            );
        }
        let end = if n_shards == 1 {
            let (shard, queue) = (&mut shards[0], &mut queues[0]);
            while let Some((now, ev)) = queue.pop(|e| Some(e.to)) {
                toy_handle(shard, now, ev, queue);
            }
            queue.now()
        } else {
            run_windows(
                &mut shards,
                &mut queues,
                Windowing {
                    lookahead: Cycles::new(LATENCY),
                    release_delay: Cycles::new(LATENCY),
                    barrier_expected: nodes,
                    policy,
                    threads,
                },
                toy_handle,
                |_s, _q, _at, _gen| unreachable!("toy machine has no barrier"),
                |e: &Token| Some(e.to),
            )
            .0
        };
        let mut counts = vec![0; nodes];
        for s in &shards {
            for (i, c) in s.counts.iter().enumerate() {
                counts[s.first + i] = *c;
            }
        }
        (counts, end)
    }

    #[test]
    fn toy_machine_is_identical_across_shard_counts() {
        let seq = run_toy(1, WindowPolicy::Fixed, 0);
        for shards in [2, 4, 8] {
            for policy in [WindowPolicy::Fixed, WindowPolicy::Adaptive] {
                for threads in [0, 1, 2] {
                    assert_eq!(
                        run_toy(shards, policy, threads),
                        seq,
                        "diverged at {shards} shards, {policy:?}, {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn inline_barrier_completes_and_resets() {
        let mut q: ShardQueue<u32> = ShardQueue::new(0, 4);
        q.enable_inline_barrier(4, Cycles::new(11));
        assert_eq!(q.note_barrier_arrival(Cycles::new(5)), None);
        assert_eq!(q.note_barrier_arrival(Cycles::new(9)), None);
        assert_eq!(q.note_barrier_arrival(Cycles::new(7)), None);
        assert_eq!(
            q.note_barrier_arrival(Cycles::new(8)),
            Some(Cycles::new(20)),
            "release at max arrival + delay"
        );
        // Next generation starts clean.
        assert_eq!(q.note_barrier_arrival(Cycles::new(30)), None);
    }

    #[test]
    fn windowed_arrivals_accumulate_for_the_driver() {
        let mut q: ShardQueue<u32> = ShardQueue::new(0, 4);
        assert_eq!(q.note_barrier_arrival(Cycles::new(5)), None);
        assert_eq!(q.note_barrier_arrival(Cycles::new(9)), None);
        assert_eq!(q.take_arrivals(), vec![Cycles::new(5), Cycles::new(9)]);
        assert!(q.take_arrivals().is_empty());
    }

    #[test]
    fn global_origin_sorts_before_node_origins() {
        let mut q: ShardQueue<u32> = ShardQueue::new(0, 2);
        q.enable_inline_barrier(2, Cycles::new(1));
        q.set_origin(0);
        q.schedule_for(Cycles::new(5), 0, 100);
        q.set_origin_global();
        q.schedule_global(Cycles::new(5), 999);
        q.set_origin(1);
        q.schedule_for(Cycles::new(5), 1, 101);
        let mut order = Vec::new();
        let target = |e: &u32| if *e == 999 { None } else { Some((*e - 100) as usize) };
        while let Some((_, e)) = q.pop(target) {
            order.push(e);
        }
        assert_eq!(order, vec![999, 100, 101]);
    }

    #[test]
    fn cross_shard_events_go_to_the_outbox_with_stable_keys() {
        let mut a: ShardQueue<u32> = ShardQueue::new(0, 2);
        let mut b: ShardQueue<u32> = ShardQueue::new(2, 2);
        a.set_origin(1);
        a.schedule_for(Cycles::new(20), 3, 7);
        assert!(a.is_empty(), "foreign event must not enter the local queue");
        let out = a.take_outbox();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].target, 3);
        // Origin id = node 1 + 1 = 2, first counter value 1.
        assert_eq!(out[0].key, (2 << 32) | 1);
        b.deliver(out.into_iter().next().unwrap());
        assert_eq!(b.pop(|_| Some(3)), Some((Cycles::new(20), 7)));
    }

    #[test]
    #[should_panic(expected = "faster than the lookahead bound")]
    fn cross_shard_event_under_lookahead_panics() {
        let mut q: ShardQueue<u32> = ShardQueue::new(0, 2);
        q.configure_windowing(0, Cycles::new(11), Cycles::new(11));
        q.set_window_end(Some(Cycles::new(50)));
        q.set_origin(0);
        q.schedule_for(Cycles::new(5), 5, 1);
    }

    #[test]
    fn cross_shard_event_at_exact_lookahead_is_accepted() {
        let mut q: ShardQueue<u32> = ShardQueue::new(0, 2);
        q.configure_windowing(0, Cycles::new(11), Cycles::new(11));
        q.set_window_end(Some(Cycles::new(50)));
        q.set_origin(0);
        q.schedule_for(Cycles::new(11), 5, 1);
        assert_eq!(q.take_outbox().len(), 1);
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let nodes = 4;
        let mut shards = vec![(), ()];
        let mut queues: Vec<ShardQueue<u32>> =
            (0..2).map(|i| ShardQueue::new(i * 2, 2)).collect();
        for n in 0..nodes {
            let q = &mut queues[n / 2];
            q.set_origin(n);
            q.schedule_for(Cycles::ZERO, n, n as u32);
        }
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_windows(
                &mut shards,
                &mut queues,
                Windowing {
                    lookahead: Cycles::new(11),
                    release_delay: Cycles::new(11),
                    barrier_expected: nodes,
                    policy: WindowPolicy::Fixed,
                    threads: 0,
                },
                |_s: &mut (), _now, ev: u32, _q: &mut ShardQueue<u32>| {
                    assert!(ev != 3, "planted failure on node 3");
                },
                |_s, _q, _at, _gen| {},
                |e: &u32| Some(*e as usize),
            )
        }));
        assert!(result.is_err(), "the planted panic must reach the caller");
    }

    /// A barrier-phase toy: node `n` performs `5 + 25 * n` unit-latency
    /// local steps, parks at the barrier, and resumes on the release —
    /// for `ROUNDS` generations. The work skew makes fixed windows crawl
    /// (every shard re-rendezvouses each quantum while one shard works),
    /// which is exactly what adaptive windows elide.
    #[derive(Clone, Debug)]
    enum BEv {
        Step { node: usize, left: u32 },
        Release,
    }

    struct BShard {
        first: usize,
        count: usize,
        rounds_left: u32,
        steps: Vec<u64>,
    }

    const B_NODES: usize = 4;
    const B_ROUNDS: u32 = 3;

    fn b_work(node: usize) -> u32 {
        5 + 25 * node as u32
    }

    fn b_target(e: &BEv) -> Option<usize> {
        match e {
            BEv::Step { node, .. } => Some(*node),
            BEv::Release => None,
        }
    }

    fn b_handle(s: &mut BShard, now: Cycles, ev: BEv, q: &mut ShardQueue<BEv>) {
        match ev {
            BEv::Step { node, left } => {
                q.set_origin(node);
                s.steps[node - s.first] += 1;
                if left > 0 {
                    q.schedule_for(
                        now + Cycles::new(1),
                        node,
                        BEv::Step {
                            node,
                            left: left - 1,
                        },
                    );
                } else if let Some(at) = q.note_barrier_arrival(now) {
                    // Inline (single-shard) mode completes the barrier
                    // locally; windowed mode returns None and the driver
                    // releases through the hook instead.
                    q.set_origin_global();
                    q.schedule_global(at, BEv::Release);
                }
            }
            BEv::Release => {
                if s.rounds_left == 0 {
                    return;
                }
                s.rounds_left -= 1;
                for node in s.first..s.first + s.count {
                    q.schedule_wakeup(
                        now,
                        node,
                        BEv::Step {
                            node,
                            left: b_work(node),
                        },
                    );
                }
            }
        }
    }

    fn run_barrier_toy(
        n_shards: usize,
        policy: WindowPolicy,
        threads: usize,
    ) -> (Vec<u64>, Cycles, PdesTelemetry) {
        let per = B_NODES / n_shards;
        let mut shards: Vec<BShard> = (0..n_shards)
            .map(|i| BShard {
                first: i * per,
                count: per,
                rounds_left: B_ROUNDS - 1,
                steps: vec![0; per],
            })
            .collect();
        let mut queues: Vec<ShardQueue<BEv>> =
            (0..n_shards).map(|i| ShardQueue::new(i * per, per)).collect();
        for n in 0..B_NODES {
            let q = &mut queues[n / per];
            if n_shards == 1 {
                q.enable_inline_barrier(B_NODES, Cycles::new(LATENCY));
            }
            q.set_origin(n);
            q.schedule_for(
                Cycles::ZERO,
                n,
                BEv::Step {
                    node: n,
                    left: b_work(n),
                },
            );
        }
        let (end, telemetry) = if n_shards == 1 {
            let (shard, queue) = (&mut shards[0], &mut queues[0]);
            while let Some((now, ev)) = queue.pop(b_target) {
                b_handle(shard, now, ev, queue);
            }
            (queue.now(), PdesTelemetry::default())
        } else {
            run_windows(
                &mut shards,
                &mut queues,
                Windowing {
                    lookahead: Cycles::new(LATENCY),
                    release_delay: Cycles::new(LATENCY),
                    barrier_expected: B_NODES,
                    policy,
                    threads,
                },
                b_handle,
                |_s: &mut BShard, q: &mut ShardQueue<BEv>, at, generation| {
                    q.deliver_release(at, generation, BEv::Release)
                },
                b_target,
            )
        };
        let mut steps = vec![0; B_NODES];
        for s in &shards {
            for (i, c) in s.steps.iter().enumerate() {
                steps[s.first + i] = *c;
            }
        }
        (steps, end, telemetry)
    }

    #[test]
    fn barrier_toy_is_identical_across_policies_and_threads() {
        let (seq_steps, seq_end, _) = run_barrier_toy(1, WindowPolicy::Fixed, 0);
        assert_eq!(seq_steps, vec![18, 93, 168, 243], "3 rounds of 5+25n+1 steps");
        for n_shards in [2, 4] {
            for policy in [WindowPolicy::Fixed, WindowPolicy::Adaptive] {
                for threads in [0, 1, 2, 3] {
                    let (steps, end, _) = run_barrier_toy(n_shards, policy, threads);
                    assert_eq!(
                        (steps, end),
                        (seq_steps.clone(), seq_end),
                        "diverged at {n_shards} shards, {policy:?}, {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn adaptive_windows_elide_rendezvous_on_skewed_barrier_phases() {
        let (_, _, fixed) = run_barrier_toy(4, WindowPolicy::Fixed, 0);
        let (_, _, adaptive) = run_barrier_toy(4, WindowPolicy::Adaptive, 0);
        assert!(
            adaptive.windows < fixed.windows,
            "adaptive must batch idle windows: {adaptive:?} vs {fixed:?}"
        );
        assert!(
            adaptive.rendezvous < fixed.rendezvous,
            "adaptive must rendezvous less: {adaptive:?} vs {fixed:?}"
        );
        assert!(adaptive.rendezvous_elided > 0, "elision telemetry: {adaptive:?}");
        assert_eq!(fixed.rendezvous_elided, 0, "fixed policy elides nothing");
        assert_eq!(adaptive.releases, u64::from(B_ROUNDS));
        assert_eq!(adaptive.events, fixed.events, "same simulation, same events");
    }

    /// Regression: a widened shard receives a message landing exactly at
    /// its granted (wider-than-fixed) window edge. Shard 0 holds the
    /// global minimum and local work straddling the edge; shard 1 pops
    /// far ahead of it and sends at exactly `now + lookahead`. The token
    /// must interleave with shard 0's local steps exactly as it does
    /// sequentially.
    #[derive(Clone, Debug)]
    enum WEv {
        Tick { t_next: u64 },
        Fire,
        Token,
    }

    #[derive(Default)]
    struct WShard {
        log: Vec<(u64, &'static str)>,
    }

    fn w_target(e: &WEv) -> Option<usize> {
        match e {
            WEv::Tick { .. } | WEv::Token => Some(0),
            WEv::Fire => Some(1),
        }
    }

    fn w_handle(s: &mut WShard, now: Cycles, ev: WEv, q: &mut ShardQueue<WEv>) {
        match ev {
            WEv::Tick { t_next } => {
                q.set_origin(0);
                s.log.push((now.raw(), "tick"));
                if t_next <= 130 {
                    q.schedule_for(
                        Cycles::new(t_next),
                        0,
                        WEv::Tick { t_next: t_next + 2 },
                    );
                }
            }
            WEv::Fire => {
                q.set_origin(1);
                s.log.push((now.raw(), "fire"));
                // Exactly at the lookahead bound: lands at shard 0's
                // already-granted widened window edge (100 + 11).
                q.schedule_for(now + Cycles::new(LATENCY), 0, WEv::Token);
            }
            WEv::Token => {
                q.set_origin(0);
                s.log.push((now.raw(), "token"));
            }
        }
    }

    fn run_widened(n_shards: usize, policy: WindowPolicy) -> Vec<(u64, &'static str)> {
        assert!(n_shards == 1 || n_shards == 2);
        let mut shards: Vec<WShard> = (0..n_shards).map(|_| WShard::default()).collect();
        let mut log = Vec::new();
        if n_shards == 1 {
            // One shard owning both nodes: the sequential reference.
            let mut q: ShardQueue<WEv> = ShardQueue::new(0, 2);
            q.set_origin(0);
            q.schedule_for(Cycles::ZERO, 0, WEv::Tick { t_next: 2 });
            q.set_origin(1);
            q.schedule_for(Cycles::new(100), 1, WEv::Fire);
            let shard = &mut shards[0];
            while let Some((now, ev)) = q.pop(w_target) {
                w_handle(shard, now, ev, &mut q);
            }
            log.append(&mut shard.log);
        } else {
            let mut queues: Vec<ShardQueue<WEv>> =
                (0..n_shards).map(|i| ShardQueue::new(i, 1)).collect();
            queues[0].set_origin(0);
            queues[0].schedule_for(Cycles::ZERO, 0, WEv::Tick { t_next: 2 });
            queues[1].set_origin(1);
            queues[1].schedule_for(Cycles::new(100), 1, WEv::Fire);
            run_windows(
                &mut shards,
                &mut queues,
                Windowing {
                    lookahead: Cycles::new(LATENCY),
                    release_delay: Cycles::new(LATENCY),
                    barrier_expected: 0,
                    policy,
                    threads: 0,
                },
                w_handle,
                |_s, _q, _at, _gen| unreachable!("no barrier in this toy"),
                w_target,
            );
            for s in &mut shards {
                log.append(&mut s.log);
            }
        }
        // Per-shard logs are concatenated; order them on (time, tag) so
        // sequential and sharded runs compare structurally.
        log.sort();
        log
    }

    #[test]
    fn widened_shard_receives_message_at_its_old_window_edge() {
        let seq = run_widened(1, WindowPolicy::Fixed);
        assert!(seq.contains(&(111, "token")), "token at fire + lookahead: {seq:?}");
        assert_eq!(run_widened(2, WindowPolicy::Fixed), seq);
        assert_eq!(run_widened(2, WindowPolicy::Adaptive), seq);
    }
}
