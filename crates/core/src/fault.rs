//! Fault records delivered to user-level handlers.
//!
//! Two kinds of fault suspend a computation thread and invoke protocol
//! code:
//!
//! - a **page fault** (Section 2.3): the accessed virtual page is not
//!   mapped (or a write hit a read-only page);
//! - a **block access fault** (Section 2.4): the page is mapped, but the
//!   accessed 32-byte block's tag forbids the access.
//!
//! On Typhoon, a block access fault is detected by the NP's bus monitor;
//! the RTLB entry supplies the handler with the virtual page, the page
//! *mode* (a 4-bit value that selects the handler), and uninterpreted
//! user state (home node id, directory pointer, ...). [`BlockFault`]
//! carries exactly that information.

use tt_base::{NodeId, VAddr};
use tt_mem::{AccessKind, PageMeta, Tag};
use tt_net::VirtualNet;

use crate::msg::HandlerId;

/// Identifies a suspended computation thread awaiting `resume`.
///
/// The paper's model has one computation thread per node (plus logically
/// concurrent message threads); machines use the node index as the
/// thread handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub NodeId);

impl ThreadId {
    /// The node whose computation thread this is.
    #[inline]
    pub fn node(self) -> NodeId {
        self.0
    }
}

/// A page fault: access to an unmapped page in the user-managed segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageFault {
    /// The suspended thread.
    pub thread: ThreadId,
    /// The faulting virtual address.
    pub addr: VAddr,
    /// Load or store.
    pub kind: AccessKind,
}

/// A block access fault: the block's tag forbids the access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockFault {
    /// The suspended thread.
    pub thread: ThreadId,
    /// The faulting virtual address.
    pub addr: VAddr,
    /// Load or store.
    pub kind: AccessKind,
    /// The tag that caused the fault (`ReadOnly` write, `Invalid`/`Busy`
    /// any access).
    pub tag: Tag,
    /// RTLB-supplied page metadata: mode and user words.
    pub meta: PageMeta,
}

/// A network fault a reliable transport could not recover from: every
/// retransmission of a message was lost (or unacknowledged) until the
/// retry budget ran out.
///
/// This is the graceful-degradation path for lossy-network runs: rather
/// than retrying forever (which would hang the simulation behind a
/// permanently partitioned link), the transport raises a Tempest-visible
/// fault through [`crate::TempestCtx::raise_net_fault`] and the machine
/// terminates the run with a deterministic diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetFault {
    /// The node whose transport gave up.
    pub node: NodeId,
    /// The unreachable destination.
    pub dst: NodeId,
    /// Virtual network the lost message traveled on.
    pub vn: VirtualNet,
    /// Handler the lost message named.
    pub handler: HandlerId,
    /// Retransmissions attempted before giving up.
    pub retries: u32,
}

impl std::fmt::Display for NetFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "network fault: node {} gave up on {:?} message {:?} to node {} after {} retries",
            self.node.index(),
            self.vn,
            self.handler,
            self.dst.index(),
            self.retries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_names_its_node() {
        let t = ThreadId(NodeId::new(4));
        assert_eq!(t.node(), NodeId::new(4));
    }

    #[test]
    fn fault_records_carry_context() {
        let f = BlockFault {
            thread: ThreadId(NodeId::new(1)),
            addr: VAddr::new(0x1000_0020),
            kind: AccessKind::Store,
            tag: Tag::ReadOnly,
            meta: PageMeta {
                vpn: Some(VAddr::new(0x1000_0020).page()),
                mode: 2,
                user: [9, 0xdead],
            },
        };
        assert_eq!(f.meta.user[0], 9);
        assert!(f.kind.is_store());
        assert_eq!(f.tag, Tag::ReadOnly);
    }

    #[test]
    fn net_fault_displays_its_context() {
        let f = NetFault {
            node: NodeId::new(3),
            dst: NodeId::new(5),
            vn: VirtualNet::Request,
            handler: HandlerId(0x12),
            retries: 24,
        };
        let s = f.to_string();
        assert!(s.contains("node 3"), "{s}");
        assert!(s.contains("node 5"), "{s}");
        assert!(s.contains("24 retries"), "{s}");
    }
}
