//! The [`Protocol`] trait: user-level shared-memory policy code.
//!
//! One `Protocol` value runs on each node's network interface processor.
//! The machine invokes it for page faults, block access faults, incoming
//! messages, and explicit application calls; the protocol reacts through
//! the [`TempestCtx`] it is handed. Handlers run atomically and to
//! completion (Section 5.1's non-preemptive scheduling), which the
//! single-threaded simulation provides by construction.
//!
//! The paper's argument is that this interface is *sufficient* to build
//! transparent shared memory (Stache, `tt-stache::stache`), message
//! passing (trivially), and hybrid protocols (the EM3D delayed-update
//! protocol, `tt-stache::custom`) — all in user-level software.

use tt_base::stats::Report;

use crate::ctx::TempestCtx;
use crate::fault::{BlockFault, PageFault, ThreadId};
use crate::inspect::BlockDirSnapshot;
use crate::msg::Message;

/// An application's explicit call into its protocol library.
///
/// Custom protocols export operations the application invokes directly —
/// for EM3D, the end-of-phase flush that replaces the barrier. The
/// calling thread is suspended until the protocol resumes it, so a call
/// can implement blocking synchronization (e.g. a fuzzy barrier).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UserCall {
    /// Protocol-defined operation code.
    pub op: u32,
    /// Protocol-defined argument.
    pub arg: u64,
}

/// User-level shared-memory policy code for one node.
///
/// `Send` because the parallel simulator moves each node's protocol to
/// the OS thread running that node's shard; a protocol still only ever
/// executes on one thread at a time (handlers stay atomic).
pub trait Protocol: Send {
    /// Called once before the simulation starts, after all nodes'
    /// protocols are constructed; typically maps home pages and
    /// initializes directories.
    fn init(&mut self, _ctx: &mut dyn TempestCtx) {}

    /// Handles an access to an unmapped page of the user-managed segment.
    /// Must eventually lead to `ctx.resume(fault.thread)`.
    fn on_page_fault(&mut self, ctx: &mut dyn TempestCtx, fault: PageFault);

    /// Handles a block access fault. Must eventually lead to
    /// `ctx.resume(fault.thread)` (usually after a remote block arrives).
    fn on_block_fault(&mut self, ctx: &mut dyn TempestCtx, fault: BlockFault);

    /// Handles an incoming active message.
    fn on_message(&mut self, ctx: &mut dyn TempestCtx, msg: Message);

    /// Handles a protocol timer armed with [`TempestCtx::set_timer`]
    /// firing. Firings may be spurious (a timer re-armed later still
    /// fires at its old deadline), so implementations must re-check
    /// their own state. The default ignores timers.
    fn on_timer(&mut self, _ctx: &mut dyn TempestCtx, _token: u64) {}

    /// Handles an explicit application call. The calling thread is
    /// suspended; the default implementation resumes it immediately
    /// (i.e. unknown calls are no-ops).
    fn on_user_call(&mut self, ctx: &mut dyn TempestCtx, thread: ThreadId, _call: UserCall) {
        ctx.resume(thread);
    }

    /// A short name for reports ("stache", "em3d-update", ...).
    fn name(&self) -> &'static str {
        "protocol"
    }

    /// Appends protocol-specific statistics to a report.
    fn report(&self, _report: &mut Report) {}

    /// Appends snapshots of the home-block directory entries this node
    /// maintains, for the `tt-check` tag/directory-agreement invariant.
    /// The default exposes nothing: protocols without a directory (or
    /// that opt out of checking) need no changes, and production runs
    /// never call this.
    fn inspect_directory(&self, _out: &mut Vec<BlockDirSnapshot>) {}
}
