//! [`TempestCtx`] — the machine services available to protocol handlers.
//!
//! A protocol handler runs on the node's network interface processor and
//! interacts with the machine exclusively through this trait: sending
//! messages, managing the node's address space, manipulating fine-grain
//! access tags, moving data with force reads/writes, charging its own
//! execution cost, and resuming suspended computation threads.
//!
//! `TempestCtx` is an object-safe trait so that protocol crates compile
//! independently of any particular machine; `tt-typhoon` provides the
//! real implementation, and tests use lightweight mock contexts.

use tt_base::addr::{Ppn, VAddr, Vpn, BLOCK_BYTES};
use tt_base::{Cycles, NodeId};
use tt_mem::ptable::MapError;
use tt_mem::{PageMeta, Tag};
use tt_net::{Payload, VirtualNet};

use crate::bulk::BulkRequest;
use crate::fault::{NetFault, ThreadId};
use crate::msg::HandlerId;

/// Errors surfaced to protocol handlers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TempestError {
    /// A page-table operation failed.
    Map(MapError),
    /// The virtual address is not mapped on this node.
    NotMapped(VAddr),
}

impl std::fmt::Display for TempestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TempestError::Map(e) => write!(f, "{e}"),
            TempestError::NotMapped(a) => write!(f, "address {a} is not mapped"),
        }
    }
}

impl std::error::Error for TempestError {}

impl From<MapError> for TempestError {
    fn from(e: MapError) -> Self {
        TempestError::Map(e)
    }
}

/// Machine services available to user-level protocol handlers.
///
/// # Cost accounting
///
/// Handler execution time is charged explicitly: structural costs
/// (dispatch, message send/receive occupancy) are charged by the machine,
/// and each handler charges its own instruction count via
/// [`TempestCtx::charge`] — mirroring the paper's methodology of counting
/// NP instructions at one cycle each. Accesses to protocol data
/// structures (directories, copy lists) go through
/// [`TempestCtx::protocol_data_access`], which simulates the NP's data
/// cache and charges a memory delay on a miss.
pub trait TempestCtx {
    /// This node's id.
    fn node(&self) -> NodeId;

    /// Total nodes in the machine.
    fn nodes(&self) -> usize;

    /// Current simulated time.
    fn now(&self) -> Cycles;

    /// Charges `instructions` NP instructions (one cycle each) to the
    /// currently running handler.
    fn charge(&mut self, instructions: u64);

    /// Models an NP access to a protocol data structure identified by a
    /// stable key (e.g. a directory entry's address); charges the NP
    /// data-cache hit or miss cost.
    fn protocol_data_access(&mut self, key: u64);

    // --- Messages (Section 2.1) ---

    /// Sends an active message. Requests must travel on
    /// [`VirtualNet::Request`] and responses on [`VirtualNet::Response`]
    /// for the protocol to be deadlock-free (Section 5.1).
    fn send(&mut self, dst: NodeId, vn: VirtualNet, handler: HandlerId, payload: Payload);

    // --- Bulk transfer (Section 2.2) ---

    /// Starts an asynchronous bulk transfer; the machine packetizes it and
    /// invokes the requested completion handlers when it finishes.
    fn bulk_transfer(&mut self, request: BulkRequest);

    // --- Protocol timers (retransmission support) ---

    /// Arms (or re-arms) a protocol timer: at cycle `at` (clamped to no
    /// earlier than now) the machine invokes
    /// [`crate::Protocol::on_timer`] with `token` on this node's NP.
    /// Timers are a machine service like message delivery: the firing is
    /// an ordinary NP work item, so it participates in the same
    /// deterministic event order as everything else.
    ///
    /// The default panics: a machine (or mock) that hands protocols no
    /// timer facility cannot host a retransmitting transport.
    fn set_timer(&mut self, at: Cycles, token: u64) {
        let _ = (at, token);
        panic!("this machine does not support protocol timers");
    }

    /// Reports an unrecoverable network fault (a reliable transport
    /// exhausted its retry budget). The default terminates the run with
    /// the fault's diagnostic — deterministic graceful degradation
    /// rather than a silent hang behind a dead link.
    fn raise_net_fault(&mut self, fault: NetFault) {
        panic!("{fault}");
    }

    // --- Virtual memory management (Section 2.3) ---

    /// Allocates a zeroed local physical page (all block tags `Invalid`).
    fn alloc_page(&mut self) -> Ppn;

    /// Frees a local physical page.
    fn free_page(&mut self, ppn: Ppn);

    /// Maps `vpn` to the local frame `ppn`.
    ///
    /// # Errors
    ///
    /// Fails if `vpn` is already mapped.
    fn map_page(&mut self, vpn: Vpn, ppn: Ppn) -> Result<(), TempestError>;

    /// Unmaps `vpn`, returning the frame it mapped. Flushes the TLBs.
    ///
    /// # Errors
    ///
    /// Fails if `vpn` is not mapped.
    fn unmap_page(&mut self, vpn: Vpn) -> Result<Ppn, TempestError>;

    /// The frame `vpn` maps to, if any.
    fn translate(&self, vpn: Vpn) -> Option<Ppn>;

    /// Reads the RTLB-visible metadata of the frame mapping `vpn`.
    fn page_meta(&self, vpn: Vpn) -> Option<PageMeta>;

    /// Writes the RTLB-visible metadata of the frame mapping `vpn`.
    ///
    /// # Panics
    ///
    /// Panics if `vpn` is not mapped.
    fn set_page_meta(&mut self, vpn: Vpn, meta: PageMeta);

    /// Bytes of local physical memory currently allocated (for protocols
    /// that manage a replacement budget).
    fn allocated_bytes(&self) -> usize;

    // --- Fine-grain access control (Section 2.4, Table 1) ---

    /// `read-tag`: the tag of the block containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not mapped (protocol bug: on Typhoon an NP
    /// page fault is a user programming error that terminates the
    /// program, Section 5.1).
    fn read_tag(&self, addr: VAddr) -> Tag;

    /// `set-RW` / `set-RO` / `invalidate` / Busy marking: sets the tag of
    /// the block containing `addr`, and keeps the primary CPU's cache
    /// consistent with the new tag (downgrading or purging its copy as
    /// required, as the NP does via MBus transactions).
    fn set_tag(&mut self, addr: VAddr, tag: Tag);

    /// Sets every block tag on the page at `vpn` (page initialization).
    fn set_page_tags(&mut self, vpn: Vpn, tag: Tag);

    /// Table 1 `invalidate`: tag := `Invalid` and purge local cached
    /// copies. Equivalent to `set_tag(addr, Tag::Invalid)`.
    fn invalidate_block(&mut self, addr: VAddr) {
        self.set_tag(addr, Tag::Invalid);
    }

    /// `force-read` of one word (no tag check).
    fn force_read_word(&mut self, addr: VAddr) -> u64;

    /// `force-write` of one word (no tag check).
    fn force_write_word(&mut self, addr: VAddr, value: u64);

    /// `force-read` of the whole block containing `addr`.
    fn force_read_block(&mut self, addr: VAddr) -> [u8; BLOCK_BYTES];

    /// `force-write` of the whole block containing `addr`.
    fn force_write_block(&mut self, addr: VAddr, block: &[u8; BLOCK_BYTES]);

    /// `resume`: unsuspends a thread previously stopped by a fault or a
    /// blocking protocol call; the thread retries its access.
    fn resume(&mut self, thread: ThreadId);
}
