//! Checking support: the virtual-net discipline and directory snapshots.
//!
//! The `tt-check` subsystem (crates/check) installs observers into a
//! running machine and asserts coherence invariants at every event
//! boundary. Two of those invariants need cooperation from the protocol
//! layer, which this module provides:
//!
//! - **Virtual-net discipline** ([`VnPolicy`]): the two-network
//!   deadlock-freedom argument (Section 5.1) requires every handler's
//!   messages to travel on one fixed virtual network, with the
//!   request/response pairing forming no waits-for cycle. A protocol
//!   publishes its handler→net map as a `VnPolicy`; [`VnPolicy::assert_send`]
//!   is the single rule enforced both by [`crate::testing::MockCtx`] in
//!   unit tests and by the `tt-check` invariant engine at machine level.
//!   Note the rule is a *declared map*, not a structural "requests only
//!   beget responses": Stache's final-ACK handler legally issues fresh
//!   Request-net INV/RECALL messages when it drains its deferred queue.
//!
//! - **Directory snapshots** ([`BlockDirSnapshot`]): the tag/directory
//!   agreement invariant compares a home node's directory state against
//!   the block tags of every cached copy. Protocols that keep a directory
//!   expose it via [`crate::Protocol::inspect_directory`]; the default is
//!   to expose nothing, so protocols without directories need no changes.

use tt_base::addr::VAddr;
use tt_base::{FxHashMap, NodeId};
use tt_net::VirtualNet;

use crate::msg::HandlerId;

/// The declared virtual network for every handler of a protocol.
///
/// # Example
///
/// ```
/// use tt_tempest::inspect::VnPolicy;
/// use tt_tempest::HandlerId;
/// use tt_net::VirtualNet;
///
/// let policy = VnPolicy::new()
///     .expect(HandlerId(0x10), VirtualNet::Request)
///     .expect(HandlerId(0x12), VirtualNet::Response);
/// policy.assert_send(HandlerId(0x10), VirtualNet::Request); // fine
/// assert!(policy.expected(HandlerId(0x99)).is_none()); // unregistered
/// ```
#[derive(Clone, Debug, Default)]
pub struct VnPolicy {
    map: FxHashMap<u32, VirtualNet>,
}

impl VnPolicy {
    /// An empty policy (every handler unregistered, nothing asserted).
    pub fn new() -> Self {
        VnPolicy::default()
    }

    /// Declares the virtual network `handler` must travel on.
    ///
    /// # Panics
    ///
    /// Panics if the handler was already declared for the *other* net —
    /// a handler with two nets would break the waits-for argument.
    pub fn expect(mut self, handler: HandlerId, vn: VirtualNet) -> Self {
        let prev = self.map.insert(handler.raw(), vn);
        assert!(
            prev.is_none() || prev == Some(vn),
            "handler {handler:?} declared for both virtual nets"
        );
        self
    }

    /// The declared net for `handler`, or `None` if unregistered.
    pub fn expected(&self, handler: HandlerId) -> Option<VirtualNet> {
        self.map.get(&handler.raw()).copied()
    }

    /// Number of declared handlers.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no handlers are declared.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Asserts that sending `handler` on `vn` respects the policy.
    /// Handlers the policy does not know are allowed (tests and custom
    /// protocols may use private handler ids).
    ///
    /// # Panics
    ///
    /// Panics with a "virtual-net violation" message if the handler is
    /// declared for the other network.
    pub fn assert_send(&self, handler: HandlerId, vn: VirtualNet) {
        if let Some(expected) = self.expected(handler) {
            assert!(
                expected == vn,
                "virtual-net violation: handler {handler:?} sent on {vn:?} \
                 but is declared for {expected:?}; responses must never wait \
                 behind requests"
            );
        }
    }
}

/// A home directory entry's coherence state, as seen by checkers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirSnapshotState {
    /// No remote copies; the home's copy is the only one.
    Idle,
    /// Read-only copies at these nodes (sharer pointers may be stale
    /// supersets: Stache drops page frames silently, Section 3).
    Shared(Vec<NodeId>),
    /// One writable copy at this node.
    Exclusive(NodeId),
}

/// Snapshot of one home block's directory entry
/// (see [`crate::Protocol::inspect_directory`]).
#[derive(Clone, Debug)]
pub struct BlockDirSnapshot {
    /// Virtual address of the block (block-aligned).
    pub addr: VAddr,
    /// The home node that owns this directory entry.
    pub home: NodeId,
    /// Coherence state of the entry.
    pub state: DirSnapshotState,
    /// Whether a transaction is in flight for this block. Busy entries
    /// are mid-transition and exempt from tag/directory agreement.
    pub busy: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_allows_declared_and_unknown_handlers() {
        let p = VnPolicy::new().expect(HandlerId(1), VirtualNet::Request);
        p.assert_send(HandlerId(1), VirtualNet::Request);
        p.assert_send(HandlerId(2), VirtualNet::Response); // unregistered: ok
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "virtual-net violation")]
    fn policy_rejects_wrong_net() {
        let p = VnPolicy::new().expect(HandlerId(1), VirtualNet::Response);
        p.assert_send(HandlerId(1), VirtualNet::Request);
    }

    #[test]
    #[should_panic(expected = "both virtual nets")]
    fn double_declaration_on_other_net_panics() {
        let _ = VnPolicy::new()
            .expect(HandlerId(1), VirtualNet::Request)
            .expect(HandlerId(1), VirtualNet::Response);
    }
}
