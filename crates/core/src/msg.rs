//! Low-overhead active messages (paper Section 2.1).
//!
//! A Tempest message names a destination node, a *handler* to run on
//! arrival, and carries data. The handler executes atomically with
//! respect to other handlers, on a thread that is logically concurrent
//! with the node's computation thread (so critical sections, not
//! interrupt masking, protect shared protocol state — and there is no
//! priority-inversion problem).
//!
//! In the paper the head word of a packet is the handler's *program
//! counter*; here handlers are named by a [`HandlerId`] that the protocol
//! dispatches on in [`crate::Protocol::on_message`] — the same
//! hardware-assisted dispatch structure Typhoon implements (Section 5.1),
//! with Rust enums standing in for jump tables.

use std::fmt;

use tt_base::NodeId;
use tt_net::{Packet, Payload, VirtualNet};

/// Names the user-level handler a message invokes on arrival.
///
/// Protocols define their handler ids as constants (see `tt-stache` for
/// the Stache handler set).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct HandlerId(pub u32);

impl HandlerId {
    /// The raw id.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for HandlerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A message as delivered to a protocol's message handler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// The sending node.
    pub src: NodeId,
    /// The virtual network the message arrived on.
    pub vn: VirtualNet,
    /// The handler the sender named.
    pub handler: HandlerId,
    /// Argument words and optional data block.
    pub payload: Payload,
}

impl Message {
    /// Constructs the wire packet for this message toward `dst`.
    pub fn into_packet(self, dst: NodeId) -> Packet {
        Packet {
            src: self.src,
            dst,
            vn: self.vn,
            handler: self.handler.raw(),
            payload: self.payload,
        }
    }

    /// Reconstructs a message from a delivered packet.
    pub fn from_packet(packet: Packet) -> Self {
        Message {
            src: packet.src,
            vn: packet.vn,
            handler: HandlerId(packet.handler),
            payload: packet.payload,
        }
    }

    /// Argument word `i`.
    ///
    /// # Panics
    ///
    /// Panics if the payload has fewer than `i + 1` words — a protocol
    /// bug, equivalent to a handler reading past the end of a packet.
    pub fn arg(&self, i: usize) -> u64 {
        self.payload.words()[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_round_trip() {
        let m = Message {
            src: NodeId::new(3),
            vn: VirtualNet::Response,
            handler: HandlerId(7),
            payload: Payload::args(&[10, 20]),
        };
        let p = m.clone().into_packet(NodeId::new(5));
        assert_eq!(p.dst, NodeId::new(5));
        let back = Message::from_packet(p);
        assert_eq!(back, m);
    }

    #[test]
    fn arg_accessor() {
        let m = Message {
            src: NodeId::new(0),
            vn: VirtualNet::Request,
            handler: HandlerId(1),
            payload: Payload::args(&[42, 43]),
        };
        assert_eq!(m.arg(0), 42);
        assert_eq!(m.arg(1), 43);
    }

    #[test]
    #[should_panic]
    fn missing_arg_panics() {
        let m = Message {
            src: NodeId::new(0),
            vn: VirtualNet::Request,
            handler: HandlerId(1),
            payload: Payload::new(),
        };
        m.arg(0);
    }
}
