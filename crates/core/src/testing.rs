//! Test support: an in-memory [`TempestCtx`] for unit-testing protocols.
//!
//! Machine-level tests (see `tt-typhoon`) exercise protocols end to end,
//! but state-machine bugs are easier to pin down against a context that
//! simply records what the handler did. [`MockCtx`] provides real memory,
//! tags, and page tables, and logs every message sent, every resume, and
//! every bulk request; timing charges accumulate into a plain counter.
//!
//! # Example
//!
//! ```
//! use tt_tempest::testing::MockCtx;
//! use tt_tempest::TempestCtx;
//! use tt_base::addr::Vpn;
//! use tt_mem::Tag;
//!
//! let mut ctx = MockCtx::new(0, 4);
//! let ppn = ctx.alloc_page();
//! ctx.map_page(Vpn(0x10000), ppn).unwrap();
//! ctx.set_page_tags(Vpn(0x10000), Tag::ReadWrite);
//! ctx.force_write_word(Vpn(0x10000).base(), 7);
//! assert_eq!(ctx.force_read_word(Vpn(0x10000).base()), 7);
//! ```

use tt_base::addr::{Ppn, VAddr, Vpn, BLOCK_BYTES};
use tt_base::{Cycles, NodeId};
use tt_mem::{NodeMemory, PageMeta, PageTable, Tag};
use tt_net::{Payload, VirtualNet};

use crate::bulk::BulkRequest;
use crate::ctx::{TempestCtx, TempestError};
use crate::fault::{NetFault, ThreadId};
use crate::inspect::VnPolicy;
use crate::msg::HandlerId;

/// A message recorded by [`MockCtx::send`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SentMessage {
    /// Destination node.
    pub dst: NodeId,
    /// Virtual network used.
    pub vn: VirtualNet,
    /// Handler named.
    pub handler: HandlerId,
    /// Payload.
    pub payload: Payload,
}

/// An in-memory Tempest context that records handler effects
/// (see module docs).
#[derive(Debug)]
pub struct MockCtx {
    node: NodeId,
    nodes: usize,
    now: Cycles,
    /// Functional memory (data + tags).
    pub mem: NodeMemory,
    /// Page table.
    pub ptable: PageTable,
    /// Every message sent, in order.
    pub sent: Vec<SentMessage>,
    /// Every thread resumed, in order.
    pub resumed: Vec<ThreadId>,
    /// Every bulk transfer requested, in order.
    pub bulk: Vec<BulkRequest>,
    /// Instructions charged.
    pub charged: u64,
    /// Protocol-data accesses recorded (keys, in order).
    pub data_accesses: Vec<u64>,
    /// Every timer armed via `set_timer`, in order: `(deadline, token)`.
    pub timers: Vec<(Cycles, u64)>,
    /// Every unrecoverable network fault raised, in order.
    pub net_faults: Vec<NetFault>,
    /// Virtual-net discipline enforced on every `send` — the same
    /// waits-for rule the `tt-check` invariant engine asserts at machine
    /// level (see [`VnPolicy::assert_send`]). Empty by default, so tests
    /// of ad-hoc protocols are unaffected until they declare a policy.
    vn_policy: VnPolicy,
}

impl MockCtx {
    /// A context for node `node` of an `nodes`-node machine.
    pub fn new(node: u16, nodes: usize) -> Self {
        MockCtx {
            node: NodeId::new(node),
            nodes,
            now: Cycles::ZERO,
            mem: NodeMemory::new(),
            ptable: PageTable::new(),
            sent: Vec::new(),
            resumed: Vec::new(),
            bulk: Vec::new(),
            charged: 0,
            data_accesses: Vec::new(),
            timers: Vec::new(),
            net_faults: Vec::new(),
            vn_policy: VnPolicy::new(),
        }
    }

    /// Installs the virtual-net policy [`MockCtx::send`] asserts against.
    pub fn set_vn_policy(&mut self, policy: VnPolicy) {
        self.vn_policy = policy;
    }

    /// Allocates, maps, and tags a page in one step; returns the frame.
    pub fn install_page(&mut self, vpn: Vpn, tag: Tag, meta: PageMeta) -> Ppn {
        let ppn = self.alloc_page();
        self.map_page(vpn, ppn).expect("fresh mapping");
        self.set_page_tags(vpn, tag);
        self.set_page_meta(vpn, meta);
        ppn
    }

    /// The last message sent, if any.
    pub fn last_sent(&self) -> Option<&SentMessage> {
        self.sent.last()
    }

    /// Clears the recorded effects (keeps memory and mappings).
    pub fn clear_effects(&mut self) {
        self.sent.clear();
        self.resumed.clear();
        self.bulk.clear();
        self.charged = 0;
        self.data_accesses.clear();
        self.timers.clear();
        self.net_faults.clear();
    }

    /// Advances the mock clock.
    pub fn advance(&mut self, by: Cycles) {
        self.now += by;
    }

    fn paddr(&self, addr: VAddr) -> tt_base::addr::PAddr {
        self.ptable
            .translate_addr(addr)
            .unwrap_or_else(|| panic!("mock: access to unmapped address {addr}"))
    }
}

impl TempestCtx for MockCtx {
    fn node(&self) -> NodeId {
        self.node
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn now(&self) -> Cycles {
        self.now
    }

    fn charge(&mut self, instructions: u64) {
        self.charged += instructions;
    }

    fn protocol_data_access(&mut self, key: u64) {
        self.data_accesses.push(key);
    }

    fn send(&mut self, dst: NodeId, vn: VirtualNet, handler: HandlerId, payload: Payload) {
        self.vn_policy.assert_send(handler, vn);
        self.sent.push(SentMessage {
            dst,
            vn,
            handler,
            payload,
        });
    }

    fn bulk_transfer(&mut self, request: BulkRequest) {
        self.bulk.push(request);
    }

    fn set_timer(&mut self, at: Cycles, token: u64) {
        self.timers.push((at, token));
    }

    fn raise_net_fault(&mut self, fault: NetFault) {
        self.net_faults.push(fault);
    }

    fn alloc_page(&mut self) -> Ppn {
        self.mem.alloc()
    }

    fn free_page(&mut self, ppn: Ppn) {
        self.mem.free(ppn);
    }

    fn map_page(&mut self, vpn: Vpn, ppn: Ppn) -> Result<(), TempestError> {
        self.ptable.map(vpn, ppn)?;
        self.mem.frame_mut(ppn).meta.vpn = Some(vpn);
        Ok(())
    }

    fn unmap_page(&mut self, vpn: Vpn) -> Result<Ppn, TempestError> {
        let ppn = self.ptable.unmap(vpn)?;
        self.mem.frame_mut(ppn).meta.vpn = None;
        Ok(ppn)
    }

    fn translate(&self, vpn: Vpn) -> Option<Ppn> {
        self.ptable.translate(vpn)
    }

    fn page_meta(&self, vpn: Vpn) -> Option<PageMeta> {
        self.ptable.translate(vpn).map(|p| self.mem.frame(p).meta)
    }

    fn set_page_meta(&mut self, vpn: Vpn, meta: PageMeta) {
        let ppn = self.ptable.translate(vpn).expect("mapped page");
        let mut meta = meta;
        meta.vpn = Some(vpn);
        self.mem.frame_mut(ppn).meta = meta;
    }

    fn allocated_bytes(&self) -> usize {
        self.mem.allocated_bytes()
    }

    fn read_tag(&self, addr: VAddr) -> Tag {
        self.mem.tag(self.paddr(addr))
    }

    fn set_tag(&mut self, addr: VAddr, tag: Tag) {
        let paddr = self.paddr(addr);
        self.mem.set_tag(paddr, tag);
    }

    fn set_page_tags(&mut self, vpn: Vpn, tag: Tag) {
        let ppn = self.ptable.translate(vpn).expect("mapped page");
        self.mem.frame_mut(ppn).set_all_tags(tag);
    }

    fn force_read_word(&mut self, addr: VAddr) -> u64 {
        let paddr = self.paddr(addr);
        self.mem.read_word(paddr)
    }

    fn force_write_word(&mut self, addr: VAddr, value: u64) {
        let paddr = self.paddr(addr);
        self.mem.write_word(paddr, value);
    }

    fn force_read_block(&mut self, addr: VAddr) -> [u8; BLOCK_BYTES] {
        let paddr = self.paddr(addr);
        self.mem.read_block(paddr)
    }

    fn force_write_block(&mut self, addr: VAddr, block: &[u8; BLOCK_BYTES]) {
        let paddr = self.paddr(addr);
        self.mem.write_block(paddr, block);
    }

    fn resume(&mut self, thread: ThreadId) {
        self.resumed.push(thread);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_sends_and_resumes() {
        let mut ctx = MockCtx::new(1, 4);
        ctx.send(
            NodeId::new(2),
            VirtualNet::Request,
            HandlerId(9),
            Payload::args(&[1]),
        );
        ctx.resume(ThreadId(NodeId::new(1)));
        ctx.charge(14);
        assert_eq!(ctx.sent.len(), 1);
        assert_eq!(ctx.last_sent().unwrap().handler, HandlerId(9));
        assert_eq!(ctx.resumed, vec![ThreadId(NodeId::new(1))]);
        assert_eq!(ctx.charged, 14);
        ctx.clear_effects();
        assert!(ctx.sent.is_empty() && ctx.resumed.is_empty());
    }

    #[test]
    #[should_panic(expected = "virtual-net violation")]
    fn send_enforces_the_declared_vn_policy() {
        let mut ctx = MockCtx::new(0, 4);
        ctx.set_vn_policy(VnPolicy::new().expect(HandlerId(9), VirtualNet::Response));
        // A "response" handler sent on the request net is exactly the
        // waits-for bug the two-network design exists to exclude.
        ctx.send(
            NodeId::new(2),
            VirtualNet::Request,
            HandlerId(9),
            Payload::new(),
        );
    }

    #[test]
    fn install_page_round_trips() {
        let mut ctx = MockCtx::new(0, 2);
        let meta = PageMeta {
            vpn: None,
            mode: 3,
            user: [5, 6],
        };
        ctx.install_page(Vpn(7), Tag::ReadOnly, meta);
        assert_eq!(ctx.read_tag(Vpn(7).base()), Tag::ReadOnly);
        let m = ctx.page_meta(Vpn(7)).unwrap();
        assert_eq!(m.mode, 3);
        assert_eq!(m.vpn, Some(Vpn(7)));
    }
}
