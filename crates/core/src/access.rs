//! The fine-grain access-control operations of Table 1.
//!
//! Tempest defines nine operations on tagged memory blocks. They split
//! into three groups:
//!
//! | Operation     | Where it runs            | In this reproduction |
//! |---------------|--------------------------|----------------------|
//! | `read`        | CPU loads                | issued by workloads, checked by the machine |
//! | `write`       | CPU stores               | issued by workloads, checked by the machine |
//! | `force-read`  | protocol handlers        | [`TempestCtx::force_read_block`] / `force_read_word` |
//! | `force-write` | protocol handlers        | [`TempestCtx::force_write_block`] / `force_write_word` |
//! | `read-tag`    | protocol handlers        | [`TempestCtx::read_tag`] |
//! | `set-RW`      | protocol handlers        | [`TempestCtx::set_tag`] with [`Tag::ReadWrite`] |
//! | `set-RO`      | protocol handlers        | [`TempestCtx::set_tag`] with [`Tag::ReadOnly`] |
//! | `invalidate`  | protocol handlers        | [`TempestCtx::invalidate_block`] (also purges CPU-cached copies) |
//! | `resume`      | protocol handlers        | [`TempestCtx::resume`] |
//!
//! [`TagOp`] names the operations so tests, statistics, and documentation
//! can refer to them uniformly.
//!
//! [`TempestCtx::force_read_block`]: crate::TempestCtx::force_read_block
//! [`TempestCtx::force_write_block`]: crate::TempestCtx::force_write_block
//! [`TempestCtx::read_tag`]: crate::TempestCtx::read_tag
//! [`TempestCtx::set_tag`]: crate::TempestCtx::set_tag
//! [`TempestCtx::invalidate_block`]: crate::TempestCtx::invalidate_block
//! [`TempestCtx::resume`]: crate::TempestCtx::resume
//! [`Tag::ReadWrite`]: tt_mem::Tag::ReadWrite
//! [`Tag::ReadOnly`]: tt_mem::Tag::ReadOnly

use tt_mem::{AccessKind, Tag};

/// The nine Tempest operations on tagged memory blocks (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TagOp {
    /// Load with tag check; faults suspend the thread and invoke a handler.
    Read,
    /// Store with tag check; faults suspend the thread and invoke a handler.
    Write,
    /// Load without tag check.
    ForceRead,
    /// Store without tag check.
    ForceWrite,
    /// Return the value of the tag.
    ReadTag,
    /// Set the tag to `ReadWrite`.
    SetRw,
    /// Set the tag to `ReadOnly`.
    SetRo,
    /// Set the tag to `Invalid` and invalidate any local cached copies.
    Invalidate,
    /// Resume suspended thread(s).
    Resume,
}

impl TagOp {
    /// All nine operations, in Table 1 order.
    pub const ALL: [TagOp; 9] = [
        TagOp::Read,
        TagOp::Write,
        TagOp::ForceRead,
        TagOp::ForceWrite,
        TagOp::ReadTag,
        TagOp::SetRw,
        TagOp::SetRo,
        TagOp::Invalidate,
        TagOp::Resume,
    ];

    /// The Table 1 name of the operation.
    pub fn name(self) -> &'static str {
        match self {
            TagOp::Read => "read",
            TagOp::Write => "write",
            TagOp::ForceRead => "force-read",
            TagOp::ForceWrite => "force-write",
            TagOp::ReadTag => "read-tag",
            TagOp::SetRw => "set-RW",
            TagOp::SetRo => "set-RO",
            TagOp::Invalidate => "invalidate",
            TagOp::Resume => "resume",
        }
    }

    /// The Table 1 description of the operation.
    pub fn description(self) -> &'static str {
        match self {
            TagOp::Read => "Load with tag check; if access fault, suspend thread and invoke handler",
            TagOp::Write => "Store with tag check; if access fault, suspend thread and invoke handler",
            TagOp::ForceRead => "Load without tag check",
            TagOp::ForceWrite => "Store without tag check",
            TagOp::ReadTag => "Return value of tag",
            TagOp::SetRw => "Set tag value to ReadWrite",
            TagOp::SetRo => "Set tag value to ReadOnly",
            TagOp::Invalidate => "Set tag value to Invalid and invalidate any local copies",
            TagOp::Resume => "Resume suspended thread(s)",
        }
    }

    /// For the tag-setting operations, the tag value written.
    pub fn tag_written(self) -> Option<Tag> {
        match self {
            TagOp::SetRw => Some(Tag::ReadWrite),
            TagOp::SetRo => Some(Tag::ReadOnly),
            TagOp::Invalidate => Some(Tag::Invalid),
            _ => None,
        }
    }

    /// For the tag-checked accesses, the access kind checked.
    pub fn checked_access(self) -> Option<AccessKind> {
        match self {
            TagOp::Read => Some(AccessKind::Load),
            TagOp::Write => Some(AccessKind::Store),
            _ => None,
        }
    }
}

/// Whether a tag-checked access of kind `kind` on a block tagged `tag`
/// completes normally (`true`) or raises a block access fault (`false`).
///
/// This is the single permission predicate every machine in the workspace
/// uses; Section 2.4's rules reduce to it.
#[inline]
pub fn access_permitted(tag: Tag, kind: AccessKind) -> bool {
    tag.permits(kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_has_nine_operations() {
        assert_eq!(TagOp::ALL.len(), 9);
        let names: Vec<_> = TagOp::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(
            names,
            vec![
                "read",
                "write",
                "force-read",
                "force-write",
                "read-tag",
                "set-RW",
                "set-RO",
                "invalidate",
                "resume"
            ]
        );
    }

    #[test]
    fn tag_written_matches_table_1() {
        assert_eq!(TagOp::SetRw.tag_written(), Some(Tag::ReadWrite));
        assert_eq!(TagOp::SetRo.tag_written(), Some(Tag::ReadOnly));
        assert_eq!(TagOp::Invalidate.tag_written(), Some(Tag::Invalid));
        assert_eq!(TagOp::Read.tag_written(), None);
        assert_eq!(TagOp::Resume.tag_written(), None);
    }

    #[test]
    fn checked_access_only_for_read_write() {
        assert_eq!(TagOp::Read.checked_access(), Some(AccessKind::Load));
        assert_eq!(TagOp::Write.checked_access(), Some(AccessKind::Store));
        for op in [TagOp::ForceRead, TagOp::ForceWrite, TagOp::ReadTag] {
            assert_eq!(op.checked_access(), None);
        }
    }

    #[test]
    fn permission_predicate() {
        assert!(access_permitted(Tag::ReadOnly, AccessKind::Load));
        assert!(!access_permitted(Tag::ReadOnly, AccessKind::Store));
        assert!(!access_permitted(Tag::Busy, AccessKind::Load));
    }

    #[test]
    fn descriptions_are_nonempty() {
        for op in TagOp::ALL {
            assert!(!op.description().is_empty());
        }
    }
}
