//! Bulk node-to-node data transfers (paper Section 2.2).
//!
//! A bulk transfer moves a virtually addressed byte range from this node
//! to a destination node asynchronously with respect to the computation
//! thread, like a DMA transaction. The machine packetizes the range: a
//! maximum-size packet carries a handler word, an address, and 64 bytes
//! of data with two words to spare (Section 5.2). Completion can invoke
//! user handlers on either end, so user code can build scatter-gather
//! operations.

use tt_base::{NodeId, VAddr};

use crate::msg::HandlerId;

/// Data bytes carried by a maximum-size bulk packet (Section 5.2).
pub const BULK_PACKET_DATA_BYTES: usize = 64;

/// A request to move `bytes` bytes from `src_addr` on the requesting node
/// to `dst_addr` on node `dst`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BulkRequest {
    /// Destination node.
    pub dst: NodeId,
    /// Source virtual address on the requesting node.
    pub src_addr: VAddr,
    /// Destination virtual address on `dst`.
    pub dst_addr: VAddr,
    /// Length in bytes. Must be word-aligned.
    pub bytes: usize,
    /// Handler invoked on the *source* node when the last packet has been
    /// injected and acknowledged, with args `[src_addr, dst_addr, bytes]`.
    pub notify_src: Option<HandlerId>,
    /// Handler invoked on the *destination* node when the last packet has
    /// been written, with args `[src_addr, dst_addr, bytes]`.
    pub notify_dst: Option<HandlerId>,
}

/// Splits a transfer length into per-packet chunk sizes.
///
/// # Example
///
/// ```
/// use tt_tempest::bulk::chunk_sizes;
/// assert_eq!(chunk_sizes(150).collect::<Vec<_>>(), vec![64, 64, 22]);
/// assert_eq!(chunk_sizes(0).count(), 0);
/// ```
pub fn chunk_sizes(bytes: usize) -> impl Iterator<Item = usize> {
    let full = bytes / BULK_PACKET_DATA_BYTES;
    let tail = bytes % BULK_PACKET_DATA_BYTES;
    std::iter::repeat_n(BULK_PACKET_DATA_BYTES, full)
        .chain(std::iter::once(tail).filter(|&t| t > 0))
}

/// Number of packets a transfer of `bytes` bytes needs.
pub fn packet_count(bytes: usize) -> usize {
    bytes.div_ceil(BULK_PACKET_DATA_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly() {
        for bytes in [0usize, 1, 63, 64, 65, 128, 150, 4096] {
            let total: usize = chunk_sizes(bytes).sum();
            assert_eq!(total, bytes, "bytes={bytes}");
            assert_eq!(chunk_sizes(bytes).count(), packet_count(bytes));
        }
    }

    #[test]
    fn every_chunk_fits_a_packet() {
        for c in chunk_sizes(1000) {
            assert!(c > 0 && c <= BULK_PACKET_DATA_BYTES);
        }
    }

    #[test]
    fn exact_multiple_has_no_tail() {
        assert_eq!(chunk_sizes(128).collect::<Vec<_>>(), vec![64, 64]);
    }
}
