//! **Tempest** — the user-level shared-memory interface (paper Section 2).
//!
//! Tempest is the paper's primary contribution: a parallel-machine
//! interface that exposes four families of *mechanisms* so that user-level
//! code — compilers, run-time libraries, or application programmers — can
//! implement shared-memory *policies* themselves:
//!
//! 1. **Low-overhead messages** ([`msg`]): active messages whose arrival
//!    spawns a handler thread that runs atomically to completion,
//!    logically concurrent with the computation thread.
//! 2. **Bulk data transfer** ([`bulk`]): asynchronous node-to-node copies
//!    with user-customizable send/receive handlers.
//! 3. **Virtual memory management** ([`TempestCtx`] map/unmap/alloc):
//!    user-level allocation of physical pages at chosen virtual addresses
//!    in the shared segment, with user-level page-fault handlers.
//! 4. **Fine-grain access control** ([`access`]): ReadWrite / ReadOnly /
//!    Invalid tags on aligned 32-byte blocks, checked on every processor
//!    load and store, with the nine operations of Table 1.
//!
//! A shared-memory protocol is a type implementing [`Protocol`]; one
//! instance runs on each node's network interface processor and reacts to
//! page faults, block access faults, incoming messages, and explicit
//! application calls. All interaction with the machine goes through
//! [`TempestCtx`], so the same protocol code runs on any machine that
//! implements the interface (the paper makes the same portability
//! argument for Typhoon vs. a hypothetical CM-5 software implementation).
//!
//! The transparent-shared-memory protocol built on this interface
//! (Stache, paper Section 3) and the custom EM3D protocol (Section 4)
//! live in the `tt-stache` crate; the Typhoon hardware model that
//! implements this interface lives in `tt-typhoon`.
//!
//! # Example: a trivial protocol
//!
//! ```
//! use tt_tempest::{BlockFault, Message, PageFault, Protocol, TempestCtx};
//! use tt_base::NodeId;
//!
//! /// Counts faults; panics on messages (it never sends any).
//! #[derive(Default)]
//! struct CountingProtocol {
//!     faults: u64,
//! }
//!
//! impl Protocol for CountingProtocol {
//!     fn on_page_fault(&mut self, ctx: &mut dyn TempestCtx, fault: PageFault) {
//!         self.faults += 1;
//!         // Allocate and map a page, make it writable, retry the access.
//!         let ppn = ctx.alloc_page();
//!         ctx.map_page(fault.addr.page(), ppn).unwrap();
//!         ctx.set_page_tags(fault.addr.page(), tt_mem::Tag::ReadWrite);
//!         ctx.resume(fault.thread);
//!     }
//!     fn on_block_fault(&mut self, _ctx: &mut dyn TempestCtx, _fault: BlockFault) {
//!         unreachable!("pages are mapped fully writable");
//!     }
//!     fn on_message(&mut self, _ctx: &mut dyn TempestCtx, _msg: Message) {
//!         unreachable!("this protocol never sends messages");
//!     }
//! }
//! ```

pub mod access;
pub mod bulk;
pub mod ctx;
pub mod fault;
pub mod inspect;
pub mod msg;
pub mod protocol;
pub mod testing;

pub use access::TagOp;
pub use bulk::BulkRequest;
pub use ctx::{TempestCtx, TempestError};
pub use fault::{BlockFault, NetFault, PageFault, ThreadId};
pub use inspect::{BlockDirSnapshot, DirSnapshotState, VnPolicy};
pub use msg::{HandlerId, Message};
pub use protocol::{Protocol, UserCall};
