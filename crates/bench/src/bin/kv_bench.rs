//! **kv_bench** — the `tt-serve` distributed KV cache under Zipfian
//! fire: tail latency and throughput for the Stache-backed server vs.
//! the hot-key write-update custom protocol.
//!
//! The sweep crosses request mix {95/5 read-mostly, 50/50 write-heavy}
//! with Zipf skew {0.5, 0.9, 1.2} and runs each point on both server
//! variants. Latencies are *simulated cycles* from each request's
//! open-loop arrival time to its completion stamp, so queueing delay is
//! included and every number on stdout is bit-reproducible — the table
//! is byte-identical for any `--jobs`, `--sim-threads`, `--sim-shards`,
//! or `--window-policy` value (wall-clock rates go to stderr and the
//! `--json` report only).
//!
//! Usage: `kv_bench [--nodes N] [--keys N] [--requests N]
//! [--value-words N] [--interarrival CYCLES] [--fault-rate PERMILLE]
//! [--jobs N] [--repeat N] [--sim-threads N]
//! [--window-policy fixed|adaptive] [--json PATH]`
//!
//! `--fault-rate R` runs the sweep over a lossy network: every packet
//! is dropped and duplicated with probability R‰ (corrupted at R/2‰),
//! and both server variants run behind the reliable transport. The
//! table gains a retransmission column; at the default rate 0 nothing
//! is wrapped and the output is byte-identical to a fault-free build.

use std::time::Instant;

use tt_apps::run_kv_update;
use tt_base::table::Table;
use tt_base::{FaultSpec, SystemConfig};
use tt_bench::json::PointRecord;
use tt_bench::{cli, par};
use tt_serve::{run_kv_stache, KvOutcome, KvParams, KvVariant};

/// Request mixes swept: percent of requests that are puts.
const MIXES: [u32; 2] = [5, 50];
/// Zipf skew levels swept.
const SKEWS: [f64; 3] = [0.5, 0.9, 1.2];
/// Server variants swept.
const VARIANTS: [KvVariant; 2] = [KvVariant::Stache, KvVariant::Update];

/// KV-specific sweep knobs layered on the shared [`tt_bench::Cli`].
struct KvCli {
    keys: u64,
    requests_per_node: u64,
    value_words: usize,
    mean_interarrival: f64,
    fault_permille: u32,
}

fn params(kv: &KvCli, nodes: usize, mix: u32, skew: f64, variant: KvVariant) -> KvParams {
    let mut p = KvParams::small(variant);
    p.nodes = nodes;
    p.keys = kv.keys;
    p.skew = skew;
    p.write_pct = mix;
    p.requests_per_node = kv.requests_per_node;
    p.mean_interarrival = kv.mean_interarrival;
    p.value_words = kv.value_words;
    p
}

fn run_variant(cfg: &SystemConfig, p: &KvParams) -> KvOutcome {
    match p.variant {
        KvVariant::Stache => run_kv_stache(cfg, p),
        KvVariant::Update => run_kv_update(cfg, p),
    }
}

/// One completed sweep point.
struct Point {
    mix: u32,
    skew: f64,
    variant: KvVariant,
    out: KvOutcome,
    wall_secs: f64,
}

/// The per-run equivalent of `assert_sim_threads_identity`: before a
/// parallel-simulator sweep, prove on a small point that the requested
/// thread count reproduces the sequential cycles, report, and latency
/// histograms bit-for-bit.
fn assert_kv_sim_threads_identity(cfg: &SystemConfig) {
    if cfg.sim_threads <= 1 {
        return;
    }
    let mut seq_cfg = cfg.clone();
    seq_cfg.sim_threads = 1;
    for variant in VARIANTS {
        let mut p = KvParams::small(variant);
        p.nodes = cfg.nodes;
        p.write_pct = 50;
        let seq = run_variant(&seq_cfg, &p);
        let par = run_variant(cfg, &p);
        assert_eq!(seq.cycles, par.cycles, "{}: parallel cycles diverged", variant.name());
        assert_eq!(seq.report, par.report, "{}: parallel report diverged", variant.name());
        assert_eq!(seq.lat, par.lat, "{}: parallel latencies diverged", variant.name());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kv = KvCli {
        keys: 2048,
        requests_per_node: 256,
        value_words: 4,
        mean_interarrival: 500.0,
        fault_permille: 0,
    };
    let shared = cli::parse_cli_with(&args, 1, &mut |flag, args, i| match flag {
        "--keys" => {
            kv.keys = cli::number(args, *i, "--keys") as u64;
            *i += 2;
        }
        "--requests" => {
            kv.requests_per_node = cli::number(args, *i, "--requests") as u64;
            *i += 2;
        }
        "--value-words" => {
            kv.value_words = cli::number(args, *i, "--value-words").max(1);
            *i += 2;
        }
        "--interarrival" => {
            kv.mean_interarrival = cli::number(args, *i, "--interarrival").max(1) as f64;
            *i += 2;
        }
        "--fault-rate" => {
            kv.fault_permille = cli::number(args, *i, "--fault-rate").min(500) as u32;
            *i += 2;
        }
        other => panic!(
            "unknown argument {other}; kv_bench adds --keys N | --requests N \
             | --value-words N | --interarrival CYCLES | --fault-rate PERMILLE \
             to the shared flags"
        ),
    });
    let mut cfg = shared.config();
    let faulty = kv.fault_permille > 0;
    if faulty {
        cfg.fault = Some(FaultSpec::uniform(cfg.seed, kv.fault_permille));
    }
    assert_kv_sim_threads_identity(&cfg);
    println!(
        "KV SERVING. {nodes}-node tt-serve under open-loop Zipfian load \
         ({keys} keys, {req} requests/node, {vw}-word values, mean \
         interarrival {ia:.0} cycles).{faults}\n",
        nodes = shared.nodes,
        keys = kv.keys,
        req = kv.requests_per_node,
        vw = kv.value_words,
        ia = kv.mean_interarrival,
        faults = if faulty {
            format!(
                "\nLossy network: drop/dup {r}\u{2030}, corrupt {h}\u{2030} \
                 (detected), reliable transport on.",
                r = kv.fault_permille,
                h = kv.fault_permille / 2,
            )
        } else {
            String::new()
        },
    );

    let mut grid = Vec::new();
    for mix in MIXES {
        for skew in SKEWS {
            for variant in VARIANTS {
                grid.push((mix, skew, variant));
            }
        }
    }
    let start = Instant::now();
    let points: Vec<Point> = par::run_indexed(shared.jobs, grid.len(), |i| {
        let (mix, skew, variant) = grid[i];
        let p = params(&kv, shared.nodes, mix, skew, variant);
        let run = || {
            let t = Instant::now();
            let out = run_variant(&cfg, &p);
            (out, t.elapsed().as_secs_f64())
        };
        let (mut out, mut wall_secs) = run();
        for _ in 1..shared.repeat.max(1) {
            let (again, wall) = run();
            assert_eq!(out.cycles, again.cycles, "repeated KV run diverged");
            assert_eq!(out.lat, again.lat, "repeated KV latencies diverged");
            if wall < wall_secs {
                out = again;
                wall_secs = wall;
            }
        }
        Point { mix, skew, variant, out, wall_secs }
    });
    let total_wall_secs = start.elapsed().as_secs_f64();

    // The retransmission column exists only on lossy sweeps: at
    // --fault-rate 0 the table (and JSON `extra`) must stay
    // byte-identical to a fault-free build.
    let mut columns = vec![
        "mix", "skew", "server", "cycles", "req/kcyc", "get p50", "get p99",
        "get p999", "put p50", "put p99", "put p999",
    ];
    if faulty {
        columns.push("retx");
    }
    let mut table = Table::new(columns);
    let mut records = Vec::new();
    for p in &points {
        let (get, put) = (&p.out.lat.get, &p.out.lat.put);
        let mut row = vec![
            format!("{}/{}", 100 - p.mix, p.mix),
            format!("{:.1}", p.skew),
            p.variant.name().into(),
            format!("{}", p.out.cycles.raw()),
            format!("{:.3}", p.out.requests_per_kcycle()),
            format!("{}", get.quantile(0.50)),
            format!("{}", get.quantile(0.99)),
            format!("{}", get.quantile(0.999)),
            format!("{}", put.quantile(0.50)),
            format!("{}", put.quantile(0.99)),
            format!("{}", put.quantile(0.999)),
        ];
        if faulty {
            row.push(format!("{}", p.out.report.get("rel.retransmits").unwrap_or(0.0) as u64));
        }
        table.row(row);
        let mut extra = format!(
            "\"kv\": {{\"mix\": \"{}/{}\", \"skew\": {:.2}, \"keys\": {}, \
             \"requests\": {}, \"requests_per_kcycle\": {:.4}, \
             \"get\": {{\"p50\": {}, \"p99\": {}, \"p999\": {}, \"mean\": {:.1}, \"max\": {}}}, \
             \"put\": {{\"p50\": {}, \"p99\": {}, \"p999\": {}, \"mean\": {:.1}, \"max\": {}}}}}",
            100 - p.mix,
            p.mix,
            p.skew,
            kv.keys,
            p.out.lat.requests(),
            p.out.requests_per_kcycle(),
            get.quantile(0.50),
            get.quantile(0.99),
            get.quantile(0.999),
            get.mean(),
            get.max(),
            put.quantile(0.50),
            put.quantile(0.99),
            put.quantile(0.999),
            put.mean(),
            put.max(),
        );
        if faulty {
            extra = format!(
                "{}, \"fault\": {{\"rate_permille\": {}, \"retransmits\": {}, \
                 \"sent\": {}}}",
                &extra[..extra.len() - 1],
                kv.fault_permille,
                p.out.report.get("rel.retransmits").unwrap_or(0.0) as u64,
                p.out.report.get("rel.sent").unwrap_or(0.0) as u64,
            ) + "}";
        }
        records.push(PointRecord {
            point: format!("{}/{} skew {:.1}", 100 - p.mix, p.mix, p.skew),
            system: p.variant.name().into(),
            cycles: p.out.cycles.raw(),
            wall_secs: p.wall_secs,
            ops: p.out.report.get("cpu.ops").unwrap_or(0.0) as u64,
            pdes: p.out.pdes,
            extra: Some(extra),
        });
    }
    println!("{table}");
    println!(
        "(latencies in simulated cycles, arrival to completion; write-update\n\
         flattens the hot-key tail while the sharer count stays moderate —\n\
         read-mostly mixes and small machines — but pays a per-put broadcast\n\
         to every sharer, which inverts the verdict for write-heavy mixes on\n\
         large machines)"
    );
    eprintln!(
        "  sweep: {n} runs in {total_wall_secs:.2}s wall ({jobs} jobs)",
        n = points.len(),
        jobs = shared.jobs,
    );
    shared.write_json("kv_bench", total_wall_secs, &records);
}
