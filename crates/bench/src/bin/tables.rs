//! Regenerates the paper's Tables 1–3 from the live code: the Tempest
//! tag operations, the simulation parameters actually used by the
//! machines, and the application data sets.

use tt_base::table::Table;
use tt_base::SystemConfig;
use tt_apps::{AppId, DataSet};
use tt_tempest::TagOp;

fn main() {
    println!("TABLE 1. Operations on tagged memory blocks.\n");
    let mut t1 = Table::new(vec!["Operation", "Description"]);
    for op in TagOp::ALL {
        t1.row(vec![op.name().to_string(), op.description().to_string()]);
    }
    println!("{t1}");

    let cfg = SystemConfig::default();
    println!("TABLE 2. Simulation parameters.\n");
    let mut t2 = Table::new(vec!["Parameter", "Value"]);
    let rows: Vec<(&str, String)> = vec![
        ("Nodes", cfg.nodes.to_string()),
        (
            "CPU cache",
            format!(
                "{}-way assoc., random repl. ({} KB default; Figure 3 sweeps 4-256 KB)",
                cfg.cpu.cache_assoc,
                cfg.cpu.cache_bytes / 1024
            ),
        ),
        ("Block size", "32 bytes".into()),
        (
            "CPU TLB",
            format!("{} ent., fully assoc., FIFO repl.", cfg.cpu.tlb_entries),
        ),
        ("Page size", "4 Kbytes".into()),
        ("Local cache miss", format!("{} cycles", cfg.timing.local_miss)),
        (
            "Local writeback",
            format!("{} (perfect write buffer)", cfg.timing.local_writeback),
        ),
        ("TLB miss", format!("{} cycles", cfg.timing.tlb_miss)),
        (
            "Network latency",
            format!("{} cycles", cfg.timing.network_latency),
        ),
        (
            "Barrier latency",
            format!("{} cycles", cfg.timing.barrier_latency),
        ),
        (
            "DirNNB remote miss",
            format!(
                "{} + {}-{} if replacement + network/directory + {}",
                cfg.dirnnb.remote_miss_request,
                cfg.dirnnb.replace_shared,
                cfg.dirnnb.replace_exclusive,
                cfg.dirnnb.remote_miss_finish
            ),
        ),
        (
            "DirNNB remote invalidate",
            format!(
                "{} + {}-{} if replacement",
                cfg.dirnnb.remote_invalidate,
                cfg.dirnnb.replace_shared,
                cfg.dirnnb.replace_exclusive
            ),
        ),
        (
            "DirNNB directory op",
            format!(
                "{} + {} if block rcvd + {} per msg sent + {} if block sent",
                cfg.dirnnb.dir_op_base,
                cfg.dirnnb.dir_op_block_recv,
                cfg.dirnnb.dir_op_per_msg,
                cfg.dirnnb.dir_op_block_send
            ),
        ),
        (
            "Typhoon NP TLB / RTLB",
            format!(
                "{} ent., fully assoc., FIFO repl.; miss {} cycles",
                cfg.typhoon.rtlb_entries, cfg.typhoon.np_tlb_miss
            ),
        ),
        (
            "Typhoon NP D-cache",
            format!(
                "{} KB, {}-way assoc.",
                cfg.typhoon.np_dcache_bytes / 1024,
                cfg.typhoon.np_dcache_assoc
            ),
        ),
        (
            "Stache handler path lengths",
            format!(
                "{} request / {} home / {} reply instructions",
                cfg.typhoon.stache_request_instr,
                cfg.typhoon.stache_home_instr,
                cfg.typhoon.stache_reply_instr
            ),
        ),
    ];
    for (k, v) in rows {
        t2.row(vec![k.to_string(), v]);
    }
    println!("{t2}");

    println!("TABLE 3. Application data sets.\n");
    let mut t3 = Table::new(vec!["Application", "Small Data Set", "Large Data Set"]);
    for app in AppId::ALL {
        t3.row(vec![
            app.name().to_string(),
            DataSet::Small.describe(app),
            DataSet::Large.describe(app),
        ]);
    }
    println!("{t3}");
}
