//! Design-choice ablations (DESIGN.md §5): sensitivity of the headline
//! comparison to the knobs the paper's design fixes.
//!
//! 1. **Handler path length** — Typhoon's case rests on short user-level
//!    handlers (14/30/20 instructions). How fast does Typhoon/Stache
//!    degrade if handlers were 2× or 4× longer (or gain if 0.5×)?
//! 2. **Network latency** — the paper notes 11 cycles is optimistic and
//!    that a slower network would *favor Typhoon* by shrinking its
//!    relative overhead. Sweep 11/22/44.
//! 3. **Stache memory budget** — Stache uses "only as much of local
//!    memory as an application chooses": sweep the stache page budget to
//!    show replacement cost appearing as the budget shrinks.
//! 4. **Dedicated NP vs. software Tempest** — run the same protocol with
//!    handlers on the NP vs. interrupting the primary CPU (the paper's
//!    "native CM-5" direction, later Blizzard): the cost of *not*
//!    building the hardware.
//! 5. **DirNNB page placement** — round-robin (paper baseline) vs.
//!    owner-ideal (first-touch quality), quantifying how much of
//!    Stache's Figure 3 win is automatic locality.
//! 6. **Custom protocols beyond EM3D** — Ocean with delayed-update
//!    boundary pushes vs. transparent Stache: Section 4's idea applied
//!    to a second application.
//! 7. **Network contention** — the paper explicitly does not model
//!    contention; a per-packet injection-port occupancy shows which way
//!    the comparison moves when senders serialize.
//!
//! Usage: `ablations [--scale N] [--nodes N] [--full]` (default scale 16).

use tt_base::table::Table;
use tt_bench::{bench_config, build_app, run_system, sync_for, System};
use tt_apps::{AppId, DataSet};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, nodes) = tt_bench::parse_args(&args, 16);
    let app = AppId::Em3d;
    let set = DataSet::Small;

    println!("ABLATION 1. Stache handler path length (EM3D small, {nodes} nodes, 1/{scale}).\n");
    let mut t = Table::new(vec!["handler cost x", "Typhoon/Stache vs DirNNB"]);
    let base_cfg = {
        let mut c = bench_config(nodes);
        c.cpu.cache_bytes = 4 * 1024;
        c
    };
    let dirnnb = run_system(
        System::Dirnnb,
        &base_cfg,
        build_app(app, set, scale, nodes, sync_for(app, System::Dirnnb)),
    )
    .cycles;
    for scale_factor in [0.5, 1.0, 2.0, 4.0] {
        let mut cfg = base_cfg.clone();
        cfg.typhoon.handler_cost_scale = scale_factor;
        let t_cycles = run_system(
            System::TyphoonStache,
            &cfg,
            build_app(app, set, scale, nodes, sync_for(app, System::TyphoonStache)),
        )
        .cycles;
        t.row(vec![
            format!("{scale_factor:.1}"),
            format!("{:.3}", t_cycles.as_f64() / dirnnb.as_f64()),
        ]);
    }
    println!("{t}");

    println!("ABLATION 2. Network latency (EM3D small, 4K caches).\n");
    let mut t = Table::new(vec!["latency (cycles)", "Typhoon/Stache", "DirNNB", "relative"]);
    for lat in [11u64, 22, 44] {
        let mut cfg = base_cfg.clone();
        cfg.timing.network_latency = tt_base::Cycles::new(lat);
        let ty = run_system(
            System::TyphoonStache,
            &cfg,
            build_app(app, set, scale, nodes, sync_for(app, System::TyphoonStache)),
        )
        .cycles;
        let d = run_system(
            System::Dirnnb,
            &cfg,
            build_app(app, set, scale, nodes, sync_for(app, System::Dirnnb)),
        )
        .cycles;
        t.row(vec![
            lat.to_string(),
            ty.to_string(),
            d.to_string(),
            format!("{:.3}", ty.as_f64() / d.as_f64()),
        ]);
    }
    println!("{t}");
    println!("(paper: a slower network shrinks Typhoon's relative overhead)\n");

    println!("ABLATION 3. Stache page budget (EM3D small): replacement cost.\n");
    let mut t = Table::new(vec![
        "budget (pages)",
        "cycles",
        "replacements",
        "writebacks",
    ]);
    for pages in [usize::MAX, 64, 32, 16] {
        let mut cfg = base_cfg.clone();
        cfg.stache_capacity_bytes = if pages == usize::MAX {
            usize::MAX
        } else {
            pages * 4096
        };
        let out = run_system(
            System::TyphoonStache,
            &cfg,
            build_app(app, set, scale, nodes, sync_for(app, System::TyphoonStache)),
        );
        t.row(vec![
            if pages == usize::MAX {
                "unbounded".to_string()
            } else {
                pages.to_string()
            },
            out.cycles.to_string(),
            format!("{}", out.report.get("stache.replacements").unwrap_or(0.0)),
            format!("{}", out.report.get("stache.writebacks_sent").unwrap_or(0.0)),
        ]);
    }
    println!("{t}");

    println!("ABLATION 4. Dedicated NP vs software Tempest (handlers on the CPU).\n");
    let mut t = Table::new(vec!["handler placement", "cycles", "vs dedicated"]);
    let mut base_cycles = 0f64;
    for mode in [tt_base::config::NpMode::Dedicated, tt_base::config::NpMode::OnCpu] {
        let mut cfg = base_cfg.clone();
        cfg.typhoon.np_mode = mode;
        let out = run_system(
            System::TyphoonStache,
            &cfg,
            build_app(app, set, scale, nodes, sync_for(app, System::TyphoonStache)),
        );
        if mode == tt_base::config::NpMode::Dedicated {
            base_cycles = out.cycles.as_f64();
        }
        t.row(vec![
            format!("{mode:?}"),
            out.cycles.to_string(),
            format!("{:.2}x", out.cycles.as_f64() / base_cycles),
        ]);
    }
    println!("{t}");
    println!("(the dedicated NP is the hardware investment the paper argues for)\n");

    // Ocean's owners span multiple pages, so owner placement genuinely
    // differs from round-robin (EM3D at this scale has one page per
    // owner, where the two coincide).
    println!("ABLATION 5. DirNNB page placement (Ocean large, 4K caches).\n");
    let mut t = Table::new(vec!["placement", "DirNNB cycles", "Typhoon/Stache relative"]);
    let oapp = AppId::Ocean;
    let oset = DataSet::Large;
    // Scale capped at 4 so each owner spans several pages (at deeper
    // scales every owner fits one page and the two policies coincide).
    let scale = scale.min(4);
    let ty = run_system(
        System::TyphoonStache,
        &base_cfg,
        build_app(oapp, oset, scale, nodes, sync_for(oapp, System::TyphoonStache)),
    )
    .cycles;
    for placement in [
        tt_base::config::DirPlacement::RoundRobin,
        tt_base::config::DirPlacement::Owner,
    ] {
        let mut cfg = base_cfg.clone();
        cfg.dirnnb.placement = placement;
        let d = run_system(
            System::Dirnnb,
            &cfg,
            build_app(oapp, oset, scale, nodes, sync_for(oapp, System::Dirnnb)),
        )
        .cycles;
        t.row(vec![
            format!("{placement:?}"),
            d.to_string(),
            format!("{:.3}", ty.as_f64() / d.as_f64()),
        ]);
    }
    println!("{t}");
    println!("(the paper: first-touch-quality placement 'eliminates much of the\ndifference' — Stache gets that locality automatically)\n");

    println!("ABLATION 6. Ocean with a custom boundary-push protocol.\n");
    let mut t = Table::new(vec!["protocol", "cycles", "net packets"]);
    {
        use tt_apps::ocean::{Ocean, OceanParams, OceanSync};
        use tt_apps::PhasedWorkload;
        use tt_stache::{DelayedUpdateProtocol, StacheProtocol};
        use tt_typhoon::TyphoonMachine;
        let mut p = OceanParams::table3(DataSet::Small, nodes);
        p.n = (p.n / (scale.min(4))).max(16);
        p.iterations = 6;
        let stache = TyphoonMachine::new(
            base_cfg.clone(),
            Box::new(PhasedWorkload::new(Ocean::new(p.clone()))),
            &|id, layout, cfg| Box::new(StacheProtocol::new(id, layout, cfg)),
        )
        .run();
        p.sync = OceanSync::Push;
        let push = TyphoonMachine::new(
            base_cfg.clone(),
            Box::new(PhasedWorkload::new(Ocean::new(p))),
            &|id, layout, cfg| Box::new(DelayedUpdateProtocol::new(id, layout, cfg)),
        )
        .run();
        for (name, r) in [("Typhoon/Stache", &stache), ("Typhoon/Push", &push)] {
            t.row(vec![
                name.to_string(),
                r.cycles.to_string(),
                format!("{}", r.report.get("net.packets").unwrap_or(0.0)),
            ]);
        }
    }
    println!("{t}");
    println!("(boundary rows are pushed once per sweep instead of the\ninvalidate/ack/request/response round trips)\n");

    // Occupancy affects Typhoon's real message machinery; the DirNNB
    // cost model (like the paper's) abstracts injection entirely, so its
    // column is constant — the row spread shows how sensitive the
    // user-level system is to a serializing network port.
    println!("ABLATION 7. Network injection-port occupancy (EM3D small, 4K caches).\n");
    let mut t = Table::new(vec!["occupancy (cycles/packet)", "Typhoon/Stache", "DirNNB", "relative"]);
    for occ in [0u64, 4, 16] {
        let mut cfg = base_cfg.clone();
        cfg.timing.network_occupancy = tt_base::Cycles::new(occ);
        let ty = run_system(
            System::TyphoonStache,
            &cfg,
            build_app(app, set, scale, nodes, sync_for(app, System::TyphoonStache)),
        )
        .cycles;
        let d = run_system(
            System::Dirnnb,
            &cfg,
            build_app(app, set, scale, nodes, sync_for(app, System::Dirnnb)),
        )
        .cycles;
        t.row(vec![
            occ.to_string(),
            ty.to_string(),
            d.to_string(),
            format!("{:.3}", ty.as_f64() / d.as_f64()),
        ]);
    }
    println!("{t}");
    println!("(the paper's zero-contention network is the occupancy-0 row; the\nDirNNB cost model abstracts injection, so only Typhoon moves)");
}
