//! Design-choice ablations (DESIGN.md §5): sensitivity of the headline
//! comparison to the knobs the paper's design fixes.
//!
//! 1. **Handler path length** — Typhoon's case rests on short user-level
//!    handlers (14/30/20 instructions). How fast does Typhoon/Stache
//!    degrade if handlers were 2× or 4× longer (or gain if 0.5×)?
//! 2. **Network latency** — the paper notes 11 cycles is optimistic and
//!    that a slower network would *favor Typhoon* by shrinking its
//!    relative overhead. Sweep 11/22/44.
//! 3. **Stache memory budget** — Stache uses "only as much of local
//!    memory as an application chooses": sweep the stache page budget to
//!    show replacement cost appearing as the budget shrinks.
//! 4. **Dedicated NP vs. software Tempest** — run the same protocol with
//!    handlers on the NP vs. interrupting the primary CPU (the paper's
//!    "native CM-5" direction, later Blizzard): the cost of *not*
//!    building the hardware.
//! 5. **DirNNB page placement** — round-robin (paper baseline) vs.
//!    owner-ideal (first-touch quality), quantifying how much of
//!    Stache's Figure 3 win is automatic locality.
//! 6. **Custom protocols beyond EM3D** — Ocean with delayed-update
//!    boundary pushes vs. transparent Stache: Section 4's idea applied
//!    to a second application.
//! 7. **Network contention** — the paper explicitly does not model
//!    contention; a per-packet injection-port occupancy shows which way
//!    the comparison moves when senders serialize.
//!
//! Usage: `ablations [--scale N] [--nodes N] [--jobs N] [--repeat N]
//! [--json PATH] [--full]` (default scale 16). Each ablation's
//! independent runs fan out across `--jobs` threads; the tables are
//! byte-identical for any `jobs` or `repeat` value (`--repeat N` takes
//! min-of-N wall timings for stable throughput records).

use std::time::Instant;

use tt_base::table::Table;
use tt_bench::json::PointRecord;
use tt_bench::{
    build_app, min_of_runs, par, run_system_min, sync_for, RunOutcome, System,
};
use tt_apps::{AppId, DataSet};

/// A throughput record for one completed run.
fn record(point: String, system: &str, out: &RunOutcome) -> PointRecord {
    PointRecord {
        point,
        system: system.into(),
        cycles: out.cycles.raw(),
        wall_secs: out.wall_secs,
        ops: out.ops,
        pdes: out.pdes,
        extra: None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = tt_bench::parse_cli(&args, 16);
    let (scale, nodes, jobs, repeat) = (cli.scale, cli.nodes, cli.jobs, cli.repeat);
    let app = AppId::Em3d;
    let set = DataSet::Small;
    let mut records: Vec<PointRecord> = Vec::new();
    let sweep_start = Instant::now();

    println!("ABLATION 1. Stache handler path length (EM3D small, {nodes} nodes, 1/{scale}).\n");
    let mut t = Table::new(vec!["handler cost x", "Typhoon/Stache vs DirNNB"]);
    let base_cfg = {
        let mut c = cli.config();
        c.cpu.cache_bytes = 4 * 1024;
        c
    };
    tt_bench::assert_sim_threads_identity(&base_cfg);
    let factors = [0.5, 1.0, 2.0, 4.0];
    // Task 0 is the shared DirNNB comparator; tasks 1.. sweep the factor.
    let outs = par::run_indexed(jobs, factors.len() + 1, |i| {
        if i == 0 {
            run_system_min(System::Dirnnb, &base_cfg, repeat, || {
                build_app(app, set, scale, nodes, sync_for(app, System::Dirnnb))
            })
        } else {
            let mut cfg = base_cfg.clone();
            cfg.typhoon.handler_cost_scale = factors[i - 1];
            run_system_min(System::TyphoonStache, &cfg, repeat, || {
                build_app(app, set, scale, nodes, sync_for(app, System::TyphoonStache))
            })
        }
    });
    let dirnnb = outs[0].cycles;
    records.push(record("ablation1 baseline".into(), "DirNNB", &outs[0]));
    for (scale_factor, out) in factors.iter().zip(&outs[1..]) {
        t.row(vec![
            format!("{scale_factor:.1}"),
            format!("{:.3}", out.cycles.as_f64() / dirnnb.as_f64()),
        ]);
        records.push(record(
            format!("ablation1 handler x{scale_factor:.1}"),
            "Typhoon/Stache",
            out,
        ));
    }
    println!("{t}");

    println!("ABLATION 2. Network latency (EM3D small, 4K caches).\n");
    let mut t = Table::new(vec!["latency (cycles)", "Typhoon/Stache", "DirNNB", "relative"]);
    let latencies = [11u64, 22, 44];
    // Two tasks per row: even index Typhoon/Stache, odd index DirNNB.
    let outs = par::run_indexed(jobs, latencies.len() * 2, |i| {
        let mut cfg = base_cfg.clone();
        cfg.timing.network_latency = tt_base::Cycles::new(latencies[i / 2]);
        let system = if i % 2 == 0 {
            System::TyphoonStache
        } else {
            System::Dirnnb
        };
        run_system_min(system, &cfg, repeat, || {
            build_app(app, set, scale, nodes, sync_for(app, system))
        })
    });
    for (r, lat) in latencies.into_iter().enumerate() {
        let (ty, d) = (&outs[r * 2], &outs[r * 2 + 1]);
        t.row(vec![
            lat.to_string(),
            ty.cycles.to_string(),
            d.cycles.to_string(),
            format!("{:.3}", ty.cycles.as_f64() / d.cycles.as_f64()),
        ]);
        records.push(record(format!("ablation2 latency {lat}"), "Typhoon/Stache", ty));
        records.push(record(format!("ablation2 latency {lat}"), "DirNNB", d));
    }
    println!("{t}");
    println!("(paper: a slower network shrinks Typhoon's relative overhead)\n");

    println!("ABLATION 3. Stache page budget (EM3D small): replacement cost.\n");
    let mut t = Table::new(vec![
        "budget (pages)",
        "cycles",
        "replacements",
        "writebacks",
    ]);
    let budgets = [usize::MAX, 64, 32, 16];
    let outs = par::run_indexed(jobs, budgets.len(), |i| {
        let mut cfg = base_cfg.clone();
        cfg.stache_capacity_bytes = if budgets[i] == usize::MAX {
            usize::MAX
        } else {
            budgets[i] * 4096
        };
        run_system_min(System::TyphoonStache, &cfg, repeat, || {
            build_app(app, set, scale, nodes, sync_for(app, System::TyphoonStache))
        })
    });
    for (pages, out) in budgets.into_iter().zip(&outs) {
        let label = if pages == usize::MAX {
            "unbounded".to_string()
        } else {
            pages.to_string()
        };
        t.row(vec![
            label.clone(),
            out.cycles.to_string(),
            format!("{}", out.report.get("stache.replacements").unwrap_or(0.0)),
            format!("{}", out.report.get("stache.writebacks_sent").unwrap_or(0.0)),
        ]);
        records.push(record(format!("ablation3 budget {label}"), "Typhoon/Stache", out));
    }
    println!("{t}");

    println!("ABLATION 4. Dedicated NP vs software Tempest (handlers on the CPU).\n");
    let mut t = Table::new(vec!["handler placement", "cycles", "vs dedicated"]);
    let modes = [tt_base::config::NpMode::Dedicated, tt_base::config::NpMode::OnCpu];
    let outs = par::run_indexed(jobs, modes.len(), |i| {
        let mut cfg = base_cfg.clone();
        cfg.typhoon.np_mode = modes[i];
        run_system_min(System::TyphoonStache, &cfg, repeat, || {
            build_app(app, set, scale, nodes, sync_for(app, System::TyphoonStache))
        })
    });
    let base_cycles = outs[0].cycles.as_f64();
    for (mode, out) in modes.into_iter().zip(&outs) {
        t.row(vec![
            format!("{mode:?}"),
            out.cycles.to_string(),
            format!("{:.2}x", out.cycles.as_f64() / base_cycles),
        ]);
        records.push(record(format!("ablation4 np {mode:?}"), "Typhoon/Stache", out));
    }
    println!("{t}");
    println!("(the dedicated NP is the hardware investment the paper argues for)\n");

    // Ocean's owners span multiple pages, so owner placement genuinely
    // differs from round-robin (EM3D at this scale has one page per
    // owner, where the two coincide).
    println!("ABLATION 5. DirNNB page placement (Ocean large, 4K caches).\n");
    let mut t = Table::new(vec!["placement", "DirNNB cycles", "Typhoon/Stache relative"]);
    let oapp = AppId::Ocean;
    let oset = DataSet::Large;
    // Scale capped at 4 so each owner spans several pages (at deeper
    // scales every owner fits one page and the two policies coincide).
    let scale = scale.min(4);
    let placements = [
        tt_base::config::DirPlacement::RoundRobin,
        tt_base::config::DirPlacement::Owner,
    ];
    // Task 0 is the shared Typhoon/Stache run; tasks 1.. sweep placement.
    let outs = par::run_indexed(jobs, placements.len() + 1, |i| {
        if i == 0 {
            run_system_min(System::TyphoonStache, &base_cfg, repeat, || {
                build_app(oapp, oset, scale, nodes, sync_for(oapp, System::TyphoonStache))
            })
        } else {
            let mut cfg = base_cfg.clone();
            cfg.dirnnb.placement = placements[i - 1];
            run_system_min(System::Dirnnb, &cfg, repeat, || {
                build_app(oapp, oset, scale, nodes, sync_for(oapp, System::Dirnnb))
            })
        }
    });
    let ty = outs[0].cycles;
    records.push(record("ablation5 baseline".into(), "Typhoon/Stache", &outs[0]));
    for (placement, d) in placements.into_iter().zip(&outs[1..]) {
        t.row(vec![
            format!("{placement:?}"),
            d.cycles.to_string(),
            format!("{:.3}", ty.as_f64() / d.cycles.as_f64()),
        ]);
        records.push(record(format!("ablation5 {placement:?}"), "DirNNB", d));
    }
    println!("{t}");
    println!("(the paper: first-touch-quality placement 'eliminates much of the\ndifference' — Stache gets that locality automatically)\n");

    println!("ABLATION 6. Ocean with a custom boundary-push protocol.\n");
    let mut t = Table::new(vec!["protocol", "cycles", "net packets"]);
    {
        use tt_apps::ocean::{Ocean, OceanParams, OceanSync};
        use tt_apps::PhasedWorkload;
        use tt_stache::{DelayedUpdateProtocol, StacheProtocol};
        use tt_typhoon::TyphoonMachine;
        let mut p = OceanParams::table3(DataSet::Small, nodes);
        p.n = (p.n / (scale.min(4))).max(16);
        p.iterations = 6;
        // Task 0: transparent Stache; task 1: the custom push protocol.
        let outs = par::run_indexed(jobs, 2, |i| {
            min_of_runs(repeat, || {
                let start = Instant::now();
                let r = if i == 0 {
                    TyphoonMachine::new(
                        base_cfg.clone(),
                        Box::new(PhasedWorkload::new(Ocean::new(p.clone()))),
                        &|id, layout, cfg| Box::new(StacheProtocol::new(id, layout, cfg)),
                    )
                    .run()
                } else {
                    let mut p = p.clone();
                    p.sync = OceanSync::Push;
                    TyphoonMachine::new(
                        base_cfg.clone(),
                        Box::new(PhasedWorkload::new(Ocean::new(p))),
                        &|id, layout, cfg| Box::new(DelayedUpdateProtocol::new(id, layout, cfg)),
                    )
                    .run()
                };
                let wall_secs = start.elapsed().as_secs_f64();
                let ops = r.report.get("cpu.ops").unwrap_or(0.0) as u64;
                RunOutcome {
                    cycles: r.cycles,
                    report: r.report,
                    wall_secs,
                    ops,
                    pdes: r.pdes,
                    peak_bytes: 0,
                    allocs: 0,
                }
            })
        });
        for (name, r) in [("Typhoon/Stache", &outs[0]), ("Typhoon/Push", &outs[1])] {
            t.row(vec![
                name.to_string(),
                r.cycles.to_string(),
                format!("{}", r.report.get("net.packets").unwrap_or(0.0)),
            ]);
            records.push(record("ablation6 ocean push".into(), name, r));
        }
    }
    println!("{t}");
    println!("(boundary rows are pushed once per sweep instead of the\ninvalidate/ack/request/response round trips)\n");

    // Occupancy affects Typhoon's real message machinery; the DirNNB
    // cost model (like the paper's) abstracts injection entirely, so its
    // column is constant — the row spread shows how sensitive the
    // user-level system is to a serializing network port.
    println!("ABLATION 7. Network injection-port occupancy (EM3D small, 4K caches).\n");
    let mut t = Table::new(vec!["occupancy (cycles/packet)", "Typhoon/Stache", "DirNNB", "relative"]);
    let occupancies = [0u64, 4, 16];
    let outs = par::run_indexed(jobs, occupancies.len() * 2, |i| {
        let mut cfg = base_cfg.clone();
        cfg.timing.network_occupancy = tt_base::Cycles::new(occupancies[i / 2]);
        let system = if i % 2 == 0 {
            System::TyphoonStache
        } else {
            System::Dirnnb
        };
        run_system_min(system, &cfg, repeat, || {
            build_app(app, set, scale, nodes, sync_for(app, system))
        })
    });
    for (r, occ) in occupancies.into_iter().enumerate() {
        let (ty, d) = (&outs[r * 2], &outs[r * 2 + 1]);
        t.row(vec![
            occ.to_string(),
            ty.cycles.to_string(),
            d.cycles.to_string(),
            format!("{:.3}", ty.cycles.as_f64() / d.cycles.as_f64()),
        ]);
        records.push(record(format!("ablation7 occupancy {occ}"), "Typhoon/Stache", ty));
        records.push(record(format!("ablation7 occupancy {occ}"), "DirNNB", d));
    }
    println!("{t}");
    println!("(the paper's zero-contention network is the occupancy-0 row; the\nDirNNB cost model abstracts injection, so only Typhoon moves)");

    let total_wall_secs = sweep_start.elapsed().as_secs_f64();
    eprintln!(
        "  sweep: {n} runs in {total_wall_secs:.2}s wall ({jobs} jobs)",
        n = records.len(),
    );
    cli.write_json("ablations", total_wall_secs, &records);
}
