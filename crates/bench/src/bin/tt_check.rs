//! `tt-check` — drive the coherence model checker from the command
//! line.
//!
//! ```text
//! tt-check run [--seeds N] [--base B] [--sim-threads N] [--window-policy P]
//!              [--topology T] [--faults] [--fault-seed F] [--planted-bug] [--out PATH]
//! tt-check replay --seed S [--sim-threads N] [--window-policy P]
//!                 [--topology T] [--faults] [--fault-seed F]
//! tt-check kv [--seeds N] [--base B] [--seed S] [--sim-threads N] [--window-policy P]
//!             [--topology T] [--faults] [--fault-seed F]
//! ```
//!
//! `run` fuzzes `N` consecutive seeds (litmus workloads × schedule
//! perturbations including sequential-vs-parallel simulation,
//! differential across both machines) and exits non-zero on the first
//! failure, printing the seed so `tt-check replay --seed S` reproduces
//! it bit-exactly. `--sim-threads N` (on either command) forces the
//! parallel-differential leg to `N` simulator threads on every case —
//! the case shapes and every other perturbation stay seed-derived —
//! instead of letting each seed draw its own thread count.
//! `--window-policy fixed|adaptive` likewise forces the parallel leg's
//! window-advance policy instead of each seed's coin flip.
//! `--topology ideal|mesh[:W]|fat-tree[:A]` forces the interconnect of
//! the Typhoon legs instead of each seed's draw; the DirNNB reference
//! leg always runs the ideal pipe, so mesh cases are checked against a
//! pristine constant-latency baseline.
//! `--faults` gives every case a seed-derived lossy-network schedule
//! (drops, duplicates, detected corruption, transient partitions) with
//! the protocol running behind the reliable transport; the final image
//! must still match the fault-free DirNNB reference, and
//! `--fault-seed F` replays one specific schedule bit-exactly.
//! `--planted-bug` swaps in the deliberately broken
//! `SkipInvalidate` Stache variant — or, with `--faults`, a transport
//! that retransmits without duplicate suppression: that run *must*
//! fail, proving the harness has teeth. `--out` writes a JSON report
//! alongside the other bench reports.
//!
//! `kv` fuzzes the KV-serving litmus family instead: seed-generated
//! put/get races over `tt-serve` key slots, run through a three-machine
//! differential (Stache-served Typhoon, write-update-served Typhoon,
//! DirNNB) whose final images must agree word-for-word with each other
//! and the generator's prediction. `--seed S` replays one seed.

use std::io::Write as _;
use std::time::Instant;

use tt_base::{NodeId, Topology, WindowPolicy};
use tt_bench::json::{git_rev, hostname};
use tt_check::scenarios::SkipInvalidate;
use tt_check::{
    fuzz_kv_with_options, fuzz_with_options, run_kv_seed_with_options, run_seed_with_options,
    shrink_with_transport, stache_factory, Failure, FuzzOptions,
};
use tt_stache::ReliableConfig;

fn usage() -> ! {
    eprintln!(
        "usage: tt-check run [--seeds N] [--base B] [--sim-threads N] \
         [--window-policy fixed|adaptive] [--topology ideal|mesh[:W]|fat-tree[:A]] \
         [--faults] [--fault-seed F] \
         [--planted-bug] [--out PATH]\n\
         \x20      tt-check replay --seed S [--sim-threads N] \
         [--window-policy fixed|adaptive] [--topology T] [--faults] [--fault-seed F]\n\
         \x20      tt-check kv [--seeds N] [--base B] [--seed S] [--sim-threads N] \
         [--window-policy fixed|adaptive] [--topology T] [--faults] [--fault-seed F]\n\
         \n\
         --faults draws a seed-derived lossy-network schedule per case \
         (drops, duplicates,\n\
         detected corruption, transient partitions) and runs the protocol \
         behind the\n\
         reliable transport; --fault-seed F forces one fault schedule \
         (implies --faults).\n\
         With --faults, --planted-bug plants the transport bug \
         (retransmission without\n\
         duplicate suppression) instead of the Stache one."
    );
    std::process::exit(2);
}

fn parse_policy(args: &[String], i: &mut usize) -> WindowPolicy {
    *i += 1;
    args.get(*i)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("tt-check: --window-policy needs `fixed` or `adaptive`");
            usage()
        })
}

fn parse_topology(args: &[String], i: &mut usize) -> Topology {
    *i += 1;
    args.get(*i)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("tt-check: --topology needs `ideal`, `mesh[:W]`, or `fat-tree[:A]`");
            usage()
        })
}

fn parse_u64(args: &[String], i: &mut usize, flag: &str) -> u64 {
    *i += 1;
    args.get(*i)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("tt-check: {flag} needs an integer argument");
            usage()
        })
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fault_json(fault: &Option<tt_base::FaultSpec>) -> String {
    match fault {
        Some(fs) => format!(
            "{{\"seed\": {}, \"drop_permille\": {}, \"dup_permille\": {}, \
             \"corrupt_permille\": {}, \"partition_permille\": {}}}",
            fs.seed, fs.drop_permille, fs.dup_permille, fs.corrupt_permille, fs.partition_permille
        ),
        None => "null".to_string(),
    }
}

fn failure_json(f: &Failure) -> String {
    let shrunk = match &f.shrunk {
        Some(s) => format!(
            "{{\"nodes\": {}, \"pages\": {}, \"blocks\": {}, \"phases\": {}}}",
            s.nodes, s.pages, s.blocks, s.phases
        ),
        None => "null".to_string(),
    };
    let shrunk_fault = match &f.shrunk_perturb {
        Some(p) => fault_json(&p.fault),
        None => "null".to_string(),
    };
    format!(
        "{{\n    \"seed\": {},\n    \"stage\": \"{}\",\n    \"nodes\": {},\n    \
         \"pages\": {},\n    \"blocks\": {},\n    \"phases\": {},\n    \
         \"fault\": {},\n    \"message\": \"{}\",\n    \"shrunk\": {},\n    \
         \"shrunk_fault\": {}\n  }}",
        f.seed,
        f.stage,
        f.cfg.nodes,
        f.cfg.pages,
        f.cfg.blocks,
        f.cfg.phases,
        fault_json(&f.perturb.fault),
        json_escape(&f.message),
        shrunk,
        shrunk_fault
    )
}

#[allow(clippy::too_many_arguments)] // report plumbing, one call site per command
fn write_fuzz_report(
    path: &str,
    base: u64,
    requested: u64,
    seeds_run: u64,
    planted: bool,
    options: &FuzzOptions,
    wall: f64,
    failure: Option<&Failure>,
) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"tt-check\",\n");
    out.push_str(&format!("  \"git_rev\": \"{}\",\n", json_escape(&git_rev())));
    out.push_str(&format!("  \"hostname\": \"{}\",\n", json_escape(&hostname())));
    out.push_str(&format!("  \"base_seed\": {base},\n"));
    out.push_str(&format!("  \"seeds_requested\": {requested},\n"));
    out.push_str(&format!("  \"seeds_run\": {seeds_run},\n"));
    out.push_str(&format!("  \"planted_bug\": {planted},\n"));
    out.push_str(&format!("  \"faults\": {},\n", options.faults || options.fault_seed.is_some()));
    out.push_str(&format!(
        "  \"fault_seed\": {},\n",
        options.fault_seed.map_or("null".to_string(), |f| f.to_string())
    ));
    out.push_str(&format!("  \"wall_secs\": {wall:.3},\n"));
    out.push_str(&format!("  \"clean\": {},\n", failure.is_none()));
    match failure {
        Some(f) => out.push_str(&format!("  \"failure\": {}\n", failure_json(f))),
        None => out.push_str("  \"failure\": null\n"),
    }
    out.push_str("}\n");
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    let mut file = std::fs::File::create(path).expect("create report file");
    file.write_all(out.as_bytes()).expect("write report");
    eprintln!("tt-check: report written to {path}");
}

fn cmd_run(args: &[String]) -> i32 {
    let mut seeds: u64 = 500;
    let mut base: u64 = 0;
    let mut options = FuzzOptions::default();
    let mut planted = false;
    let mut out_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => seeds = parse_u64(args, &mut i, "--seeds"),
            "--base" => base = parse_u64(args, &mut i, "--base"),
            "--sim-threads" => {
                options.sim_threads = Some(parse_u64(args, &mut i, "--sim-threads") as usize)
            }
            "--window-policy" => options.window_policy = Some(parse_policy(args, &mut i)),
            "--topology" => options.topology = Some(parse_topology(args, &mut i)),
            "--faults" => options.faults = true,
            "--fault-seed" => {
                options.fault_seed = Some(parse_u64(args, &mut i, "--fault-seed"));
                options.faults = true;
            }
            "--planted-bug" => planted = true,
            "--out" => {
                i += 1;
                out_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }

    // With faults, the planted bug is the transport-level one — the
    // retry path ships without duplicate suppression, so a retransmit
    // whose original arrived replays into the protocol. Without faults
    // it stays the classic Stache skip-invalidate.
    let plant_transport = planted && options.faults;
    if plant_transport {
        options.transport = Some(ReliableConfig { dedupe: false, ..ReliableConfig::default() });
    }
    let planted_factory = |id: NodeId, layout: &_, cfg: &_| {
        Box::new(SkipInvalidate::new(id, layout, cfg)) as Box<dyn tt_tempest::Protocol>
    };
    let start = Instant::now();
    let report = if planted && !plant_transport {
        fuzz_with_options(base, seeds, &options, &planted_factory)
    } else {
        fuzz_with_options(base, seeds, &options, &stache_factory)
    };
    let transport = options.transport_config();
    let failure = report.failure.map(|f| {
        eprintln!("tt-check: shrinking failing seed {}...", f.seed);
        if planted && !plant_transport {
            shrink_with_transport(&f, &planted_factory, &transport)
        } else {
            shrink_with_transport(&f, &stache_factory, &transport)
        }
    });
    let wall = start.elapsed().as_secs_f64();

    if let Some(path) = &out_path {
        write_fuzz_report(
            path,
            base,
            seeds,
            report.seeds_run,
            planted,
            &options,
            wall,
            failure.as_ref(),
        );
    }
    match (planted, failure) {
        (false, None) => {
            println!(
                "tt-check: {} seeds clean on both machines in {wall:.1}s (base {base})",
                report.seeds_run
            );
            0
        }
        (false, Some(f)) => {
            println!("tt-check: FAILURE after {} seeds in {wall:.1}s", report.seeds_run);
            println!("  {f}");
            println!("  reproduce with: tt-check replay --seed {}", f.seed);
            1
        }
        (true, Some(f)) => {
            println!(
                "tt-check: planted bug caught after {} seeds in {wall:.1}s (expected)",
                report.seeds_run
            );
            println!("  {f}");
            0
        }
        (true, None) => {
            println!(
                "tt-check: planted bug survived {} seeds — the harness is blind!",
                report.seeds_run
            );
            1
        }
    }
}

fn cmd_replay(args: &[String]) -> i32 {
    let mut seed: Option<u64> = None;
    let mut options = FuzzOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => seed = Some(parse_u64(args, &mut i, "--seed")),
            "--sim-threads" => {
                options.sim_threads = Some(parse_u64(args, &mut i, "--sim-threads") as usize)
            }
            "--window-policy" => options.window_policy = Some(parse_policy(args, &mut i)),
            "--topology" => options.topology = Some(parse_topology(args, &mut i)),
            "--faults" => options.faults = true,
            "--fault-seed" => {
                options.fault_seed = Some(parse_u64(args, &mut i, "--fault-seed"));
                options.faults = true;
            }
            _ => usage(),
        }
        i += 1;
    }
    let seed = seed.unwrap_or_else(|| usage());
    match run_seed_with_options(seed, &options) {
        Ok(r) => {
            println!(
                "tt-check: seed {seed} clean — typhoon {} cycles, dirnnb {} cycles, \
                 {} events observed",
                r.typhoon_cycles, r.dirnnb_cycles, r.events
            );
            0
        }
        Err(f) => {
            println!("tt-check: seed {seed} FAILS");
            println!("  {f}");
            1
        }
    }
}

/// `tt-check kv`: the KV-serving litmus family. Fuzzes `--seeds`
/// consecutive seeds through the three-machine differential
/// (Stache-served, write-update-served, DirNNB) plus the parallel
/// reruns; `--seed S` replays one seed instead.
fn cmd_kv(args: &[String]) -> i32 {
    let mut seeds: u64 = 200;
    let mut base: u64 = 0;
    let mut replay: Option<u64> = None;
    let mut options = FuzzOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => seeds = parse_u64(args, &mut i, "--seeds"),
            "--base" => base = parse_u64(args, &mut i, "--base"),
            "--seed" => replay = Some(parse_u64(args, &mut i, "--seed")),
            "--sim-threads" => {
                options.sim_threads = Some(parse_u64(args, &mut i, "--sim-threads") as usize)
            }
            "--window-policy" => options.window_policy = Some(parse_policy(args, &mut i)),
            "--topology" => options.topology = Some(parse_topology(args, &mut i)),
            "--faults" => options.faults = true,
            "--fault-seed" => {
                options.fault_seed = Some(parse_u64(args, &mut i, "--fault-seed"));
                options.faults = true;
            }
            _ => usage(),
        }
        i += 1;
    }

    if let Some(seed) = replay {
        return match run_kv_seed_with_options(seed, &options) {
            Ok(r) => {
                println!(
                    "tt-check: kv seed {seed} clean — stache {} cycles, update {} cycles, \
                     dirnnb {} cycles, {} events observed",
                    r.stache_cycles, r.update_cycles, r.dirnnb_cycles, r.events
                );
                0
            }
            Err(f) => {
                println!("tt-check: kv seed {seed} FAILS");
                println!("  {f}");
                1
            }
        };
    }

    let start = Instant::now();
    let report = fuzz_kv_with_options(base, seeds, &options);
    let wall = start.elapsed().as_secs_f64();
    match report.failure {
        None => {
            println!(
                "tt-check: {} kv seeds clean on all three machines in {wall:.1}s (base {base})",
                report.seeds_run
            );
            0
        }
        Some(f) => {
            println!("tt-check: kv FAILURE after {} seeds in {wall:.1}s", report.seeds_run);
            println!("  {f}");
            println!("  reproduce with: tt-check kv --seed {}", f.seed);
            1
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("kv") => cmd_kv(&args[1..]),
        _ => usage(),
    };
    std::process::exit(code);
}
