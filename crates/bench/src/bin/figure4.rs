//! Regenerates **Figure 4**: EM3D cycles per edge as the fraction of
//! non-local edges grows from 0% to 50%, for DirNNB, Typhoon/Stache, and
//! Typhoon with the custom delayed-update protocol. The paper's claims:
//! all three curves rise with the remote fraction; the update protocol is
//! flattest and beats DirNNB by ~35% at 50% remote edges.
//!
//! Usage: `figure4 [--scale N] [--nodes N] [--full]`
//! (default scale 4; `--full` runs 192,000 nodes, degree 15).

use tt_base::table::Table;
use tt_bench::{bench_config, figure4_point};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, nodes) = tt_bench::parse_args(&args, 4);
    let cfg = bench_config(nodes);
    println!(
        "FIGURE 4. EM3D update-protocol performance, large data set \
         ({nodes} nodes, scale 1/{scale}).\n"
    );
    let mut table = Table::new(vec![
        "% non-local edges",
        "DirNNB",
        "Typhoon/Stache",
        "Typhoon/Update",
        "Update vs DirNNB",
    ]);
    for pct in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let p = figure4_point(pct, scale, &cfg);
        let [d, s, u] = p.cycles_per_edge;
        table.row(vec![
            format!("{:.0}%", pct * 100.0),
            format!("{d:.2}"),
            format!("{s:.2}"),
            format!("{u:.2}"),
            format!("{:+.1}%", (u / d - 1.0) * 100.0),
        ]);
        eprintln!("  {pct:.0}% done", pct = pct * 100.0);
    }
    println!("{table}");
    println!(
        "(cycles per edge per iteration; paper: Typhoon/Update beats DirNNB by\n\
         up to ~35% at 50% non-local edges, and the advantage grows with the\n\
         remote fraction)"
    );
}
