//! Regenerates **Figure 4**: EM3D cycles per edge as the fraction of
//! non-local edges grows from 0% to 50%, for DirNNB, Typhoon/Stache, and
//! Typhoon with the custom delayed-update protocol. The paper's claims:
//! all three curves rise with the remote fraction; the update protocol is
//! flattest and beats DirNNB by ~35% at 50% remote edges.
//!
//! Usage: `figure4 [--scale N] [--nodes N] [--jobs N] [--repeat N]
//! [--json PATH] [--full]` (default scale 4; `--full` runs 192,000
//! nodes, degree 15). The table is byte-identical for any `--jobs` or
//! `--repeat` value; `--repeat N` reruns each point N times and reports
//! min-of-N wall timings for stable `sim_cycles_per_sec`.

use std::time::Instant;

use tt_base::table::Table;
use tt_bench::json::PointRecord;
use tt_bench::{figure4_sweep_min, FIGURE4_SYSTEMS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = tt_bench::parse_cli(&args, 4);
    let cfg = cli.config();
    tt_bench::assert_sim_threads_identity(&cfg);
    println!(
        "FIGURE 4. EM3D update-protocol performance, large data set \
         ({nodes} nodes, scale 1/{scale}).\n",
        nodes = cli.nodes,
        scale = cli.scale,
    );
    let start = Instant::now();
    let points = figure4_sweep_min(cli.scale, &cfg, cli.jobs, cli.repeat);
    let total_wall_secs = start.elapsed().as_secs_f64();

    let mut table = Table::new(vec![
        "% non-local edges",
        "DirNNB",
        "Typhoon/Stache",
        "Typhoon/Update",
        "Update vs DirNNB",
    ]);
    let mut records = Vec::new();
    for p in &points {
        let [d, s, u] = p.cycles_per_edge;
        table.row(vec![
            format!("{:.0}%", p.pct_remote * 100.0),
            format!("{d:.2}"),
            format!("{s:.2}"),
            format!("{u:.2}"),
            format!("{:+.1}%", (u / d - 1.0) * 100.0),
        ]);
        eprintln!("  {pct:.0}% done", pct = p.pct_remote * 100.0);
        for (i, system) in FIGURE4_SYSTEMS.into_iter().enumerate() {
            records.push(PointRecord {
                point: format!("{:.0}% remote", p.pct_remote * 100.0),
                system: system.name().into(),
                cycles: p.cycles[i].raw(),
                wall_secs: p.stats[i].wall_secs,
                ops: p.stats[i].ops,
                pdes: p.stats[i].pdes,
                extra: None,
            });
        }
    }
    println!("{table}");
    println!(
        "(cycles per edge per iteration; paper: Typhoon/Update beats DirNNB by\n\
         up to ~35% at 50% non-local edges, and the advantage grows with the\n\
         remote fraction)"
    );
    eprintln!(
        "  sweep: {n} runs in {total_wall_secs:.2}s wall ({jobs} jobs)",
        n = records.len(),
        jobs = cli.jobs,
    );
    cli.write_json("figure4", total_wall_secs, &records);
}
