//! Per-point profile of the Figure 3 sweep: prints each point's relative
//! execution time and the wall-clock cost of measuring it. Useful for
//! choosing a `--scale` before a full run.
use tt_bench::{bench_config, figure3_point, FIGURE3_POINTS};
use tt_apps::AppId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, nodes) = tt_bench::parse_args(&args, 16);
    let cfg = bench_config(nodes);
    for app in AppId::ALL {
        for (set, cache) in FIGURE3_POINTS {
            let t0 = std::time::Instant::now();
            let p = figure3_point(app, set, cache, scale, &cfg);
            println!(
                "{app} {set}/{cache} rel={:.3} wall={:.1}s",
                p.relative(),
                t0.elapsed().as_secs_f64()
            );
        }
    }
}
