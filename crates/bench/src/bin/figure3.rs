//! Regenerates **Figure 3**: execution time of Typhoon/Stache relative
//! to DirNNB for the five benchmarks, across the paper's data-set /
//! cache-size points (small/4K, small/16K, small/64K, small/256K,
//! large/256K). Shorter (smaller) values mean better Typhoon/Stache
//! performance; the paper reports every bar within 1.3 and several below
//! 1.0 when the working set exceeds the hardware cache.
//!
//! Usage: `figure3 [--scale N] [--nodes N] [--full]`
//! (default scale 4; `--full` runs the paper's exact sizes).

use tt_base::table::Table;
use tt_bench::{bench_config, figure3_point, FIGURE3_POINTS};
use tt_apps::AppId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, nodes) = tt_bench::parse_args(&args, 4);
    let cfg = bench_config(nodes);
    println!(
        "FIGURE 3. Typhoon/Stache execution time relative to DirNNB \
         ({nodes} nodes, scale 1/{scale}).\n"
    );
    let mut table = Table::new(vec![
        "benchmark",
        "small/4K",
        "small/16K",
        "small/64K",
        "small/256K",
        "large/256K",
    ]);
    for app in AppId::ALL {
        let mut row = vec![app.name().to_string()];
        for (set, cache) in FIGURE3_POINTS {
            let point = figure3_point(app, set, cache, scale, &cfg);
            row.push(format!("{:.3}", point.relative()));
            eprintln!(
                "  {} {}/{}K: typhoon {} dirnnb {} -> {:.3}",
                app,
                set,
                cache / 1024,
                point.typhoon,
                point.dirnnb,
                point.relative()
            );
        }
        table.row(row);
    }
    println!("{table}");
    println!(
        "(paper: all bars <= ~1.3; Typhoon/Stache wins by up to ~25% when the\n\
         data set exceeds the CPU cache — small/4K and large/256K columns)"
    );
}
