//! Regenerates **Figure 3**: execution time of Typhoon/Stache relative
//! to DirNNB for the five benchmarks, across the paper's data-set /
//! cache-size points (small/4K, small/16K, small/64K, small/256K,
//! large/256K). Shorter (smaller) values mean better Typhoon/Stache
//! performance; the paper reports every bar within 1.3 and several below
//! 1.0 when the working set exceeds the hardware cache.
//!
//! Usage: `figure3 [--scale N] [--nodes N] [--jobs N] [--repeat N]
//! [--topology ideal|mesh[:W]|fat-tree[:A]] [--apps a,b,...]
//! [--json PATH] [--full]` (default scale 4; `--full` runs the paper's
//! exact sizes). The table is byte-identical for any `--jobs` or
//! `--repeat` value; `--repeat N` reruns each point N times and reports
//! min-of-N wall timings for stable `sim_cycles_per_sec`. Big-machine
//! sweeps (`--nodes 64|256|1024 --topology mesh`) use `--apps` to bound
//! the grid and read cost-per-node metrics from the `--json` report.

use std::time::Instant;

use tt_base::table::Table;
use tt_bench::json::PointRecord;
use tt_bench::{RunStats, FIGURE3_POINTS};
use tt_apps::AppId;

/// Big-machine cost-per-node metrics as a JSON fragment: host
/// microseconds per simulated node per kilocycle, and the heap
/// high-water mark over the run (attributable per-run only at
/// `--jobs 1`; see EXPERIMENTS.md).
fn cost_fragment(nodes: usize, cycles: u64, s: &RunStats) -> Option<String> {
    let us_per_node_kcycle = if cycles > 0 {
        s.wall_secs * 1e6 / nodes as f64 / (cycles as f64 / 1000.0)
    } else {
        0.0
    };
    Some(format!(
        "\"cost\": {{\"us_per_node_kilocycle\": {:.4}, \"peak_bytes\": {}, \
         \"bytes_per_node\": {}, \"allocs\": {}}}",
        us_per_node_kcycle,
        s.peak_bytes,
        s.peak_bytes / nodes as u64,
        s.allocs,
    ))
}

/// Parses a comma-separated `--apps` list against the app names.
fn parse_apps(list: &str) -> Vec<AppId> {
    list.split(',')
        .map(|name| {
            AppId::ALL
                .into_iter()
                .find(|a| a.name().eq_ignore_ascii_case(name.trim()))
                .unwrap_or_else(|| panic!("--apps: unknown application {name}"))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut apps: Vec<AppId> = AppId::ALL.to_vec();
    let cli = tt_bench::parse_cli_with(&args, 4, &mut |flag, args, i| match flag {
        "--apps" => {
            apps = parse_apps(tt_bench::cli::value(args, *i, "--apps"));
            *i += 2;
        }
        other => panic!(
            "unknown argument {other}; figure3 adds --apps a,b,... to the \
             shared harness flags"
        ),
    });
    let cfg = cli.config();
    tt_bench::assert_sim_threads_identity(&cfg);
    println!(
        "FIGURE 3. Typhoon/Stache execution time relative to DirNNB \
         ({nodes} nodes, scale 1/{scale}).\n",
        nodes = cli.nodes,
        scale = cli.scale,
    );
    let start = Instant::now();
    let points = tt_bench::figure3_sweep_apps(&apps, cli.scale, &cfg, cli.jobs, cli.repeat);
    let total_wall_secs = start.elapsed().as_secs_f64();

    let mut table = Table::new(vec![
        "benchmark",
        "small/4K",
        "small/16K",
        "small/64K",
        "small/256K",
        "large/256K",
    ]);
    let mut records = Vec::new();
    for (a, app) in apps.iter().copied().enumerate() {
        let mut row = vec![app.name().to_string()];
        for (i, (set, cache)) in FIGURE3_POINTS.into_iter().enumerate() {
            let point = &points[a * FIGURE3_POINTS.len() + i];
            row.push(format!("{:.3}", point.relative()));
            eprintln!(
                "  {} {}/{}K: typhoon {} dirnnb {} -> {:.3}",
                app,
                set,
                cache / 1024,
                point.typhoon,
                point.dirnnb,
                point.relative()
            );
            let name = format!("{} {}/{}K", app, set, cache / 1024);
            records.push(PointRecord {
                point: name.clone(),
                system: "Typhoon/Stache".into(),
                cycles: point.typhoon.raw(),
                wall_secs: point.typhoon_stats.wall_secs,
                ops: point.typhoon_stats.ops,
                pdes: point.typhoon_stats.pdes,
                extra: cost_fragment(cli.nodes, point.typhoon.raw(), &point.typhoon_stats),
            });
            records.push(PointRecord {
                point: name,
                system: "DirNNB".into(),
                cycles: point.dirnnb.raw(),
                wall_secs: point.dirnnb_stats.wall_secs,
                ops: point.dirnnb_stats.ops,
                pdes: point.dirnnb_stats.pdes,
                extra: cost_fragment(cli.nodes, point.dirnnb.raw(), &point.dirnnb_stats),
            });
        }
        table.row(row);
    }
    println!("{table}");
    println!(
        "(paper: all bars <= ~1.3; Typhoon/Stache wins by up to ~25% when the\n\
         data set exceeds the CPU cache — small/4K and large/256K columns)"
    );
    eprintln!(
        "  sweep: {n} runs in {total_wall_secs:.2}s wall ({jobs} jobs)",
        n = records.len(),
        jobs = cli.jobs,
    );
    cli.write_json("figure3", total_wall_secs, &records);
}
