//! Command-line parsing shared by every harness binary.
//!
//! `figure3`, `figure4`, `ablations`, and `kv_bench` all take the same
//! simulator knobs (`--jobs`, `--repeat`, `--sim-threads`,
//! `--sim-shards`, `--window-policy`, `--json`, ...); this module parses
//! them once into a [`Cli`] and owns the equally repetitive tail — the
//! [`SweepMeta`] header and `--json` report write. Binaries with extra
//! flags hook them in through [`parse_cli_with`] instead of forking the
//! parser.

use tt_base::{SystemConfig, Topology, WindowPolicy};

use crate::json::{write_report, PointRecord, SweepMeta};
use crate::{bench_config, par};

/// Command-line options shared by the figure/ablation binaries.
#[derive(Clone, Debug)]
pub struct Cli {
    /// Data-set divisor (1 = the paper's sizes).
    pub scale: usize,
    /// Simulated machine size.
    pub nodes: usize,
    /// Worker threads for the point sweep (default: available
    /// parallelism). Any value produces identical tables.
    pub jobs: usize,
    /// Runs per point; wall timings are min-of-N (default 1). Cycle
    /// counts are asserted identical across repeats.
    pub repeat: usize,
    /// OS threads *inside* each simulation (conservative PDES; default 1
    /// = sequential). Orthogonal to `jobs`, which parallelizes across
    /// sweep points. Any value produces identical tables.
    pub sim_threads: usize,
    /// Shards per simulation (0 = one per sim thread). More shards than
    /// threads makes each worker multiplex, which narrows windows less
    /// under the adaptive policy. Any value produces identical tables.
    pub sim_shards: usize,
    /// Window-advance policy for parallel simulations (fixed quantum or
    /// adaptive per-shard widening). Identical tables either way.
    pub window_policy: WindowPolicy,
    /// Interconnect model (`ideal` keeps the paper's constant-latency
    /// pipe and its byte-identical tables; `mesh[:width]` /
    /// `fat-tree[:arity]` add per-link occupancy).
    pub topology: Topology,
    /// Where to write the machine-readable run report, if anywhere.
    pub json: Option<std::path::PathBuf>,
}

impl Cli {
    /// The [`bench_config`] for this invocation, with the
    /// `--sim-threads`, `--sim-shards`, and `--window-policy` settings
    /// applied.
    pub fn config(&self) -> SystemConfig {
        let mut cfg = bench_config(self.nodes);
        cfg.sim_threads = self.sim_threads;
        cfg.sim_shards = self.sim_shards;
        cfg.window_policy = self.window_policy;
        cfg.topology = self.topology;
        cfg
    }

    /// The [`SweepMeta`] header for this invocation's report.
    pub fn sweep_meta(&self, figure: &str, total_wall_secs: f64) -> SweepMeta {
        SweepMeta {
            figure: figure.into(),
            nodes: self.nodes,
            scale: self.scale,
            jobs: self.jobs,
            repeat: self.repeat,
            sim_threads: self.sim_threads,
            sim_shards: self.sim_shards,
            window_policy: self.window_policy,
            topology: self.topology,
            total_wall_secs,
        }
    }

    /// Writes the `--json` report if one was requested (the shared tail
    /// of every harness binary).
    pub fn write_json(&self, figure: &str, total_wall_secs: f64, records: &[PointRecord]) {
        if let Some(path) = &self.json {
            let meta = self.sweep_meta(figure, total_wall_secs);
            write_report(path, &meta, records).expect("write --json report");
            eprintln!("  wrote {}", path.display());
        }
    }
}

/// Parses `--scale N`, `--nodes N`, `--full`, `--jobs N`, `--repeat N`,
/// `--sim-threads N`, `--sim-shards N`, `--window-policy fixed|adaptive`,
/// `--topology ideal|mesh[:W]|fat-tree[:A]`, and `--json PATH` arguments
/// shared by the harness binaries.
pub fn parse_cli(args: &[String], default_scale: usize) -> Cli {
    parse_cli_with(args, default_scale, &mut |flag, _, _| {
        panic!(
            "unknown argument {flag}; use --scale N | --nodes N | --jobs N \
             | --repeat N | --sim-threads N | --sim-shards N \
             | --window-policy fixed|adaptive \
             | --topology ideal|mesh[:W]|fat-tree[:A] | --json PATH | --full"
        )
    })
}

/// [`parse_cli`] with a hook for binary-specific flags: `extra` is
/// called with `(flag, args, &mut i)` for any argument the shared
/// parser does not recognize and must consume it (advancing `i` past
/// the flag and its value) or panic with a usage message.
pub fn parse_cli_with(
    args: &[String],
    default_scale: usize,
    extra: &mut dyn FnMut(&str, &[String], &mut usize),
) -> Cli {
    let mut cli = Cli {
        scale: default_scale,
        nodes: 32,
        jobs: par::default_jobs(),
        repeat: 1,
        sim_threads: 1,
        sim_shards: 0,
        window_policy: WindowPolicy::Fixed,
        topology: Topology::Ideal,
        json: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                cli.scale = number(args, i, "--scale");
                i += 2;
            }
            "--nodes" => {
                cli.nodes = number(args, i, "--nodes");
                i += 2;
            }
            "--jobs" => {
                cli.jobs = number(args, i, "--jobs");
                i += 2;
            }
            "--repeat" => {
                cli.repeat = number(args, i, "--repeat").max(1);
                i += 2;
            }
            "--sim-threads" => {
                cli.sim_threads = number(args, i, "--sim-threads").max(1);
                i += 2;
            }
            "--sim-shards" => {
                cli.sim_shards = number(args, i, "--sim-shards");
                i += 2;
            }
            "--window-policy" => {
                cli.window_policy = value(args, i, "--window-policy")
                    .parse()
                    .unwrap_or_else(|e| panic!("--window-policy: {e}"));
                i += 2;
            }
            "--topology" => {
                cli.topology = value(args, i, "--topology")
                    .parse()
                    .unwrap_or_else(|e| panic!("--topology: {e}"));
                i += 2;
            }
            "--json" => {
                cli.json = Some(std::path::PathBuf::from(value(args, i, "--json")));
                i += 2;
            }
            "--full" => {
                cli.scale = 1;
                i += 1;
            }
            other => {
                let before = i;
                extra(other, args, &mut i);
                assert!(i > before, "extra-flag hook must consume {other}");
            }
        }
    }
    cli
}

/// The value following flag position `i`, or a usage panic.
pub fn value<'a>(args: &'a [String], i: usize, flag: &str) -> &'a str {
    args.get(i + 1)
        .unwrap_or_else(|| panic!("{flag} requires a value"))
}

/// The numeric value following flag position `i`, or a usage panic.
pub fn number(args: &[String], i: usize, flag: &str) -> usize {
    value(args, i, flag)
        .parse()
        .unwrap_or_else(|e| panic!("{flag} N: {e}"))
}

/// Parses `--scale N`, `--nodes N`, `--full` style arguments shared by
/// the harness binaries. Returns `(scale, nodes)`.
pub fn parse_args(args: &[String], default_scale: usize) -> (usize, usize) {
    let cli = parse_cli(args, default_scale);
    (cli.scale, cli.nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn extra_flags_are_routed_to_the_hook() {
        let args = strs(&["--nodes", "8", "--keys", "512", "--jobs", "2"]);
        let mut keys = 0usize;
        let cli = parse_cli_with(&args, 1, &mut |flag, args, i| match flag {
            "--keys" => {
                keys = number(args, *i, "--keys");
                *i += 2;
            }
            other => panic!("unknown argument {other}"),
        });
        assert_eq!(cli.nodes, 8);
        assert_eq!(cli.jobs, 2);
        assert_eq!(keys, 512);
    }

    #[test]
    fn sweep_meta_mirrors_the_cli() {
        let args = strs(&["--sim-threads", "3", "--window-policy", "adaptive"]);
        let cli = parse_cli(&args, 7);
        let meta = cli.sweep_meta("figX", 1.5);
        assert_eq!(meta.figure, "figX");
        assert_eq!(meta.scale, 7);
        assert_eq!(meta.sim_threads, 3);
        assert_eq!(meta.window_policy, WindowPolicy::Adaptive);
        assert_eq!(meta.topology, Topology::Ideal);
    }

    #[test]
    fn topology_flag_parses_and_reaches_the_config() {
        let args = strs(&["--topology", "mesh:4"]);
        let cli = parse_cli(&args, 1);
        assert_eq!(cli.topology, Topology::Mesh2D { width: 4 });
        assert_eq!(cli.config().topology, Topology::Mesh2D { width: 4 });
        assert_eq!(parse_cli(&[], 1).topology, Topology::Ideal);
    }
}
