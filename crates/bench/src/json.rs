//! Machine-readable benchmark output (`--json <path>`).
//!
//! Simulated results (cycle counts) are deterministic and comparable
//! across machines; wall-clock throughput is not, but it is exactly what
//! the hot-path optimization work needs to track. The `--json` flag on
//! the figure/ablation binaries writes both: one record per (point,
//! system) simulation run with its cycle count, wall seconds, and the
//! derived simulated-cycles/sec and ops/sec rates.
//!
//! The format is deliberately tiny and hand-rolled — the build container
//! has no crates.io access, so `serde` is not available.

use std::io::Write;
use std::path::Path;

/// One simulation run inside a sweep.
#[derive(Clone, Debug)]
pub struct PointRecord {
    /// Sweep coordinate, e.g. `"barnes small/64K"` or `"30% remote"`.
    pub point: String,
    /// System simulated, e.g. `"Typhoon/Stache"`.
    pub system: String,
    /// Simulated execution time in cycles.
    pub cycles: u64,
    /// Host wall-clock seconds the simulation took.
    pub wall_secs: f64,
    /// Workload ops the simulated CPUs executed (`cpu.ops`).
    pub ops: u64,
}

impl PointRecord {
    /// Simulated cycles advanced per host second.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.cycles as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Workload ops simulated per host second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.ops as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "    {{\"point\": {}, \"system\": {}, \"cycles\": {}, \
             \"wall_secs\": {:.6}, \"ops\": {}, \
             \"sim_cycles_per_sec\": {:.1}, \"ops_per_sec\": {:.1}}}",
            escape(&self.point),
            escape(&self.system),
            self.cycles,
            self.wall_secs,
            self.ops,
            self.sim_cycles_per_sec(),
            self.ops_per_sec(),
        )
    }
}

/// Best-effort short git revision of the working tree, so committed
/// `results/BENCH_*.json` snapshots are attributable to the code that
/// produced them. `"unknown"` outside a git checkout.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Best-effort host name (wall-clock rates are host-specific). Tries the
/// `HOSTNAME` environment variable, then the kernel's node name;
/// `"unknown"` if neither is available.
pub fn hostname() -> String {
    std::env::var("HOSTNAME")
        .ok()
        .or_else(|| {
            std::fs::read_to_string("/proc/sys/kernel/hostname")
                .ok()
                .map(|s| s.trim().to_string())
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// JSON string literal with the required escapes.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Writes a sweep report to `path`, creating parent directories. The
/// header records the sweep shape plus provenance (`git_rev`, `host`,
/// `jobs`, `repeat`, `sim_threads`) so snapshots are attributable and
/// wall-clock rates can be compared like-for-like across PRs —
/// `sim_threads` in particular, since a parallel-simulator run reports
/// the same cycles but very different `sim_cycles_per_sec`.
#[allow(clippy::too_many_arguments)] // flat header fields, one call site per binary
pub fn write_report(
    path: &Path,
    figure: &str,
    nodes: usize,
    scale: usize,
    jobs: usize,
    repeat: usize,
    sim_threads: usize,
    total_wall_secs: f64,
    points: &[PointRecord],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"figure\": {},", escape(figure))?;
    writeln!(f, "  \"git_rev\": {},", escape(&git_rev()))?;
    writeln!(f, "  \"host\": {},", escape(&hostname()))?;
    writeln!(f, "  \"nodes\": {nodes},")?;
    writeln!(f, "  \"scale\": {scale},")?;
    writeln!(f, "  \"jobs\": {jobs},")?;
    writeln!(f, "  \"repeat\": {repeat},")?;
    writeln!(f, "  \"sim_threads\": {sim_threads},")?;
    writeln!(f, "  \"total_wall_secs\": {total_wall_secs:.6},")?;
    writeln!(f, "  \"points\": [")?;
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        writeln!(f, "{}{sep}", p.to_json())?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_derived() {
        let p = PointRecord {
            point: "x".into(),
            system: "s".into(),
            cycles: 1000,
            wall_secs: 0.5,
            ops: 200,
        };
        assert_eq!(p.sim_cycles_per_sec(), 2000.0);
        assert_eq!(p.ops_per_sec(), 400.0);
    }

    #[test]
    fn zero_wall_time_does_not_divide_by_zero() {
        let p = PointRecord {
            point: "x".into(),
            system: "s".into(),
            cycles: 1000,
            wall_secs: 0.0,
            ops: 200,
        };
        assert_eq!(p.sim_cycles_per_sec(), 0.0);
        assert_eq!(p.ops_per_sec(), 0.0);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(escape("tab\there"), "\"tab\\u0009here\"");
    }

    #[test]
    fn report_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("tt_bench_json_test");
        let path = dir.join("report.json");
        let points = vec![PointRecord {
            point: "em3d small/4K".into(),
            system: "DirNNB".into(),
            cycles: 42,
            wall_secs: 0.001,
            ops: 7,
        }];
        write_report(&path, "figure3", 8, 64, 2, 3, 4, 0.123, &points).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"figure\": \"figure3\""));
        assert!(text.contains("\"cycles\": 42"));
        assert!(text.contains("\"jobs\": 2"));
        assert!(text.contains("\"repeat\": 3"));
        assert!(text.contains("\"sim_threads\": 4"));
        assert!(text.contains("\"git_rev\": "));
        assert!(text.contains("\"host\": "));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn provenance_helpers_never_return_empty() {
        assert!(!git_rev().is_empty());
        assert!(!hostname().is_empty());
    }
}
