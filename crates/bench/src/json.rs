//! Machine-readable benchmark output (`--json <path>`).
//!
//! Simulated results (cycle counts) are deterministic and comparable
//! across machines; wall-clock throughput is not, but it is exactly what
//! the hot-path optimization work needs to track. The `--json` flag on
//! the figure/ablation binaries writes both: one record per (point,
//! system) simulation run with its cycle count, wall seconds, and the
//! derived simulated-cycles/sec and ops/sec rates.
//!
//! The format is deliberately tiny and hand-rolled — the build container
//! has no crates.io access, so `serde` is not available.

use std::io::Write;
use std::path::Path;

use tt_base::stats::PdesTelemetry;
use tt_base::{Topology, WindowPolicy};

/// One simulation run inside a sweep.
#[derive(Clone, Debug)]
pub struct PointRecord {
    /// Sweep coordinate, e.g. `"barnes small/64K"` or `"30% remote"`.
    pub point: String,
    /// System simulated, e.g. `"Typhoon/Stache"`.
    pub system: String,
    /// Simulated execution time in cycles.
    pub cycles: u64,
    /// Host wall-clock seconds the simulation took.
    pub wall_secs: f64,
    /// Workload ops the simulated CPUs executed (`cpu.ops`).
    pub ops: u64,
    /// Window-driver telemetry of the run (`None` for sequential runs,
    /// emitted as JSON `null`).
    pub pdes: Option<PdesTelemetry>,
    /// Binary-specific additions, as a raw `"key": value` JSON fragment
    /// appended to the record object (e.g. `kv_bench` latency
    /// percentiles). `None` adds nothing.
    pub extra: Option<String>,
}

impl PointRecord {
    /// Simulated cycles advanced per host second.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.cycles as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Workload ops simulated per host second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.ops as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        let pdes = match &self.pdes {
            None => "null".to_string(),
            Some(t) => format!(
                "{{\"windows\": {}, \"rendezvous\": {}, \"rendezvous_elided\": {}, \
                 \"events\": {}, \"cross_messages\": {}, \"releases\": {}, \
                 \"events_per_window\": {:.2}, \"cross_messages_per_window\": {:.2}}}",
                t.windows,
                t.rendezvous,
                t.rendezvous_elided,
                t.events,
                t.cross_messages,
                t.releases,
                t.events_per_window(),
                t.cross_messages_per_window(),
            ),
        };
        let extra = match &self.extra {
            None => String::new(),
            Some(frag) => format!(", {frag}"),
        };
        format!(
            "    {{\"point\": {}, \"system\": {}, \"cycles\": {}, \
             \"wall_secs\": {:.6}, \"ops\": {}, \
             \"sim_cycles_per_sec\": {:.1}, \"ops_per_sec\": {:.1}, \
             \"pdes\": {pdes}{extra}}}",
            escape(&self.point),
            escape(&self.system),
            self.cycles,
            self.wall_secs,
            self.ops,
            self.sim_cycles_per_sec(),
            self.ops_per_sec(),
        )
    }
}

/// Best-effort short git revision of the working tree, so committed
/// `results/BENCH_*.json` snapshots are attributable to the code that
/// produced them. `"unknown"` outside a git checkout.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Best-effort host name (wall-clock rates are host-specific). Tries the
/// `HOSTNAME` environment variable, then the kernel's node name;
/// `"unknown"` if neither is available.
pub fn hostname() -> String {
    std::env::var("HOSTNAME")
        .ok()
        .or_else(|| {
            std::fs::read_to_string("/proc/sys/kernel/hostname")
                .ok()
                .map(|s| s.trim().to_string())
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// JSON string literal with the required escapes.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Sweep shape + provenance for a report header.
#[derive(Clone, Debug)]
pub struct SweepMeta {
    /// Which figure/sweep the report covers, e.g. `"figure3"`.
    pub figure: String,
    /// Simulated machine size.
    pub nodes: usize,
    /// Data-set divisor.
    pub scale: usize,
    /// Sweep worker threads.
    pub jobs: usize,
    /// Wall-timing repeats per point (min-of-N).
    pub repeat: usize,
    /// OS threads inside each simulation.
    pub sim_threads: usize,
    /// Shards per simulation (0 = one per sim thread).
    pub sim_shards: usize,
    /// Window-advance policy of the parallel simulator.
    pub window_policy: WindowPolicy,
    /// Interconnect model the sweep ran under.
    pub topology: Topology,
    /// Wall seconds for the whole sweep.
    pub total_wall_secs: f64,
}

/// Writes a sweep report to `path`, creating parent directories. The
/// header records the sweep shape plus provenance (`git_rev`, `host`,
/// and every [`SweepMeta`] field) so snapshots are attributable and
/// wall-clock rates can be compared like-for-like across PRs —
/// `sim_threads`, `sim_shards`, and `window_policy` in particular, since
/// a parallel-simulator run reports the same cycles but very different
/// `sim_cycles_per_sec`.
pub fn write_report(path: &Path, meta: &SweepMeta, points: &[PointRecord]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"figure\": {},", escape(&meta.figure))?;
    writeln!(f, "  \"git_rev\": {},", escape(&git_rev()))?;
    writeln!(f, "  \"host\": {},", escape(&hostname()))?;
    writeln!(f, "  \"nodes\": {},", meta.nodes)?;
    writeln!(f, "  \"scale\": {},", meta.scale)?;
    writeln!(f, "  \"jobs\": {},", meta.jobs)?;
    writeln!(f, "  \"repeat\": {},", meta.repeat)?;
    writeln!(f, "  \"sim_threads\": {},", meta.sim_threads)?;
    writeln!(f, "  \"sim_shards\": {},", meta.sim_shards)?;
    writeln!(f, "  \"window_policy\": {},", escape(meta.window_policy.as_str()))?;
    writeln!(f, "  \"topology\": {},", escape(&meta.topology.as_string()))?;
    writeln!(f, "  \"total_wall_secs\": {:.6},", meta.total_wall_secs)?;
    writeln!(f, "  \"points\": [")?;
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        writeln!(f, "{}{sep}", p.to_json())?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_derived() {
        let p = PointRecord {
            point: "x".into(),
            system: "s".into(),
            cycles: 1000,
            wall_secs: 0.5,
            ops: 200,
            pdes: None,
            extra: None,
        };
        assert_eq!(p.sim_cycles_per_sec(), 2000.0);
        assert_eq!(p.ops_per_sec(), 400.0);
    }

    #[test]
    fn zero_wall_time_does_not_divide_by_zero() {
        let p = PointRecord {
            point: "x".into(),
            system: "s".into(),
            cycles: 1000,
            wall_secs: 0.0,
            ops: 200,
            pdes: None,
            extra: None,
        };
        assert_eq!(p.sim_cycles_per_sec(), 0.0);
        assert_eq!(p.ops_per_sec(), 0.0);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(escape("tab\there"), "\"tab\\u0009here\"");
    }

    #[test]
    fn report_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("tt_bench_json_test");
        let path = dir.join("report.json");
        let points = vec![
            PointRecord {
                point: "em3d small/4K".into(),
                system: "DirNNB".into(),
                cycles: 42,
                wall_secs: 0.001,
                ops: 7,
                pdes: None,
                extra: None,
            },
            PointRecord {
                point: "em3d small/4K".into(),
                system: "Typhoon/Stache".into(),
                cycles: 42,
                wall_secs: 0.001,
                ops: 7,
                pdes: Some(PdesTelemetry {
                    windows: 10,
                    rendezvous: 12,
                    rendezvous_elided: 30,
                    events: 500,
                    cross_messages: 40,
                    releases: 2,
                }),
                extra: Some("\"kv\": {\"p99\": 123}".into()),
            },
        ];
        let meta = SweepMeta {
            figure: "figure3".into(),
            nodes: 8,
            scale: 64,
            jobs: 2,
            repeat: 3,
            sim_threads: 4,
            sim_shards: 8,
            window_policy: WindowPolicy::Adaptive,
            topology: Topology::Mesh2D { width: 0 },
            total_wall_secs: 0.123,
        };
        write_report(&path, &meta, &points).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"figure\": \"figure3\""));
        assert!(text.contains("\"topology\": \"mesh\""));
        assert!(text.contains("\"cycles\": 42"));
        assert!(text.contains("\"jobs\": 2"));
        assert!(text.contains("\"repeat\": 3"));
        assert!(text.contains("\"sim_threads\": 4"));
        assert!(text.contains("\"sim_shards\": 8"));
        assert!(text.contains("\"window_policy\": \"adaptive\""));
        assert!(text.contains("\"pdes\": null"));
        assert!(text.contains("\"pdes\": null}"));
        assert!(text.contains(", \"kv\": {\"p99\": 123}}"));
        assert!(text.contains("\"rendezvous_elided\": 30"));
        assert!(text.contains("\"events_per_window\": 50.00"));
        assert!(text.contains("\"git_rev\": "));
        assert!(text.contains("\"host\": "));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn provenance_helpers_never_return_empty() {
        assert!(!git_rev().is_empty());
        assert!(!hostname().is_empty());
    }
}
