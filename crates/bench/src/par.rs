//! A dependency-free parallel sweep runner.
//!
//! Figure and ablation sweeps are embarrassingly parallel: every point is
//! an independent, single-threaded, bit-reproducible simulation. This
//! module fans those points out across OS threads with
//! [`std::thread::scope`] — no thread-pool crate, no work-stealing, just
//! an atomic work index over a pre-sized slot vector.
//!
//! **Determinism guarantee:** parallelism exists only *across* points.
//! Each worker claims a point index, builds that point's workload from
//! its own seed, and runs the whole simulation on its own thread; nothing
//! is shared between simulations. Results land in the slot matching their
//! index, so the caller sees the same `Vec` in the same order whatever
//! `jobs` is — `--jobs 1` and `--jobs 8` produce byte-identical tables.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Evaluates `f(0), f(1), ..., f(count - 1)` on up to `jobs` OS threads
/// and returns the results in index order.
///
/// With `jobs <= 1` (or a single point) this is exactly a sequential
/// `map` — no threads are spawned at all, which keeps the single-job
/// path trivially identical to the pre-parallel harness.
///
/// # Panics
///
/// Propagates a panic from any worker closure once all threads have
/// been joined (the panic surfaces at scope exit).
pub fn run_indexed<T, F>(jobs: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(count) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("slot lock poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock poisoned")
                .expect("every index was claimed by exactly one worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        for jobs in [1, 2, 8] {
            let out = run_indexed(jobs, 20, |i| i * i);
            assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn more_jobs_than_work_is_fine() {
        assert_eq!(run_indexed(16, 3, |i| i), vec![0, 1, 2]);
        assert_eq!(run_indexed(16, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(16, 1, |i| i), vec![0]);
    }

    #[test]
    fn every_index_is_claimed_once() {
        let hits: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(4, 50, |i| hits[i].fetch_add(1, Ordering::Relaxed));
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
