//! The benchmark harness: builds workloads at Table 3 scale (optionally
//! scaled down), runs them on the three systems the paper compares, and
//! formats the Figure 3 / Figure 4 series.
//!
//! Binaries:
//!
//! - `tables`  — regenerates Tables 1, 2, and 3 from the live code;
//! - `figure3` — relative execution time of Typhoon/Stache vs. DirNNB for
//!   all five applications across data-set/cache-size points;
//! - `figure4` — EM3D cycles per edge vs. % non-local edges for DirNNB,
//!   Typhoon/Stache, and Typhoon with the custom update protocol;
//! - `ablations` — the design-choice sweeps listed in DESIGN.md §5.
//!
//! Benches (`cargo bench`, on the dependency-free [`harness`]):
//! `microbench` measures the simulator substrate's hot paths, and
//! `figures` runs reduced-scale figure points so the paper's comparisons
//! are exercised under `cargo bench` too.
//!
//! Sweeps fan out across OS threads via [`par`] (`--jobs N`); each point
//! is an independent single-threaded simulation, so tables are
//! byte-identical whatever `jobs` is. `--json PATH` writes per-run
//! throughput records (see [`json`]).

pub mod cli;
pub mod harness;
pub mod json;
pub mod par;

pub use cli::{parse_args, parse_cli, parse_cli_with, Cli};

use std::time::Instant;

/// Every bench binary counts its heap traffic (DESIGN.md §11 reports
/// resident bytes/node for the big-machine sweeps). The counters are
/// process-global: per-run readings are attributable only at `--jobs 1`.
#[global_allocator]
static ALLOC: tt_base::alloc_stats::CountingAlloc = tt_base::alloc_stats::CountingAlloc;

use tt_base::stats::{PdesTelemetry, Report};
use tt_base::workload::Workload;
use tt_base::{Cycles, SystemConfig};
use tt_apps::appbt::{Appbt, AppbtParams};
use tt_apps::barnes::{Barnes, BarnesParams};
use tt_apps::em3d::{Em3d, Em3dParams, SyncMode};
use tt_apps::mp3d::{Mp3d, Mp3dParams};
use tt_apps::ocean::{Ocean, OceanParams};
use tt_apps::{AppId, DataSet, PhasedWorkload};
use tt_dirnnb::DirnnbMachine;
use tt_stache::{Em3dUpdateProtocol, StacheProtocol};
use tt_typhoon::TyphoonMachine;

/// The three systems of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum System {
    /// All-hardware DirNNB directory protocol.
    Dirnnb,
    /// Typhoon running the default invalidation-based Stache protocol.
    TyphoonStache,
    /// Typhoon running the custom EM3D delayed-update protocol
    /// (EM3D only).
    TyphoonUpdate,
}

impl System {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            System::Dirnnb => "DirNNB",
            System::TyphoonStache => "Typhoon/Stache",
            System::TyphoonUpdate => "Typhoon/Update",
        }
    }
}

/// Outcome of one simulation run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Execution time.
    pub cycles: Cycles,
    /// Machine/protocol statistics.
    pub report: Report,
    /// Host wall-clock seconds the run took.
    pub wall_secs: f64,
    /// Workload ops the simulated CPUs executed (`cpu.ops`).
    pub ops: u64,
    /// Window-driver telemetry (`None` for sequential runs).
    pub pdes: Option<PdesTelemetry>,
    /// Heap high-water mark over the run (process-global; attributable
    /// to this run only at `--jobs 1`).
    pub peak_bytes: u64,
    /// Heap allocation events during the run (same caveat).
    pub allocs: u64,
}

/// Simulator throughput of one run: the host-side cost of a simulation,
/// as opposed to the simulated result.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Host wall-clock seconds.
    pub wall_secs: f64,
    /// Workload ops executed by the simulated CPUs.
    pub ops: u64,
    /// Window-driver telemetry (`None` for sequential runs).
    pub pdes: Option<PdesTelemetry>,
    /// Heap high-water mark over the run (see [`RunOutcome::peak_bytes`]).
    pub peak_bytes: u64,
    /// Heap allocation events during the run.
    pub allocs: u64,
}

impl RunStats {
    /// Condenses a [`RunOutcome`]'s host-side throughput fields.
    pub fn of(out: &RunOutcome) -> RunStats {
        RunStats {
            wall_secs: out.wall_secs,
            ops: out.ops,
            pdes: out.pdes,
            peak_bytes: out.peak_bytes,
            allocs: out.allocs,
        }
    }
}

/// Builds one of the five applications at a Table 3 data set, divided by
/// `scale` (1 = the paper's size). Element counts shrink; the machine
/// size and iteration counts do not.
pub fn build_app(
    app: AppId,
    set: DataSet,
    scale: usize,
    procs: usize,
    sync: SyncMode,
) -> Box<dyn Workload> {
    let scale = scale.max(1);
    match app {
        AppId::Em3d => {
            let mut p = Em3dParams::table3(set, procs);
            p.graph_nodes = tt_apps::datasets::scaled(p.graph_nodes, scale, 4 * procs);
            p.sync = sync;
            Box::new(PhasedWorkload::new(Em3d::new(p)))
        }
        AppId::Ocean => {
            let mut p = OceanParams::table3(set, procs);
            // Area scales by `scale`: edge by sqrt(scale). Processors
            // beyond the row count idle, as on the real machine.
            let factor = (scale as f64).sqrt();
            p.n = ((p.n as f64 / factor) as usize).max(8);
            Box::new(PhasedWorkload::new(Ocean::new(p)))
        }
        AppId::Mp3d => {
            let mut p = Mp3dParams::table3(set, procs);
            p.molecules = tt_apps::datasets::scaled(p.molecules, scale, 4 * procs);
            p.cells_per_side = ((p.molecules as f64 / 4.0).cbrt().ceil() as usize).max(4);
            Box::new(PhasedWorkload::new(Mp3d::new(p)))
        }
        AppId::Barnes => {
            let mut p = BarnesParams::table3(set, procs);
            p.bodies = tt_apps::datasets::scaled(p.bodies, scale, 4 * procs);
            Box::new(PhasedWorkload::new(Barnes::new(p)))
        }
        AppId::Appbt => {
            let mut p = AppbtParams::table3(set, procs);
            // Volume scales by `scale`: edge by cbrt(scale). The 2-D
            // band partition keeps processors busy down to small grids.
            let factor = (scale as f64).cbrt();
            p.n = ((p.n as f64 / factor) as usize).max(6);
            Box::new(PhasedWorkload::new(Appbt::new(p)))
        }
    }
}

/// Runs a workload on the chosen system, measuring host wall time.
pub fn run_system(system: System, cfg: &SystemConfig, workload: Box<dyn Workload>) -> RunOutcome {
    tt_base::alloc_stats::reset_peak();
    let allocs_before = tt_base::alloc_stats::alloc_count();
    let start = Instant::now();
    let (cycles, report, pdes) = match system {
        System::Dirnnb => {
            let r = DirnnbMachine::new(cfg.clone(), workload).run();
            (r.cycles, r.report, r.pdes)
        }
        System::TyphoonStache => {
            let r = TyphoonMachine::new(cfg.clone(), workload, &|id, layout, cfg| {
                Box::new(StacheProtocol::new(id, layout, cfg))
            })
            .run();
            (r.cycles, r.report, r.pdes)
        }
        System::TyphoonUpdate => {
            let r = TyphoonMachine::new(cfg.clone(), workload, &|id, layout, cfg| {
                Box::new(Em3dUpdateProtocol::new(id, layout, cfg))
            })
            .run();
            (r.cycles, r.report, r.pdes)
        }
    };
    let wall_secs = start.elapsed().as_secs_f64();
    let ops = report.get("cpu.ops").unwrap_or(0.0) as u64;
    RunOutcome {
        cycles,
        report,
        wall_secs,
        ops,
        pdes,
        peak_bytes: tt_base::alloc_stats::peak_bytes(),
        allocs: tt_base::alloc_stats::alloc_count() - allocs_before,
    }
}

/// Asserts the parallel simulator reproduces the sequential cycle table
/// before a sweep trusts it — the sequential-vs-parallel analogue of the
/// cross-repeat determinism check in [`min_of_runs`]. A no-op at
/// `sim_threads <= 1`; otherwise runs a small canary workload (EM3D,
/// small set) on every system both ways and asserts cycles and full
/// reports are identical.
pub fn assert_sim_threads_identity(cfg: &SystemConfig) {
    if cfg.sim_threads <= 1 {
        return;
    }
    let mut seq_cfg = cfg.clone();
    seq_cfg.sim_threads = 1;
    for system in [System::TyphoonStache, System::TyphoonUpdate, System::Dirnnb] {
        let build = || {
            build_app(
                AppId::Em3d,
                DataSet::Small,
                smoke::SCALE,
                cfg.nodes,
                sync_for(AppId::Em3d, system),
            )
        };
        let par = run_system(system, cfg, build());
        let seq = run_system(system, &seq_cfg, build());
        assert_eq!(
            seq.cycles,
            par.cycles,
            "{}: sim_threads={} diverged from the sequential simulator",
            system.name(),
            cfg.sim_threads
        );
        let rows = |r: &Report| -> Vec<(String, f64)> {
            r.iter().map(|row| (row.name.clone(), row.value)).collect()
        };
        assert_eq!(
            rows(&seq.report),
            rows(&par.report),
            "{}: sim_threads={} statistics diverged",
            system.name(),
            cfg.sim_threads
        );
    }
}

/// Runs `run` `repeat` times (at least once), asserting the simulated
/// cycle count is identical across repeats — the simulation is
/// deterministic, so any divergence is a bug — and keeping the outcome
/// with the smallest wall time. Min-of-N is the standard way to take a
/// wall-clock measurement on a machine with background noise.
pub fn min_of_runs(repeat: usize, run: impl Fn() -> RunOutcome) -> RunOutcome {
    let mut best = run();
    for _ in 1..repeat.max(1) {
        let out = run();
        assert_eq!(
            best.cycles, out.cycles,
            "repeated run diverged: simulation is not deterministic"
        );
        if out.wall_secs < best.wall_secs {
            best = out;
        }
    }
    best
}

/// [`run_system`] repeated `repeat` times (min-of-N wall time); `build`
/// constructs a fresh workload for each repeat.
pub fn run_system_min(
    system: System,
    cfg: &SystemConfig,
    repeat: usize,
    build: impl Fn() -> Box<dyn Workload>,
) -> RunOutcome {
    min_of_runs(repeat, || run_system(system, cfg, build()))
}

/// The sync mode an app must use on a system (only EM3D on
/// Typhoon/Update uses flush synchronization).
pub fn sync_for(app: AppId, system: System) -> SyncMode {
    if app == AppId::Em3d && system == System::TyphoonUpdate {
        SyncMode::Flush
    } else {
        SyncMode::Barrier
    }
}

/// A Figure 3 measurement point.
#[derive(Clone, Debug)]
pub struct Figure3Point {
    /// Application.
    pub app: AppId,
    /// Data set.
    pub set: DataSet,
    /// CPU cache bytes.
    pub cache_bytes: usize,
    /// Typhoon/Stache execution time.
    pub typhoon: Cycles,
    /// DirNNB execution time.
    pub dirnnb: Cycles,
    /// Host-side throughput of the Typhoon/Stache run.
    pub typhoon_stats: RunStats,
    /// Host-side throughput of the DirNNB run.
    pub dirnnb_stats: RunStats,
}

impl Figure3Point {
    /// The paper's y-axis: Typhoon/Stache time relative to DirNNB
    /// (shorter bars = better Typhoon performance).
    pub fn relative(&self) -> f64 {
        self.typhoon.as_f64() / self.dirnnb.as_f64()
    }
}

/// The Figure 3 legend: data set size / CPU cache size points.
pub const FIGURE3_POINTS: [(DataSet, usize); 5] = [
    (DataSet::Small, 4 * 1024),
    (DataSet::Small, 16 * 1024),
    (DataSet::Small, 64 * 1024),
    (DataSet::Small, 256 * 1024),
    (DataSet::Large, 256 * 1024),
];

/// Measures one Figure 3 bar.
pub fn figure3_point(
    app: AppId,
    set: DataSet,
    cache_bytes: usize,
    scale: usize,
    cfg_base: &SystemConfig,
) -> Figure3Point {
    figure3_point_min(app, set, cache_bytes, scale, cfg_base, 1)
}

/// [`figure3_point`] with min-of-`repeat` wall timings (cycles are
/// asserted identical across repeats).
pub fn figure3_point_min(
    app: AppId,
    set: DataSet,
    cache_bytes: usize,
    scale: usize,
    cfg_base: &SystemConfig,
    repeat: usize,
) -> Figure3Point {
    let mut cfg = cfg_base.clone();
    cfg.cpu.cache_bytes = cache_bytes;
    let typhoon = run_system_min(System::TyphoonStache, &cfg, repeat, || {
        build_app(app, set, scale, cfg.nodes, sync_for(app, System::TyphoonStache))
    });
    let dirnnb = run_system_min(System::Dirnnb, &cfg, repeat, || {
        build_app(app, set, scale, cfg.nodes, sync_for(app, System::Dirnnb))
    });
    Figure3Point {
        app,
        set,
        cache_bytes,
        typhoon: typhoon.cycles,
        dirnnb: dirnnb.cycles,
        typhoon_stats: RunStats::of(&typhoon),
        dirnnb_stats: RunStats::of(&dirnnb),
    }
}

/// Runs the whole Figure 3 grid — every application at every data-set /
/// cache-size point — fanning independent points across `jobs` threads
/// (see [`par::run_indexed`]; any `jobs` yields identical results).
/// Points are returned app-major in `AppId::ALL` × [`FIGURE3_POINTS`]
/// order.
pub fn figure3_sweep(scale: usize, cfg: &SystemConfig, jobs: usize) -> Vec<Figure3Point> {
    figure3_sweep_min(scale, cfg, jobs, 1)
}

/// [`figure3_sweep`] with min-of-`repeat` wall timings per point.
pub fn figure3_sweep_min(
    scale: usize,
    cfg: &SystemConfig,
    jobs: usize,
    repeat: usize,
) -> Vec<Figure3Point> {
    figure3_sweep_apps(&AppId::ALL, scale, cfg, jobs, repeat)
}

/// [`figure3_sweep_min`] over a subset of the applications — the
/// big-machine sweeps (`--nodes 256|1024`) run a single app to stay
/// within the container's single-CPU budget. Points come back app-major
/// in the order given.
pub fn figure3_sweep_apps(
    apps: &[AppId],
    scale: usize,
    cfg: &SystemConfig,
    jobs: usize,
    repeat: usize,
) -> Vec<Figure3Point> {
    let grid: Vec<(AppId, DataSet, usize)> = apps
        .iter()
        .copied()
        .flat_map(|app| FIGURE3_POINTS.into_iter().map(move |(set, cache)| (app, set, cache)))
        .collect();
    par::run_indexed(jobs, grid.len(), |i| {
        let (app, set, cache) = grid[i];
        figure3_point_min(app, set, cache, scale, cfg, repeat)
    })
}

/// A Figure 4 measurement point: EM3D cycles per edge at a remote-edge
/// fraction.
#[derive(Clone, Debug)]
pub struct Figure4Point {
    /// Percent of edges with a remote source (x-axis).
    pub pct_remote: f64,
    /// Cycles per edge per iteration for each system
    /// (DirNNB, Typhoon/Stache, Typhoon/Update).
    pub cycles_per_edge: [f64; 3],
    /// Raw execution time per system (same order).
    pub cycles: [Cycles; 3],
    /// Host-side throughput per system (same order).
    pub stats: [RunStats; 3],
}

/// The three systems of a Figure 4 point, in column order.
pub const FIGURE4_SYSTEMS: [System; 3] =
    [System::Dirnnb, System::TyphoonStache, System::TyphoonUpdate];

/// Measures one Figure 4 x-axis point (all three curves).
pub fn figure4_point(pct_remote: f64, scale: usize, cfg: &SystemConfig) -> Figure4Point {
    figure4_point_min(pct_remote, scale, cfg, 1)
}

/// [`figure4_point`] with min-of-`repeat` wall timings (cycles are
/// asserted identical across repeats).
pub fn figure4_point_min(
    pct_remote: f64,
    scale: usize,
    cfg: &SystemConfig,
    repeat: usize,
) -> Figure4Point {
    let mk = |sync: SyncMode| -> (Box<dyn Workload>, f64) {
        let mut p = Em3dParams::table3(DataSet::Large, cfg.nodes);
        p.graph_nodes = tt_apps::datasets::scaled(p.graph_nodes, scale, 4 * cfg.nodes);
        p.pct_remote = pct_remote;
        p.sync = sync;
        // Figure 4 measures the steady state: with the static graph, all
        // stache faults happen in iteration 1, so run enough iterations
        // that warmup does not dominate (the original EM3D runs hundreds).
        p.iterations = 8;
        let app = Em3d::new(p.clone());
        let denom = (app.total_edges() * p.iterations) as f64;
        (Box::new(PhasedWorkload::new(app)), denom)
    };
    let mut cpe = [0.0f64; 3];
    let mut cycles = [Cycles::ZERO; 3];
    let mut stats = [RunStats::default(); 3];
    for (i, system) in FIGURE4_SYSTEMS.into_iter().enumerate() {
        let sync = if system == System::TyphoonUpdate {
            SyncMode::Flush
        } else {
            SyncMode::Barrier
        };
        // Figure 4 isolates the protocol effect: the DirNNB comparator
        // gets ideal (owner) placement so all three systems coincide at
        // 0% non-local edges, and the CPU cache is large enough (256 KB)
        // that capacity misses do not drown the coherence traffic.
        let mut cfg = cfg.clone();
        cfg.dirnnb.placement = tt_base::config::DirPlacement::Owner;
        cfg.cpu.cache_bytes = 256 * 1024;
        let (_, denom) = mk(sync);
        let out = min_of_runs(repeat, || run_system(system, &cfg, mk(sync).0));
        cpe[i] = out.cycles.as_f64() / denom;
        cycles[i] = out.cycles;
        stats[i] = RunStats::of(&out);
    }
    Figure4Point {
        pct_remote,
        cycles_per_edge: cpe,
        cycles,
        stats,
    }
}

/// The remote-edge fractions of the Figure 4 x-axis.
pub const FIGURE4_PCTS: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

/// Runs the whole Figure 4 sweep across `jobs` threads (results are
/// identical for any `jobs`; see [`par::run_indexed`]).
pub fn figure4_sweep(scale: usize, cfg: &SystemConfig, jobs: usize) -> Vec<Figure4Point> {
    figure4_sweep_min(scale, cfg, jobs, 1)
}

/// [`figure4_sweep`] with min-of-`repeat` wall timings per point.
pub fn figure4_sweep_min(
    scale: usize,
    cfg: &SystemConfig,
    jobs: usize,
    repeat: usize,
) -> Vec<Figure4Point> {
    par::run_indexed(jobs, FIGURE4_PCTS.len(), |i| {
        figure4_point_min(FIGURE4_PCTS[i], scale, cfg, repeat)
    })
}

/// Standard bench configuration: the paper's 32 nodes, verification off
/// (it is exercised by the test suite; benches measure timing).
#[allow(clippy::field_reassign_with_default)] // mutate-after-default is the config idiom
pub fn bench_config(nodes: usize) -> SystemConfig {
    let mut cfg = SystemConfig::default();
    cfg.nodes = nodes;
    cfg.verify_values = false;
    cfg
}

/// Smoke-level constants so `cargo test -p tt-bench` stays quick.
pub mod smoke {
    /// A scale factor that shrinks every app below a second of wall time.
    pub const SCALE: usize = 64;
    /// Machine size for smoke runs.
    pub const NODES: usize = 8;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_smoke_point_is_sane() {
        let cfg = bench_config(smoke::NODES);
        let p = figure3_point(AppId::Em3d, DataSet::Small, 4 * 1024, smoke::SCALE, &cfg);
        let rel = p.relative();
        assert!(rel > 0.2 && rel < 3.0, "relative time {rel}");
    }

    #[test]
    fn figure4_smoke_point_orders_systems_at_high_remote() {
        let cfg = bench_config(smoke::NODES);
        let p = figure4_point(0.5, smoke::SCALE, &cfg);
        let [dirnnb, stache, update] = p.cycles_per_edge;
        assert!(update < dirnnb, "update {update} should beat DirNNB {dirnnb}");
        assert!(update < stache, "update {update} should beat Stache {stache}");
    }

    #[test]
    fn all_apps_build_at_smoke_scale() {
        for app in AppId::ALL {
            let w = build_app(app, DataSet::Small, smoke::SCALE, 4, SyncMode::Barrier);
            assert_eq!(w.name(), app.name());
        }
    }

    #[test]
    fn repeat_flag_parses_and_defaults_to_one() {
        let args: Vec<String> = ["--repeat", "5"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_cli(&args, 1).repeat, 5);
        assert_eq!(parse_cli(&[], 1).repeat, 1);
        let zero: Vec<String> = ["--repeat", "0"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_cli(&zero, 1).repeat, 1, "repeat 0 clamps to 1");
    }

    #[test]
    fn sim_threads_flag_parses_and_defaults_to_one() {
        let args: Vec<String> = ["--sim-threads", "4"].iter().map(|s| s.to_string()).collect();
        let cli = parse_cli(&args, 1);
        assert_eq!(cli.sim_threads, 4);
        assert_eq!(cli.config().sim_threads, 4);
        assert_eq!(parse_cli(&[], 1).sim_threads, 1);
        let zero: Vec<String> = ["--sim-threads", "0"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_cli(&zero, 1).sim_threads, 1, "sim-threads 0 clamps to 1");
    }

    #[test]
    fn sim_threads_identity_canary_passes() {
        let mut cfg = bench_config(4);
        cfg.sim_threads = 2;
        assert_sim_threads_identity(&cfg);
    }

    #[test]
    fn min_of_runs_keeps_fastest_wall_time() {
        let walls = std::cell::Cell::new(0usize);
        let out = min_of_runs(3, || {
            let wall = [0.5, 0.1, 0.3][walls.get()];
            walls.set(walls.get() + 1);
            RunOutcome {
                cycles: Cycles::new(42),
                report: Report::default(),
                wall_secs: wall,
                ops: 7,
                pdes: None,
                peak_bytes: 0,
                allocs: 0,
            }
        });
        assert_eq!(walls.get(), 3);
        assert_eq!(out.wall_secs, 0.1);
        assert_eq!(out.cycles, Cycles::new(42));
    }

    #[test]
    #[should_panic(expected = "not deterministic")]
    fn min_of_runs_rejects_diverging_cycles() {
        let calls = std::cell::Cell::new(0u64);
        min_of_runs(2, || {
            calls.set(calls.get() + 1);
            RunOutcome {
                cycles: Cycles::new(calls.get()),
                report: Report::default(),
                wall_secs: 1.0,
                ops: 0,
                pdes: None,
                peak_bytes: 0,
                allocs: 0,
            }
        });
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--scale", "8", "--nodes", "16"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_args(&args, 1), (8, 16));
        assert_eq!(parse_args(&[], 4), (4, 32));
        let full: Vec<String> = vec!["--full".into()];
        assert_eq!(parse_args(&full, 16), (1, 32));
    }
}
