//! A minimal wall-clock benchmark harness.
//!
//! The container this repo builds in has no network access to crates.io,
//! so `criterion` cannot be used; this module provides the small subset
//! the benches need: named timed closures, warmup, repeated sampling,
//! and a `name ... time/iter` report, with an optional substring filter
//! taken from the command line (`cargo bench -- <filter>`).

use std::time::{Duration, Instant};

/// How long to sample each benchmark for (after warmup).
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(300);
/// Minimum number of measured iterations per benchmark.
const MIN_ITERS: u32 = 10;

/// Runs named benchmark closures, filtered by a command-line substring.
pub struct Runner {
    filter: Option<String>,
}

impl Runner {
    /// Builds a runner from `std::env::args`, ignoring cargo's `--bench`
    /// style flags and taking the first bare argument as a substring
    /// filter on benchmark names.
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Runner { filter }
    }

    /// Times `f` and prints `name: <mean> ns/iter (min <min>, N iters)`.
    /// The closure returns a value that is black-boxed so the work is
    /// not optimized away.
    pub fn bench<F: FnMut() -> u64>(&self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warmup: one untimed call (fills caches, faults pages).
        std::hint::black_box(f());
        // Calibrate: run once timed to estimate the iteration budget.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = ((TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).min(u32::MAX as u128)
            as u32)
            .clamp(MIN_ITERS, 1_000_000);
        let mut min = Duration::MAX;
        let start = Instant::now();
        for _ in 0..iters {
            let t = Instant::now();
            std::hint::black_box(f());
            let d = t.elapsed();
            if d < min {
                min = d;
            }
        }
        let total = start.elapsed();
        let mean_ns = total.as_nanos() as f64 / iters as f64;
        println!(
            "{name:<44} {:>12} ns/iter   (min {:>12} ns, {iters} iters)",
            format_ns(mean_ns),
            format_ns(min.as_nanos() as f64),
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.1}", ns)
    } else {
        format!("{ns:.0}")
    }
}
