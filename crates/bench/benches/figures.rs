//! Reduced-scale figure points under `cargo bench`, so the paper's two
//! headline comparisons are exercised by the standard bench entry point.
//! The printable full-resolution figures come from the `figure3` /
//! `figure4` binaries; these benches run single representative points at
//! smoke scale and report the simulated-cycle results via criterion.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tt_bench::{bench_config, figure3_point, figure4_point, smoke};
use tt_apps::{AppId, DataSet};

fn bench_figure3_points(c: &mut Criterion) {
    let cfg = bench_config(smoke::NODES);
    let mut group = c.benchmark_group("figure3");
    group.sample_size(10);
    group.bench_function("em3d_small_4k_point", |b| {
        b.iter(|| {
            let p = figure3_point(AppId::Em3d, DataSet::Small, 4 * 1024, smoke::SCALE, &cfg);
            black_box(p.relative())
        })
    });
    group.bench_function("ocean_small_4k_point", |b| {
        b.iter(|| {
            let p = figure3_point(AppId::Ocean, DataSet::Small, 4 * 1024, smoke::SCALE, &cfg);
            black_box(p.relative())
        })
    });
    group.finish();
}

fn bench_figure4_midpoint(c: &mut Criterion) {
    let cfg = bench_config(smoke::NODES);
    let mut group = c.benchmark_group("figure4");
    group.sample_size(10);
    group.bench_function("em3d_30pct_remote_all_systems", |b| {
        b.iter(|| {
            let p = figure4_point(0.3, smoke::SCALE, &cfg);
            black_box(p.cycles_per_edge)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figure3_points, bench_figure4_midpoint);
criterion_main!(benches);
