//! Reduced-scale figure points under `cargo bench`, so the paper's two
//! headline comparisons are exercised by the standard bench entry point.
//! The printable full-resolution figures come from the `figure3` /
//! `figure4` binaries; these benches run single representative points at
//! smoke scale. Uses the internal `tt_bench::harness` (criterion is
//! unavailable offline).

use std::hint::black_box;

use tt_apps::{AppId, DataSet};
use tt_bench::harness::Runner;
use tt_bench::{bench_config, figure3_point, figure4_point, smoke};

fn main() {
    let r = Runner::from_args();
    let cfg = bench_config(smoke::NODES);
    r.bench("figure3/em3d_small_4k_point", || {
        let p = figure3_point(AppId::Em3d, DataSet::Small, 4 * 1024, smoke::SCALE, &cfg);
        black_box(p.relative().to_bits())
    });
    r.bench("figure3/ocean_small_4k_point", || {
        let p = figure3_point(AppId::Ocean, DataSet::Small, 4 * 1024, smoke::SCALE, &cfg);
        black_box(p.relative().to_bits())
    });
    r.bench("figure4/em3d_30pct_remote_all_systems", || {
        let p = figure4_point(0.3, smoke::SCALE, &cfg);
        black_box(p.cycles_per_edge[0].to_bits())
    });
}
