//! Microbenchmarks of the simulator substrate and the user-level
//! shared-memory hot paths: the §5.1 claims about handler invocation
//! live here (miss path, message round trip), plus raw engine
//! throughput. Uses the internal `tt_bench::harness` (criterion is
//! unavailable offline).
//!
//! Run with `cargo bench --bench microbench [-- <filter>]`.

use std::hint::black_box;

use tt_base::addr::PAGE_BYTES;
use tt_base::workload::{Layout, Op, Placement, Region, ScriptWorkload, SHARED_SEGMENT_BASE};
use tt_base::{Cycles, DetRng, NodeId, SystemConfig, VAddr};
use tt_bench::harness::Runner;
use tt_mem::{AccessKind, CacheModel, FifoTlb, NodeMemory, PageTable, Tag};
use tt_sim::{EventHandler, EventQueue, RunLimit};
use tt_stache::StacheProtocol;
use tt_typhoon::cpu::{exec_access, AccessOutcome, CpuState};
use tt_typhoon::np::NpState;
use tt_typhoon::TyphoonMachine;

struct Sink(u64);
impl EventHandler for Sink {
    type Event = u64;
    fn handle(&mut self, _now: Cycles, ev: u64, q: &mut EventQueue<u64>) {
        self.0 = self.0.wrapping_add(ev);
        if ev > 0 {
            q.schedule_after(Cycles::new(3), ev - 1);
        }
    }
}

/// A single self-rescheduling chain: the EventQueue front-slot fast
/// path should make this nearly heap-free.
fn bench_event_queue_chain(r: &Runner) {
    r.bench("sim/event_queue_chain_10k", || {
        let mut q = EventQueue::new();
        q.schedule_at(Cycles::ZERO, 10_000u64);
        let mut h = Sink(0);
        tt_sim::run(&mut h, &mut q, RunLimit::none());
        black_box(h.0)
    });
}

/// Heap churn with many interleaved "nodes": schedule/pop with 32
/// outstanding events at staggered times, the pattern a full-machine
/// simulation produces. Exercises the slow (heap) path.
fn bench_event_queue_churn(r: &Runner) {
    r.bench("sim/event_queue_schedule_pop_churn_32", || {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut rng = DetRng::new(11);
        for i in 0..32u64 {
            q.schedule_at(Cycles::new(i % 7), i);
        }
        let mut acc = 0u64;
        for _ in 0..20_000 {
            let (now, ev) = q.pop().expect("queue never drains");
            acc = acc.wrapping_add(ev);
            q.schedule_at(now + Cycles::new(1 + rng.below(13)), ev);
        }
        while q.pop().is_some() {}
        black_box(acc)
    });
}

fn bench_cache_model(r: &Runner) {
    r.bench("mem/cache_probe_fill_sweep", || {
        let mut cache = CacheModel::new(64 * 1024, 4, 32, DetRng::new(1));
        let mut hits = 0u64;
        for i in 0..16_384u64 {
            let key = (i * 7) % 4096;
            if cache.probe(key).is_hit() {
                hits += 1;
            } else {
                cache.fill(key, i % 2 == 0);
            }
        }
        black_box(hits)
    });
    r.bench("mem/tlb_fifo_sweep", || {
        let mut tlb = FifoTlb::new(64);
        let mut hits = 0u64;
        for i in 0..8_192u64 {
            if tlb.access(tt_base::addr::Vpn(i % 96)) {
                hits += 1;
            }
        }
        black_box(hits)
    });
}

/// The `exec_access` cache-hit path: after one fill, every access hits
/// the CPU cache and should cost a handful of nanoseconds — this is the
/// per-op floor of the whole simulation.
fn bench_exec_access_hit(r: &Runner) {
    r.bench("typhoon/exec_access_cache_hit", || {
        let cfg = SystemConfig::test_config(2);
        let mut cpu = CpuState::new(NodeId::new(0), &cfg, DetRng::new(1));
        let mut np = NpState::new(&cfg, DetRng::new(2));
        let mut mem = NodeMemory::new();
        let mut pt = PageTable::new();
        let ppn = mem.alloc();
        pt.map(tt_base::addr::Vpn(0x10000), ppn).unwrap();
        mem.frame_mut(ppn).set_all_tags(Tag::ReadWrite);
        let addr = VAddr::new(0x10000 * PAGE_BYTES as u64);
        // Prime: TLB, RTLB, and cache fill.
        exec_access(&cfg, &mut cpu, &mut np, &mut mem, &pt, addr, AccessKind::Load, 0);
        let mut acc = 0u64;
        for _ in 0..16_384 {
            match exec_access(&cfg, &mut cpu, &mut np, &mut mem, &pt, addr, AccessKind::Load, 0)
            {
                AccessOutcome::Done { cost, .. } => acc = acc.wrapping_add(cost.raw()),
                other => panic!("expected hit, got {other:?}"),
            }
        }
        black_box(acc)
    });
}

/// A hit-run-heavy Typhoon workload (one node streaming loads over its
/// own pages) with the direct-execution bypass on vs. off: the "on"
/// variant executes whole runs of hits inline in one handler invocation,
/// the "off" variant round-trips every quantum through the event heap.
/// Cycle counts are identical; only host time differs.
fn bench_hit_run_direct_vs_scheduled(r: &Runner) {
    let build = || {
        let mut layout = Layout::new();
        layout.add(Region {
            base: VAddr::new(SHARED_SEGMENT_BASE),
            bytes: 4 * PAGE_BYTES,
            placement: Placement::PerPage(vec![NodeId::new(0); 4]),
            mode: 0,
        });
        let mut w = ScriptWorkload::new(2).with_layout(layout);
        let ops: Vec<Op> = (0..16_384u64)
            .map(|i| Op::Read {
                addr: VAddr::new(SHARED_SEGMENT_BASE + (i % 512) * 8),
                expect: None,
            })
            .collect();
        w.set(0, ops);
        w.set(1, Vec::new());
        w
    };
    for (name, direct) in [
        ("typhoon/hit_run_direct_on", true),
        ("typhoon/hit_run_scheduled_off", false),
    ] {
        r.bench(name, || {
            let mut cfg = SystemConfig::test_config(2);
            cfg.direct_execution = direct;
            let mut m = TyphoonMachine::new(cfg, Box::new(build()), &|id, layout, cfg| {
                Box::new(StacheProtocol::new(id, layout, cfg))
            });
            black_box(m.run().cycles.raw())
        });
    }
}

/// Tag validation, packed 2-bit words vs. a one-byte-per-block array —
/// the check the inline run loop performs per access.
fn bench_tag_check_packed_vs_byte(r: &Runner) {
    use tt_mem::tags::PackedTags;
    const BLOCKS: usize = tt_base::addr::BLOCKS_PER_PAGE;
    r.bench("mem/tag_check_packed", || {
        let mut tags = PackedTags::default();
        tags.set_all(Tag::ReadOnly);
        tags.set(17, Tag::ReadWrite);
        let mut ok = 0u64;
        for i in 0..64 * BLOCKS {
            if tags.get(i % BLOCKS).permits(AccessKind::Load) {
                ok += 1;
            }
        }
        black_box(ok)
    });
    r.bench("mem/tag_check_byte_array", || {
        let mut tags = [Tag::ReadOnly; BLOCKS];
        tags[17] = Tag::ReadWrite;
        let mut ok = 0u64;
        for i in 0..64 * BLOCKS {
            if black_box(&tags)[i % BLOCKS].permits(AccessKind::Load) {
                ok += 1;
            }
        }
        black_box(ok)
    });
}

/// Payload construction on the message hot path. The payload used to
/// carry `Vec<u64>` words and a `Vec<u8>` data block — two heap
/// allocations per message; it is now a fixed inline array, so building
/// one allocates nothing. The bench measures both time and (via the
/// harness's counting allocator) allocations per message, printed once.
fn bench_payload_inline(r: &Runner) {
    use tt_net::Payload;
    let block = [0xA5u8; 32];
    // One-shot allocation census outside the timed loop.
    let before = tt_base::alloc_stats::alloc_count();
    let mut acc = 0u64;
    for i in 0..10_000u64 {
        let p = Payload::with_block(&[i, i ^ 7], block);
        acc = acc.wrapping_add(p.words()[0]).wrapping_add(p.data()[0] as u64);
    }
    black_box(acc);
    let per_msg = (tt_base::alloc_stats::alloc_count() - before) as f64 / 10_000.0;
    eprintln!("  payload/with_block_32B: {per_msg:.4} allocations per message");
    r.bench("payload/with_block_32B_10k", || {
        let mut acc = 0u64;
        for i in 0..10_000u64 {
            let p = Payload::with_block(&[i, i ^ 7], block);
            acc = acc.wrapping_add(p.words()[0]).wrapping_add(p.data()[0] as u64);
        }
        black_box(acc)
    });
}

/// One remote Stache miss, end to end: page fault, block fault, request,
/// home handler, reply handler, resume, retry — the §5.1 critical path.
fn bench_stache_miss_path(r: &Runner) {
    r.bench("stache/remote_miss_round_trip", || {
        let mut layout = Layout::new();
        layout.add(Region {
            base: VAddr::new(SHARED_SEGMENT_BASE),
            bytes: PAGE_BYTES,
            placement: Placement::PerPage(vec![NodeId::new(0)]),
            mode: 0,
        });
        let mut w = ScriptWorkload::new(2).with_layout(layout);
        w.set(0, vec![Op::Barrier]);
        w.set(
            1,
            vec![
                Op::Barrier,
                Op::Read {
                    addr: VAddr::new(SHARED_SEGMENT_BASE),
                    expect: None,
                },
            ],
        );
        let mut m = TyphoonMachine::new(
            SystemConfig::test_config(2),
            Box::new(w),
            &|id, layout, cfg| Box::new(StacheProtocol::new(id, layout, cfg)),
        );
        black_box(m.run().cycles.raw())
    });
}

fn main() {
    let r = Runner::from_args();
    bench_event_queue_chain(&r);
    bench_event_queue_churn(&r);
    bench_cache_model(&r);
    bench_exec_access_hit(&r);
    bench_hit_run_direct_vs_scheduled(&r);
    bench_tag_check_packed_vs_byte(&r);
    bench_payload_inline(&r);
    bench_stache_miss_path(&r);
}
