//! Criterion microbenchmarks of the simulator substrate and the
//! user-level shared-memory hot paths: the §5.1 claims about handler
//! invocation live here (miss path, message round trip), plus raw engine
//! throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tt_base::addr::PAGE_BYTES;
use tt_base::workload::{Layout, Op, Placement, Region, ScriptWorkload, SHARED_SEGMENT_BASE};
use tt_base::{Cycles, DetRng, NodeId, SystemConfig, VAddr};
use tt_mem::{CacheModel, FifoTlb};
use tt_sim::{EventHandler, EventQueue, RunLimit};
use tt_stache::StacheProtocol;
use tt_typhoon::TyphoonMachine;

struct Sink(u64);
impl EventHandler for Sink {
    type Event = u64;
    fn handle(&mut self, _now: Cycles, ev: u64, q: &mut EventQueue<u64>) {
        self.0 = self.0.wrapping_add(ev);
        if ev > 0 {
            q.schedule_after(Cycles::new(3), ev - 1);
        }
    }
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("sim/event_queue_chain_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            q.schedule_at(Cycles::ZERO, 10_000u64);
            let mut h = Sink(0);
            tt_sim::run(&mut h, &mut q, RunLimit::none());
            black_box(h.0)
        })
    });
}

fn bench_cache_model(c: &mut Criterion) {
    c.bench_function("mem/cache_probe_fill_sweep", |b| {
        b.iter(|| {
            let mut cache = CacheModel::new(64 * 1024, 4, 32, DetRng::new(1));
            let mut hits = 0u64;
            for i in 0..16_384u64 {
                let key = (i * 7) % 4096;
                if cache.probe(key).is_hit() {
                    hits += 1;
                } else {
                    cache.fill(key, i % 2 == 0);
                }
            }
            black_box(hits)
        })
    });
    c.bench_function("mem/tlb_fifo_sweep", |b| {
        b.iter(|| {
            let mut tlb = FifoTlb::new(64);
            let mut hits = 0u64;
            for i in 0..8_192u64 {
                if tlb.access(tt_base::addr::Vpn(i % 96)) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

/// One remote Stache miss, end to end: page fault, block fault, request,
/// home handler, reply handler, resume, retry — the §5.1 critical path.
fn bench_stache_miss_path(c: &mut Criterion) {
    c.bench_function("stache/remote_miss_round_trip", |b| {
        b.iter(|| {
            let mut layout = Layout::new();
            layout.add(Region {
                base: VAddr::new(SHARED_SEGMENT_BASE),
                bytes: PAGE_BYTES,
                placement: Placement::PerPage(vec![NodeId::new(0)]),
                mode: 0,
            });
            let mut w = ScriptWorkload::new(2).with_layout(layout);
            w.set(0, vec![Op::Barrier]);
            w.set(
                1,
                vec![
                    Op::Barrier,
                    Op::Read {
                        addr: VAddr::new(SHARED_SEGMENT_BASE),
                        expect: None,
                    },
                ],
            );
            let mut m = TyphoonMachine::new(
                SystemConfig::test_config(2),
                Box::new(w),
                &|id, layout, cfg| Box::new(StacheProtocol::new(id, layout, cfg)),
            );
            black_box(m.run().cycles)
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_cache_model,
    bench_stache_miss_path
);
criterion_main!(benches);
