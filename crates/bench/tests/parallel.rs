//! Parallel-sweep regression tests: `--jobs N` must never change a
//! simulated result. Every point is an independent single-threaded
//! simulation built from its own seed, so the worker count can only
//! affect wall-clock time — these tests pin that guarantee.

use tt_bench::{bench_config, figure3_sweep, figure4_sweep, smoke};

#[test]
fn figure3_sweep_is_identical_for_any_job_count() {
    let cfg = bench_config(smoke::NODES);
    let seq = figure3_sweep(smoke::SCALE, &cfg, 1);
    let par = figure3_sweep(smoke::SCALE, &cfg, 4);
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.app, b.app, "point order must not depend on jobs");
        assert_eq!(a.set, b.set);
        assert_eq!(a.cache_bytes, b.cache_bytes);
        assert_eq!(
            a.typhoon, b.typhoon,
            "typhoon cycles differ at {} {}/{}K",
            a.app,
            a.set,
            a.cache_bytes / 1024
        );
        assert_eq!(
            a.dirnnb, b.dirnnb,
            "dirnnb cycles differ at {} {}/{}K",
            a.app,
            a.set,
            a.cache_bytes / 1024
        );
    }
}

#[test]
fn figure4_sweep_is_identical_for_any_job_count() {
    let cfg = bench_config(smoke::NODES);
    let seq = figure4_sweep(smoke::SCALE, &cfg, 1);
    let par = figure4_sweep(smoke::SCALE, &cfg, 4);
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.pct_remote, b.pct_remote);
        assert_eq!(
            a.cycles, b.cycles,
            "cycles differ at {}% remote",
            a.pct_remote * 100.0
        );
    }
}

#[test]
fn repeated_sweeps_are_bit_reproducible() {
    // Same-process determinism: two identical sweeps, identical cycles.
    // (Cross-process determinism additionally requires that no map with a
    // randomized hasher is iterated on a semantics-bearing path; see
    // tt_base::fxhash and StacheProtocol::init.)
    let cfg = bench_config(smoke::NODES);
    let first = figure3_sweep(smoke::SCALE, &cfg, 2);
    let second = figure3_sweep(smoke::SCALE, &cfg, 2);
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.typhoon, b.typhoon);
        assert_eq!(a.dirnnb, b.dirnnb);
    }
}
