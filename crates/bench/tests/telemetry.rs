//! PDES telemetry: the adaptive window policy must (a) report the same
//! cycle table as the fixed policy and (b) actually cut the rendezvous
//! count on a barrier-heavy, idle-heavy point — the workload shape the
//! widening exists for. Ocean small on 32 nodes leaves most processors
//! idle at barriers (12 grid rows, 32 processors), so the fixed-quantum
//! driver synchronizes a thousand windows that the per-shard bounds
//! batch into a few hundred: the surviving rounds are paced by genuine
//! cross-shard request/reply traffic (the echo clamp), not by the
//! quantum.

use tt_apps::{AppId, DataSet};
use tt_base::WindowPolicy;
use tt_bench::{bench_config, build_app, run_system, sync_for, System};

#[test]
fn adaptive_windows_cut_rendezvous_on_idle_heavy_ocean() {
    let nodes = 32;
    let scale = 40;
    let run = |policy: WindowPolicy| {
        let mut cfg = bench_config(nodes);
        cfg.sim_threads = 2;
        cfg.window_policy = policy;
        run_system(
            System::TyphoonStache,
            &cfg,
            build_app(
                AppId::Ocean,
                DataSet::Small,
                scale,
                nodes,
                sync_for(AppId::Ocean, System::TyphoonStache),
            ),
        )
    };
    let fixed = run(WindowPolicy::Fixed);
    let adaptive = run(WindowPolicy::Adaptive);
    assert_eq!(
        fixed.cycles, adaptive.cycles,
        "window policy changed the simulated result"
    );
    let f = fixed.pdes.expect("parallel run reports telemetry");
    let a = adaptive.pdes.expect("parallel run reports telemetry");
    println!("fixed:    {f:?}");
    println!("adaptive: {a:?}");
    // Event counts may differ slightly between policies: direct-execution
    // wakeup elision depends on window shape. Cycle tables never do.
    assert_eq!(f.releases, a.releases, "same barrier generations either way");
    assert_eq!(f.rendezvous_elided, 0, "fixed policy never elides");
    assert!(a.rendezvous_elided > 0, "adaptive policy must report elisions");
    assert!(
        a.rendezvous * 5 <= f.rendezvous,
        "expected >= 5x rendezvous reduction, got {} -> {}",
        f.rendezvous,
        a.rendezvous
    );
}
