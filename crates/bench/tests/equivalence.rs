//! Direct execution is purely a simulator-speed optimization: with the
//! inline hit-run executor forced off, every machine must produce the
//! exact same cycle tables. These tests pin that equivalence over the
//! full figure 3 small-scale sweep (Typhoon/Stache and DirNNB at every
//! app × cache point) and the figure 4 sweep (which adds Typhoon/Update
//! and flush synchronization).
//!
//! The same property holds for the conservative-parallel simulator:
//! `sim_threads > 1` shards the event queue across OS threads but must
//! reproduce the sequential cycle tables bit for bit, so the sweeps are
//! also pinned parallel-vs-sequential, plus a targeted test of the one
//! ordering hazard sharding introduces — two nodes in different shards
//! whose messages reach the same home at the same cycle.

use tt_bench::{bench_config, figure3_sweep, figure4_sweep, smoke};

#[test]
fn figure3_sweep_is_identical_with_direct_execution_off() {
    let on = bench_config(smoke::NODES);
    let mut off = bench_config(smoke::NODES);
    off.direct_execution = false;
    assert!(on.direct_execution, "direct execution defaults on");
    let fast = figure3_sweep(smoke::SCALE, &on, 4);
    let slow = figure3_sweep(smoke::SCALE, &off, 4);
    assert_eq!(fast.len(), slow.len());
    for (f, s) in fast.iter().zip(&slow) {
        assert_eq!(
            f.typhoon, s.typhoon,
            "Typhoon/Stache cycles diverged at {} {}/{}",
            f.app, f.set, f.cache_bytes
        );
        assert_eq!(
            f.dirnnb, s.dirnnb,
            "DirNNB cycles diverged at {} {}/{}",
            f.app, f.set, f.cache_bytes
        );
    }
}

#[test]
fn figure4_sweep_is_identical_with_direct_execution_off() {
    let on = bench_config(smoke::NODES);
    let mut off = bench_config(smoke::NODES);
    off.direct_execution = false;
    let fast = figure4_sweep(smoke::SCALE, &on, 4);
    let slow = figure4_sweep(smoke::SCALE, &off, 4);
    assert_eq!(fast.len(), slow.len());
    for (f, s) in fast.iter().zip(&slow) {
        assert_eq!(
            f.cycles, s.cycles,
            "cycles diverged at {}% remote (DirNNB, Typhoon/Stache, Typhoon/Update)",
            f.pct_remote * 100.0
        );
    }
}

#[test]
fn figure3_sweep_is_identical_under_parallel_simulation() {
    let seq = bench_config(smoke::NODES);
    let mut par = bench_config(smoke::NODES);
    par.sim_threads = 2;
    let sequential = figure3_sweep(smoke::SCALE, &seq, 4);
    let parallel = figure3_sweep(smoke::SCALE, &par, 4);
    assert_eq!(sequential.len(), parallel.len());
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(
            s.typhoon, p.typhoon,
            "Typhoon/Stache cycles diverged under sim_threads=2 at {} {}/{}",
            s.app, s.set, s.cache_bytes
        );
        assert_eq!(
            s.dirnnb, p.dirnnb,
            "DirNNB cycles diverged under sim_threads=2 at {} {}/{}",
            s.app, s.set, s.cache_bytes
        );
    }
}

#[test]
fn figure4_sweep_is_identical_under_parallel_simulation() {
    let seq = bench_config(smoke::NODES);
    let mut par = bench_config(smoke::NODES);
    par.sim_threads = 3;
    let sequential = figure4_sweep(smoke::SCALE, &seq, 4);
    let parallel = figure4_sweep(smoke::SCALE, &par, 4);
    assert_eq!(sequential.len(), parallel.len());
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(
            s.cycles, p.cycles,
            "cycles diverged under sim_threads=3 at {}% remote \
             (DirNNB, Typhoon/Stache, Typhoon/Update)",
            s.pct_remote * 100.0
        );
    }
}

/// Adaptive windowing (idle-window batching + per-shard lookahead
/// widening) is purely a rendezvous-count optimization: the full
/// figure 3 grid must be byte-identical to the sequential tables at
/// every thread count the smoke sweeps use.
#[test]
fn figure3_sweep_is_identical_under_adaptive_windows() {
    let seq = bench_config(smoke::NODES);
    let sequential = figure3_sweep(smoke::SCALE, &seq, 4);
    for threads in [2, 3] {
        let mut par = bench_config(smoke::NODES);
        par.sim_threads = threads;
        par.window_policy = tt_base::WindowPolicy::Adaptive;
        let parallel = figure3_sweep(smoke::SCALE, &par, 4);
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(
                s.typhoon, p.typhoon,
                "Typhoon/Stache cycles diverged under adaptive sim_threads={threads} \
                 at {} {}/{}",
                s.app, s.set, s.cache_bytes
            );
            assert_eq!(
                s.dirnnb, p.dirnnb,
                "DirNNB cycles diverged under adaptive sim_threads={threads} at {} {}/{}",
                s.app, s.set, s.cache_bytes
            );
        }
    }
}

#[test]
fn figure4_sweep_is_identical_under_adaptive_windows() {
    let seq = bench_config(smoke::NODES);
    let mut par = bench_config(smoke::NODES);
    par.sim_threads = 2;
    par.window_policy = tt_base::WindowPolicy::Adaptive;
    let sequential = figure4_sweep(smoke::SCALE, &seq, 4);
    let parallel = figure4_sweep(smoke::SCALE, &par, 4);
    assert_eq!(sequential.len(), parallel.len());
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(
            s.cycles, p.cycles,
            "cycles diverged under adaptive sim_threads=2 at {}% remote \
             (DirNNB, Typhoon/Stache, Typhoon/Update)",
            s.pct_remote * 100.0
        );
    }
}

/// The ordering hazard the deterministic barrier merge exists for:
/// nodes in *different* shards whose requests reach the same home
/// directory at the *same cycle*. The sequential heap breaks that tie by
/// (cycle, origin, counter); the parallel merge must reproduce it
/// exactly or the deferred/granted order (and every downstream cycle)
/// flips. Nodes 1..4 run identical op streams hammering one block homed
/// on node 0, so their `HomeRequest`s are issued — and land — at
/// identical cycles; with 4 threads each node is its own shard and every
/// request crosses a shard boundary.
#[test]
fn same_cycle_cross_shard_requests_merge_in_sequential_order() {
    use tt_base::addr::{PAGE_BYTES, VAddr};
    use tt_base::workload::{
        Layout, Op, Placement, Region, ScriptWorkload, SHARED_SEGMENT_BASE,
    };
    use tt_base::{NodeId, SystemConfig};
    use tt_dirnnb::DirnnbMachine;

    let run = |sim_threads: usize, sim_shards: usize, policy: tt_base::WindowPolicy| {
        let mut layout = Layout::new();
        layout.add(Region {
            base: VAddr::new(SHARED_SEGMENT_BASE),
            bytes: PAGE_BYTES,
            placement: Placement::PerPage(vec![NodeId::new(0)]),
            mode: 0,
        });
        let nodes = 4;
        let mut w = ScriptWorkload::new(nodes).with_layout(layout);
        w.set(0, vec![]);
        // Identical streams on nodes 1..4: every round of requests
        // leaves at the same cycle and lands at the home at the same
        // cycle, so the directory sees same-cycle conflicts every round.
        for n in 1..nodes {
            let mut ops = Vec::new();
            for i in 0..20u64 {
                ops.push(Op::Write {
                    addr: VAddr::new(SHARED_SEGMENT_BASE),
                    value: (n as u64) << 32 | i,
                });
                ops.push(Op::Read { addr: VAddr::new(SHARED_SEGMENT_BASE), expect: None });
            }
            w.set(n, ops);
        }
        let mut cfg = SystemConfig::test_config(nodes);
        cfg.dirnnb.placement = tt_base::config::DirPlacement::Owner;
        cfg.verify_values = false; // nodes race on the same word by design
        cfg.sim_threads = sim_threads;
        cfg.sim_shards = sim_shards;
        cfg.window_policy = policy;
        let r = DirnnbMachine::new(cfg, Box::new(w)).run();
        let rows: Vec<(String, f64)> =
            r.report.iter().map(|row| (row.name.clone(), row.value)).collect();
        (r.cycles, rows)
    };
    use tt_base::WindowPolicy::{Adaptive, Fixed};
    let sequential = run(1, 0, Fixed);
    // The race must actually exercise the directory's conflict path, or
    // this test pins nothing.
    assert!(
        sequential.1.iter().any(|(name, v)| name == "dir.deferred" && *v > 0.0),
        "workload failed to produce same-cycle conflicting requests"
    );
    for threads in [2, 3, 4] {
        for policy in [Fixed, Adaptive] {
            assert_eq!(
                sequential,
                run(threads, 0, policy),
                "sim_threads={threads} policy={policy} diverged"
            );
        }
    }
    // Worker multiplexing: more shards than OS threads, so each worker
    // owns several shards — the same-cycle merge must still hold.
    for (threads, shards) in [(2, 4), (3, 4)] {
        for policy in [Fixed, Adaptive] {
            assert_eq!(
                sequential,
                run(threads, shards, policy),
                "sim_threads={threads} sim_shards={shards} policy={policy} diverged"
            );
        }
    }
}
