//! Direct execution is purely a simulator-speed optimization: with the
//! inline hit-run executor forced off, every machine must produce the
//! exact same cycle tables. These tests pin that equivalence over the
//! full figure 3 small-scale sweep (Typhoon/Stache and DirNNB at every
//! app × cache point) and the figure 4 sweep (which adds Typhoon/Update
//! and flush synchronization).

use tt_bench::{bench_config, figure3_sweep, figure4_sweep, smoke};

#[test]
fn figure3_sweep_is_identical_with_direct_execution_off() {
    let on = bench_config(smoke::NODES);
    let mut off = bench_config(smoke::NODES);
    off.direct_execution = false;
    assert!(on.direct_execution, "direct execution defaults on");
    let fast = figure3_sweep(smoke::SCALE, &on, 4);
    let slow = figure3_sweep(smoke::SCALE, &off, 4);
    assert_eq!(fast.len(), slow.len());
    for (f, s) in fast.iter().zip(&slow) {
        assert_eq!(
            f.typhoon, s.typhoon,
            "Typhoon/Stache cycles diverged at {} {}/{}",
            f.app, f.set, f.cache_bytes
        );
        assert_eq!(
            f.dirnnb, s.dirnnb,
            "DirNNB cycles diverged at {} {}/{}",
            f.app, f.set, f.cache_bytes
        );
    }
}

#[test]
fn figure4_sweep_is_identical_with_direct_execution_off() {
    let on = bench_config(smoke::NODES);
    let mut off = bench_config(smoke::NODES);
    off.direct_execution = false;
    let fast = figure4_sweep(smoke::SCALE, &on, 4);
    let slow = figure4_sweep(smoke::SCALE, &off, 4);
    assert_eq!(fast.len(), slow.len());
    for (f, s) in fast.iter().zip(&slow) {
        assert_eq!(
            f.cycles, s.cycles,
            "cycles diverged at {}% remote (DirNNB, Typhoon/Stache, Typhoon/Update)",
            f.pct_remote * 100.0
        );
    }
}
