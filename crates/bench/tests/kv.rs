//! KV-serving harness tests: the `kv_bench` sweep's determinism
//! contract (identical cycles, reports, and latency histograms whatever
//! the simulator's parallelism) and the headline performance claim
//! (write-update flattens the contended write-heavy tail on a small
//! machine).

use tt_apps::run_kv_update;
use tt_base::{SystemConfig, WindowPolicy};
use tt_serve::{run_kv_stache, KvOutcome, KvParams, KvVariant};

fn point(variant: KvVariant, nodes: usize, skew: f64, write_pct: u32) -> KvParams {
    let mut p = KvParams::small(variant);
    p.nodes = nodes;
    p.keys = 512;
    p.skew = skew;
    p.write_pct = write_pct;
    p.requests_per_node = 120;
    p.mean_interarrival = 500.0;
    p.value_words = 4;
    p
}

fn run(cfg: &SystemConfig, p: &KvParams) -> KvOutcome {
    match p.variant {
        KvVariant::Stache => run_kv_stache(cfg, p),
        KvVariant::Update => run_kv_update(cfg, p),
    }
}

/// Simulator parallelism is invisible in every simulated number: cycles,
/// the full report, and the latency histograms match the sequential run
/// bit-for-bit across thread counts, shard counts, and window policies,
/// for both server variants.
#[test]
fn kv_results_are_invariant_under_simulator_parallelism() {
    for variant in [KvVariant::Stache, KvVariant::Update] {
        let p = point(variant, 4, 1.2, 50);
        let seq = run(&SystemConfig::test_config(p.nodes), &p);
        for (threads, shards, policy) in [
            (2, 0, WindowPolicy::Fixed),
            (2, 0, WindowPolicy::Adaptive),
            (3, 6, WindowPolicy::Adaptive),
        ] {
            let mut cfg = SystemConfig::test_config(p.nodes);
            cfg.sim_threads = threads;
            cfg.sim_shards = shards;
            cfg.window_policy = policy;
            let par = run(&cfg, &p);
            let shape = format!("{} threads={threads} shards={shards} {policy:?}", p.variant.name());
            assert_eq!(seq.cycles, par.cycles, "cycles diverged: {shape}");
            assert_eq!(seq.report, par.report, "report diverged: {shape}");
            assert_eq!(seq.lat, par.lat, "latencies diverged: {shape}");
        }
    }
}

/// The tentpole performance claim, pinned at a hot write-heavy point on
/// a small machine (the regime the custom protocol targets): the
/// write-update server beats the invalidation-based Stache server on
/// put tail latency and overall completion time.
#[test]
fn write_update_flattens_the_hot_write_tail() {
    let cfg = SystemConfig::test_config(8);
    let stache = run(&cfg, &point(KvVariant::Stache, 8, 1.2, 50));
    let update = run(&cfg, &point(KvVariant::Update, 8, 1.2, 50));
    assert_eq!(stache.lat.requests(), update.lat.requests());
    assert!(
        update.lat.put.quantile(0.99) < stache.lat.put.quantile(0.99),
        "update put p99 {} !< stache put p99 {}",
        update.lat.put.quantile(0.99),
        stache.lat.put.quantile(0.99),
    );
    assert!(
        update.lat.get.quantile(0.99) < stache.lat.get.quantile(0.99),
        "update get p99 {} !< stache get p99 {}",
        update.lat.get.quantile(0.99),
        stache.lat.get.quantile(0.99),
    );
    assert!(update.cycles < stache.cycles);
}

/// Both variants serve exactly the workload's request count at every
/// swept mix, so throughput numbers compare like-for-like.
#[test]
fn both_variants_serve_every_request_at_every_mix() {
    for write_pct in [5, 50] {
        let stache = run(
            &SystemConfig::test_config(4),
            &point(KvVariant::Stache, 4, 0.9, write_pct),
        );
        let update = run(
            &SystemConfig::test_config(4),
            &point(KvVariant::Update, 4, 0.9, write_pct),
        );
        let expect = 4 * 120;
        assert_eq!(stache.lat.requests(), expect);
        assert_eq!(update.lat.requests(), expect);
        assert_eq!(stache.lat.put.total(), update.lat.put.total());
    }
}
