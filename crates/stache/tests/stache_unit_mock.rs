//! Unit tests of the Stache protocol state machine against
//! [`tt_tempest::testing::MockCtx`]: each handler's effects (messages,
//! tags, resumes, directory transitions) are asserted in isolation,
//! without a machine or network in the loop.

use tt_base::addr::{VAddr, Vpn, BLOCK_BYTES, PAGE_BYTES};
use tt_base::workload::{Layout, Placement, Region};
use tt_base::{NodeId, SystemConfig};
use tt_mem::{AccessKind, Tag};
use tt_net::{Payload, VirtualNet};
use tt_stache::stache::{ACK, GET_RO, GET_RW, INV, PUT_RO, PUT_RW, RECALL_DATA, RECALL_RW, WRITEBACK};
use tt_stache::StacheProtocol;
use tt_tempest::testing::MockCtx;
use tt_tempest::{BlockFault, HandlerId, Message, PageFault, Protocol, TempestCtx, ThreadId};

const HOME: u16 = 0;
const VPN: Vpn = Vpn(0x10000);

fn layout() -> Layout {
    let mut l = Layout::new();
    l.add(Region {
        base: VPN.base(),
        bytes: PAGE_BYTES,
        placement: Placement::PerPage(vec![NodeId::new(HOME)]),
        mode: 0,
    });
    l
}

/// A [`MockCtx`] with the Stache virtual-net policy installed: every
/// handler send in these tests is checked against the same discipline
/// the `tt-check` invariant engine enforces at machine level.
fn checked_ctx(node: u16) -> MockCtx {
    let mut ctx = MockCtx::new(node, 4);
    ctx.set_vn_policy(tt_stache::vn_policy());
    ctx
}

/// A home-node protocol with its page installed (via `init`).
fn home() -> (StacheProtocol, MockCtx) {
    let cfg = SystemConfig::test_config(4);
    let mut p = StacheProtocol::new(NodeId::new(HOME), &layout(), &cfg);
    let mut ctx = checked_ctx(HOME);
    p.init(&mut ctx);
    assert_eq!(ctx.read_tag(VPN.base()), Tag::ReadWrite, "home pages start RW");
    ctx.clear_effects();
    (p, ctx)
}

fn msg(src: u16, vn: VirtualNet, handler: HandlerId, payload: Payload) -> Message {
    Message {
        src: NodeId::new(src),
        vn,
        handler,
        payload,
    }
}

fn get(src: u16, handler: HandlerId, addr: VAddr) -> Message {
    msg(src, VirtualNet::Request, handler, Payload::args(&[addr.raw()]))
}

#[test]
fn get_ro_on_idle_shares_and_responds_with_data() {
    let (mut p, mut ctx) = home();
    let addr = VPN.base().offset(64);
    ctx.force_write_word(addr, 0xAB);
    p.on_message(&mut ctx, get(2, GET_RO, addr));

    let sent = ctx.last_sent().expect("a response was sent");
    assert_eq!(sent.dst, NodeId::new(2));
    assert_eq!(sent.vn, VirtualNet::Response, "data travels on the response net");
    assert_eq!(sent.handler, PUT_RO);
    assert_eq!(sent.payload.words()[0], addr.raw());
    assert_eq!(&sent.payload.block()[0..8], &0xABu64.to_le_bytes());
    // Home tag downgraded so local writes will fault.
    assert_eq!(ctx.read_tag(addr), Tag::ReadOnly);
}

#[test]
fn get_rw_on_idle_grants_exclusive_and_invalidates_home_tag() {
    let (mut p, mut ctx) = home();
    let addr = VPN.base();
    p.on_message(&mut ctx, get(3, GET_RW, addr));
    assert_eq!(ctx.last_sent().unwrap().handler, PUT_RW);
    assert_eq!(ctx.read_tag(addr), Tag::Invalid);
}

#[test]
fn get_rw_on_shared_runs_an_invalidation_round() {
    let (mut p, mut ctx) = home();
    let addr = VPN.base().offset(128);
    // Two readers first.
    p.on_message(&mut ctx, get(1, GET_RO, addr));
    p.on_message(&mut ctx, get(2, GET_RO, addr));
    ctx.clear_effects();

    // A third node wants to write.
    p.on_message(&mut ctx, get(3, GET_RW, addr));
    let invs: Vec<_> = ctx.sent.iter().filter(|s| s.handler == INV).collect();
    assert_eq!(invs.len(), 2, "both sharers are invalidated");
    assert!(invs.iter().all(|s| s.vn == VirtualNet::Request));
    assert!(
        !ctx.sent.iter().any(|s| s.handler == PUT_RW),
        "no grant before acknowledgments"
    );

    // First ack: still waiting.
    p.on_message(&mut ctx, msg(1, VirtualNet::Response, ACK, Payload::args(&[addr.raw()])));
    assert!(!ctx.sent.iter().any(|s| s.handler == PUT_RW));
    // Final ack sends the data (paper §3).
    p.on_message(&mut ctx, msg(2, VirtualNet::Response, ACK, Payload::args(&[addr.raw()])));
    let grant = ctx.sent.iter().find(|s| s.handler == PUT_RW).expect("grant");
    assert_eq!(grant.dst, NodeId::new(3));
    assert_eq!(ctx.read_tag(addr), Tag::Invalid);
}

#[test]
fn upgrade_by_the_only_sharer_skips_the_invalidation_round() {
    let (mut p, mut ctx) = home();
    let addr = VPN.base().offset(32);
    p.on_message(&mut ctx, get(2, GET_RO, addr));
    ctx.clear_effects();
    p.on_message(&mut ctx, get(2, GET_RW, addr));
    assert!(!ctx.sent.iter().any(|s| s.handler == INV));
    assert_eq!(ctx.last_sent().unwrap().handler, PUT_RW);
}

#[test]
fn requests_queue_behind_a_busy_block_and_drain_in_order() {
    let (mut p, mut ctx) = home();
    let addr = VPN.base().offset(256);
    p.on_message(&mut ctx, get(1, GET_RO, addr));
    p.on_message(&mut ctx, get(2, GET_RW, addr)); // starts invalidation of 1
    ctx.clear_effects();
    // While invalidating, two more requests arrive and must defer.
    p.on_message(&mut ctx, get(3, GET_RO, addr));
    p.on_message(&mut ctx, get(1, GET_RO, addr));
    assert!(ctx.sent.is_empty(), "deferred requests produce no messages");

    // The ack completes the write grant, then the queue drains: node 3's
    // read recalls the new owner (node 2).
    p.on_message(&mut ctx, msg(1, VirtualNet::Response, ACK, Payload::args(&[addr.raw()])));
    let handlers: Vec<_> = ctx.sent.iter().map(|s| (s.dst.raw(), s.handler)).collect();
    assert_eq!(handlers[0], (2, PUT_RW), "grant to the writer first");
    assert_eq!(handlers[1].1, tt_stache::stache::RECALL_RO, "then recall for the queued read");
    assert_eq!(handlers[1].0, 2);
}

#[test]
fn recall_data_completes_a_read_and_shares_both_nodes() {
    let (mut p, mut ctx) = home();
    let addr = VPN.base().offset(512);
    p.on_message(&mut ctx, get(2, GET_RW, addr));
    ctx.clear_effects();
    // Node 3 reads: home recalls node 2.
    p.on_message(&mut ctx, get(3, GET_RO, addr));
    assert_eq!(ctx.last_sent().unwrap().handler, tt_stache::stache::RECALL_RO);
    ctx.clear_effects();
    // Owner returns the (modified) data.
    let mut block = [0u8; BLOCK_BYTES];
    block[0..8].copy_from_slice(&77u64.to_le_bytes());
    p.on_message(
        &mut ctx,
        Message {
            src: NodeId::new(2),
            vn: VirtualNet::Response,
            handler: RECALL_DATA,
            payload: Payload::with_block(&[addr.raw()], block),
        },
    );
    // Home memory updated, tag readable again, grant sent to node 3.
    assert_eq!(ctx.force_read_word(addr), 77);
    assert_eq!(ctx.read_tag(addr), Tag::ReadOnly);
    let grant = ctx.sent.iter().find(|s| s.handler == PUT_RO).expect("grant");
    assert_eq!(grant.dst, NodeId::new(3));
}

#[test]
fn writeback_restores_home_ownership() {
    let (mut p, mut ctx) = home();
    let addr = VPN.base().offset(96);
    p.on_message(&mut ctx, get(2, GET_RW, addr));
    ctx.clear_effects();
    let mut block = [0u8; BLOCK_BYTES];
    block[8..16].copy_from_slice(&1234u64.to_le_bytes());
    p.on_message(
        &mut ctx,
        Message {
            src: NodeId::new(2),
            vn: VirtualNet::Request,
            handler: WRITEBACK,
            payload: Payload::with_block(&[addr.raw()], block),
        },
    );
    assert_eq!(ctx.read_tag(addr), Tag::ReadWrite, "home owns the block again");
    assert_eq!(ctx.force_read_word(addr.offset(8)), 1234);
    assert!(ctx.sent.is_empty(), "writebacks need no reply");
}

#[test]
fn remote_block_fault_marks_busy_and_requests() {
    // A non-home node faults on its (already created) stache page.
    let cfg = SystemConfig::test_config(4);
    let mut p = StacheProtocol::new(NodeId::new(2), &layout(), &cfg);
    let mut ctx = checked_ctx(2);
    p.init(&mut ctx); // not home: installs nothing
    // Simulate the page fault first (creates the stache page).
    let thread = ThreadId(NodeId::new(2));
    let addr = VPN.base().offset(192);
    p.on_page_fault(
        &mut ctx,
        PageFault {
            thread,
            addr,
            kind: AccessKind::Load,
        },
    );
    assert_eq!(ctx.resumed, vec![thread], "page fault handler restarts the access");
    assert_eq!(ctx.read_tag(addr), Tag::Invalid, "fresh stache page faults per block");
    ctx.clear_effects();

    // The restarted access block-faults; the handler asks the home.
    let meta = ctx.page_meta(VPN).unwrap();
    assert_eq!(meta.user[0], HOME as u64, "home id cached in page metadata");
    p.on_block_fault(
        &mut ctx,
        BlockFault {
            thread,
            addr,
            kind: AccessKind::Store,
            tag: Tag::Invalid,
            meta,
        },
    );
    assert_eq!(ctx.read_tag(addr), Tag::Busy, "request outstanding");
    let sent = ctx.last_sent().unwrap();
    assert_eq!(sent.handler, GET_RW, "a store asks for an exclusive copy");
    assert_eq!(sent.dst, NodeId::new(HOME));
    assert!(ctx.resumed.is_empty(), "thread stays suspended until the reply");
}

#[test]
fn put_installs_data_upgrades_tag_and_resumes() {
    let cfg = SystemConfig::test_config(4);
    let mut p = StacheProtocol::new(NodeId::new(2), &layout(), &cfg);
    let mut ctx = checked_ctx(2);
    let thread = ThreadId(NodeId::new(2));
    let addr = VPN.base();
    p.on_page_fault(&mut ctx, PageFault { thread, addr, kind: AccessKind::Load });
    let meta = ctx.page_meta(VPN).unwrap();
    p.on_block_fault(
        &mut ctx,
        BlockFault { thread, addr, kind: AccessKind::Load, tag: Tag::Invalid, meta },
    );
    ctx.clear_effects();

    let mut block = [0u8; BLOCK_BYTES];
    block[0..8].copy_from_slice(&555u64.to_le_bytes());
    p.on_message(
        &mut ctx,
        Message {
            src: NodeId::new(HOME),
            vn: VirtualNet::Response,
            handler: PUT_RO,
            payload: Payload::with_block(&[addr.raw()], block),
        },
    );
    assert_eq!(ctx.force_read_word(addr), 555, "data installed");
    assert_eq!(ctx.read_tag(addr), Tag::ReadOnly);
    assert_eq!(ctx.resumed, vec![thread]);
}

#[test]
fn inv_at_sharer_invalidates_and_acks_even_if_unmapped() {
    let cfg = SystemConfig::test_config(4);
    let mut p = StacheProtocol::new(NodeId::new(3), &layout(), &cfg);
    let mut ctx = checked_ctx(3);
    // No page mapped at all (it was replaced): the handler must still ack.
    let addr = VPN.base().offset(32);
    p.on_message(&mut ctx, get(HOME, INV, addr));
    let sent = ctx.last_sent().unwrap();
    assert_eq!(sent.handler, ACK);
    assert_eq!(sent.dst, NodeId::new(HOME));
    assert_eq!(sent.vn, VirtualNet::Response);
}

#[test]
fn owner_recall_returns_data_and_invalidates_its_copy() {
    let cfg = SystemConfig::test_config(4);
    let mut p = StacheProtocol::new(NodeId::new(2), &layout(), &cfg);
    let mut ctx = checked_ctx(2);
    let thread = ThreadId(NodeId::new(2));
    let addr = VPN.base().offset(64);
    p.on_page_fault(&mut ctx, PageFault { thread, addr, kind: AccessKind::Store });
    let meta = ctx.page_meta(VPN).unwrap();
    p.on_block_fault(
        &mut ctx,
        BlockFault { thread, addr, kind: AccessKind::Store, tag: Tag::Invalid, meta },
    );
    let mut block = [0u8; BLOCK_BYTES];
    block[0..8].copy_from_slice(&9u64.to_le_bytes());
    p.on_message(
        &mut ctx,
        Message {
            src: NodeId::new(HOME),
            vn: VirtualNet::Response,
            handler: PUT_RW,
            payload: Payload::with_block(&[addr.raw()], block),
        },
    );
    ctx.clear_effects();

    p.on_message(&mut ctx, get(HOME, RECALL_RW, addr));
    assert_eq!(ctx.read_tag(addr), Tag::Invalid, "exclusive copy given up");
    let sent = ctx.last_sent().unwrap();
    assert_eq!(sent.handler, RECALL_DATA);
    assert_eq!(&sent.payload.block()[0..8], &9u64.to_le_bytes());
}

#[test]
fn page_replacement_writes_back_only_modified_blocks() {
    let mut cfg = SystemConfig::test_config(4);
    cfg.stache_capacity_bytes = PAGE_BYTES; // budget: one stache page
    // Two remote pages homed on node 0.
    let mut l = Layout::new();
    l.add(Region {
        base: VPN.base(),
        bytes: 2 * PAGE_BYTES,
        placement: Placement::PerPage(vec![NodeId::new(HOME); 2]),
        mode: 0,
    });
    let mut p = StacheProtocol::new(NodeId::new(2), &l, &cfg);
    let mut ctx = checked_ctx(2);
    let thread = ThreadId(NodeId::new(2));

    // Fault in page 0 and make one block writable (as if granted).
    p.on_page_fault(&mut ctx, PageFault { thread, addr: VPN.base(), kind: AccessKind::Store });
    ctx.set_tag(VPN.base(), Tag::ReadWrite);
    ctx.force_write_word(VPN.base(), 42);
    ctx.set_tag(VPN.base().offset(32), Tag::ReadOnly); // clean copy
    ctx.clear_effects();

    // Faulting in page 1 exceeds the budget: page 0 is replaced.
    let vpn1 = Vpn(VPN.0 + 1);
    p.on_page_fault(&mut ctx, PageFault { thread, addr: vpn1.base(), kind: AccessKind::Load });
    let wbs: Vec<_> = ctx.sent.iter().filter(|s| s.handler == WRITEBACK).collect();
    assert_eq!(wbs.len(), 1, "only the ReadWrite block is written back");
    assert_eq!(wbs[0].payload.words()[0], VPN.base().raw());
    assert_eq!(&wbs[0].payload.block()[0..8], &42u64.to_le_bytes());
    assert!(ctx.translate(VPN).is_none(), "victim page unmapped");
    assert!(ctx.translate(vpn1).is_some(), "new stache page mapped");
}
