//! End-to-end tests of the custom EM3D delayed-update protocol on
//! Typhoon: copies go stale within a phase, flushes push only modified
//! values, the fuzzy barrier counts updates, and — the whole point — the
//! steady state needs no request/response/invalidate/ack round trips.

use tt_base::addr::{PAGE_BYTES, VAddr};
use tt_base::workload::{Layout, Op, Placement, Region, ScriptWorkload, SHARED_SEGMENT_BASE};
use tt_base::{NodeId, SystemConfig};
use tt_stache::custom::{EM3D_E_MODE, EM3D_H_MODE, FLUSH_OP};
use tt_stache::Em3dUpdateProtocol;
use tt_typhoon::TyphoonMachine;

const E_BASE: u64 = SHARED_SEGMENT_BASE;
const H_BASE: u64 = SHARED_SEGMENT_BASE + 0x10_0000;

/// E values homed on node 0 (mode E), H values homed on node 1 (mode H).
fn em3d_layout() -> Layout {
    let mut l = Layout::new();
    l.add(Region {
        base: VAddr::new(E_BASE),
        bytes: PAGE_BYTES,
        placement: Placement::PerPage(vec![NodeId::new(0)]),
        mode: EM3D_E_MODE,
    });
    l.add(Region {
        base: VAddr::new(H_BASE),
        bytes: PAGE_BYTES,
        placement: Placement::PerPage(vec![NodeId::new(1)]),
        mode: EM3D_H_MODE,
    });
    l
}

fn flush(mode: u8) -> Op {
    Op::UserCall {
        op: FLUSH_OP,
        arg: mode as u64,
    }
}

fn run(w: ScriptWorkload, nodes: usize) -> tt_typhoon::RunResult {
    let mut m = TyphoonMachine::new(
        SystemConfig::test_config(nodes),
        Box::new(w),
        &|id, layout, cfg| Box::new(Em3dUpdateProtocol::new(id, layout, cfg)),
    );
    m.run()
}

#[test]
fn delayed_updates_propagate_without_refetch() {
    let mut w = ScriptWorkload::new(2).with_layout(em3d_layout());
    let e0 = VAddr::new(E_BASE);
    let h0 = VAddr::new(H_BASE);

    // Node 0 owns E; node 1 owns H. Two iterations of the EM3D pattern.
    w.set(
        0,
        vec![
            // init: write own e value.
            Op::Write { addr: e0, value: 1 },
            Op::Barrier,
            // iter 1, compute E: read h (first touch -> CGET), write e.
            Op::Read { addr: h0, expect: Some(100) },
            Op::Write { addr: e0, value: 101 },
            flush(EM3D_E_MODE),
            Op::Barrier, // warmup barrier after first E phase
            // iter 1 compute H happens on node 1.
            flush(EM3D_H_MODE),
            Op::Barrier, // warmup barrier after first H phase
            // iter 2, compute E: h was refreshed by the update push.
            Op::Read { addr: h0, expect: Some(201) },
            Op::Write { addr: e0, value: 202 },
            flush(EM3D_E_MODE),
            flush(EM3D_H_MODE),
            Op::Barrier,
            // Final value of h after node 1's second H phase.
            Op::Read { addr: h0, expect: Some(302) },
        ],
    );
    w.set(
        1,
        vec![
            // init: write own h value.
            Op::Write { addr: h0, value: 100 },
            Op::Barrier,
            // iter 1: node 0 computes E.
            flush(EM3D_E_MODE),
            Op::Barrier,
            // iter 1, compute H: read e (first touch -> CGET), write h.
            Op::Read { addr: e0, expect: Some(101) },
            Op::Write { addr: h0, value: 201 },
            flush(EM3D_H_MODE),
            Op::Barrier,
            // iter 2: node 0 computes E (pushes e update here).
            flush(EM3D_E_MODE),
            // iter 2, compute H: e refreshed by update, local hit.
            Op::Read { addr: e0, expect: Some(202) },
            Op::Write { addr: h0, value: 302 },
            flush(EM3D_H_MODE),
            Op::Barrier,
        ],
    );

    let r = run(w, 2);
    // Exactly one CGET per direction, ever: iteration 2 reads are local.
    assert_eq!(r.report.get("em3d.cgets"), Some(2.0));
    assert_eq!(r.report.get("em3d.cputs"), Some(2.0));
    // Updates flowed: e updates in iter-2 E flush; h updates in both
    // H flushes after the copy existed.
    assert!(r.report.get("em3d.updates_sent").unwrap() >= 3.0);
    assert_eq!(
        r.report.get("em3d.updates_sent"),
        r.report.get("em3d.updates_received")
    );
    // The custom protocol never invalidates and never acknowledges.
    assert_eq!(r.report.get("stache.invals_sent"), Some(0.0));
    assert_eq!(r.report.get("stache.recalls_sent"), Some(0.0));
    // Home writes never fault (tags stay ReadWrite at the home).
    assert_eq!(r.report.get("stache.home_faults"), Some(0.0));
}

#[test]
fn fuzzy_barrier_blocks_until_updates_arrive() {
    // Node 1 stachs node 0's e block, then both flush E. Node 0 computes
    // a long time before flushing, so node 1's flush must actually wait.
    let mut w = ScriptWorkload::new(2).with_layout(em3d_layout());
    let e0 = VAddr::new(E_BASE);
    w.set(
        0,
        vec![
            Op::Write { addr: e0, value: 7 },
            Op::Barrier,
            Op::Barrier,
            Op::Compute(20_000),
            Op::Write { addr: e0, value: 8 },
            flush(EM3D_E_MODE),
        ],
    );
    w.set(
        1,
        vec![
            Op::Barrier,
            Op::Read { addr: e0, expect: Some(7) },
            Op::Barrier,
            flush(EM3D_E_MODE),
            // The wait guarantees the update has been applied.
            Op::Read { addr: e0, expect: Some(8) },
        ],
    );
    let r = run(w, 2);
    assert!(
        r.report.get("cpu.call_stall_cycles").unwrap() > 15_000.0,
        "flush did not wait: {:?}",
        r.report.get("cpu.call_stall_cycles")
    );
    assert_eq!(r.report.get("em3d.updates_sent"), Some(1.0));
    // Node 0's flush found no pending wait (it stached nothing).
    assert!(r.report.get("em3d.instant_flushes").unwrap() >= 1.0);
}

#[test]
fn ordinary_pages_still_use_default_stache() {
    // A mode-0 region handled by the embedded Stache inside the custom
    // protocol: invalidation semantics still apply there.
    let mut layout = em3d_layout();
    let plain = SHARED_SEGMENT_BASE + 0x20_0000;
    layout.add(Region {
        base: VAddr::new(plain),
        bytes: PAGE_BYTES,
        placement: Placement::PerPage(vec![NodeId::new(0)]),
        mode: 0,
    });
    let mut w = ScriptWorkload::new(2).with_layout(layout);
    let p = VAddr::new(plain);
    w.set(
        0,
        vec![
            Op::Write { addr: p, value: 5 },
            Op::Barrier,
            Op::Barrier,
            Op::Write { addr: p, value: 6 },
            Op::Barrier,
        ],
    );
    w.set(
        1,
        vec![
            Op::Barrier,
            Op::Read { addr: p, expect: Some(5) },
            Op::Barrier,
            Op::Barrier,
            Op::Read { addr: p, expect: Some(6) },
        ],
    );
    let r = run(w, 2);
    assert_eq!(r.report.get("stache.invals_sent"), Some(1.0));
    assert_eq!(r.report.get("stache.ro_requests"), Some(2.0));
    assert_eq!(r.report.get("em3d.cgets"), Some(0.0));
}
