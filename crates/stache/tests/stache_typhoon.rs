//! End-to-end tests of Stache running on the Typhoon machine: the full
//! paper stack — CPU bus model, NP dispatch, user-level handlers,
//! software directory, and real data moving in messages.

use tt_base::addr::{PAGE_BYTES, VAddr};
use tt_base::workload::{Layout, Op, Placement, Region, ScriptWorkload, SHARED_SEGMENT_BASE};
use tt_base::{NodeId, SystemConfig};
use tt_stache::StacheProtocol;
use tt_typhoon::TyphoonMachine;

fn layout_pages(pages: usize, placement: Placement) -> Layout {
    let mut l = Layout::new();
    l.add(Region {
        base: VAddr::new(SHARED_SEGMENT_BASE),
        bytes: pages * PAGE_BYTES,
        placement,
        mode: 0,
    });
    l
}

fn va(off: u64) -> VAddr {
    VAddr::new(SHARED_SEGMENT_BASE + off)
}

fn run_stache(cfg: SystemConfig, w: ScriptWorkload) -> tt_typhoon::RunResult {
    let mut m = TyphoonMachine::new(cfg, Box::new(w), &|id, layout, cfg| {
        Box::new(StacheProtocol::new(id, layout, cfg))
    });
    m.run()
}

#[test]
fn producer_consumer_through_stache() {
    // Node 0 is home (page 0 placed on node 0). Node 1 reads what node 0
    // wrote: remote page fault -> block fault -> GET_RO -> PUT_RO.
    let layout = layout_pages(1, Placement::PerPage(vec![NodeId::new(0)]));
    let mut w = ScriptWorkload::new(2).with_layout(layout);
    w.set(
        0,
        vec![
            Op::Write { addr: va(0), value: 111 },
            Op::Write { addr: va(8), value: 222 },
            Op::Barrier,
        ],
    );
    w.set(
        1,
        vec![
            Op::Barrier,
            Op::Read { addr: va(0), expect: Some(111) },
            Op::Read { addr: va(8), expect: Some(222) },
            // Same block: must now hit locally.
            Op::Read { addr: va(16), expect: Some(0) },
        ],
    );
    let r = run_stache(SystemConfig::test_config(2), w);
    assert_eq!(r.report.get("stache.page_faults"), Some(1.0));
    assert_eq!(r.report.get("stache.ro_requests"), Some(1.0));
    assert_eq!(r.report.get("stache.block_faults"), Some(1.0));
}

#[test]
fn write_invalidates_remote_readers() {
    // Node 1 and node 2 read a block homed on node 0; then node 0 writes
    // it (home fault -> invalidation round); then they read it again and
    // must see the new value (re-fetch).
    let layout = layout_pages(1, Placement::PerPage(vec![NodeId::new(0)]));
    let mut w = ScriptWorkload::new(3).with_layout(layout);
    w.set(
        0,
        vec![
            Op::Write { addr: va(0), value: 1 },
            Op::Barrier,
            Op::Barrier, // readers fetch between these barriers
            Op::Write { addr: va(0), value: 2 },
            Op::Barrier,
        ],
    );
    for n in 1..3 {
        w.set(
            n,
            vec![
                Op::Barrier,
                Op::Read { addr: va(0), expect: Some(1) },
                Op::Barrier,
                Op::Barrier,
                Op::Read { addr: va(0), expect: Some(2) },
            ],
        );
    }
    let r = run_stache(SystemConfig::test_config(3), w);
    // Home write to a 2-sharer block: 2 invalidations.
    assert_eq!(r.report.get("stache.invals_sent"), Some(2.0));
    assert_eq!(r.report.get("stache.home_faults"), Some(1.0));
    // Each reader re-fetched once.
    assert_eq!(r.report.get("stache.ro_requests"), Some(4.0));
}

#[test]
fn remote_writer_gets_exclusive_and_home_recalls() {
    // Node 1 writes a block homed on node 0 (GET_RW; home tag -> Invalid).
    // Then node 0 reads it back: home fault -> recall from node 1.
    let layout = layout_pages(1, Placement::PerPage(vec![NodeId::new(0)]));
    let mut w = ScriptWorkload::new(2).with_layout(layout);
    w.set(
        0,
        vec![
            Op::Barrier,
            Op::Read { addr: va(64), expect: Some(77) },
        ],
    );
    w.set(
        1,
        vec![
            Op::Write { addr: va(64), value: 77 },
            Op::Barrier,
        ],
    );
    let r = run_stache(SystemConfig::test_config(2), w);
    assert_eq!(r.report.get("stache.rw_requests"), Some(1.0));
    assert_eq!(r.report.get("stache.recalls_sent"), Some(1.0));
}

#[test]
fn ownership_migrates_between_writers() {
    // Two remote nodes alternately increment a counter homed on node 0.
    // Exercises Exclusive -> recall -> Exclusive migration.
    let layout = layout_pages(1, Placement::PerPage(vec![NodeId::new(0)]));
    let mut w = ScriptWorkload::new(3).with_layout(layout);
    w.set(0, vec![Op::Barrier; 4]);
    w.set(
        1,
        vec![
            Op::Write { addr: va(0), value: 10 },
            Op::Barrier,
            Op::Barrier,
            Op::Read { addr: va(0), expect: Some(20) },
            Op::Write { addr: va(0), value: 30 },
            Op::Barrier,
            Op::Barrier,
        ],
    );
    w.set(
        2,
        vec![
            Op::Barrier,
            Op::Read { addr: va(0), expect: Some(10) },
            Op::Write { addr: va(0), value: 20 },
            Op::Barrier,
            Op::Barrier,
            Op::Read { addr: va(0), expect: Some(30) },
            Op::Barrier,
        ],
    );
    let r = run_stache(SystemConfig::test_config(3), w);
    assert!(r.report.get("stache.recalls_sent").unwrap() >= 3.0);
}

#[test]
fn many_sharers_overflow_the_pointer_directory() {
    // Ten nodes read the same home block: the sharer set must overflow
    // six pointers into the bit vector, and a subsequent write must
    // invalidate all ten.
    let nodes = 11;
    let layout = layout_pages(1, Placement::PerPage(vec![NodeId::new(0)]));
    let mut w = ScriptWorkload::new(nodes).with_layout(layout);
    w.set(
        0,
        vec![
            Op::Write { addr: va(0), value: 5 },
            Op::Barrier,
            Op::Barrier,
            Op::Write { addr: va(0), value: 6 },
            Op::Barrier,
        ],
    );
    for n in 1..nodes {
        w.set(
            n,
            vec![
                Op::Barrier,
                Op::Read { addr: va(0), expect: Some(5) },
                Op::Barrier,
                Op::Barrier,
                Op::Read { addr: va(0), expect: Some(6) },
            ],
        );
    }
    let r = run_stache(SystemConfig::test_config(nodes), w);
    // Two overflows: the initial 10-sharer round, then again after the
    // invalidation clears the set and all ten readers re-fetch.
    assert_eq!(r.report.get("stache.sharer_overflows"), Some(2.0));
    assert_eq!(r.report.get("stache.invals_sent"), Some(10.0));
}

#[test]
fn page_replacement_writes_back_dirty_blocks() {
    // Node 1 has a stache budget of 2 pages but touches 4 remote pages,
    // writing one block on each: FIFO replacement must write data back,
    // and a later re-read must still see the values.
    let layout = layout_pages(4, Placement::PerPage(vec![NodeId::new(0); 4]));
    let mut w = ScriptWorkload::new(2).with_layout(layout);
    w.set(0, vec![Op::Barrier]);
    let mut ops = Vec::new();
    for p in 0..4u64 {
        ops.push(Op::Write { addr: va(p * PAGE_BYTES as u64), value: 100 + p });
    }
    // Re-read them: pages 0 and 1 were replaced, so these re-fault and
    // must fetch the written-back data from the home.
    for p in 0..4u64 {
        ops.push(Op::Read { addr: va(p * PAGE_BYTES as u64), expect: Some(100 + p) });
    }
    ops.push(Op::Barrier);
    w.set(1, ops);

    let mut cfg = SystemConfig::test_config(2);
    cfg.stache_capacity_bytes = 2 * PAGE_BYTES;
    let r = run_stache(cfg, w);
    assert!(r.report.get("stache.replacements").unwrap() >= 2.0);
    assert!(r.report.get("stache.writebacks_sent").unwrap() >= 2.0);
}

#[test]
fn cyclic_placement_spreads_homes() {
    // With cyclic placement over 4 nodes, each node writing its own page
    // never faults (it is home); writing the next page always does.
    let layout = layout_pages(4, Placement::Cyclic);
    let mut w = ScriptWorkload::new(4).with_layout(layout);
    for n in 0..4u64 {
        w.set(
            n as usize,
            vec![
                Op::Write { addr: va(n * PAGE_BYTES as u64), value: n },
                Op::Barrier,
                Op::Read {
                    addr: va(((n + 1) % 4) * PAGE_BYTES as u64),
                    expect: Some((n + 1) % 4),
                },
            ],
        );
    }
    let r = run_stache(SystemConfig::test_config(4), w);
    // 4 remote reads -> 4 page faults + 4 RO requests; 0 RW requests
    // (each writer is home for its own page).
    assert_eq!(r.report.get("stache.page_faults"), Some(4.0));
    assert_eq!(r.report.get("stache.ro_requests"), Some(4.0));
    assert_eq!(r.report.get("stache.rw_requests"), Some(0.0));
}

#[test]
fn false_sharing_ping_pong_is_coherent() {
    // Two nodes write different words of the SAME block homed on a third:
    // pure ownership ping-pong with recalls; final values must be intact.
    let layout = layout_pages(1, Placement::PerPage(vec![NodeId::new(0)]));
    let mut w = ScriptWorkload::new(3).with_layout(layout);
    // Node 0 participates in every round barrier (5 total), then reads.
    let mut ops0 = vec![Op::Barrier; 5];
    ops0.push(Op::Read { addr: va(0), expect: Some(4) });
    ops0.push(Op::Read { addr: va(8), expect: Some(4) });
    w.set(0, ops0);
    // Interleave via barriers: node 1 writes word 0, node 2 writes word 1,
    // alternating increments up to 4.
    let mut ops1 = Vec::new();
    let mut ops2 = Vec::new();
    for round in 0..4u64 {
        if round % 2 == 0 {
            ops1.push(Op::Write { addr: va(0), value: round + 1 });
            ops2.push(Op::Compute(1));
        } else {
            ops2.push(Op::Write { addr: va(8), value: round + 1 });
            ops1.push(Op::Compute(1));
        }
        ops1.push(Op::Barrier);
        ops2.push(Op::Barrier);
    }
    // Final fix-up so both words end at 4.
    ops1.push(Op::Write { addr: va(0), value: 4 });
    ops2.push(Op::Write { addr: va(8), value: 4 });
    ops1.push(Op::Barrier);
    ops2.push(Op::Barrier);
    w.set(1, ops1);
    w.set(2, ops2);
    let r = run_stache(SystemConfig::test_config(3), w);
    assert!(r.report.get("stache.recalls_sent").unwrap() >= 4.0);
}

#[test]
fn stache_run_is_deterministic() {
    let build = || {
        let layout = layout_pages(2, Placement::Cyclic);
        let mut w = ScriptWorkload::new(2).with_layout(layout);
        for n in 0..2u64 {
            let mut ops = Vec::new();
            for i in 0..50 {
                ops.push(Op::Write {
                    addr: va(n * PAGE_BYTES as u64 + i * 8),
                    value: i,
                });
            }
            ops.push(Op::Barrier);
            for i in 0..50 {
                ops.push(Op::Read {
                    addr: va((1 - n) * PAGE_BYTES as u64 + i * 8),
                    expect: Some(i),
                });
            }
            w.set(n as usize, ops);
        }
        run_stache(SystemConfig::test_config(2), w).cycles
    };
    assert_eq!(build(), build());
}

#[test]
fn remote_miss_latency_is_in_the_expected_band() {
    // A single remote read round trip should land within a plausible
    // Table-2 composition: well above a local miss, well below 1000.
    let layout = layout_pages(1, Placement::PerPage(vec![NodeId::new(0)]));
    let mut w = ScriptWorkload::new(2).with_layout(layout);
    w.set(0, vec![Op::Barrier]);
    w.set(
        1,
        vec![
            Op::Barrier,
            Op::Read { addr: va(0), expect: Some(0) },
        ],
    );
    let r = run_stache(SystemConfig::test_config(2), w);
    let stall = r.report.get("cpu.fault_stall_cycles").unwrap();
    // Page fault + block fault + full protocol round trip.
    assert!(stall > 100.0, "stall {stall} suspiciously small");
    assert!(stall < 1200.0, "stall {stall} suspiciously large");
}
