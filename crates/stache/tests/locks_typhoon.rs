//! End-to-end tests of the Tempest lock layer: mutual exclusion is
//! *observed*, not assumed — every critical section writes a private
//! token into a shared word and reads it back; any interleaving of two
//! critical sections makes the verified read fail.

use tt_base::addr::PAGE_BYTES;
use tt_base::workload::{Layout, Op, Placement, Region, ScriptWorkload, SHARED_SEGMENT_BASE};
use tt_base::{NodeId, SystemConfig, VAddr};
use tt_stache::sync::{ACQUIRE_OP, RELEASE_OP};
use tt_stache::{LockLayer, StacheProtocol};
use tt_typhoon::TyphoonMachine;

fn acquire(lock: u64) -> Op {
    Op::UserCall {
        op: ACQUIRE_OP,
        arg: lock,
    }
}

fn release(lock: u64) -> Op {
    Op::UserCall {
        op: RELEASE_OP,
        arg: lock,
    }
}

fn layout_one_page(home: u16) -> Layout {
    let mut l = Layout::new();
    l.add(Region {
        base: VAddr::new(SHARED_SEGMENT_BASE),
        bytes: PAGE_BYTES,
        placement: Placement::PerPage(vec![NodeId::new(home)]),
        mode: 0,
    });
    l
}

fn run(w: ScriptWorkload, nodes: usize) -> tt_typhoon::RunResult {
    let mut m = TyphoonMachine::new(
        SystemConfig::test_config(nodes),
        Box::new(w),
        &|id, layout, cfg| {
            Box::new(LockLayer::new(
                StacheProtocol::new(id, layout, cfg),
                cfg.nodes,
            ))
        },
    );
    m.run()
}

/// Each node's critical section: take the lock, scribble a token into a
/// shared word, compute a while, read the token back (verified!), and
/// release. Without mutual exclusion another node's token would appear.
#[test]
fn critical_sections_are_mutually_exclusive() {
    let nodes = 6;
    let rounds = 5;
    let word = VAddr::new(SHARED_SEGMENT_BASE + 64);
    let mut w = ScriptWorkload::new(nodes).with_layout(layout_one_page(0));
    for n in 0..nodes {
        let mut ops = Vec::new();
        for round in 0..rounds {
            let token = ((round as u64) << 16) | (n as u64 + 1);
            ops.push(acquire(7));
            ops.push(Op::Read { addr: word, expect: None });
            ops.push(Op::Write { addr: word, value: token });
            ops.push(Op::Compute(50 + (n as u32 * 13) % 97));
            ops.push(Op::Read { addr: word, expect: Some(token) });
            ops.push(release(7));
            ops.push(Op::Compute(20));
        }
        w.set(n, ops);
    }
    let r = run(w, nodes);
    assert_eq!(
        r.report.get("lock.acquires"),
        Some((nodes * rounds) as f64)
    );
    assert_eq!(
        r.report.get("lock.releases"),
        Some((nodes * rounds) as f64)
    );
    assert_eq!(r.report.get("lock.grants"), Some((nodes * rounds) as f64));
    assert!(r.report.get("lock.contended").unwrap() > 0.0, "no contention observed");
}

#[test]
fn uncontended_lock_is_cheap() {
    // A single node acquiring its own home lock (lock 0 homed on node 0):
    // two self-messages and three handlers.
    let mut w = ScriptWorkload::new(1).with_layout(layout_one_page(0));
    w.set(0, vec![acquire(0), Op::Compute(5), release(0)]);
    let r = run(w, 1);
    assert!(
        r.cycles.raw() < 200,
        "uncontended local lock took {} cycles",
        r.cycles
    );
    assert_eq!(r.report.get("lock.contended"), Some(0.0));
}

#[test]
fn independent_locks_do_not_serialize() {
    // Two pairs of nodes contend on two different locks; a third lock id
    // maps to another home. Total time should be near one pair's time,
    // not the sum (locks are independent).
    let nodes = 4;
    let mut w = ScriptWorkload::new(nodes).with_layout(layout_one_page(0));
    for n in 0..nodes {
        let lock = (n % 2) as u64; // nodes {0,2} share lock 0, {1,3} lock 1
        let mut ops = Vec::new();
        for _ in 0..10 {
            ops.push(acquire(lock));
            ops.push(Op::Compute(100));
            ops.push(release(lock));
        }
        w.set(n, ops);
    }
    let r = run(w, nodes);
    // 10 rounds x 100 cycles x 2 holders per lock plus overhead; if the
    // two locks serialized against each other it would be ~4000+.
    assert!(
        r.cycles.raw() < 3500,
        "independent locks appear serialized: {} cycles",
        r.cycles
    );
}

#[test]
fn locks_compose_with_shared_memory_protocol() {
    // The lock layer must not disturb Stache: protected and unprotected
    // shared accesses in the same run, with full value verification.
    let nodes = 3;
    let word = VAddr::new(SHARED_SEGMENT_BASE);
    let unshared = VAddr::new(SHARED_SEGMENT_BASE + 512);
    let mut w = ScriptWorkload::new(nodes).with_layout(layout_one_page(1));
    for n in 0..nodes {
        let token = n as u64 + 100;
        w.set(
            n,
            vec![
                acquire(3),
                Op::Write { addr: word, value: token },
                Op::Read { addr: word, expect: Some(token) },
                release(3),
                Op::Barrier,
                // Ordinary Stache traffic after the lock phase.
                Op::Read { addr: unshared, expect: Some(0) },
            ],
        );
    }
    let r = run(w, nodes);
    assert_eq!(r.report.get("lock.acquires"), Some(3.0));
    assert!(r.report.get("stache.block_faults").unwrap() > 0.0);
}

#[test]
fn fifo_grant_order() {
    // Node 0 holds the lock a long time while 1 and 2 queue in a known
    // order (their requests are issued at staggered times); the token
    // sequence observed in the shared word must be 0, then 1, then 2.
    let nodes = 3;
    let word = VAddr::new(SHARED_SEGMENT_BASE + 128);
    let mut w = ScriptWorkload::new(nodes).with_layout(layout_one_page(0));
    // Node 0 takes the lock immediately and holds ~2000 cycles.
    w.set(
        0,
        vec![
            acquire(5),
            Op::Write { addr: word, value: 10 },
            Op::Compute(2000),
            Op::Read { addr: word, expect: Some(10) },
            release(5),
        ],
    );
    // Node 1 requests at ~200, node 2 at ~900: both while 0 holds it.
    w.set(
        1,
        vec![
            Op::Compute(200),
            acquire(5),
            // Must see node 0's token (we ran after 0, before 2).
            Op::Read { addr: word, expect: Some(10) },
            Op::Write { addr: word, value: 11 },
            release(5),
        ],
    );
    w.set(
        2,
        vec![
            Op::Compute(900),
            acquire(5),
            Op::Read { addr: word, expect: Some(11) },
            Op::Write { addr: word, value: 12 },
            release(5),
        ],
    );
    let r = run(w, nodes);
    assert_eq!(r.report.get("lock.contended"), Some(2.0));
}
