//! The custom EM3D delayed-update protocol (paper Section 4).
//!
//! EM3D's bipartite graph is static: after the first iteration, the set
//! of remote graph nodes each processor reads never changes. Transparent
//! shared memory therefore wastes four messages per remote value per
//! iteration (request, response, invalidate, acknowledge). This protocol
//! gets communication to near-minimum:
//!
//! - Graph-node value pages are allocated on *custom* pages (region modes
//!   [`EM3D_E_MODE`] / [`EM3D_H_MODE`]). Remote reads stach them as
//!   usual, but the home keeps the block **ReadWrite for its own CPU**
//!   and records the copy in a per-block *copy list* instead of
//!   downgrading — copies are allowed to go stale *within* a phase.
//! - At the end of a phase the application calls the protocol
//!   ([`FLUSH_OP`]); the home handler walks its copy lists and pushes
//!   only the **modified values** — no invalidations and no
//!   acknowledgments.
//! - Synchronization is a **fuzzy barrier**: every processor knows how
//!   many remote blocks it has stached of each kind and simply waits
//!   until that many updates (tagged with the phase index) have arrived.
//!
//! Ordinary pages (edge weights, neighbor lists) fall through to the
//! embedded default [`StacheProtocol`], exactly as the paper's customized
//! handlers coexist with the Stache library.
//!
//! Because new stachings only happen while the graph's access pattern is
//! being discovered (the first iteration), the application places one
//! hardware barrier after the first iteration of each phase; afterwards
//! the fuzzy barrier alone synchronizes. (The paper makes the same
//! static-graph argument.)


use tt_base::addr::VAddr;
use tt_base::config::SystemConfig;
use tt_base::stats::{Counter, Report};
use tt_base::workload::Layout;
use tt_base::{FxHashMap, NodeId};
use tt_mem::{AccessKind, Tag};
use tt_net::{Payload, VirtualNet};
use tt_tempest::{
    BlockFault, HandlerId, Message, PageFault, Protocol, TempestCtx, ThreadId, UserCall,
};

use crate::stache::StacheProtocol;

/// Region mode of E-node value pages.
pub const EM3D_E_MODE: u8 = 2;
/// Region mode of H-node value pages.
pub const EM3D_H_MODE: u8 = 3;

/// `UserCall::op` for the end-of-phase flush; `arg` is the page mode
/// whose values were just produced ([`EM3D_E_MODE`] or [`EM3D_H_MODE`]).
pub const FLUSH_OP: u32 = 1;

/// Request a copy of a custom block. Args: `[block_addr, mode]`.
pub const CGET: HandlerId = HandlerId(0x30);
/// Grant a copy of a custom block. Args: `[block_addr, mode]` + data.
pub const CPUT: HandlerId = HandlerId(0x31);
/// Push updated values. Args: `[block_addr, mode, phase]` + data.
pub const UPDATE: HandlerId = HandlerId(0x32);

/// Base instruction cost of the home's copy-list bookkeeping per request.
const CGET_INSTR: u64 = 18;
/// Base instruction cost of installing a granted copy.
const CPUT_INSTR: u64 = 16;
/// Base instruction cost per update message sent during a flush.
const UPDATE_SEND_INSTR: u64 = 6;
/// Base instruction cost of applying one received update.
const UPDATE_RECV_INSTR: u64 = 8;

/// Statistics for the custom protocol (on top of the embedded Stache's).
#[derive(Clone, Debug, Default)]
pub struct Em3dStats {
    /// Custom-block requests served at the home.
    pub cgets: Counter,
    /// Copies installed at stachers.
    pub cputs: Counter,
    /// Update messages sent.
    pub updates_sent: Counter,
    /// Update messages received and applied.
    pub updates_received: Counter,
    /// Flush calls serviced.
    pub flushes: Counter,
    /// Cycles... count of flush waits that were already satisfied on entry.
    pub instant_flushes: Counter,
}

/// A stacher's outstanding custom-block fault.
#[derive(Clone, Copy, Debug)]
struct PendingCustom {
    thread: ThreadId,
}

/// The delayed-update protocol is not EM3D-specific: any producer-
/// consumer application whose consumers' read sets are (eventually)
/// static can mark its produced data with the custom page modes and call
/// the flush at phase boundaries — `tt_apps::ocean` uses it for boundary
/// rows. This alias names that general use.
pub type DelayedUpdateProtocol = Em3dUpdateProtocol;

/// The EM3D delayed-update protocol for one node (see module docs).
pub struct Em3dUpdateProtocol {
    node: NodeId,
    /// Default protocol for ordinary pages.
    stache: StacheProtocol,
    /// Home side: per custom block, the nodes holding copies.
    copies: FxHashMap<u64, Vec<NodeId>>,
    /// Home side: blocks with at least one copy, per mode, in first-copy
    /// order (the paper's outstanding-copy list).
    flush_list: FxHashMap<u8, Vec<u64>>,
    /// Stacher side: custom blocks stached, per mode (the expected number
    /// of updates per flush).
    expected: FxHashMap<u8, u64>,
    /// Stacher side: updates received, per (mode, phase).
    received: FxHashMap<(u8, u64), u64>,
    /// Stacher side: how many flushes of each mode this node has passed.
    phase: FxHashMap<u8, u64>,
    /// A thread blocked in a flush wait: `(thread, mode, phase, target)`.
    waiting: Option<(ThreadId, u8, u64, u64)>,
    /// Outstanding custom-block fault.
    pending: Option<PendingCustom>,
    stats: Em3dStats,
}

impl Em3dUpdateProtocol {
    /// Builds the node's protocol instance from the workload layout.
    pub fn new(node: NodeId, layout: &Layout, cfg: &SystemConfig) -> Self {
        Em3dUpdateProtocol {
            node,
            stache: StacheProtocol::new(node, layout, cfg),
            copies: FxHashMap::default(),
            flush_list: FxHashMap::default(),
            expected: FxHashMap::default(),
            received: FxHashMap::default(),
            phase: FxHashMap::default(),
            waiting: None,
            pending: None,
            stats: Em3dStats::default(),
        }
    }

    /// Read-only view of the custom statistics.
    pub fn stats(&self) -> &Em3dStats {
        &self.stats
    }

    fn is_custom_mode(mode: u8) -> bool {
        mode == EM3D_E_MODE || mode == EM3D_H_MODE
    }

    /// Completes the flush wait if its update count has been reached.
    fn check_wait(&mut self, ctx: &mut dyn TempestCtx) {
        let Some((thread, mode, phase, target)) = self.waiting else {
            return;
        };
        let got = *self.received.get(&(mode, phase)).unwrap_or(&0);
        if got >= target {
            assert_eq!(got, target, "more updates than stached blocks");
            self.received.remove(&(mode, phase));
            self.waiting = None;
            ctx.resume(thread);
        }
    }

    fn on_cget(&mut self, ctx: &mut dyn TempestCtx, msg: &Message) {
        let addr = VAddr::new(msg.arg(0));
        let mode = msg.arg(1) as u8;
        self.stats.cgets.inc();
        ctx.charge(CGET_INSTR);
        ctx.protocol_data_access(addr.raw() / 32);
        let entry = self.copies.entry(addr.raw()).or_default();
        if entry.is_empty() {
            self.flush_list.entry(mode).or_default().push(addr.raw());
        }
        if !entry.contains(&msg.src) {
            entry.push(msg.src);
        }
        // Respond with the current data; the home's tag stays ReadWrite —
        // its CPU keeps writing at full speed and copies go stale until
        // the flush (delayed update).
        let data = ctx.force_read_block(addr);
        ctx.send(
            msg.src,
            VirtualNet::Response,
            CPUT,
            Payload::with_block(&[addr.raw(), mode as u64], data),
        );
    }

    fn on_cput(&mut self, ctx: &mut dyn TempestCtx, msg: &Message) {
        let addr = VAddr::new(msg.arg(0));
        let mode = msg.arg(1) as u8;
        self.stats.cputs.inc();
        ctx.charge(CPUT_INSTR);
        let data = msg.payload.block();
        ctx.force_write_block(addr, &data);
        ctx.set_tag(addr, Tag::ReadOnly);
        *self.expected.entry(mode).or_insert(0) += 1;
        let pending = self.pending.take().expect("CPUT with no pending fault");
        ctx.resume(pending.thread);
    }

    fn on_update(&mut self, ctx: &mut dyn TempestCtx, msg: &Message) {
        let addr = VAddr::new(msg.arg(0));
        let mode = msg.arg(1) as u8;
        let phase = msg.arg(2);
        self.stats.updates_received.inc();
        ctx.charge(UPDATE_RECV_INSTR);
        let data = msg.payload.block();
        ctx.force_write_block(addr, &data);
        *self.received.entry((mode, phase)).or_insert(0) += 1;
        self.check_wait(ctx);
    }

    fn on_flush(&mut self, ctx: &mut dyn TempestCtx, thread: ThreadId, mode: u8) {
        assert!(Self::is_custom_mode(mode), "flush of a non-custom mode");
        self.stats.flushes.inc();
        // 1. Home role: push updated values to every outstanding copy.
        let phase = *self.phase.entry(mode).or_insert(0);
        if let Some(blocks) = self.flush_list.get(&mode) {
            let blocks = blocks.clone();
            for addr_raw in blocks {
                let addr = VAddr::new(addr_raw);
                let data = ctx.force_read_block(addr);
                let holders = self.copies.get(&addr_raw).cloned().unwrap_or_default();
                for dst in holders {
                    self.stats.updates_sent.inc();
                    ctx.charge(UPDATE_SEND_INSTR);
                    ctx.send(
                        dst,
                        VirtualNet::Request,
                        UPDATE,
                        Payload::with_block(&[addr_raw, mode as u64, phase], data),
                    );
                }
            }
        }
        // 2. Stacher role: fuzzy barrier — wait until every stached block
        //    of this mode has been refreshed for this phase.
        let target = *self.expected.get(&mode).unwrap_or(&0);
        self.phase.insert(mode, phase + 1);
        let got = *self.received.get(&(mode, phase)).unwrap_or(&0);
        if got >= target {
            self.stats.instant_flushes.inc();
            self.received.remove(&(mode, phase));
            ctx.resume(thread);
        } else {
            assert!(self.waiting.is_none(), "one flush wait at a time");
            self.waiting = Some((thread, mode, phase, target));
        }
    }
}

impl Protocol for Em3dUpdateProtocol {
    fn init(&mut self, ctx: &mut dyn TempestCtx) {
        self.stache.init(ctx);
    }

    fn on_page_fault(&mut self, ctx: &mut dyn TempestCtx, fault: PageFault) {
        // Stache's page-fault handler already records the region mode in
        // the page metadata, so custom stache pages work unchanged.
        self.stache.on_page_fault(ctx, fault);
    }

    fn on_block_fault(&mut self, ctx: &mut dyn TempestCtx, fault: BlockFault) {
        if !Self::is_custom_mode(fault.meta.mode) {
            self.stache.on_block_fault(ctx, fault);
            return;
        }
        // Custom pages: only remote *reads* fault (homes keep ReadWrite
        // tags and owners-compute means nobody writes remote values).
        assert_eq!(
            fault.kind,
            AccessKind::Load,
            "EM3D custom pages are only written by their home node"
        );
        let home = NodeId::new(fault.meta.user[0] as u16);
        assert_ne!(home, self.node, "home reads its own pages tag-free");
        let addr = fault.addr.block_base();
        ctx.charge(14);
        ctx.set_tag(addr, Tag::Busy);
        self.pending = Some(PendingCustom {
            thread: fault.thread,
        });
        ctx.send(
            home,
            VirtualNet::Request,
            CGET,
            Payload::args(&[addr.raw(), fault.meta.mode as u64]),
        );
    }

    fn on_message(&mut self, ctx: &mut dyn TempestCtx, msg: Message) {
        match msg.handler {
            CGET => self.on_cget(ctx, &msg),
            CPUT => self.on_cput(ctx, &msg),
            UPDATE => self.on_update(ctx, &msg),
            _ => self.stache.on_message(ctx, msg),
        }
    }

    fn on_user_call(&mut self, ctx: &mut dyn TempestCtx, thread: ThreadId, call: UserCall) {
        match call.op {
            FLUSH_OP => self.on_flush(ctx, thread, call.arg as u8),
            _ => ctx.resume(thread),
        }
    }

    fn name(&self) -> &'static str {
        "em3d-update"
    }

    fn report(&self, report: &mut Report) {
        self.stache.report(report);
        let s = &self.stats;
        report.push_count("em3d.cgets", s.cgets.get());
        report.push_count("em3d.cputs", s.cputs.get());
        report.push_count("em3d.updates_sent", s.updates_sent.get());
        report.push_count("em3d.updates_received", s.updates_received.get());
        report.push_count("em3d.flushes", s.flushes.get());
        report.push_count("em3d.instant_flushes", s.instant_flushes.get());
    }
}
