//! The Stache protocol: transparent shared memory in user-level software
//! (paper Section 3).
//!
//! One [`StacheProtocol`] instance runs on each node's NP. A node plays
//! two roles at once:
//!
//! - **home** for the pages the layout assigns it: it owns the per-block
//!   software directory and services coherence requests;
//! - **stacher** for remote pages it touches: it allocates local stache
//!   pages on demand (FIFO replacement when over budget), requests blocks
//!   from homes, and installs replies.
//!
//! The default coherence protocol is invalidation-based with
//! request/response/recall/ack messages, "similar to the LimitLESS
//! protocol, except that it is implemented entirely in software". The
//! paper's handler path lengths (14 instructions to request, 30 to
//! respond at the home, 20 to install the reply) are charged through the
//! Tempest context and come from `SystemConfig::typhoon`.

use tt_base::addr::{VAddr, Vpn, BLOCK_BYTES, PAGE_BYTES};
use tt_base::config::SystemConfig;
use tt_base::stats::{Counter, Report};
use tt_base::workload::Layout;
use tt_base::{FxHashMap, NodeId};
use tt_mem::{AccessKind, PageMeta, Tag};
use tt_net::{Payload, VirtualNet};
use tt_tempest::{
    BlockDirSnapshot, BlockFault, DirSnapshotState, HandlerId, Message, PageFault, Protocol,
    TempestCtx, ThreadId, VnPolicy,
};

use crate::dir::{BlockDir, Busy, DirState, PageDirectory, PendingReq, ReqKind, Requester};

// Handler ids (the "handler PCs" of the paper's active messages).
/// Request a read-only copy. Args: `[block_addr]`.
pub const GET_RO: HandlerId = HandlerId(0x10);
/// Request an exclusive copy. Args: `[block_addr]`.
pub const GET_RW: HandlerId = HandlerId(0x11);
/// Grant a read-only copy. Args: `[block_addr]` + block data.
pub const PUT_RO: HandlerId = HandlerId(0x12);
/// Grant an exclusive copy. Args: `[block_addr]` + block data.
pub const PUT_RW: HandlerId = HandlerId(0x13);
/// Invalidate a shared copy. Args: `[block_addr]`.
pub const INV: HandlerId = HandlerId(0x14);
/// Acknowledge an invalidation. Args: `[block_addr]`.
pub const ACK: HandlerId = HandlerId(0x15);
/// Recall an exclusive copy, downgrading the owner to read-only.
pub const RECALL_RO: HandlerId = HandlerId(0x16);
/// Recall an exclusive copy, invalidating the owner.
pub const RECALL_RW: HandlerId = HandlerId(0x17);
/// Owner returns recalled data. Args: `[block_addr]` + block data.
pub const RECALL_DATA: HandlerId = HandlerId(0x18);
/// Write modified data back on page replacement. Args: `[block_addr]` + data.
pub const WRITEBACK: HandlerId = HandlerId(0x19);

/// The virtual network each Stache handler is declared for — the
/// deadlock-freedom discipline `tt-check` (and [`MockCtx`] in unit
/// tests) asserts on every send. GET/INV/RECALL/WRITEBACK are requests;
/// PUT/ACK/RECALL_DATA answer them on the response net, so a response is
/// never queued behind the request that is waiting for it.
///
/// [`MockCtx`]: tt_tempest::testing::MockCtx
pub fn vn_policy() -> VnPolicy {
    VnPolicy::new()
        .expect(GET_RO, VirtualNet::Request)
        .expect(GET_RW, VirtualNet::Request)
        .expect(INV, VirtualNet::Request)
        .expect(RECALL_RO, VirtualNet::Request)
        .expect(RECALL_RW, VirtualNet::Request)
        .expect(WRITEBACK, VirtualNet::Request)
        .expect(PUT_RO, VirtualNet::Response)
        .expect(PUT_RW, VirtualNet::Response)
        .expect(ACK, VirtualNet::Response)
        .expect(RECALL_DATA, VirtualNet::Response)
}

/// Base instruction cost of the invalidation handler at a sharer.
const INV_HANDLER_INSTR: u64 = 8;
/// Base instruction cost of bookkeeping per acknowledgment at the home.
const ACK_HANDLER_INSTR: u64 = 8;
/// Base instruction cost of a recall handler at the owner.
const RECALL_HANDLER_INSTR: u64 = 12;
/// Base instruction cost per block examined during page replacement.
const REPLACE_PER_BLOCK_INSTR: u64 = 2;

/// Statistics collected by one node's Stache instance.
#[derive(Clone, Debug, Default)]
pub struct StacheStats {
    /// Block access faults handled.
    pub block_faults: Counter,
    /// Page faults handled (stache page creations).
    pub page_faults: Counter,
    /// Read-only block requests sent.
    pub ro_requests: Counter,
    /// Exclusive block requests sent.
    pub rw_requests: Counter,
    /// Home-side requests serviced.
    pub home_requests: Counter,
    /// Invalidations sent.
    pub invals_sent: Counter,
    /// Recalls sent.
    pub recalls_sent: Counter,
    /// Writebacks sent (page replacement).
    pub writebacks_sent: Counter,
    /// Stache pages replaced (FIFO).
    pub replacements: Counter,
    /// Directory sharer sets that overflowed six pointers.
    pub sharer_overflows: Counter,
    /// Faults by the home node on its own pages (serviced locally,
    /// without messages).
    pub home_faults: Counter,
    /// Requests deferred because the block was busy.
    pub deferred_requests: Counter,
}

/// A fault by this node's CPU awaiting a data reply.
#[derive(Clone, Copy, Debug)]
struct PendingFault {
    thread: ThreadId,
    addr: VAddr,
}

/// The Stache protocol for one node (see module docs).
pub struct StacheProtocol {
    node: NodeId,
    /// The distributed mapping table: every shared page's home and mode.
    /// `init` iterates it, so that path sorts by [`Vpn`] first — bucket
    /// order must never leak into frame-allocation order (with the std
    /// hasher's per-process random seed it made runs irreproducible).
    home_map: FxHashMap<Vpn, (NodeId, u8)>,
    /// Directories for pages homed on this node (lookup-only: safe to
    /// key with the fast hasher).
    dirs: FxHashMap<Vpn, PageDirectory>,
    /// Outstanding fault of the local computation thread.
    pending: Option<PendingFault>,
    /// Stache pages in allocation order (FIFO replacement).
    stache_fifo: Vec<Vpn>,
    /// Maximum stache pages before replacement kicks in.
    capacity_pages: usize,
    /// Handler path lengths (base instruction counts, Table 2 / Section 6).
    req_instr: u64,
    home_instr: u64,
    reply_instr: u64,
    page_fault_instr: u64,
    stats: StacheStats,
}

impl StacheProtocol {
    /// Builds the node's Stache instance from the workload layout.
    pub fn new(node: NodeId, layout: &Layout, cfg: &SystemConfig) -> Self {
        let mut home_map = FxHashMap::default();
        for (vpn, home, mode) in layout.pages(cfg.nodes) {
            home_map.insert(vpn, (home, mode));
        }
        let capacity_pages = if cfg.stache_capacity_bytes == usize::MAX {
            usize::MAX
        } else {
            (cfg.stache_capacity_bytes / PAGE_BYTES).max(1)
        };
        StacheProtocol {
            node,
            home_map,
            dirs: FxHashMap::default(),
            pending: None,
            stache_fifo: Vec::new(),
            capacity_pages,
            req_instr: cfg.typhoon.stache_request_instr,
            home_instr: cfg.typhoon.stache_home_instr,
            reply_instr: cfg.typhoon.stache_reply_instr,
            page_fault_instr: cfg.typhoon.stache_page_fault_instr,
            stats: StacheStats::default(),
        }
    }

    /// Read-only view of the statistics.
    pub fn stats(&self) -> &StacheStats {
        &self.stats
    }

    /// The home node of a shared page.
    ///
    /// # Panics
    ///
    /// Panics if the page is outside the declared shared segment — the
    /// moral equivalent of a wild pointer in the application.
    fn home_of(&self, vpn: Vpn) -> (NodeId, u8) {
        *self.home_map.get(&vpn).unwrap_or_else(|| {
            panic!(
                "node {}: access to page {vpn:?} outside the shared segment layout",
                self.node
            )
        })
    }

    /// Synthetic NP-data-cache key for a directory entry (the paper packs
    /// four 64-bit entries per 32-byte cache line).
    fn dir_key(vpn: Vpn, block: usize) -> u64 {
        (vpn.0 * tt_base::addr::BLOCKS_PER_PAGE as u64 + block as u64) / 4
    }

    fn send_data(
        &self,
        ctx: &mut dyn TempestCtx,
        dst: NodeId,
        vn: VirtualNet,
        handler: HandlerId,
        addr: VAddr,
    ) {
        let data = ctx.force_read_block(addr);
        ctx.send(dst, vn, handler, Payload::with_block(&[addr.raw()], data));
    }

    // --- Home-side protocol engine --------------------------------------

    /// Services one request against a non-busy directory entry, possibly
    /// starting a transaction (invalidation round or recall).
    fn process_request(
        &mut self,
        ctx: &mut dyn TempestCtx,
        addr: VAddr,
        who: Requester,
        kind: ReqKind,
    ) {
        let vpn = addr.page();
        let block = addr.block_in_page();
        ctx.protocol_data_access(Self::dir_key(vpn, block));
        ctx.charge(self.home_instr);
        self.stats.home_requests.inc();

        let entry = self
            .dirs
            .get_mut(&vpn)
            .expect("request for a page not homed here")
            .blocks[block]
            .clone();
        debug_assert!(!entry.is_busy());

        match (entry.state, kind) {
            (DirState::Idle, ReqKind::Ro) => match who {
                Requester::Remote(r) => {
                    let e = self.entry_mut(vpn, block);
                    e.state = DirState::Shared;
                    e.sharers.clear();
                    e.sharers.insert(r);
                    ctx.set_tag(addr, Tag::ReadOnly);
                    self.send_data(ctx, r, VirtualNet::Response, PUT_RO, addr);
                }
                Requester::Local(t) => {
                    // A deferred local read: the home copy is valid again.
                    ctx.set_tag(addr, Tag::ReadWrite);
                    ctx.resume(t);
                }
            },
            (DirState::Shared, ReqKind::Ro) => match who {
                Requester::Remote(r) => {
                    let e = self.entry_mut(vpn, block);
                    if e.sharers.insert(r) {
                        self.stats.sharer_overflows.inc();
                    }
                    self.send_data(ctx, r, VirtualNet::Response, PUT_RO, addr);
                }
                Requester::Local(t) => {
                    // Home reads are permitted in Shared (tag ReadOnly).
                    ctx.resume(t);
                }
            },
            (DirState::Exclusive(owner), ReqKind::Ro) => {
                self.stats.recalls_sent.inc();
                self.entry_mut(vpn, block).busy = Some(Busy::Recalling {
                    owner,
                    to: who,
                    kind: ReqKind::Ro,
                });
                ctx.send(
                    owner,
                    VirtualNet::Request,
                    RECALL_RO,
                    Payload::args(&[addr.raw()]),
                );
            }
            (DirState::Idle, ReqKind::Rw) => match who {
                Requester::Remote(r) => {
                    self.entry_mut(vpn, block).state = DirState::Exclusive(r);
                    ctx.set_tag(addr, Tag::Invalid);
                    self.send_data(ctx, r, VirtualNet::Response, PUT_RW, addr);
                }
                Requester::Local(t) => {
                    ctx.set_tag(addr, Tag::ReadWrite);
                    ctx.resume(t);
                }
            },
            (DirState::Shared, ReqKind::Rw) => {
                let requester_node = match who {
                    Requester::Remote(r) => Some(r),
                    Requester::Local(_) => None,
                };
                let targets: Vec<NodeId> = self
                    .entry_mut(vpn, block)
                    .sharers
                    .iter()
                    .into_iter()
                    .filter(|s| Some(*s) != requester_node)
                    .collect();
                if targets.is_empty() {
                    // The requester is the only sharer (an upgrade), or
                    // the sharer set was stale.
                    self.grant_exclusive(ctx, addr, who);
                } else {
                    self.stats.invals_sent.add(targets.len() as u64);
                    for s in &targets {
                        ctx.send(
                            *s,
                            VirtualNet::Request,
                            INV,
                            Payload::args(&[addr.raw()]),
                        );
                    }
                    self.entry_mut(vpn, block).busy = Some(Busy::Invalidating {
                        acks_left: targets.len(),
                        to: who,
                    });
                }
            }
            (DirState::Exclusive(owner), ReqKind::Rw) => {
                self.stats.recalls_sent.inc();
                self.entry_mut(vpn, block).busy = Some(Busy::Recalling {
                    owner,
                    to: who,
                    kind: ReqKind::Rw,
                });
                ctx.send(
                    owner,
                    VirtualNet::Request,
                    RECALL_RW,
                    Payload::args(&[addr.raw()]),
                );
            }
        }
    }

    fn entry_mut(&mut self, vpn: Vpn, block: usize) -> &mut BlockDir {
        &mut self
            .dirs
            .get_mut(&vpn)
            .expect("directory present")
            .blocks[block]
    }

    /// Completes an exclusive grant: directory update, home tag, message
    /// or local resume.
    fn grant_exclusive(&mut self, ctx: &mut dyn TempestCtx, addr: VAddr, who: Requester) {
        let vpn = addr.page();
        let block = addr.block_in_page();
        let e = self.entry_mut(vpn, block);
        e.sharers.clear();
        match who {
            Requester::Remote(r) => {
                e.state = DirState::Exclusive(r);
                ctx.set_tag(addr, Tag::Invalid);
                self.send_data(ctx, r, VirtualNet::Response, PUT_RW, addr);
            }
            Requester::Local(t) => {
                e.state = DirState::Idle;
                ctx.set_tag(addr, Tag::ReadWrite);
                ctx.resume(t);
            }
        }
    }

    /// Finishes a transaction and services deferred requests in FIFO
    /// order until one of them starts a new transaction.
    fn finish_transaction(&mut self, ctx: &mut dyn TempestCtx, addr: VAddr) {
        let vpn = addr.page();
        let block = addr.block_in_page();
        loop {
            let e = self.entry_mut(vpn, block);
            if e.is_busy() {
                return;
            }
            let Some(PendingReq { who, kind }) = e.queue.pop_front() else {
                return;
            };
            self.process_request(ctx, addr, who, kind);
        }
    }

    // --- Message handlers ------------------------------------------------

    fn on_get(&mut self, ctx: &mut dyn TempestCtx, msg: &Message, kind: ReqKind) {
        let addr = VAddr::new(msg.arg(0));
        let vpn = addr.page();
        let block = addr.block_in_page();
        ctx.protocol_data_access(Self::dir_key(vpn, block));
        if self.entry_mut(vpn, block).is_busy() {
            self.stats.deferred_requests.inc();
            ctx.charge(ACK_HANDLER_INSTR);
            self.entry_mut(vpn, block).queue.push_back(PendingReq {
                who: Requester::Remote(msg.src),
                kind,
            });
            return;
        }
        self.process_request(ctx, addr, Requester::Remote(msg.src), kind);
    }

    fn on_put(&mut self, ctx: &mut dyn TempestCtx, msg: &Message, tag: Tag) {
        let addr = VAddr::new(msg.arg(0));
        ctx.charge(self.reply_instr);
        let data = msg.payload.block();
        ctx.force_write_block(addr, &data);
        ctx.set_tag(addr, tag);
        let pending = self
            .pending
            .take()
            .expect("PUT with no outstanding fault");
        debug_assert_eq!(pending.addr.block_base(), addr.block_base());
        ctx.resume(pending.thread);
    }

    fn on_inv(&mut self, ctx: &mut dyn TempestCtx, msg: &Message) {
        let addr = VAddr::new(msg.arg(0));
        ctx.charge(INV_HANDLER_INSTR);
        // The page may have been replaced (shared copies are dropped
        // silently), in which case there is nothing to invalidate but the
        // home still needs its acknowledgment.
        if ctx.translate(addr.page()).is_some() {
            ctx.set_tag(addr, Tag::Invalid);
        }
        ctx.send(
            msg.src,
            VirtualNet::Response,
            ACK,
            Payload::args(&[addr.raw()]),
        );
    }

    fn on_ack(&mut self, ctx: &mut dyn TempestCtx, msg: &Message) {
        let addr = VAddr::new(msg.arg(0));
        let vpn = addr.page();
        let block = addr.block_in_page();
        ctx.charge(ACK_HANDLER_INSTR);
        ctx.protocol_data_access(Self::dir_key(vpn, block));
        let e = self.entry_mut(vpn, block);
        let Some(Busy::Invalidating { acks_left, to }) = e.busy.clone() else {
            panic!("ACK for a block that is not invalidating");
        };
        if acks_left > 1 {
            e.busy = Some(Busy::Invalidating {
                acks_left: acks_left - 1,
                to,
            });
            return;
        }
        // Final acknowledgment: this handler sends the data (paper §3).
        e.busy = None;
        ctx.charge(self.home_instr);
        self.grant_exclusive(ctx, addr, to);
        self.finish_transaction(ctx, addr);
    }

    fn on_recall(&mut self, ctx: &mut dyn TempestCtx, msg: &Message, kind: ReqKind) {
        let addr = VAddr::new(msg.arg(0));
        ctx.charge(RECALL_HANDLER_INSTR);
        // If we already gave the block up (page replacement writeback in
        // flight), ignore: the home completes via the WRITEBACK message.
        if ctx.translate(addr.page()).is_none() || ctx.read_tag(addr) != Tag::ReadWrite {
            return;
        }
        let data = ctx.force_read_block(addr);
        let new_tag = match kind {
            ReqKind::Ro => Tag::ReadOnly,
            ReqKind::Rw => Tag::Invalid,
        };
        ctx.set_tag(addr, new_tag);
        ctx.send(
            msg.src,
            VirtualNet::Response,
            RECALL_DATA,
            Payload::with_block(&[addr.raw()], data),
        );
    }

    fn on_recall_data(&mut self, ctx: &mut dyn TempestCtx, msg: &Message) {
        let addr = VAddr::new(msg.arg(0));
        let data = msg.payload.block();
        self.complete_recall(ctx, addr, msg.src, &data);
    }

    /// Completes a recall with returned data (from RECALL_DATA, or from a
    /// racing WRITEBACK by the owner).
    fn complete_recall(
        &mut self,
        ctx: &mut dyn TempestCtx,
        addr: VAddr,
        from: NodeId,
        data: &[u8; BLOCK_BYTES],
    ) {
        let vpn = addr.page();
        let block = addr.block_in_page();
        ctx.charge(self.home_instr);
        ctx.protocol_data_access(Self::dir_key(vpn, block));
        ctx.force_write_block(addr, data);
        let e = self.entry_mut(vpn, block);
        let Some(Busy::Recalling { owner, to, kind }) = e.busy.clone() else {
            panic!("recall data for a block that is not recalling");
        };
        debug_assert_eq!(owner, from);
        e.busy = None;
        match kind {
            ReqKind::Ro => {
                let e = self.entry_mut(vpn, block);
                e.state = DirState::Shared;
                e.sharers.clear();
                e.sharers.insert(owner);
                match to {
                    Requester::Remote(r) => {
                        e.sharers.insert(r);
                        ctx.set_tag(addr, Tag::ReadOnly);
                        self.send_data(ctx, r, VirtualNet::Response, PUT_RO, addr);
                    }
                    Requester::Local(t) => {
                        ctx.set_tag(addr, Tag::ReadOnly);
                        ctx.resume(t);
                    }
                }
            }
            ReqKind::Rw => {
                self.grant_exclusive(ctx, addr, to);
            }
        }
        self.finish_transaction(ctx, addr);
    }

    fn on_writeback(&mut self, ctx: &mut dyn TempestCtx, msg: &Message) {
        let addr = VAddr::new(msg.arg(0));
        let vpn = addr.page();
        let block = addr.block_in_page();
        let data = msg.payload.block();
        ctx.protocol_data_access(Self::dir_key(vpn, block));
        let e = self.entry_mut(vpn, block);
        match e.busy.clone() {
            Some(Busy::Recalling { owner, .. }) if owner == msg.src => {
                // The owner replaced the page while our recall was in
                // flight; its writeback carries the data we wanted.
                self.complete_recall(ctx, addr, msg.src, &data);
            }
            Some(other) => panic!("writeback raced an unexpected transaction {other:?}"),
            None => {
                ctx.charge(ACK_HANDLER_INSTR);
                debug_assert_eq!(e.state, DirState::Exclusive(msg.src));
                e.state = DirState::Idle;
                e.sharers.clear();
                ctx.force_write_block(addr, &data);
                ctx.set_tag(addr, Tag::ReadWrite);
            }
        }
    }

    // --- Stache page management -----------------------------------------

    /// Replaces the oldest stache page: modified (ReadWrite) blocks are
    /// written back to their home; read-only copies are dropped silently
    /// (the home's sharer pointer goes stale, which later invalidations
    /// tolerate). The frame is then unmapped and freed.
    fn replace_page(&mut self, ctx: &mut dyn TempestCtx) {
        let victim = self.stache_fifo.remove(0);
        let (home, _) = self.home_of(victim);
        self.stats.replacements.inc();
        let base = victim.base();
        for b in 0..tt_base::addr::BLOCKS_PER_PAGE {
            ctx.charge(REPLACE_PER_BLOCK_INSTR);
            let addr = base.offset((b * BLOCK_BYTES) as u64);
            match ctx.read_tag(addr) {
                Tag::ReadWrite => {
                    self.stats.writebacks_sent.inc();
                    let data = ctx.force_read_block(addr);
                    ctx.send(
                        home,
                        VirtualNet::Request,
                        WRITEBACK,
                        Payload::with_block(&[addr.raw()], data),
                    );
                }
                Tag::ReadOnly | Tag::Invalid => {}
                Tag::Busy => panic!("replacing a page with an outstanding request"),
            }
        }
        let ppn = ctx.unmap_page(victim).expect("victim is mapped");
        ctx.free_page(ppn);
    }
}

impl Protocol for StacheProtocol {
    fn init(&mut self, ctx: &mut dyn TempestCtx) {
        // Create home pages: map them writable and allocate directories
        // (the paper's shared-memory allocation functions). Sorted by
        // virtual page so physical frames are handed out in a canonical
        // order: frame numbers feed the NP data-cache set mapping, and
        // allocating in hash-bucket order made cycle counts vary from
        // run to run.
        let mut mine: Vec<(Vpn, u8)> = self
            .home_map
            .iter()
            .filter(|(_, (h, _))| *h == self.node)
            .map(|(vpn, (_, mode))| (*vpn, *mode))
            .collect();
        mine.sort_unstable_by_key(|&(vpn, _)| vpn);
        for (vpn, mode) in mine {
            let ppn = ctx.alloc_page();
            ctx.map_page(vpn, ppn).expect("fresh mapping");
            ctx.set_page_tags(vpn, Tag::ReadWrite);
            ctx.set_page_meta(
                vpn,
                PageMeta {
                    vpn: Some(vpn),
                    mode,
                    user: [self.node.raw() as u64, 0],
                },
            );
            self.dirs.insert(vpn, PageDirectory::new());
        }
    }

    fn on_page_fault(&mut self, ctx: &mut dyn TempestCtx, fault: PageFault) {
        let vpn = fault.addr.page();
        let (home, mode) = self.home_of(vpn);
        assert_ne!(home, self.node, "home pages are mapped at init");
        self.stats.page_faults.inc();
        ctx.charge(self.page_fault_instr);
        if self.stache_fifo.len() + 1 > self.capacity_pages {
            self.replace_page(ctx);
        }
        let ppn = ctx.alloc_page();
        ctx.map_page(vpn, ppn).expect("page was unmapped");
        ctx.set_page_tags(vpn, Tag::Invalid);
        ctx.set_page_meta(
            vpn,
            PageMeta {
                vpn: Some(vpn),
                mode,
                user: [home.raw() as u64, 0],
            },
        );
        self.stache_fifo.push(vpn);
        // Restart the access; it will now take a block access fault
        // (the paper deliberately does NOT send the request from here).
        ctx.resume(fault.thread);
    }

    fn on_block_fault(&mut self, ctx: &mut dyn TempestCtx, fault: BlockFault) {
        self.stats.block_faults.inc();
        let addr = fault.addr.block_base();
        let home = NodeId::new(fault.meta.user[0] as u16);
        let kind = match fault.kind {
            AccessKind::Load => ReqKind::Ro,
            AccessKind::Store => ReqKind::Rw,
        };
        if home == self.node {
            // Home faults access the directory directly (paper §3).
            self.stats.home_faults.inc();
            let vpn = addr.page();
            let block = addr.block_in_page();
            ctx.protocol_data_access(Self::dir_key(vpn, block));
            if self.entry_mut(vpn, block).is_busy() {
                self.stats.deferred_requests.inc();
                self.entry_mut(vpn, block).queue.push_back(PendingReq {
                    who: Requester::Local(fault.thread),
                    kind,
                });
                return;
            }
            self.process_request(ctx, addr, Requester::Local(fault.thread), kind);
            return;
        }
        ctx.charge(self.req_instr);
        match kind {
            ReqKind::Ro => self.stats.ro_requests.inc(),
            ReqKind::Rw => self.stats.rw_requests.inc(),
        }
        // Mark the block busy (request outstanding) and ask the home.
        ctx.set_tag(addr, Tag::Busy);
        self.pending = Some(PendingFault {
            thread: fault.thread,
            addr,
        });
        let handler = match kind {
            ReqKind::Ro => GET_RO,
            ReqKind::Rw => GET_RW,
        };
        ctx.send(
            home,
            VirtualNet::Request,
            handler,
            Payload::args(&[addr.raw()]),
        );
    }

    fn on_message(&mut self, ctx: &mut dyn TempestCtx, msg: Message) {
        match msg.handler {
            GET_RO => self.on_get(ctx, &msg, ReqKind::Ro),
            GET_RW => self.on_get(ctx, &msg, ReqKind::Rw),
            PUT_RO => self.on_put(ctx, &msg, Tag::ReadOnly),
            PUT_RW => self.on_put(ctx, &msg, Tag::ReadWrite),
            INV => self.on_inv(ctx, &msg),
            ACK => self.on_ack(ctx, &msg),
            RECALL_RO => self.on_recall(ctx, &msg, ReqKind::Ro),
            RECALL_RW => self.on_recall(ctx, &msg, ReqKind::Rw),
            RECALL_DATA => self.on_recall_data(ctx, &msg),
            WRITEBACK => self.on_writeback(ctx, &msg),
            other => panic!("stache: unknown handler {other:?}"),
        }
    }

    fn name(&self) -> &'static str {
        "stache"
    }

    fn report(&self, report: &mut Report) {
        let s = &self.stats;
        report.push_count("stache.block_faults", s.block_faults.get());
        report.push_count("stache.page_faults", s.page_faults.get());
        report.push_count("stache.ro_requests", s.ro_requests.get());
        report.push_count("stache.rw_requests", s.rw_requests.get());
        report.push_count("stache.home_requests", s.home_requests.get());
        report.push_count("stache.invals_sent", s.invals_sent.get());
        report.push_count("stache.recalls_sent", s.recalls_sent.get());
        report.push_count("stache.writebacks_sent", s.writebacks_sent.get());
        report.push_count("stache.replacements", s.replacements.get());
        report.push_count("stache.sharer_overflows", s.sharer_overflows.get());
        report.push_count("stache.home_faults", s.home_faults.get());
        report.push_count("stache.deferred_requests", s.deferred_requests.get());
    }

    fn inspect_directory(&self, out: &mut Vec<BlockDirSnapshot>) {
        let mut pages: Vec<(&Vpn, &PageDirectory)> = self.dirs.iter().collect();
        pages.sort_unstable_by_key(|&(vpn, _)| vpn);
        for (vpn, dir) in pages {
            for (i, entry) in dir.blocks.iter().enumerate() {
                let state = match entry.state {
                    DirState::Idle => DirSnapshotState::Idle,
                    DirState::Shared => DirSnapshotState::Shared(entry.sharers.iter()),
                    DirState::Exclusive(owner) => DirSnapshotState::Exclusive(owner),
                };
                out.push(BlockDirSnapshot {
                    addr: VAddr::new(vpn.base().raw() + (i * BLOCK_BYTES) as u64),
                    home: self.node,
                    state,
                    busy: entry.is_busy(),
                });
            }
        }
    }
}
