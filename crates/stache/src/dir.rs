//! The software directory backing Stache's coherence protocol.
//!
//! The paper preallocates 64 bits per home block: two bytes of state and
//! six one-byte sharer pointers; when more than six sharers exist the
//! first pointers become a bit vector (Section 3). [`SharerSet`] models
//! exactly that representation (including the overflow statistic the
//! ablation benchmark reads), and [`BlockDir`] holds the per-block state
//! machine: stable states `Idle`/`Shared`/`Exclusive` plus a busy
//! transaction with a FIFO queue of deferred requests.

use std::collections::VecDeque;

use tt_base::NodeId;
use tt_tempest::ThreadId;

/// Number of explicit sharer pointers before overflowing to a bit vector.
pub const POINTER_SLOTS: usize = 6;

/// Sharer count at which an overflowed set collapses back to pointers.
///
/// Deliberately below [`POINTER_SLOTS`] (hysteresis): a set oscillating
/// around the boundary does not thrash between representations.
pub const SHRINK_SLOTS: usize = 3;

/// The sharer set of one block: six pointers, or a heap bit vector after
/// overflow — the LimitLESS-style chained structure the paper sketches
/// for machines wider than the inline pointers cover. The vector is
/// sized to the highest node inserted, so a 1024-node machine pays the
/// heap allocation only on blocks that actually overflow, and
/// [`SharerSet::remove`] collapses back to pointers once the population
/// drops to [`SHRINK_SLOTS`].
///
/// # Example
///
/// ```
/// use tt_stache::dir::SharerSet;
/// use tt_base::NodeId;
///
/// let mut sharers = SharerSet::new();
/// for i in 0..6 {
///     assert!(!sharers.insert(NodeId::new(i)), "pointers suffice");
/// }
/// assert!(sharers.insert(NodeId::new(999)), "seventh sharer overflows");
/// assert!(sharers.is_overflowed());
/// assert_eq!(sharers.len(), 7);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SharerSet {
    /// Up to six explicit node pointers.
    Pointers([Option<NodeId>; POINTER_SLOTS]),
    /// Bit `i` set means node `i` holds a copy; sized to the highest
    /// node seen, growing on demand.
    Bits(Box<[u64]>),
}

impl Default for SharerSet {
    fn default() -> Self {
        SharerSet::Pointers([None; POINTER_SLOTS])
    }
}

impl SharerSet {
    /// An empty set.
    pub fn new() -> Self {
        SharerSet::default()
    }

    /// Adds a sharer. Returns `true` if this insertion overflowed the
    /// pointer representation into the bit vector.
    pub fn insert(&mut self, node: NodeId) -> bool {
        match self {
            SharerSet::Pointers(slots) => {
                if slots.contains(&Some(node)) {
                    return false;
                }
                if let Some(empty) = slots.iter_mut().find(|s| s.is_none()) {
                    *empty = Some(node);
                    return false;
                }
                // Overflow: convert to a bit vector wide enough for the
                // highest node present.
                let top = slots
                    .iter()
                    .flatten()
                    .map(|s| s.index())
                    .chain(std::iter::once(node.index()))
                    .max()
                    .unwrap();
                let mut bits = vec![0u64; top / 64 + 1].into_boxed_slice();
                for s in slots.iter().flatten() {
                    bits[s.index() / 64] |= 1 << (s.index() % 64);
                }
                bits[node.index() / 64] |= 1 << (node.index() % 64);
                *self = SharerSet::Bits(bits);
                true
            }
            SharerSet::Bits(bits) => {
                let word = node.index() / 64;
                if word >= bits.len() {
                    let mut grown = vec![0u64; word + 1];
                    grown[..bits.len()].copy_from_slice(bits);
                    *bits = grown.into_boxed_slice();
                }
                bits[word] |= 1 << (node.index() % 64);
                false
            }
        }
    }

    /// Removes a sharer; returns whether it was present. An overflowed
    /// set collapses back to the pointer form (ascending node order)
    /// once the population drops to [`SHRINK_SLOTS`], returning the
    /// heap vector of a formerly wide set.
    pub fn remove(&mut self, node: NodeId) -> bool {
        match self {
            SharerSet::Pointers(slots) => {
                for s in slots.iter_mut() {
                    if *s == Some(node) {
                        *s = None;
                        return true;
                    }
                }
                false
            }
            SharerSet::Bits(bits) => {
                let word = node.index() / 64;
                if word >= bits.len() {
                    return false;
                }
                let had = bits[word] & (1 << (node.index() % 64)) != 0;
                bits[word] &= !(1 << (node.index() % 64));
                if had && self.len() <= SHRINK_SLOTS {
                    let mut slots = [None; POINTER_SLOTS];
                    for (slot, sharer) in slots.iter_mut().zip(self.iter()) {
                        *slot = Some(sharer);
                    }
                    *self = SharerSet::Pointers(slots);
                }
                had
            }
        }
    }

    /// Whether `node` is in the set.
    pub fn contains(&self, node: NodeId) -> bool {
        match self {
            SharerSet::Pointers(slots) => slots.contains(&Some(node)),
            SharerSet::Bits(bits) => bits
                .get(node.index() / 64)
                .is_some_and(|w| w & (1 << (node.index() % 64)) != 0),
        }
    }

    /// Number of sharers.
    pub fn len(&self) -> usize {
        match self {
            SharerSet::Pointers(slots) => slots.iter().flatten().count(),
            SharerSet::Bits(bits) => bits.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over the sharers in ascending node order for the bit
    /// vector, insertion order for pointers.
    pub fn iter(&self) -> Vec<NodeId> {
        match self {
            SharerSet::Pointers(slots) => slots.iter().flatten().copied().collect(),
            SharerSet::Bits(bits) => {
                let mut out = Vec::with_capacity(self.len());
                for (wi, &w) in bits.iter().enumerate() {
                    let mut word = w;
                    while word != 0 {
                        let bit = word.trailing_zeros() as usize;
                        out.push(NodeId::new((wi * 64 + bit) as u16));
                        word &= word - 1;
                    }
                }
                out
            }
        }
    }

    /// Empties the set (back to the compact pointer form).
    pub fn clear(&mut self) {
        *self = SharerSet::new();
    }

    /// Whether the set has overflowed to the bit-vector form.
    pub fn is_overflowed(&self) -> bool {
        matches!(self, SharerSet::Bits(_))
    }
}

/// Stable directory state of one home block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DirState {
    /// Only the home's copy exists; home tag is `ReadWrite`.
    #[default]
    Idle,
    /// Read-only copies exist at the sharers; home tag is `ReadOnly`.
    Shared,
    /// One remote node holds the writable copy; home tag is `Invalid`.
    Exclusive(NodeId),
}

/// Who issued a (possibly deferred) request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Requester {
    /// A remote node, to be answered with a data message.
    Remote(NodeId),
    /// The home node's own suspended computation thread.
    Local(ThreadId),
}

/// The kind of copy requested.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqKind {
    /// Read-only copy.
    Ro,
    /// Exclusive (writable) copy.
    Rw,
}

/// A request waiting for the block to leave its busy state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PendingReq {
    /// Who asked.
    pub who: Requester,
    /// What they asked for.
    pub kind: ReqKind,
}

/// An in-flight home transaction on a block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Busy {
    /// Invalidations sent; waiting for `acks_left` acknowledgments, then
    /// grant `to` an exclusive copy.
    Invalidating {
        /// Remaining acknowledgments.
        acks_left: usize,
        /// The requester to grant once acknowledged.
        to: Requester,
    },
    /// A recall was sent to the exclusive owner; on data arrival grant
    /// `to` a copy of kind `kind`.
    Recalling {
        /// The current exclusive owner.
        owner: NodeId,
        /// The requester to grant.
        to: Requester,
        /// Kind of copy to grant.
        kind: ReqKind,
    },
}

/// Directory entry for one home block.
#[derive(Clone, Debug, Default)]
pub struct BlockDir {
    /// Stable state.
    pub state: DirState,
    /// Sharers (meaningful in `Shared`).
    pub sharers: SharerSet,
    /// In-flight transaction, if any.
    pub busy: Option<Busy>,
    /// Requests deferred while busy (FIFO).
    pub queue: VecDeque<PendingReq>,
}

impl BlockDir {
    /// Whether a transaction is in flight.
    pub fn is_busy(&self) -> bool {
        self.busy.is_some()
    }
}

/// The directory for one home page: one entry per 32-byte block.
#[derive(Clone, Debug)]
pub struct PageDirectory {
    /// Entries indexed by block-in-page.
    pub blocks: Vec<BlockDir>,
}

impl PageDirectory {
    /// A fresh directory: every block `Idle`.
    pub fn new() -> Self {
        PageDirectory {
            blocks: (0..tt_base::addr::BLOCKS_PER_PAGE)
                .map(|_| BlockDir::default())
                .collect(),
        }
    }
}

impl Default for PageDirectory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn pointer_form_holds_six() {
        let mut s = SharerSet::new();
        for i in 0..6 {
            assert!(!s.insert(n(i)));
        }
        assert!(!s.is_overflowed());
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn seventh_sharer_overflows_to_bits() {
        let mut s = SharerSet::new();
        for i in 0..6 {
            s.insert(n(i));
        }
        assert!(s.insert(n(10)), "seventh insert reports overflow");
        assert!(s.is_overflowed());
        assert_eq!(s.len(), 7);
        for i in 0..6 {
            assert!(s.contains(n(i)));
        }
        assert!(s.contains(n(10)));
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut s = SharerSet::new();
        s.insert(n(3));
        assert!(!s.insert(n(3)));
        assert_eq!(s.len(), 1);
        // And in bit form too.
        for i in 0..7 {
            s.insert(n(i));
        }
        let len = s.len();
        s.insert(n(3));
        assert_eq!(s.len(), len);
    }

    #[test]
    fn remove_in_both_forms() {
        let mut s = SharerSet::new();
        s.insert(n(1));
        s.insert(n(2));
        assert!(s.remove(n(1)));
        assert!(!s.remove(n(1)));
        assert!(!s.contains(n(1)));
        for i in 0..8 {
            s.insert(n(i));
        }
        assert!(s.remove(n(7)));
        assert!(!s.contains(n(7)));
    }

    #[test]
    fn iter_returns_all_sharers() {
        let mut s = SharerSet::new();
        for i in [5u16, 2, 9] {
            s.insert(n(i));
        }
        let mut got = s.iter();
        got.sort();
        assert_eq!(got, vec![n(2), n(5), n(9)]);
    }

    #[test]
    fn clear_resets_to_pointer_form() {
        let mut s = SharerSet::new();
        for i in 0..10 {
            s.insert(n(i));
        }
        s.clear();
        assert!(s.is_empty());
        assert!(!s.is_overflowed());
    }

    #[test]
    fn wide_machine_nodes_fit_and_grow_the_vector() {
        let mut s = SharerSet::new();
        for i in 0..7 {
            s.insert(n(i));
        }
        assert!(s.is_overflowed());
        // Node 1000 lands beyond the current one-word vector.
        s.insert(n(1000));
        assert!(s.contains(n(1000)));
        assert_eq!(s.len(), 8);
        assert_eq!(s.iter().last().copied(), Some(n(1000)));
    }

    #[test]
    fn removal_shrinks_back_to_pointers_ascending() {
        let mut s = SharerSet::new();
        for i in [9u16, 1, 5, 30, 2, 70, 44] {
            s.insert(n(i));
        }
        assert!(s.is_overflowed());
        for i in [9u16, 30, 70, 44] {
            assert!(s.remove(n(i)));
        }
        assert!(!s.is_overflowed(), "three sharers fit the pointers again");
        assert_eq!(s.iter(), vec![n(1), n(2), n(5)], "refilled ascending");
        // And it can overflow again afterwards.
        for i in 10..14 {
            s.insert(n(i));
        }
        assert!(s.is_overflowed());
    }

    #[test]
    fn bit_vector_iterates_ascending_across_words() {
        let mut s = SharerSet::new();
        for i in [200u16, 3, 130, 64, 63, 1000, 65] {
            s.insert(n(i));
        }
        assert_eq!(
            s.iter(),
            vec![n(3), n(63), n(64), n(65), n(130), n(200), n(1000)]
        );
    }

    #[test]
    fn thousand_node_all_sharers() {
        let mut s = SharerSet::new();
        for i in 0..1024u16 {
            s.insert(n(i));
        }
        assert_eq!(s.len(), 1024);
        let got = s.iter();
        assert_eq!(got.len(), 1024);
        assert!(got.windows(2).all(|w| w[0] < w[1]), "ascending");
    }

    #[test]
    fn page_directory_has_an_entry_per_block() {
        let d = PageDirectory::new();
        assert_eq!(d.blocks.len(), 128);
        assert_eq!(d.blocks[0].state, DirState::Idle);
        assert!(!d.blocks[0].is_busy());
    }
}
